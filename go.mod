module gdr

go 1.24
