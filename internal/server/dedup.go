package server

import "gdr/internal/snapshot"

// dedupWindowSize bounds the per-session feedback dedup window: a retrying
// client re-sends within a round trip or two, so a handful of remembered
// responses is plenty, and the window's snapshot footprint stays small and
// bounded (each entry is one request id plus one rendered response body).
const dedupWindowSize = 32

// dedupWindow remembers the last dedupWindowSize feedback responses by
// client request id, so a retried POST (same X-Gdr-Request-Id) replays the
// original bytes instead of double-applying the round. It is actor-confined
// state: every method must run on the owning session's actor goroutine,
// which is also what lets it be persisted inside the session snapshot —
// state and window roll back (or fail over) atomically.
type dedupWindow struct {
	ring  []snapshot.DedupEntry // oldest-first up to next, insertion ring
	next  int                   // slot the next put overwrites once full
	index map[string]int        // request id → ring slot
}

func newDedupWindow() *dedupWindow {
	return &dedupWindow{index: make(map[string]int, dedupWindowSize)}
}

// get returns the remembered response for a request id, if still windowed.
func (d *dedupWindow) get(id string) ([]byte, bool) {
	i, ok := d.index[id]
	if !ok {
		return nil, false
	}
	return d.ring[i].Body, true
}

// put remembers one response, evicting the oldest entry once the window is
// full. A repeated id overwrites in place (the response for an id never
// legitimately changes, but an overwrite must not grow the window).
func (d *dedupWindow) put(id string, body []byte) {
	if i, ok := d.index[id]; ok {
		d.ring[i].Body = body
		return
	}
	if len(d.ring) < dedupWindowSize {
		d.index[id] = len(d.ring)
		d.ring = append(d.ring, snapshot.DedupEntry{ID: id, Body: body})
		return
	}
	delete(d.index, d.ring[d.next].ID)
	d.ring[d.next] = snapshot.DedupEntry{ID: id, Body: body}
	d.index[id] = d.next
	d.next = (d.next + 1) % dedupWindowSize
}

// export snapshots the window in deterministic (insertion ring) order:
// oldest first, so restore rebuilds the same eviction order and two
// snapshots of the same session state encode byte-identically.
func (d *dedupWindow) export() []snapshot.DedupEntry {
	if len(d.ring) == 0 {
		return nil
	}
	out := make([]snapshot.DedupEntry, 0, len(d.ring))
	for i := 0; i < len(d.ring); i++ {
		out = append(out, d.ring[(d.next+i)%len(d.ring)])
	}
	return out
}

// restore rebuilds the window from snapshot meta (oldest-first, as export
// writes it).
func (d *dedupWindow) restore(entries []snapshot.DedupEntry) {
	d.ring = d.ring[:0]
	d.next = 0
	clear(d.index)
	for _, ent := range entries {
		d.put(ent.ID, ent.Body)
	}
}
