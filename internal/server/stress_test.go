package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"gdr/internal/core"
)

// TestManyClientsOneSession hammers a single session from concurrent
// clients — the actor must serialize every touch of the core session (this
// is the -race contract for the command loop). Clients race to answer the
// same suggestions, so stale results are expected; server errors are not.
func TestManyClientsOneSession(t *testing.T) {
	csvText, rulesText, d := hospitalUpload(t, 150, 3)
	_, ts := newTestServer(t, Config{Workers: 4})
	var created CreateSessionResponse
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{CSV: csvText, Rules: rulesText, Seed: 3}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + created.Session.ID

	const clients = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var groups GroupsResponse
				if code := doJSON(t, ts.Client(), "GET", base+"/groups?order=voi&limit=3", nil, &groups); code != 200 {
					errs <- fmt.Errorf("client %d: groups status %d", c, code)
					return
				}
				if len(groups.Groups) == 0 {
					return // repaired to completion under contention
				}
				g := groups.Groups[c%len(groups.Groups)]
				var ups UpdatesResponse
				code := doJSON(t, ts.Client(), "GET", base+"/groups/"+g.Key+"/updates", nil, &ups)
				if code == 404 {
					continue // another client drained the group first
				}
				if code != 200 {
					errs <- fmt.Errorf("client %d: updates status %d", c, code)
					return
				}
				items := make([]FeedbackItem, 0, len(ups.Updates))
				for _, u := range ups.Updates {
					items = append(items, FeedbackItem{
						Tid: u.Tid, Attr: u.Attr, Value: u.Value,
						Feedback: oracleVerb(d.Truth.Get(u.Tid, u.Attr), u.Value, u.Current),
					})
				}
				if code := doJSON(t, ts.Client(), "POST", base+"/feedback",
					FeedbackRequest{Items: items}, nil); code != 200 {
					errs <- fmt.Errorf("client %d: feedback status %d", c, code)
					return
				}
				if code := doJSON(t, ts.Client(), "GET", base+"/status", nil, nil); code != 200 {
					errs <- fmt.Errorf("client %d: status status %d", c, code)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The session must still be coherent: status serves and counters add up.
	var st StatusResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/status", nil, &st); code != 200 {
		t.Fatalf("final status: %d", code)
	}
	if st.Stats.Applied < 0 || st.Stats.Dirty > st.Stats.InitialDirty+st.Stats.Applied {
		t.Fatalf("incoherent final stats: %+v", st.Stats)
	}
}

// TestManySessionsParallel drives several tenants at once: sessions share
// the worker budget but never each other's state.
func TestManySessionsParallel(t *testing.T) {
	const sessions = 6
	_, ts := newTestServer(t, Config{Workers: 4, Session: core.Config{Workers: 1}})
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds: every tenant uploads a different instance.
			csvText, rulesText, d := hospitalUpload(t, 120, int64(100+i))
			var created CreateSessionResponse
			if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
				CreateSessionRequest{CSV: csvText, Rules: rulesText, Seed: int64(i)}, &created); code != http.StatusCreated {
				errs <- fmt.Errorf("session %d: create status %d", i, code)
				return
			}
			base := ts.URL + "/v1/sessions/" + created.Session.ID
			for round := 0; round < 8; round++ {
				var groups GroupsResponse
				if code := doJSON(t, ts.Client(), "GET", base+"/groups?order=voi&limit=1", nil, &groups); code != 200 {
					errs <- fmt.Errorf("session %d: groups status %d", i, code)
					return
				}
				if len(groups.Groups) == 0 {
					break
				}
				g := groups.Groups[0]
				var ups UpdatesResponse
				if code := doJSON(t, ts.Client(), "GET", base+"/groups/"+g.Key+"/updates", nil, &ups); code != 200 {
					errs <- fmt.Errorf("session %d: updates status %d", i, code)
					return
				}
				items := make([]FeedbackItem, 0, len(ups.Updates))
				for _, u := range ups.Updates {
					items = append(items, FeedbackItem{
						Tid: u.Tid, Attr: u.Attr, Value: u.Value,
						Feedback: oracleVerb(d.Truth.Get(u.Tid, u.Attr), u.Value, u.Current),
					})
				}
				if code := doJSON(t, ts.Client(), "POST", base+"/feedback",
					FeedbackRequest{Items: items, Sweep: true}, nil); code != 200 {
					errs <- fmt.Errorf("session %d: feedback status %d", i, code)
					return
				}
			}
			var st StatusResponse
			if code := doJSON(t, ts.Client(), "GET", base+"/status", nil, &st); code != 200 {
				errs <- fmt.Errorf("session %d: status %d", i, code)
				return
			}
			if st.Stats.Applied == 0 {
				errs <- fmt.Errorf("session %d made no progress", i)
			}
			if code := doJSON(t, ts.Client(), "DELETE", base, nil, nil); code != 200 {
				errs <- fmt.Errorf("session %d: delete status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
