package server

import (
	"io"
	"net/http"
	"testing"

	"gdr/internal/core"
)

// getGroups issues GET /groups with an optional If-None-Match and returns
// the status, the response ETag and the raw body length.
func getGroups(t *testing.T, ts string, id, query, inm string) (int, string, int) {
	t.Helper()
	req, err := http.NewRequest("GET", ts+"/v1/sessions/"+id+"/groups"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), len(body)
}

// TestGroupsETagConditionalPolling covers the poll-cheaply contract: an
// unchanged ranking answers If-None-Match with a bodyless 304, any feedback
// invalidates the validator, and the validator is scoped to the request
// shape (order, limit). Random order is never cacheable.
func TestGroupsETagConditionalPolling(t *testing.T) {
	srv, ts := newTestServer(t, Config{Session: core.Config{Workers: 1}})

	var created CreateSessionResponse
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{CSV: figure1CSV, Rules: figure1Rules, Seed: 5}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	id := created.Session.ID

	code, etag, n := getGroups(t, ts.URL, id, "?order=voi", "")
	if code != http.StatusOK || etag == "" || n == 0 {
		t.Fatalf("cold groups: code %d etag %q len %d", code, etag, n)
	}

	// Steady state: the same request with If-None-Match is a bodyless 304
	// carrying the same validator.
	code, etag2, n := getGroups(t, ts.URL, id, "?order=voi", etag)
	if code != http.StatusNotModified || n != 0 {
		t.Fatalf("steady poll: code %d len %d, want 304 with no body", code, n)
	}
	if etag2 != etag {
		t.Fatalf("steady poll moved the validator: %q -> %q", etag, etag2)
	}

	// The validator is scoped to order and limit: the same version under a
	// different request shape must not match.
	if code, _, _ = getGroups(t, ts.URL, id, "?order=voi&limit=1", etag); code != http.StatusOK {
		t.Fatalf("limit-scoped request served 304 off a full-listing validator (code %d)", code)
	}
	if code, _, _ = getGroups(t, ts.URL, id, "?order=greedy", etag); code != http.StatusOK {
		t.Fatalf("greedy request served 304 off a voi validator (code %d)", code)
	}

	// A wildcard matches anything cacheable.
	if code, _, _ = getGroups(t, ts.URL, id, "?order=voi", "*"); code != http.StatusNotModified {
		t.Fatalf("If-None-Match: * not honored (code %d)", code)
	}

	// Random order is a fresh shuffle per request: no ETag, never a 304.
	code, randTag, _ := getGroups(t, ts.URL, id, "?order=random", "*")
	if code != http.StatusOK || randTag != "" {
		t.Fatalf("random order: code %d etag %q, want 200 with no validator", code, randTag)
	}

	// Feedback perturbs the ranking: the old validator stops matching and
	// the new response carries a fresh one plus a larger version.
	var groups GroupsResponse
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+id+"/groups?order=voi", nil, &groups); code != http.StatusOK {
		t.Fatalf("groups: status %d", code)
	}
	var ups UpdatesResponse
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+id+"/groups/"+groups.Groups[0].Key+"/updates", nil, &ups); code != http.StatusOK {
		t.Fatalf("updates: status %d", code)
	}
	u := ups.Updates[0]
	var fb FeedbackResponse
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions/"+id+"/feedback",
		FeedbackRequest{Items: []FeedbackItem{{Tid: u.Tid, Attr: u.Attr, Value: u.Value, Feedback: "confirm"}}}, &fb); code != http.StatusOK {
		t.Fatalf("feedback: status %d", code)
	}
	code, etag3, n := getGroups(t, ts.URL, id, "?order=voi", etag)
	if code != http.StatusOK || n == 0 {
		t.Fatalf("post-feedback poll: code %d len %d, want a fresh 200", code, n)
	}
	if etag3 == etag {
		t.Fatal("feedback did not advance the groups validator")
	}

	// The 304s were counted.
	if got := srv.Registry().Counter("gdrd_groups_not_modified_total").Value(); got < 2 {
		t.Fatalf("gdrd_groups_not_modified_total = %d, want >= 2", got)
	}
}
