package server

import (
	"strings"
	"testing"
	"time"
)

func TestParseKeyfile(t *testing.T) {
	const good = `
# tenants for the staging box
alicekey123 alice rate=10 burst=20 inflight=4
bobkey45678 bob            # unlimited
carolkey999 carol rate=0.5
`
	tenants, err := ParseKeyfile(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(tenants))
	}
	a := tenants[0]
	if a.Name != "alice" || a.Key != "alicekey123" || a.RatePerSec != 10 || a.Burst != 20 || a.MaxInFlight != 4 {
		t.Fatalf("alice: %+v", a)
	}
	if b := tenants[1]; b.RatePerSec != 0 || b.MaxInFlight != 0 {
		t.Fatalf("bob should be unlimited: %+v", b)
	}
	if c := tenants[2]; c.RatePerSec != 0.5 {
		t.Fatalf("carol: %+v", c)
	}

	for name, bad := range map[string]string{
		"missing name":    "alicekey123",
		"short key":       "short alice",
		"duplicate key":   "alicekey123 alice\nalicekey123 bob",
		"duplicate name":  "alicekey123 alice\nbobkey45678 alice",
		"bad tenant name": "alicekey123 al/ice",
		"unknown option":  "alicekey123 alice turbo=1",
		"bad rate":        "alicekey123 alice rate=-1",
		"bad burst":       "alicekey123 alice burst=x",
		"bare option":     "alicekey123 alice rate",
	} {
		if _, err := ParseKeyfile(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: keyfile %q accepted", name, bad)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	if b := newTokenBucket(0, 0); b != nil {
		t.Fatal("rate 0 must mean unlimited (nil bucket)")
	}
	b := newTokenBucket(10, 2)
	now := time.UnixMilli(0)
	if w := b.take(now); w != 0 {
		t.Fatalf("first take: wait %s", w)
	}
	if w := b.take(now); w != 0 {
		t.Fatalf("second take (burst): wait %s", w)
	}
	w := b.take(now)
	if w <= 0 {
		t.Fatal("bucket empty but take admitted")
	}
	// At 10/s a token accrues in 100ms; the hint must be in that ballpark.
	if w > 150*time.Millisecond {
		t.Fatalf("retry hint %s too pessimistic for rate 10/s", w)
	}
	// Advancing past the accrual admits again, and the bucket never grows
	// beyond its burst.
	now = now.Add(10 * time.Second)
	if w := b.take(now); w != 0 {
		t.Fatalf("take after refill: wait %s", w)
	}
	if w := b.take(now); w != 0 {
		t.Fatalf("burst after refill: wait %s", w)
	}
	if w := b.take(now); w <= 0 {
		t.Fatal("bucket must cap at burst after a long idle gap")
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	// Burst defaults to ceil(rate), min 1.
	b := newTokenBucket(0.5, 0)
	if b.burst != 1 {
		t.Fatalf("burst for rate 0.5 = %v, want 1", b.burst)
	}
	b = newTokenBucket(2.3, 0)
	if b.burst != 3 {
		t.Fatalf("burst for rate 2.3 = %v, want 3", b.burst)
	}
}
