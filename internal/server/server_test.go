package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gdr/internal/group"
)

// figure1CSV is the paper's running example as an uploadable instance.
const figure1CSV = `Name,SRC,STR,CT,STT,ZIP
Alice,H1,Redwood Dr,Michigan City,IN,46360
Bob,H2,Oak St,Westville,IN,46360
Carol,H2,Pine Ave,Westvile,IN,46360
Dave,H2,Main St,Michigan Cty,IN,46360
Eve,H1,Sherden RD,Fort Wayne,IN,46391
Frank,H1,Sherden RD,Fort Wayne,IN,46825
Grace,H3,Canal Rd,New Haven,OH,46774
Heidi,H3,Sherden RD,Fort Wayne,IN,46835
`

const figure1Rules = `
phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN
phi2: ZIP -> CT, STT :: 46774 || New Haven, IN
phi3: ZIP -> CT, STT :: 46825 || Fort Wayne, IN
phi4: ZIP -> CT, STT :: 46391 || Westville, IN
phi5: STR, CT -> ZIP :: _, Fort Wayne || _
`

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doJSON issues one request and decodes the JSON response into out.
func doJSON(t testing.TB, client *http.Client, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func createFigure1Session(t testing.TB, ts *httptest.Server) CreateSessionResponse {
	t.Helper()
	var created CreateSessionResponse
	code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{Name: "fig1", CSV: figure1CSV, Rules: figure1Rules, Seed: 1}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return created
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	created := createFigure1Session(t, ts)
	if created.Session.ID == "" || created.Session.Tuples != 8 {
		t.Fatalf("create response: %+v", created)
	}
	if created.Stats.Pending == 0 || created.Stats.Dirty != 7 {
		t.Fatalf("initial stats: %+v", created.Stats)
	}
	base := ts.URL + "/v1/sessions/" + created.Session.ID

	// Ranked groups: the Michigan City group must exist with 3 updates.
	var groups GroupsResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/groups?order=voi", nil, &groups); code != 200 {
		t.Fatalf("groups: status %d", code)
	}
	if groups.Order != "voi" || len(groups.Groups) == 0 {
		t.Fatalf("groups: %+v", groups)
	}
	var mc *GroupBody
	for i := range groups.Groups {
		if groups.Groups[i].Attr == "CT" && groups.Groups[i].Value == "Michigan City" {
			mc = &groups.Groups[i]
		}
	}
	if mc == nil || mc.Size != 3 {
		t.Fatalf("Michigan City group missing: %+v", groups)
	}

	// The group's updates, via the opaque key token (value contains a space).
	var ups UpdatesResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/groups/"+mc.Key+"/updates", nil, &ups); code != 200 {
		t.Fatalf("updates: status %d", code)
	}
	if len(ups.Updates) != 3 {
		t.Fatalf("updates: %+v", ups)
	}
	for _, u := range ups.Updates {
		if u.Attr != "CT" || u.Value != "Michigan City" || u.Current == "" {
			t.Fatalf("bad update body: %+v", u)
		}
	}

	// One feedback round: confirm all three.
	items := make([]FeedbackItem, len(ups.Updates))
	for i, u := range ups.Updates {
		items[i] = FeedbackItem{Tid: u.Tid, Attr: u.Attr, Value: u.Value, Feedback: "confirm"}
	}
	var fb FeedbackResponse
	if code := doJSON(t, ts.Client(), "POST", base+"/feedback", FeedbackRequest{Items: items}, &fb); code != 200 {
		t.Fatalf("feedback: status %d", code)
	}
	applied := 0
	for _, r := range fb.Results {
		if r.Status == FeedbackApplied {
			applied++
		}
	}
	if applied == 0 || fb.AppliedDelta < applied {
		t.Fatalf("feedback response: %+v", fb)
	}
	if fb.Stats.Dirty >= created.Stats.Dirty {
		t.Fatalf("dirty count did not drop: %+v", fb.Stats)
	}

	// Status reflects the round.
	var st StatusResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/status", nil, &st); code != 200 {
		t.Fatalf("status: status %d", code)
	}
	if st.Stats.Applied != fb.Stats.Applied || st.Session.ID != created.Session.ID {
		t.Fatalf("status: %+v", st)
	}
	if len(st.Models) == 0 {
		t.Fatal("status: no model stats after teaching feedback")
	}

	// Export returns CSV with the confirmed repairs in place.
	resp, err := ts.Client().Get(base + "/export")
	if err != nil {
		t.Fatal(err)
	}
	csvOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(csvOut), "Michigan City") {
		t.Fatalf("export: %d %q", resp.StatusCode, csvOut)
	}
	if strings.Contains(string(csvOut), "Westvile") {
		t.Fatal("export: Carol's typo should have been repaired")
	}

	// Delete, then every endpoint 404s.
	if code := doJSON(t, ts.Client(), "DELETE", base, nil, nil); code != 200 {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, ts.Client(), "GET", base+"/status", nil, nil); code != 404 {
		t.Fatalf("status after delete: %d", code)
	}
}

func TestCreateMultipart(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fw, _ := mw.CreateFormFile("csv", "dirty.csv")
	fmt.Fprint(fw, figure1CSV)
	fw, _ = mw.CreateFormFile("rules", "rules.txt")
	fmt.Fprint(fw, figure1Rules)
	mw.WriteField("name", "multipart")
	mw.WriteField("seed", "7")
	mw.Close()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", &body)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var created CreateSessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || created.Session.Name != "multipart" {
		t.Fatalf("multipart create: %d %+v", resp.StatusCode, created)
	}
}

func TestCreateRejectsBadUploads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []CreateSessionRequest{
		{CSV: "", Rules: figure1Rules},              // empty instance
		{CSV: figure1CSV, Rules: ""},                // empty rule set
		{CSV: figure1CSV, Rules: "not a rule"},      // malformed rules
		{CSV: "A,B\n1", Rules: "r: A -> B :: _||_"}, // ragged CSV
	}
	for i, req := range cases {
		if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", req, nil); code != 400 {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
}

func TestOversizedBodyReturns413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := CreateSessionRequest{CSV: figure1CSV + strings.Repeat("#", 4096), Rules: figure1Rules}
	if code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: status %d, want 413", code)
	}
}

func TestSessionCapReturns429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	createFigure1Session(t, ts)
	code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{CSV: figure1CSV, Rules: figure1Rules}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429", code)
	}
}

func TestGroupKeyTokenRoundTrip(t *testing.T) {
	keys := []group.Key{
		{Attr: "CT", Value: "Michigan City"},
		{Attr: "A:B", Value: "x:y"},
		{Attr: "weird/attr", Value: "with space & symbols?=#"},
		{Attr: "ünïcode", Value: "日本語"},
		{Attr: "empty", Value: ""},
	}
	for _, k := range keys {
		tok := GroupKeyToken(k)
		got, err := ParseGroupKeyToken(tok)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %q -> %v", k, tok, got)
		}
	}
	if _, err := ParseGroupKeyToken("no-separator"); err == nil {
		t.Fatal("missing separator not rejected")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFigure1Session(t, ts)
	var health map[string]any
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" || health["sessions"].(float64) != 1 {
		t.Fatalf("healthz: %+v", health)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gdrd_sessions_live 1",
		"gdrd_sessions_created_total 1",
		"# TYPE gdrd_request_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestFeedbackStaleAndInvalidItems(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	created := createFigure1Session(t, ts)
	base := ts.URL + "/v1/sessions/" + created.Session.ID
	var fb FeedbackResponse
	code := doJSON(t, ts.Client(), "POST", base+"/feedback", FeedbackRequest{Items: []FeedbackItem{
		{Tid: 0, Attr: "CT", Value: "nope", Feedback: "confirm"},        // no such suggestion
		{Tid: 2, Attr: "CT", Value: "Michigan City", Feedback: "shrug"}, // bad verb
	}}, &fb)
	if code != 200 {
		t.Fatalf("feedback: status %d", code)
	}
	if fb.Results[0].Status != FeedbackStale || fb.Results[1].Status != FeedbackInvalid {
		t.Fatalf("results: %+v", fb.Results)
	}
	if fb.AppliedDelta != 0 {
		t.Fatalf("nothing should have applied: %+v", fb)
	}
}
