package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TenantConfig is one tenant's identity and admission policy, normally
// loaded from a keyfile (see ParseKeyfile). Zero-valued limits mean
// unlimited.
type TenantConfig struct {
	// Name identifies the tenant in metrics, logs and session ownership.
	// It must match [A-Za-z0-9_.-]+ (it is embedded in snapshot file
	// names).
	Name string
	// Key is the static bearer token the tenant authenticates with.
	Key string
	// RatePerSec refills the tenant's request token bucket (≤0 =
	// unlimited).
	RatePerSec float64
	// Burst is the bucket capacity — how many requests may arrive back to
	// back before the rate applies (default: ceil(RatePerSec), min 1).
	Burst int
	// MaxInFlight caps the tenant's concurrently executing requests (≤0 =
	// unlimited); the excess is shed with 429 before touching any session.
	MaxInFlight int
	// Admin marks a cluster-operator key (keyfile option "admin"): it sees
	// every tenant's sessions (the routing proxy lists them to plan
	// migrations) and may use the X-GDR-Assign-Token/-Tenant placement
	// headers on create. Never hand an admin key to a tenant.
	Admin bool
}

// defaultTenantName labels the implicit tenant of an open-mode server (no
// keyfile) in metrics and sheds.
const defaultTenantName = "default"

var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9_.-]+$`)

// ParseKeyfile reads the gdrd tenant keyfile: one tenant per line,
//
//	<key> <name> [rate=N] [burst=N] [inflight=N] [admin]
//
// with '#' comments and blank lines ignored. Keys and names must be
// unique; names must be filename-safe ([A-Za-z0-9_.-]+). The bare "admin"
// option marks a cluster-operator key (see TenantConfig.Admin).
func ParseKeyfile(r io.Reader) ([]TenantConfig, error) {
	var out []TenantConfig
	seenKey := make(map[string]bool)
	seenName := make(map[string]bool)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("keyfile line %d: want <key> <name> [rate=N] [burst=N] [inflight=N]", line)
		}
		tc := TenantConfig{Key: fields[0], Name: fields[1]}
		if !tenantNameRE.MatchString(tc.Name) {
			return nil, fmt.Errorf("keyfile line %d: tenant name %q must match %s", line, tc.Name, tenantNameRE)
		}
		if len(tc.Key) < 8 {
			return nil, fmt.Errorf("keyfile line %d: key shorter than 8 characters", line)
		}
		if seenKey[tc.Key] {
			return nil, fmt.Errorf("keyfile line %d: duplicate key", line)
		}
		if seenName[tc.Name] {
			return nil, fmt.Errorf("keyfile line %d: duplicate tenant name %q", line, tc.Name)
		}
		seenKey[tc.Key], seenName[tc.Name] = true, true
		for _, opt := range fields[2:] {
			if opt == "admin" {
				tc.Admin = true
				continue
			}
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("keyfile line %d: option %q: want key=value", line, opt)
			}
			switch k {
			case "rate":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 {
					return nil, fmt.Errorf("keyfile line %d: rate %q", line, v)
				}
				tc.RatePerSec = f
			case "burst":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("keyfile line %d: burst %q", line, v)
				}
				tc.Burst = n
			case "inflight":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("keyfile line %d: inflight %q", line, v)
				}
				tc.MaxInFlight = n
			default:
				return nil, fmt.Errorf("keyfile line %d: unknown option %q", line, k)
			}
		}
		out = append(out, tc)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadKeyfile reads and parses a keyfile from disk.
func LoadKeyfile(path string) ([]TenantConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tenants, err := ParseKeyfile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tenants, nil
}

// tokenBucket is a standard token-bucket rate limiter; time is passed in
// so tests control it.
type tokenBucket struct {
	rate  float64 // tokens per second
	burst float64

	mu     sync.Mutex
	tokens float64   // gdr:guarded-by mu
	last   time.Time // gdr:guarded-by mu
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil // unlimited
	}
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
		b = float64(int(b + 0.999999))
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

// take removes one token. It returns 0 when admitted, otherwise the time
// until a token accrues — the Retry-After hint.
func (b *tokenBucket) take(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// tenantState is one tenant's runtime admission state.
type tenantState struct {
	cfg      TenantConfig
	bucket   *tokenBucket // nil = unlimited
	inflight atomic.Int64
}

// owner is the ownership tag this tenant stamps on sessions it creates and
// the visibility filter on its lookups: empty in open mode (sessions are
// unowned), the tenant name with auth on. Admin keys read as "" too — they
// see everything, and sessions they create without an explicit
// X-GDR-Assign-Tenant are unowned.
func (t *tenantState) owner() string {
	if t.cfg.Key == "" || t.cfg.Admin {
		return ""
	}
	return t.cfg.Name
}

// tenantCtxKey carries the authenticated *tenantState through a request's
// context.
type tenantCtxKey struct{}

// tenantFrom returns the request's authenticated tenant; the admission
// middleware guarantees one is present on every /v1 request.
func tenantFrom(ctx context.Context) *tenantState {
	t, _ := ctx.Value(tenantCtxKey{}).(*tenantState)
	return t
}

// authenticate resolves the request's tenant. In open mode (no keyfile)
// every request maps to the implicit default tenant; with auth enabled the
// Authorization header must carry a known bearer key.
func (s *Server) authenticate(r *http.Request) (*tenantState, error) {
	if len(s.tenants) == 0 {
		return s.defaultTenant, nil
	}
	h := r.Header.Get("Authorization")
	scheme, key, ok := strings.Cut(h, " ")
	if !ok || !strings.EqualFold(scheme, "Bearer") {
		return nil, fmt.Errorf("server: missing bearer token")
	}
	t, ok := s.tenants[strings.TrimSpace(key)]
	if !ok {
		return nil, fmt.Errorf("server: unknown API key")
	}
	return t, nil
}
