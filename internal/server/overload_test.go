package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gdr/internal/core"
)

// doJSONKey is doJSON with a bearer key attached; it also exposes the
// response headers so shed tests can assert Retry-After.
func doJSONKey(t testing.TB, client *http.Client, key, method, url string, body any, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// jam occupies a session's actor until the returned release func is called,
// so subsequent commands stay queued (or are shed).
func jam(t *testing.T, e *entry) (release func()) {
	t.Helper()
	entered := make(chan struct{})
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		_ = e.actor.do(context.Background(), "test", func(*core.Session) {
			close(entered)
			<-done
		})
	}()
	<-entered
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// TestQueuedExpiryIsDeterministic503: a request whose deadline expires
// while its command is queued behind a busy actor gets the single
// deterministic 503 + Retry-After — not a 499, not a raw context error.
func TestQueuedExpiryIsDeterministic503(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	created := createFigure1Session(t, ts)
	e, ok := srv.Store().Get(created.Session.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	release := jam(t, e)
	defer release()
	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/"+created.Session.ID+"/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-expiry status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 shed without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", ra)
	}
}

// TestQueueFullSheds503: commands beyond the actor's queue depth are shed
// immediately with 503 + Retry-After instead of blocking the handler.
func TestQueueFullSheds503(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	created := createFigure1Session(t, ts)
	e, ok := srv.Store().Get(created.Session.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	release := jam(t, e)
	defer release()
	// Fill the single queue slot with a background command...
	queued := make(chan error, 1)
	go func() {
		queued <- e.actor.do(context.Background(), "test", func(*core.Session) {})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(e.actor.cmds) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("filler command never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// ...then the next request must be shed, not queued.
	code, hdr := doJSONKey(t, ts.Client(), "", "GET", ts.URL+"/v1/sessions/"+created.Session.ID+"/status", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("queue-full status = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("queue-full shed without Retry-After")
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("filler command: %v", err)
	}
	if got := metricsText(t, ts); !strings.Contains(got, `gdrd_shed_total{reason="queue",tenant="default"}`) {
		t.Fatalf("queue shed not counted:\n%s", got)
	}
}

func metricsText(t testing.TB, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func twoTenantConfig() Config {
	return Config{
		Tenants: []TenantConfig{
			{Name: "alice", Key: "alicekey123"},
			{Name: "bob", Key: "bobkey45678"},
		},
	}
}

// TestAuthRequiredAndTenantIsolation: with a keyfile, unauthenticated
// requests are 401, and one tenant's sessions are invisible to another —
// lookups 404 (no existence oracle), lists filter, deletes refuse.
func TestAuthRequiredAndTenantIsolation(t *testing.T) {
	_, ts := newTestServer(t, twoTenantConfig())
	client := ts.Client()

	code, hdr := doJSONKey(t, client, "", "GET", ts.URL+"/v1/sessions", nil, nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("no key: status %d, want 401", code)
	}
	if hdr.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	if code, _ := doJSONKey(t, client, "wrongkey123", "GET", ts.URL+"/v1/sessions", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("bad key: status %d, want 401", code)
	}
	// The probes stay open: liveness must work when auth is misconfigured.
	if code, _ := doJSONKey(t, client, "", "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz behind auth: status %d", code)
	}

	var created CreateSessionResponse
	code, _ = doJSONKey(t, client, "alicekey123", "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{Name: "fig1", CSV: figure1CSV, Rules: figure1Rules, Seed: 1}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create as alice: status %d", code)
	}
	if created.Session.Tenant != "alice" {
		t.Fatalf("session tenant = %q, want alice", created.Session.Tenant)
	}
	base := ts.URL + "/v1/sessions/" + created.Session.ID

	if code, _ := doJSONKey(t, client, "bobkey45678", "GET", base+"/status", nil, nil); code != http.StatusNotFound {
		t.Fatalf("bob reading alice's session: status %d, want 404", code)
	}
	var bobList SessionList
	if code, _ := doJSONKey(t, client, "bobkey45678", "GET", ts.URL+"/v1/sessions", nil, &bobList); code != 200 {
		t.Fatalf("bob list: status %d", code)
	}
	if len(bobList.Sessions) != 0 {
		t.Fatalf("bob sees %d sessions, want 0", len(bobList.Sessions))
	}
	var aliceList SessionList
	if _, _ = doJSONKey(t, client, "alicekey123", "GET", ts.URL+"/v1/sessions", nil, &aliceList); len(aliceList.Sessions) != 1 {
		t.Fatalf("alice sees %d sessions, want 1", len(aliceList.Sessions))
	}
	if code, _ := doJSONKey(t, client, "bobkey45678", "DELETE", base, nil, nil); code != http.StatusNotFound {
		t.Fatalf("bob deleting alice's session: status %d, want 404", code)
	}
	if code, _ := doJSONKey(t, client, "alicekey123", "DELETE", base, nil, nil); code != http.StatusOK {
		t.Fatalf("alice deleting her session: status %d", code)
	}
}

// TestRateLimitSheds429: a tenant over its token-bucket rate is shed with
// 429 + Retry-After while another tenant sails through, and the shed shows
// up in /metrics under the right labels.
func TestRateLimitSheds429(t *testing.T) {
	cfg := Config{
		Tenants: []TenantConfig{
			{Name: "abuser", Key: "abuserkey99", RatePerSec: 0.1, Burst: 1},
			{Name: "good", Key: "goodkey1234"},
		},
	}
	_, ts := newTestServer(t, cfg)
	client := ts.Client()
	if code, _ := doJSONKey(t, client, "abuserkey99", "GET", ts.URL+"/v1/sessions", nil, nil); code != 200 {
		t.Fatalf("first request within burst: status %d", code)
	}
	code, hdr := doJSONKey(t, client, "abuserkey99", "GET", ts.URL+"/v1/sessions", nil, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate status = %d, want 429", code)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", hdr.Get("Retry-After"))
	}
	// A different tenant is untouched by the abuser's quota.
	if code, _ := doJSONKey(t, client, "goodkey1234", "GET", ts.URL+"/v1/sessions", nil, nil); code != 200 {
		t.Fatalf("good tenant status = %d, want 200", code)
	}
	got := metricsText(t, ts)
	if !strings.Contains(got, `gdrd_shed_total{reason="rate",tenant="abuser"}`) {
		t.Fatalf("rate shed not counted per tenant:\n%s", got)
	}
}

// TestInFlightCapSheds429: the concurrent-request quota sheds the excess
// while a request is still executing.
func TestInFlightCapSheds429(t *testing.T) {
	cfg := Config{
		Workers: 1,
		Tenants: []TenantConfig{{Name: "capped", Key: "cappedkey12", MaxInFlight: 1}},
	}
	srv, ts := newTestServer(t, cfg)
	client := ts.Client()
	var created CreateSessionResponse
	code, _ := doJSONKey(t, client, "cappedkey12", "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{Name: "fig1", CSV: figure1CSV, Rules: figure1Rules, Seed: 1}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	e, ok := srv.Store().GetFor(created.Session.ID, "capped")
	if !ok {
		t.Fatal("session vanished")
	}
	release := jam(t, e)
	defer release()
	// Park one request on the jammed actor, then probe the cap.
	parked := make(chan int, 1)
	go func() {
		code, _ := doJSONKey(t, client, "cappedkey12", "GET", ts.URL+"/v1/sessions/"+created.Session.ID+"/status", nil, nil)
		parked <- code
	}()
	st := srv.tenants["cappedkey12"]
	deadline := time.Now().Add(5 * time.Second)
	for st.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never counted in flight")
		}
		time.Sleep(time.Millisecond)
	}
	code, hdr := doJSONKey(t, client, "cappedkey12", "GET", ts.URL+"/v1/sessions", nil, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-cap status = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("in-flight shed without Retry-After")
	}
	release()
	if code := <-parked; code != http.StatusOK {
		t.Fatalf("parked request finished with %d", code)
	}
}

// TestOverloadMetricsScrape: the serving-pressure signals are on /metrics
// with typed families — queue depth gauge, slot-wait histogram, labeled
// shed counters.
func TestOverloadMetricsScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFigure1Session(t, ts)
	got := metricsText(t, ts)
	for _, want := range []string{
		"# TYPE gdrd_actor_queue_depth gauge",
		"gdrd_actor_queue_depth 0",
		"# TYPE gdrd_slot_wait_seconds histogram",
		"gdrd_slot_wait_seconds_bucket",
		"# TYPE gdrd_shed_total counter",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
