package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/core"
	"gdr/internal/dataset"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// hospitalUpload renders a generated workload in the upload formats: the
// dirty instance as CSV and the rule set in the cfd text format.
func hospitalUpload(t testing.TB, n int, seed int64) (csvText, rulesText string, d *dataset.Data) {
	t.Helper()
	d = dataset.Hospital(dataset.Config{N: n, Seed: seed, DirtyRate: 0.3})
	var buf bytes.Buffer
	if err := d.Dirty.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	var rules strings.Builder
	for _, r := range d.Rules {
		rules.WriteString(r.String())
		rules.WriteString("\n")
	}
	return buf.String(), rules.String(), d
}

// oracleVerb makes the paper's simulated-user decision from the ground
// truth: confirm when the suggestion is the true value, retain when the
// cell already holds it, reject otherwise.
func oracleVerb(truthVal, suggested, current string) string {
	switch {
	case suggested == truthVal:
		return "confirm"
	case current == truthVal:
		return "retain"
	default:
		return "reject"
	}
}

// roundTrace is one round's observable outcome, compared across drivers.
type roundTrace struct {
	GroupAttr    string
	GroupValue   string
	Verbs        []string
	Applied      int
	ForcedFixes  int
	Pending      int
	Dirty        int
	LearnerMoves int
}

// driveHTTP runs the full Procedure-1 loop against a served session:
// top-VOI group → oracle answers for its updates → batched feedback with a
// learner sweep — exactly what a remote user does.
func driveHTTP(t *testing.T, ts *httptest.Server, csvText, rulesText string, truth *relation.DB, seed int64, maxRounds int) ([]roundTrace, string) {
	t.Helper()
	var created CreateSessionResponse
	code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{CSV: csvText, Rules: rulesText, Seed: seed}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	trace := driveSessionRounds(t, ts, created.Session.ID, truth, maxRounds)
	return trace, exportHTTP(t, ts, created.Session.ID)
}

// driveSessionRounds plays up to maxRounds top-VOI feedback rounds against
// an existing session, stopping when no groups remain.
func driveSessionRounds(t *testing.T, ts *httptest.Server, id string, truth *relation.DB, maxRounds int) []roundTrace {
	t.Helper()
	base := ts.URL + "/v1/sessions/" + id
	var trace []roundTrace
	for round := 0; round < maxRounds; round++ {
		var groups GroupsResponse
		if code := doJSON(t, ts.Client(), "GET", base+"/groups?order=voi", nil, &groups); code != 200 {
			t.Fatalf("groups: status %d", code)
		}
		if len(groups.Groups) == 0 {
			break
		}
		g := groups.Groups[0]
		var ups UpdatesResponse
		if code := doJSON(t, ts.Client(), "GET", base+"/groups/"+g.Key+"/updates", nil, &ups); code != 200 {
			t.Fatalf("updates: status %d", code)
		}
		items := make([]FeedbackItem, len(ups.Updates))
		verbs := make([]string, len(ups.Updates))
		for i, u := range ups.Updates {
			verbs[i] = oracleVerb(truth.Get(u.Tid, u.Attr), u.Value, u.Current)
			items[i] = FeedbackItem{Tid: u.Tid, Attr: u.Attr, Value: u.Value, Feedback: verbs[i]}
		}
		var fb FeedbackResponse
		if code := doJSON(t, ts.Client(), "POST", base+"/feedback",
			FeedbackRequest{Items: items, Sweep: true}, &fb); code != 200 {
			t.Fatalf("feedback: status %d", code)
		}
		trace = append(trace, roundTrace{
			GroupAttr:    g.Attr,
			GroupValue:   g.Value,
			Verbs:        verbs,
			Applied:      fb.Stats.Applied,
			ForcedFixes:  fb.Stats.ForcedFixes,
			Pending:      fb.Stats.Pending,
			Dirty:        fb.Stats.Dirty,
			LearnerMoves: len(fb.LearnerDecisions),
		})
	}
	return trace
}

// exportHTTP downloads a session's repaired instance.
func exportHTTP(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + id + "/export")
	if err != nil {
		t.Fatal(err)
	}
	final, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d", resp.StatusCode)
	}
	return string(final)
}

// driveLibrary mirrors driveHTTP call for call against a core.Session built
// from the same uploaded bytes.
func driveLibrary(t *testing.T, csvText, rulesText string, truth *relation.DB, seed int64, maxRounds int) ([]roundTrace, string) {
	t.Helper()
	db, err := relation.ReadCSV(strings.NewReader(csvText), "upload")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := cfd.Parse(strings.NewReader(rulesText))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(db, rules, core.Config{Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var trace []roundTrace
	for round := 0; round < maxRounds; round++ {
		gs := sess.Groups(core.OrderVOI, nil)
		if len(gs) == 0 {
			break
		}
		k := gs[0].Key
		ups := sess.GroupUpdates(k)
		// Decide every verb up front from the pre-round snapshot, as the
		// HTTP client does from the GET response.
		verbs := make([]string, len(ups))
		for i, u := range ups {
			verbs[i] = oracleVerb(truth.Get(u.Tid, u.Attr), u.Value, sess.DB().Get(u.Tid, u.Attr))
		}
		for i, u := range ups {
			cur, live := sess.Pending(u.Cell())
			if !live || cur.Value != u.Value {
				continue // stale, as the server reports it
			}
			var fb repair.Feedback
			switch verbs[i] {
			case "confirm":
				fb = repair.Confirm
			case "retain":
				fb = repair.Retain
			default:
				fb = repair.Reject
			}
			sess.UserFeedback(cur, fb)
		}
		moves := sess.LearnerSweep(4)
		st := sess.Stats()
		trace = append(trace, roundTrace{
			GroupAttr:    k.Attr,
			GroupValue:   k.Value,
			Verbs:        verbs,
			Applied:      st.Applied,
			ForcedFixes:  st.ForcedFixes,
			Pending:      st.Pending,
			Dirty:        st.Dirty,
			LearnerMoves: len(moves),
		})
	}
	var buf bytes.Buffer
	if err := sess.DB().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return trace, buf.String()
}

// TestHTTPSessionEquivalentToLibrarySession is the acceptance bar of this
// PR: a session driven over the wire must be byte-equivalent — same
// feedback trajectory, same final instance — to the same seed driven
// through the library API.
func TestHTTPSessionEquivalentToLibrarySession(t *testing.T) {
	const (
		n      = 250
		seed   = int64(9)
		rounds = 400
	)
	csvText, rulesText, d := hospitalUpload(t, n, seed)
	_, ts := newTestServer(t, Config{Session: core.Config{Workers: 1}})

	httpTrace, httpFinal := driveHTTP(t, ts, csvText, rulesText, d.Truth, seed, rounds)
	libTrace, libFinal := driveLibrary(t, csvText, rulesText, d.Truth, seed, rounds)

	if len(httpTrace) == 0 {
		t.Fatal("HTTP drive made no progress")
	}
	if len(httpTrace) != len(libTrace) {
		t.Fatalf("round counts diverge: http=%d library=%d", len(httpTrace), len(libTrace))
	}
	for i := range httpTrace {
		if !reflect.DeepEqual(httpTrace[i], libTrace[i]) {
			t.Fatalf("round %d diverges:\nhttp:    %+v\nlibrary: %+v", i, httpTrace[i], libTrace[i])
		}
	}
	if httpFinal != libFinal {
		t.Fatal("final instances diverge between HTTP and library drivers")
	}
	// And the loop actually repaired: the final instance must beat the
	// upload on dirty tuples.
	if last := httpTrace[len(httpTrace)-1]; last.Dirty >= httpTrace[0].Dirty && last.Applied == 0 {
		t.Fatalf("no repair progress: %+v", last)
	}
}

// TestHTTPSessionEquivalenceWithSessionWorkers re-runs a shorter
// equivalence drive with intra-session parallelism on the server side: the
// Workers knob must not leak into results.
func TestHTTPSessionEquivalenceWithSessionWorkers(t *testing.T) {
	const (
		n      = 150
		seed   = int64(21)
		rounds = 120
	)
	csvText, rulesText, d := hospitalUpload(t, n, seed)
	// Server sessions score VOI and generate candidates on 4 workers; the
	// library mirror stays serial.
	_, ts := newTestServer(t, Config{Workers: 8, Session: core.Config{Workers: 4}})

	httpTrace, httpFinal := driveHTTP(t, ts, csvText, rulesText, d.Truth, seed, rounds)
	libTrace, libFinal := driveLibrary(t, csvText, rulesText, d.Truth, seed, rounds)

	if !reflect.DeepEqual(httpTrace, libTrace) {
		t.Fatal("parallel-session trace diverges from serial library trace")
	}
	if httpFinal != libFinal {
		t.Fatal("parallel-session final instance diverges")
	}
}
