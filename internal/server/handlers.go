package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gdr/internal/core"
	"gdr/internal/group"
	"gdr/internal/obs"
	"gdr/internal/repair"
	"gdr/internal/snapshot"
)

// Cluster placement headers: the routing proxy pre-assigns the token a new
// session lives under (so it consistent-hashes to the node being asked) and
// the tenant a migrated session keeps belonging to. Header-only on purpose:
// they never round-trip through bodies a tenant composes.
const (
	AssignTokenHeader  = "X-Gdr-Assign-Token"
	AssignTenantHeader = "X-Gdr-Assign-Tenant"
)

// Replication and retry headers.
const (
	// MutationSeqHeader carries a session's mutation-sequence watermark: on
	// a snapshot export response it stamps which mutation the bytes capture;
	// on a replica PUT it is the push's watermark, and the spill store
	// rejects pushes older than what it already holds (409).
	MutationSeqHeader = "X-Gdr-Mutation-Seq"
	// RequestIDHeader is the client-chosen idempotency key for feedback
	// POSTs: a duplicate id within the session's dedup window replays the
	// original response instead of re-applying the round.
	RequestIDHeader = "X-Gdr-Request-Id"
	// DuplicateHeader marks a replayed feedback response.
	DuplicateHeader = "X-Gdr-Duplicate"

	// maxRequestIDLen bounds the dedup key a client may choose; longer ids
	// are rejected rather than truncated (truncation could alias two ids).
	maxRequestIDLen = 128
)

// handleCreate opens a session from a JSON body or a multipart form (file
// parts csv and rules; value parts name, seed, workers).
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeCreateRequest(r)
	if err != nil {
		writeError(w, err)
		return
	}
	owner := requestOwner(r)
	req.Token = r.Header.Get(AssignTokenHeader)
	req.Tenant = r.Header.Get(AssignTenantHeader)
	if req.Token != "" || req.Tenant != "" {
		if !s.mayAssign(r) {
			writeError(w, fmt.Errorf("%w: session placement headers need cluster mode or an admin key", ErrForbidden))
			return
		}
		if req.Tenant != "" {
			if !tenantNameRE.MatchString(req.Tenant) {
				writeError(w, fmt.Errorf("%w: assigned tenant %q must match %s", ErrBadUpload, req.Tenant, tenantNameRE))
				return
			}
			owner = req.Tenant
		}
	}
	info, st, err := s.store.CreateAs(r.Context(), owner, req)
	if err != nil {
		writeError(w, err)
		return
	}
	obs.FromContext(r.Context()).SetSession(info.ID)
	writeJSON(w, http.StatusCreated, CreateSessionResponse{Session: info, Stats: statsBody(st)})
}

// mayAssign reports whether this request may use the placement headers: any
// caller on a cluster-mode node (such nodes face only the proxy), or an
// authenticated admin key.
func (s *Server) mayAssign(r *http.Request) bool {
	if s.cfg.ClusterMode {
		return true
	}
	t := tenantFrom(r.Context())
	return t != nil && t.cfg.Admin
}

func decodeCreateRequest(r *http.Request) (CreateSessionRequest, error) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "multipart/form-data") {
		return decodeCreateForm(r)
	}
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// Double-%w keeps http.MaxBytesError reachable for the 413 mapping.
		return req, fmt.Errorf("%w: decoding JSON body: %w", ErrBadUpload, err)
	}
	return req, nil
}

func decodeCreateForm(r *http.Request) (CreateSessionRequest, error) {
	var req CreateSessionRequest
	if err := r.ParseMultipartForm(32 << 20); err != nil {
		return req, fmt.Errorf("%w: parsing multipart form: %w", ErrBadUpload, err)
	}
	// A snapshot part selects the restore-on-create path; csv and rules are
	// then not expected (the snapshot carries the whole session).
	if f, _, err := r.FormFile("snapshot"); err == nil {
		b, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return req, fmt.Errorf("%w: reading snapshot part: %w", ErrBadUpload, rerr)
		}
		req.Snapshot = b
	} else {
		csvBody, err := formPart(r, "csv")
		if err != nil {
			return req, err
		}
		rules, err := formPart(r, "rules")
		if err != nil {
			return req, err
		}
		req.CSV, req.Rules = csvBody, rules
	}
	req.Name = r.FormValue("name")
	if v := r.FormValue("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("%w: seed %q", ErrBadUpload, v)
		}
		req.Seed = seed
	}
	if v := r.FormValue("workers"); v != "" {
		workers, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("%w: workers %q", ErrBadUpload, v)
		}
		req.Workers = workers
	}
	return req, nil
}

// formPart reads a multipart part that may arrive as either a file upload
// or a plain value field.
func formPart(r *http.Request, name string) (string, error) {
	if f, _, err := r.FormFile(name); err == nil {
		defer f.Close()
		b, err := io.ReadAll(f)
		if err != nil {
			return "", fmt.Errorf("%w: reading %s part: %w", ErrBadUpload, name, err)
		}
		return string(b), nil
	}
	if v := r.FormValue(name); v != "" {
		return v, nil
	}
	return "", fmt.Errorf("%w: missing %s part", ErrBadUpload, name)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SessionList{Sessions: s.store.ListFor(requestOwner(r))})
}

// requestOwner is the ownership tag of the request's authenticated tenant
// ("" in open mode): sessions it creates carry the tag, and lookups only
// see sessions with a matching (or empty) one.
func requestOwner(r *http.Request) string {
	if t := tenantFrom(r.Context()); t != nil {
		return t.owner()
	}
	return ""
}

// session resolves the {id} path value against the caller's tenant; a miss
// — including another tenant's session — writes the 404 itself.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	e, ok := s.store.GetFor(r.PathValue("id"), requestOwner(r))
	if !ok {
		writeNotFound(w, "session")
		return e, ok
	}
	obs.FromContext(r.Context()).SetSession(e.id)
	return e, ok
}

func parseOrder(v string) (core.Order, string, error) {
	switch v {
	case "", "voi":
		return core.OrderVOI, "voi", nil
	case "greedy":
		return core.OrderGreedy, "greedy", nil
	case "random":
		return core.OrderRandom, "random", nil
	default:
		return 0, "", fmt.Errorf("%w: order %q (want voi|greedy|random)", ErrBadRequest, v)
	}
}

// groupsETag renders the /groups cache validator: the session's monotone
// ranking version, scoped by the entry's incarnation salt (a restored
// session restarts the counter) and by the request shape (order and limit
// change the body without changing the ranking). Random order returns "" —
// every such response is a fresh shuffle and must never be served from a
// cache — as does a saltless entry.
func groupsETag(salt, orderName string, limit int, version uint64) string {
	if orderName == "random" || salt == "" {
		return ""
	}
	return fmt.Sprintf("\"gdr-%s-%s-%d-%d\"", salt, orderName, limit, version)
}

// etagMatches reports whether an If-None-Match header value matches the
// ETag, per RFC 9110: a comma-separated candidate list or "*"; weak
// validators (W/ prefix) compare by opaque value.
func etagMatches(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// handleGroups ranks the pending updates (step 4 of Procedure 1) and
// returns the groups; ?order picks the policy, ?limit truncates the tail.
// The session's incremental group index makes the steady-state call cheap
// (only invalidated groups are re-scored) and versions the ranking; when
// the client's If-None-Match still matches post-rank, the response is a
// bodyless 304 and no DTOs are built at all.
func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	e, ok := s.session(w, r)
	if !ok {
		return
	}
	order, orderName, err := parseOrder(r.URL.Query().Get("order"))
	if err != nil {
		writeError(w, err)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, fmt.Errorf("%w: limit %q", ErrBadRequest, v))
			return
		}
	}
	inm := r.Header.Get("If-None-Match")
	start := time.Now()
	var resp GroupsResponse
	var etag string
	var notModified bool
	err = e.actor.do(r.Context(), "groups", func(sess *core.Session) {
		gs := sess.Groups(order, nil)
		etag = groupsETag(e.etagSalt, orderName, limit, sess.RankingVersion())
		if etagMatches(inm, etag) {
			notModified = true
			return
		}
		resp.Order = orderName
		resp.Total = len(gs)
		if limit > 0 && len(gs) > limit {
			gs = gs[:limit]
		}
		resp.Groups = make([]GroupBody, len(gs))
		for i, g := range gs {
			resp.Groups[i] = GroupBody{
				Key:     GroupKeyToken(g.Key),
				Attr:    g.Key.Attr,
				Value:   g.Key.Value,
				Size:    g.Size(),
				Benefit: g.Benefit,
			}
		}
	})
	if err != nil {
		writeError(w, err)
		return
	}
	s.reg.Histogram("gdrd_suggest_seconds").ObserveSince(start)
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	if notModified {
		s.reg.Counter("gdrd_groups_not_modified_total").Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// groupKeyFromPath recovers the raw {key} segment from the escaped URL path
// (PathValue would decode it once, making the ':' separator ambiguous) and
// parses it.
func groupKeyFromPath(r *http.Request) (group.Key, error) {
	segs := strings.Split(r.URL.EscapedPath(), "/")
	// /v1/sessions/{id}/groups/{key}/updates → ["", v1, sessions, id, groups, key, updates]
	if len(segs) != 7 {
		return group.Key{}, fmt.Errorf("%w: malformed updates path", ErrBadRequest)
	}
	k, err := ParseGroupKeyToken(segs[5])
	if err != nil {
		return group.Key{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return k, nil
}

// handleUpdates lists one group's live suggested updates.
func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	e, ok := s.session(w, r)
	if !ok {
		return
	}
	key, err := groupKeyFromPath(r)
	if err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()
	var resp UpdatesResponse
	var empty bool
	err = e.actor.do(r.Context(), "updates", func(sess *core.Session) {
		ups := sess.GroupUpdates(key)
		if len(ups) == 0 {
			empty = true
			return
		}
		resp = UpdatesResponse{
			Key:     GroupKeyToken(key),
			Attr:    key.Attr,
			Value:   key.Value,
			Updates: updateBodies(sess, ups),
		}
	})
	if err != nil {
		writeError(w, err)
		return
	}
	s.reg.Histogram("gdrd_suggest_seconds").ObserveSince(start)
	if empty {
		writeNotFound(w, "group")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseFeedback(v string) (repair.Feedback, bool) {
	switch v {
	case "confirm":
		return repair.Confirm, true
	case "reject":
		return repair.Reject, true
	case "retain":
		return repair.Retain, true
	default:
		return 0, false
	}
}

// handleFeedback applies one batched feedback round: each item is matched
// against the live suggestion for its cell (stale items are reported, not
// applied), answers train the committees unless no_learn is set, rejects
// report their replacement suggestion, and with sweep the trained models
// decide whatever they are confident about — the response carries those
// newly derived consequences plus the post-round stats.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	e, ok := s.session(w, r)
	if !ok {
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: decoding JSON body: %w", ErrBadRequest, err))
		return
	}
	if len(req.Items) == 0 && !req.Sweep {
		writeError(w, fmt.Errorf("%w: empty feedback batch", ErrBadRequest))
		return
	}
	reqID := r.Header.Get(RequestIDHeader)
	if len(reqID) > maxRequestIDLen {
		writeError(w, fmt.Errorf("%w: request id longer than %d bytes", ErrBadRequest, maxRequestIDLen))
		return
	}
	start := time.Now()
	var resp FeedbackResponse
	var replay []byte
	err := e.actor.do(r.Context(), "feedback", func(sess *core.Session) {
		// Exactly-once retries: a request id seen within the dedup window
		// replays the original response bytes without touching the session.
		// Everything — the window check, the apply, the sequence bump and
		// the response rendering — happens on the actor, so a snapshot
		// encoded later on this goroutine always captures state, watermark
		// and window in a mutually consistent cut.
		if reqID != "" {
			if body, ok := e.dedup.get(reqID); ok {
				replay = body
				return
			}
		}
		resp = applyFeedbackBatch(sess, req)
		e.mutSeq.Add(1)
		if reqID != "" {
			if body, merr := marshalJSONBody(resp); merr == nil {
				e.dedup.put(reqID, body)
			}
		}
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if replay != nil {
		s.reg.Counter("gdrd_feedback_duplicates_total").Inc()
		w.Header().Set(DuplicateHeader, "1")
		writeJSONBytes(w, http.StatusOK, replay)
		return
	}
	// Make the round durable before answering: once the client sees this
	// response, a daemon crash must not lose the feedback. A failed write
	// is logged and retried by the periodic flusher (the durability
	// watermark stays behind) — the in-memory decision already happened, so
	// the response still reports it.
	if err := s.store.Checkpoint(r.Context(), e); err != nil {
		s.log.Warn("checkpoint after feedback failed",
			"session", e.id, "trace_id", obs.FromContext(r.Context()).ID(), "err", err)
	}
	s.reg.Histogram("gdrd_feedback_seconds").ObserveSince(start)
	// Count per-item outcomes separately: stale is the multi-client
	// contention signal, invalid is client misuse — lumping either into
	// the applied rate would mislead dashboards.
	var applied, stale, invalid int64
	for _, res := range resp.Results {
		switch res.Status {
		case FeedbackApplied:
			applied++
		case FeedbackStale:
			stale++
		default:
			invalid++
		}
	}
	s.reg.Counter("gdrd_feedback_total").Add(applied)
	s.reg.Counter("gdrd_feedback_stale_total").Add(stale)
	s.reg.Counter("gdrd_feedback_invalid_total").Add(invalid)
	s.reg.Counter("gdrd_learner_decisions_total").Add(int64(len(resp.LearnerDecisions)))
	writeJSON(w, http.StatusOK, resp)
}

// applyFeedbackBatch runs on the session's actor goroutine.
func applyFeedbackBatch(sess *core.Session, req FeedbackRequest) FeedbackResponse {
	before := sess.Stats()
	resp := FeedbackResponse{Results: make([]FeedbackResult, len(req.Items))}
	for i, item := range req.Items {
		fb, ok := parseFeedback(item.Feedback)
		if !ok {
			resp.Results[i] = FeedbackResult{
				Status: FeedbackInvalid,
				Error:  fmt.Sprintf("feedback %q (want confirm|reject|retain)", item.Feedback),
			}
			continue
		}
		cell := repair.CellKey{Tid: item.Tid, Attr: item.Attr}
		cur, live := sess.Pending(cell)
		if !live || cur.Value != item.Value {
			resp.Results[i] = FeedbackResult{Status: FeedbackStale}
			continue
		}
		if req.NoLearn {
			sess.ApplyFeedback(cur, fb)
		} else {
			sess.UserFeedback(cur, fb)
		}
		res := FeedbackResult{Status: FeedbackApplied}
		if fb == repair.Reject {
			if nu, ok := sess.Pending(cell); ok {
				b := updateBody(sess, nu)
				res.Replacement = &b
			}
		}
		resp.Results[i] = res
	}
	if req.Sweep {
		resp.LearnerDecisions = appliedBodies(sess.LearnerSweep(4))
	}
	after := sess.Stats()
	resp.AppliedDelta = after.Applied - before.Applied
	resp.ForcedFixesDelta = after.ForcedFixes - before.ForcedFixes
	resp.Stats = statsBody(after)
	return resp
}

// handleStatus reports the session snapshot: counts, quality-so-far proxy
// and per-attribute model accuracy/trust.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, ok := s.session(w, r)
	if !ok {
		return
	}
	var resp StatusResponse
	err := e.actor.do(r.Context(), "status", func(sess *core.Session) {
		resp.Stats = statsBody(sess.Stats())
		ms := sess.ModelStats()
		resp.Models = make([]ModelStatBody, len(ms))
		for i, m := range ms {
			resp.Models[i] = ModelStatBody{
				Attr:     m.Attr,
				Examples: m.Examples,
				Ready:    m.Ready,
				Assessed: m.Assessed,
				Accuracy: m.Accuracy,
				Trusted:  m.Trusted,
			}
		}
	})
	if err != nil {
		writeError(w, err)
		return
	}
	resp.Session = e.info(s.cfg.TTL)
	writeJSON(w, http.StatusOK, resp)
}

// handleExport streams the instance under repair as CSV — the repaired data
// is the product; this is how a tenant takes it home.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	e, ok := s.session(w, r)
	if !ok {
		return
	}
	var buf bytes.Buffer
	err := e.actor.do(r.Context(), "export", func(sess *core.Session) {
		_ = sess.DB().WriteCSV(&buf)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_, _ = w.Write(buf.Bytes())
}

// handleSnapshot exports the session as a versioned binary snapshot — the
// portable form of a tenant's accumulated work (instance, feedback,
// committees). The same bytes re-imported via POST /v1/sessions (snapshot
// field or multipart part) resume the session exactly, on this server or
// another; with persistence enabled the export also lands a durable
// checkpoint.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	e, ok := s.session(w, r)
	if !ok {
		return
	}
	data, mut, err := s.store.Snapshot(r.Context(), e)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", e.id+snapSuffix))
	w.Header().Set("X-GDR-Snapshot-Version", strconv.Itoa(snapshot.FormatVersion))
	// The watermark and tenant ride response headers so the cluster proxy
	// can stamp replica pushes and preserve ownership without decoding the
	// snapshot bytes itself.
	w.Header().Set(MutationSeqHeader, strconv.FormatUint(mut, 10))
	if e.tenant != "" {
		w.Header().Set(AssignTenantHeader, e.tenant)
	}
	_, _ = w.Write(data)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.store.DeleteFor(r.PathValue("id"), requestOwner(r)) {
		writeNotFound(w, "session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"sessions":       s.store.Len(),
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.collectRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteProm(w)
}

// collectRuntime refreshes the Go runtime gauges at scrape time — sampling
// on demand keeps the daemon from paying ReadMemStats on any hot path.
func (s *Server) collectRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("gdrd_goroutines").Set(int64(runtime.NumGoroutine()))
	s.reg.Gauge("gdrd_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	s.reg.Gauge("gdrd_heap_objects").Set(int64(ms.HeapObjects))
	s.reg.Gauge("gdrd_gc_cycles_total").Set(int64(ms.NumGC))
	s.reg.FloatGauge("gdrd_gc_pause_seconds_total").Set(float64(ms.PauseTotalNs) / 1e9)
}
