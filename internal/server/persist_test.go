package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gdr/internal/core"
)

// newDurableServer boots a server over a data directory without the usual
// cleanup-time Close coupling, so tests can simulate crashes (abandon
// without flushing) and restarts explicitly.
func newDurableServer(t *testing.T, dir string, session core.Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 8, Session: session, DataDir: dir})
	ts := httptest.NewServer(srv.Handler())
	return srv, ts
}

// rawGET fetches one path and returns the exact response body — the unit
// the byte-identical acceptance criterion is stated in.
func rawGET(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// copyDir snapshots the data directory as it exists right now — the state
// a crashed process leaves behind.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // the replicas/ subdir is not part of the session state
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func createHTTPSession(t *testing.T, ts *httptest.Server, csvText, rulesText string, seed int64) string {
	t.Helper()
	var created CreateSessionResponse
	code := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		CreateSessionRequest{CSV: csvText, Rules: rulesText, Seed: seed}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return created.Session.ID
}

// TestCrashRecoveryReplayEquivalence is the acceptance bar of this PR: a
// server killed mid-run (no graceful flush — recovery sees only what
// on-feedback checkpointing persisted) restores its sessions under their
// original tokens, serves byte-identical /groups, /updates and /export
// responses at the recovery point, and replaying the remaining oracle
// trace lands on a final export byte-identical to an uninterrupted run at
// the same seed — serial and with intra-session workers.
func TestCrashRecoveryReplayEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const (
				n       = 200
				seed    = int64(13)
				crashAt = 4
				cap     = 200
			)
			csvText, rulesText, d := hospitalUpload(t, n, seed)
			session := core.Config{Workers: workers}

			// The uninterrupted reference run.
			_, tsU := newTestServer(t, Config{Workers: 8, Session: session})
			traceU, exportU := driveHTTP(t, tsU, csvText, rulesText, d.Truth, seed, cap)
			if len(traceU) <= crashAt {
				t.Fatalf("reference run finished in %d rounds; crash point %d never reached", len(traceU), crashAt)
			}

			// The interrupted run: drive crashAt rounds against a durable
			// server, then crash it (copy the data dir as-is; no drain, no
			// final flush).
			dirA := t.TempDir()
			srvA, tsA := newDurableServer(t, dirA, session)
			id := createHTTPSession(t, tsA, csvText, rulesText, seed)
			traceA := driveSessionRounds(t, tsA, id, d.Truth, crashAt)
			_, groupsA := rawGET(t, tsA, "/v1/sessions/"+id+"/groups?order=voi")
			var gl GroupsResponse
			if err := json.Unmarshal([]byte(groupsA), &gl); err != nil || len(gl.Groups) == 0 {
				t.Fatalf("groups at crash point: %v %q", err, groupsA)
			}
			topKey := gl.Groups[0].Key
			_, updatesA := rawGET(t, tsA, "/v1/sessions/"+id+"/groups/"+topKey+"/updates")
			exportA := exportHTTP(t, tsA, id)
			crashed := copyDir(t, dirA)
			tsA.Close()
			srvA.Close()

			// Recovery: a fresh process over the crashed state.
			srvB, tsB := newDurableServer(t, crashed, session)
			defer func() { tsB.Close(); srvB.Close() }()
			if got := srvB.Registry().Counter("gdrd_sessions_restored_total").Value(); got != 1 {
				t.Fatalf("restored %d sessions, want 1", got)
			}

			// Same token, byte-identical responses at the recovery point.
			if code, groupsB := rawGET(t, tsB, "/v1/sessions/"+id+"/groups?order=voi"); code != 200 || groupsB != groupsA {
				t.Fatalf("restored /groups diverges (status %d):\n a: %s\n b: %s", code, groupsA, groupsB)
			}
			if _, updatesB := rawGET(t, tsB, "/v1/sessions/"+id+"/groups/"+topKey+"/updates"); updatesB != updatesA {
				t.Fatal("restored /updates diverges")
			}
			if exportB := exportHTTP(t, tsB, id); exportB != exportA {
				t.Fatal("restored /export diverges")
			}

			// Replay the remaining oracle trace; the combined trajectory and
			// the final instance must match the uninterrupted run exactly.
			traceB := driveSessionRounds(t, tsB, id, d.Truth, cap)
			combined := append(append([]roundTrace(nil), traceA...), traceB...)
			if !reflect.DeepEqual(combined, traceU) {
				for i := range traceU {
					if i >= len(combined) || !reflect.DeepEqual(combined[i], traceU[i]) {
						t.Fatalf("round %d diverges after recovery:\n got:  %+v\n want: %+v", i, combined[i], traceU[i])
					}
				}
				t.Fatalf("trace lengths diverge: %d vs %d", len(combined), len(traceU))
			}
			if finalB := exportHTTP(t, tsB, id); finalB != exportU {
				t.Fatal("final export after crash recovery diverges from the uninterrupted run")
			}
		})
	}
}

// TestSnapshotEndpointExportImport: POST .../snapshot and the restore-on-
// create path form an explicit export/import loop — the imported session
// (fresh token, possibly another server) continues byte-identically to the
// original.
func TestSnapshotEndpointExportImport(t *testing.T) {
	const (
		n    = 150
		seed = int64(29)
	)
	csvText, rulesText, d := hospitalUpload(t, n, seed)
	_, ts := newTestServer(t, Config{Session: core.Config{Workers: 1}})
	id := createHTTPSession(t, ts, csvText, rulesText, seed)
	driveSessionRounds(t, ts, id, d.Truth, 3)

	resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+id+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(snap) == 0 {
		t.Fatalf("snapshot: status %d, %d bytes", resp.StatusCode, len(snap))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("snapshot content type %q", ct)
	}
	if v := resp.Header.Get("X-GDR-Snapshot-Version"); v == "" {
		t.Fatal("snapshot response missing format version header")
	}

	// Import on a second, fresh server.
	_, ts2 := newTestServer(t, Config{Session: core.Config{Workers: 1}})
	var imported CreateSessionResponse
	code := doJSON(t, ts2.Client(), "POST", ts2.URL+"/v1/sessions",
		CreateSessionRequest{Snapshot: snap, Name: "imported"}, &imported)
	if code != http.StatusCreated {
		t.Fatalf("import: status %d", code)
	}
	if imported.Session.ID == id {
		t.Fatal("import reused the original token")
	}
	if imported.Session.Name != "imported" {
		t.Fatalf("import name %q", imported.Session.Name)
	}

	// Both sessions continue in lockstep.
	ta := driveSessionRounds(t, ts, id, d.Truth, 6)
	tb := driveSessionRounds(t, ts2, imported.Session.ID, d.Truth, 6)
	if !reflect.DeepEqual(ta, tb) {
		t.Fatalf("imported session diverges:\n a: %+v\n b: %+v", ta, tb)
	}
	if ea, eb := exportHTTP(t, ts, id), exportHTTP(t, ts2, imported.Session.ID); ea != eb {
		t.Fatal("imported session export diverges")
	}

	// Invalid import requests are client errors, not server faults.
	for name, req := range map[string]CreateSessionRequest{
		"snapshot plus csv":  {Snapshot: snap, CSV: csvText, Rules: rulesText},
		"snapshot plus seed": {Snapshot: snap, Seed: 99},
		"corrupt snapshot":   {Snapshot: snap[:len(snap)/2]},
	} {
		var errBody ErrorBody
		if code := doJSON(t, ts2.Client(), "POST", ts2.URL+"/v1/sessions", req, &errBody); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%+v)", name, code, errBody)
		}
	}
}

// TestCorruptSnapshotsSkippedOnBoot: a damaged file in the data directory
// must not take the daemon down or block the healthy sessions around it.
func TestCorruptSnapshotsSkippedOnBoot(t *testing.T) {
	csvText, rulesText, d := hospitalUpload(t, 120, 7)
	dir := t.TempDir()
	srvA, tsA := newDurableServer(t, dir, core.Config{Workers: 1})
	id := createHTTPSession(t, tsA, csvText, rulesText, 7)
	driveSessionRounds(t, tsA, id, d.Truth, 2)
	tsA.Close()
	srvA.Close()

	// Plant damage next to the healthy snapshot: garbage, a truncated copy
	// of the real thing, and an empty file.
	healthy, err := os.ReadFile(filepath.Join(dir, id+snapSuffix))
	if err != nil {
		t.Fatal(err)
	}
	writes := map[string][]byte{
		"garbage.snap":   []byte("not a snapshot at all"),
		"truncated.snap": healthy[:len(healthy)/3],
		"empty.snap":     {},
	}
	for name, data := range writes {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var logged bytes.Buffer
	srvB := New(Config{Workers: 2, Session: core.Config{Workers: 1}, DataDir: dir,
		Logf: func(format string, args ...any) { fmt.Fprintf(&logged, format+"\n", args...) }})
	tsB := httptest.NewServer(srvB.Handler())
	defer func() { tsB.Close(); srvB.Close() }()

	if got := srvB.Store().Len(); got != 1 {
		t.Fatalf("restored %d sessions, want only the healthy one", got)
	}
	if code, _ := rawGET(t, tsB, "/v1/sessions/"+id+"/status"); code != 200 {
		t.Fatalf("healthy session not served after boot: %d", code)
	}
	if !strings.Contains(logged.String(), "skipping snapshot") {
		t.Fatalf("corrupt snapshots were not reported:\n%s", logged.String())
	}
}

// TestCloseFlushesDirtySessions is the SIGTERM-drain bugfix: a session with
// undurable state at shutdown gets a final checkpoint before its actor
// stops (previously drain only stopped accepting work).
func TestCloseFlushesDirtySessions(t *testing.T) {
	csvText, rulesText, _ := hospitalUpload(t, 100, 3)
	dir := t.TempDir()
	srv, ts := newDurableServer(t, dir, core.Config{Workers: 1})
	defer ts.Close()
	id := createHTTPSession(t, ts, csvText, rulesText, 3)

	// Wipe the on-disk state and mark the session dirty, as if its last
	// checkpoint had failed mid-run.
	path := filepath.Join(dir, id+snapSuffix)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	e, ok := srv.Store().Get(id)
	if !ok {
		t.Fatal("session vanished")
	}
	e.markUndurable()

	srv.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("drain did not flush a final checkpoint: %v", err)
	}
	// And the flushed snapshot is complete: a fresh boot restores it.
	srv2 := New(Config{Workers: 2, Session: core.Config{Workers: 1}, DataDir: dir})
	defer srv2.Close()
	if got := srv2.Store().Len(); got != 1 {
		t.Fatalf("flushed snapshot did not restore: %d sessions", got)
	}
}
