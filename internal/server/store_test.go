package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gdr/internal/core"
	"gdr/internal/metrics"
)

// fakeClock is a settable time source for eviction tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestStore(t *testing.T, ttl time.Duration, maxLive int) (*Store, *fakeClock) {
	t.Helper()
	reg := metrics.NewRegistry()
	st := NewStore(Config{TTL: ttl, MaxSessions: maxLive, Workers: 2, Session: core.Config{Workers: 1}}, reg)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	st.now = clk.now
	t.Cleanup(st.Close)
	return st, clk
}

func fig1Request() CreateSessionRequest {
	return CreateSessionRequest{CSV: figure1CSV, Rules: figure1Rules, Seed: 1}
}

func TestStoreTTLEviction(t *testing.T) {
	st, clk := newTestStore(t, time.Minute, 0)
	info, _, err := st.Create(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	// Just under the TTL: still there, and the lookup refreshes the clock.
	clk.advance(59 * time.Second)
	if _, ok := st.Get(info.ID); !ok {
		t.Fatal("session evicted before its TTL")
	}
	// The touch above restarted the idle clock: another 59s is still fine.
	clk.advance(59 * time.Second)
	if _, ok := st.Get(info.ID); !ok {
		t.Fatal("touched session evicted before its TTL")
	}
	// Past the TTL with no touches: the lazy check evicts on lookup.
	clk.advance(2 * time.Minute)
	if _, ok := st.Get(info.ID); ok {
		t.Fatal("expired session still served")
	}
	if st.Len() != 0 {
		t.Fatalf("store still holds %d sessions", st.Len())
	}
}

func TestStoreJanitorEvicts(t *testing.T) {
	st, clk := newTestStore(t, time.Minute, 0)
	if _, _, err := st.Create(context.Background(), fig1Request()); err != nil {
		t.Fatal(err)
	}
	clk.advance(5 * time.Minute)
	st.evictIdle() // what the janitor tick runs
	if st.Len() != 0 {
		t.Fatal("janitor pass did not evict the idle session")
	}
}

// TestJanitorSkipsCreateReservations pins the eviction pass against the
// nil placeholder a mid-build Create leaves in the map: a janitor tick
// during a slow upload must not panic.
func TestJanitorSkipsCreateReservations(t *testing.T) {
	st, clk := newTestStore(t, time.Minute, 0)
	if _, _, err := st.Create(context.Background(), fig1Request()); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.entries["mid-build-reservation"] = nil
	st.mu.Unlock()
	clk.advance(5 * time.Minute)
	st.evictIdle() // must not deref the nil reservation
	if st.Len() != 0 {
		t.Fatal("real idle session survived the pass")
	}
	st.mu.Lock()
	_, stillThere := st.entries["mid-build-reservation"]
	st.mu.Unlock()
	if !stillThere {
		t.Fatal("reservation must survive eviction (its Create will resolve it)")
	}
	st.mu.Lock()
	delete(st.entries, "mid-build-reservation")
	st.mu.Unlock()
}

func TestStoreCap(t *testing.T) {
	st, _ := newTestStore(t, time.Minute, 2)
	for i := 0; i < 2; i++ {
		if _, _, err := st.Create(context.Background(), fig1Request()); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Create(context.Background(), fig1Request()); err != ErrTooManySessions {
		t.Fatalf("over-cap create: %v", err)
	}
	// Freeing one slot lets the next create through.
	victims := st.List()
	if !st.Delete(victims[0].ID) {
		t.Fatal("delete failed")
	}
	if _, _, err := st.Create(context.Background(), fig1Request()); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

func TestStoreCloseStopsActors(t *testing.T) {
	st, _ := newTestStore(t, time.Minute, 0)
	info, _, err := st.Create(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := st.Get(info.ID)
	if !ok {
		t.Fatal("session missing")
	}
	st.Close()
	if err := e.actor.do(context.Background(), "test", func(*core.Session) {}); err != ErrSessionClosed {
		t.Fatalf("do after close: %v", err)
	}
	if _, _, err := st.Create(context.Background(), fig1Request()); err != ErrSessionClosed {
		t.Fatalf("create after close: %v", err)
	}
}

func TestActorSerializesCommands(t *testing.T) {
	st, _ := newTestStore(t, time.Minute, 0)
	info, _, err := st.Create(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := st.Get(info.ID)
	// Fire concurrent commands that would race if not serialized: all
	// append to one plain slice through the actor.
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = e.actor.do(context.Background(), "test", func(*core.Session) {
				order = append(order, i)
			})
		}(i)
	}
	wg.Wait()
	if len(order) != 32 {
		t.Fatalf("ran %d commands, want 32", len(order))
	}
}

// TestActorContainsPanics pins the multi-tenant survival property: one
// session's command panicking must error that one call, not unwind the
// actor goroutine (which would kill the daemon and every other tenant).
func TestActorContainsPanics(t *testing.T) {
	st, _ := newTestStore(t, time.Minute, 0)
	info, _, err := st.Create(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := st.Get(info.ID)
	err = e.actor.do(context.Background(), "test", func(*core.Session) { panic("tenant edge case") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking command: err = %v", err)
	}
	// The actor must still serve subsequent commands.
	ran := false
	if err := e.actor.do(context.Background(), "test", func(*core.Session) { ran = true }); err != nil || !ran {
		t.Fatalf("actor dead after contained panic: err=%v ran=%v", err, ran)
	}
}

func TestActorContextCancellation(t *testing.T) {
	st, _ := newTestStore(t, time.Minute, 0)
	info, _, err := st.Create(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := st.Get(info.ID)
	// Occupy the actor so the next command stays queued, then expire its
	// caller's context while it waits.
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = e.actor.do(context.Background(), "test", func(*core.Session) {
			close(entered)
			<-release
		})
	}()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ranLate := make(chan struct{})
	err = e.actor.do(ctx, "test", func(*core.Session) { close(ranLate) })
	close(release)
	// A context that expires while the command is queued maps to the single
	// deterministic overload error (503 + Retry-After on the wire), not the
	// raw context error — clients see one retryable status for every
	// flavor of "the server didn't get to it in time".
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued command under expired context: err = %v, want ErrOverloaded", err)
	}
	// The abandoned command must never execute once its caller was told it
	// failed — otherwise an errored request is not safely retryable. Flush
	// the queue with a follow-up command and check.
	if err := e.actor.do(context.Background(), "test", func(*core.Session) {}); err != nil {
		t.Fatalf("follow-up command: %v", err)
	}
	select {
	case <-ranLate:
		t.Fatal("abandoned command executed after its caller errored")
	default:
	}
}
