// Package server exposes guided-repair sessions over an HTTP/JSON API — the
// serving tier the paper's interactive Figure 2 loop needs to face real
// users. A Server owns a session store (create-from-CSV-upload, token
// lookup, TTL eviction, capped live count); each core.Session, single-writer
// by design, sits behind an actor goroutine that executes queued commands,
// so concurrent HTTP traffic is safe with no locks on the repair hot paths,
// and CPU across all sessions is budgeted by the Workers knob.
//
// Endpoints (see the README's "Serving repairs" section for a walkthrough):
//
//	POST   /v1/sessions                          create (CSV + rules upload, or a snapshot)
//	GET    /v1/sessions                          list live sessions
//	GET    /v1/sessions/{id}/groups              ranked groups (?order=voi|greedy|random);
//	                                             ETag + If-None-Match → 304 while unchanged
//	GET    /v1/sessions/{id}/groups/{key}/updates  one group's live updates
//	POST   /v1/sessions/{id}/feedback            batched confirm/reject/retain
//	GET    /v1/sessions/{id}/status              pending/dirty counts, model trust
//	GET    /v1/sessions/{id}/export              download the instance as CSV
//	POST   /v1/sessions/{id}/snapshot            download a binary session snapshot
//	DELETE /v1/sessions/{id}                     close a session
//	PUT    /v1/replicas/{key}                    store a replica snapshot (cluster/admin only,
//	                                             X-Gdr-Mutation-Seq watermarked; stale → 409)
//	GET    /v1/replicas/{key}                    fetch a held replica (failover pull)
//	DELETE /v1/replicas/{key}                    drop a held replica
//	GET    /v1/replicas                          list held replicas
//	GET    /healthz                              liveness
//	GET    /metrics                              Prometheus text exposition
//
// With Config.DataDir set, sessions are durable: every feedback round is
// checkpointed to disk (temp-file + rename, so a crash never leaves a torn
// snapshot), a periodic flusher retries failed writes with backoff, shutdown
// flushes a final checkpoint of every live session, and a restarting server
// restores all sessions under their original tokens.
//
// With Config.Tenants set, the server is multi-tenant: requests authenticate
// with per-tenant bearer keys, sessions are owned by (and visible to only)
// their tenant, and each tenant is admission-controlled by a token-bucket
// request rate and an in-flight cap. Overload is shed early — 429/503 with
// Retry-After, never a blocked accept loop — and CPU slots are granted
// fairly across tenants so one hot tenant cannot starve the rest.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"gdr/internal/core"
	"gdr/internal/faultfs"
	"gdr/internal/metrics"
	"gdr/internal/obs"
)

// Upload and capacity errors, mapped to HTTP statuses by the handlers.
var (
	// ErrBadUpload wraps any client-side problem with a create request.
	ErrBadUpload = errors.New("server: bad upload")
	// ErrBadRequest wraps malformed parameters on non-upload endpoints
	// (bad order/limit values, malformed group keys, bad feedback bodies).
	ErrBadRequest = errors.New("server: bad request")
	// ErrTooManySessions is returned when the live-session cap is reached.
	ErrTooManySessions = errors.New("server: too many live sessions")
	// ErrTokenInUse rejects a create that pre-assigns an already-live
	// token (mapped to 409 — the cluster proxy's duplicate detector).
	ErrTokenInUse = errors.New("server: session token already in use")
	// ErrForbidden rejects placement headers (X-GDR-Assign-*) from callers
	// that may not use them (mapped to 403).
	ErrForbidden = errors.New("server: forbidden")
	// ErrOverloaded is the sentinel every load-shedding error matches
	// (errors.Is); the concrete errors carry the HTTP status and Retry-After
	// hint.
	ErrOverloaded = errors.New("server: overloaded")
)

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// MaxSessions caps concurrently live sessions (default 64; <0 = no cap).
	MaxSessions int
	// TTL evicts sessions idle for longer (default 30m).
	TTL time.Duration
	// Workers is the CPU slot budget shared by all session actors and
	// session creation (default GOMAXPROCS). Slots are granted fairly
	// across tenants.
	Workers int
	// Session provides per-session defaults; uploads override Seed and
	// (clamped) Workers. Session.Workers defaults to 1 — the server scales
	// across sessions.
	Session core.Config
	// Logger receives the server's structured logs. nil falls back to Logf
	// (wrapped in a line-rendering slog handler); with both unset the server
	// is silent.
	Logger *slog.Logger
	// Logf is the legacy printf-style log sink, kept for embedders and
	// tests; ignored when Logger is set.
	Logf func(format string, args ...any)
	// Trace tunes request tracing. The zero value traces with defaults
	// (ring of 256, slowest 32); Capacity < 0 disables tracing entirely at
	// zero per-request cost.
	Trace obs.Config
	// SlowRequest promotes requests at least this slow to warn-level log
	// lines (0 disables the slow-request escalation).
	SlowRequest time.Duration
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// DataDir enables durable sessions: every live session is checkpointed
	// into this directory (one <token>.snap file each) and restored on the
	// next boot. Empty disables persistence.
	DataDir string
	// CheckpointEvery is the cadence of the periodic flusher that retries
	// checkpoints for sessions whose on-feedback write failed (default 30s;
	// only meaningful with DataDir set). Feedback itself checkpoints
	// synchronously — the flusher is the safety net, not the main path.
	CheckpointEvery time.Duration
	// Tenants enables authentication and per-tenant admission control: every
	// /v1 request must present one of these bearer keys, sessions belong to
	// the tenant that created them, and each tenant's rate/in-flight limits
	// are enforced before any session work happens. Empty = open mode (no
	// auth, one implicit unlimited tenant).
	Tenants []TenantConfig
	// RequestTimeout bounds each request end to end; the deadline rides the
	// request context through the actor queue, so a command that waited past
	// it is dropped (503 + Retry-After) before it spends CPU slots. 0
	// disables the server-side deadline.
	RequestTimeout time.Duration
	// QueueDepth bounds each session actor's command queue (default 64);
	// commands beyond it are shed with 503 + Retry-After instead of queued.
	QueueDepth int
	// Faults, when set, injects failures/delays at named points (checkpoint
	// write/fsync/rename, actor execution) for tests and gdrd's -chaos dev
	// mode. nil = no injection.
	Faults *faultfs.Injector
	// ClusterMode marks this node as a member of a proxied cluster: the
	// X-GDR-Assign-Token and X-GDR-Assign-Tenant create headers are honored
	// from any caller, letting the routing proxy place sessions on their
	// ring owner and preserve token + tenant across migrations. Only enable
	// on nodes reachable solely through the proxy (or grant the proxy an
	// admin key instead and leave this off).
	ClusterMode bool
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0 // uncapped
	}
	if c.TTL <= 0 {
		c.TTL = 30 * time.Minute
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Session.Workers < 1 {
		c.Session.Workers = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = defaultQueueDepth
	}
	return c
}

// Server is the gdrd HTTP service.
type Server struct {
	cfg           Config
	store         *Store
	replicas      *replicaStore
	reg           *metrics.Registry
	log           *slog.Logger
	tracer        *obs.Tracer
	handler       http.Handler
	started       time.Time
	tenants       map[string]*tenantState // by bearer key; empty = open mode
	defaultTenant *tenantState            // the implicit tenant of open mode
}

// logger resolves the configured log sinks to one non-nil structured logger.
func (c Config) logger() *slog.Logger {
	switch {
	case c.Logger != nil:
		return c.Logger
	case c.Logf != nil:
		return slog.New(obs.NewLogfHandler(c.Logf))
	default:
		return slog.New(slog.DiscardHandler)
	}
}

// New builds a Server ready to serve via Handler.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	// Pre-register the metrics the dashboards scrape, so a fresh server
	// exposes zeros instead of an empty page.
	reg.Gauge("gdrd_sessions_live")
	reg.Gauge("gdrd_actor_queue_depth")
	reg.Counter("gdrd_sessions_created_total")
	reg.Counter("gdrd_sessions_evicted_total")
	reg.Counter("gdrd_http_requests_total")
	reg.Counter("gdrd_http_errors_total")
	reg.Counter("gdrd_auth_failures_total")
	reg.Counter("gdrd_shed_total")
	reg.Counter("gdrd_feedback_total")
	reg.Counter("gdrd_feedback_stale_total")
	reg.Counter("gdrd_feedback_invalid_total")
	reg.Counter("gdrd_learner_decisions_total")
	reg.Counter("gdrd_groups_not_modified_total")
	reg.Counter("gdrd_sessions_restored_total")
	reg.Counter("gdrd_checkpoints_total")
	reg.Counter("gdrd_checkpoint_failures_total")
	reg.Counter("gdrd_feedback_duplicates_total")
	reg.Counter("gdrd_replica_pushes_total")
	reg.Counter("gdrd_replica_stale_pushes_total")
	reg.Gauge("gdrd_replica_lag_rounds")
	reg.Gauge("gdrd_replicas_held")
	reg.Histogram("gdrd_request_seconds")
	reg.Histogram("gdrd_suggest_seconds")
	reg.Histogram("gdrd_feedback_seconds")
	reg.Histogram("gdrd_checkpoint_seconds")
	reg.Histogram("gdrd_slot_wait_seconds")
	reg.Gauge("gdrd_goroutines")
	reg.Gauge("gdrd_heap_alloc_bytes")
	reg.Gauge("gdrd_heap_objects")
	reg.Gauge("gdrd_gc_cycles_total")
	reg.FloatGauge("gdrd_gc_pause_seconds_total")
	reg.LabeledGauge("gdrd_build_info", "go_version", runtime.Version(), "revision", buildRevision()).Set(1)
	tracer := obs.NewTracer(cfg.Trace)
	if tracer != nil {
		// Every finished trace feeds the per-stage latency histograms; the
		// label space is bounded (fixed stage names × the routeLabel set).
		tracer.OnFinish = func(t *obs.Trace) {
			route := t.Route()
			for _, sp := range t.Spans() {
				reg.LabeledHistogram("gdrd_stage_seconds", "stage", sp.Stage, "route", route).Observe(sp.Dur.Seconds())
			}
		}
	}
	s := &Server{
		cfg:     cfg,
		store:   NewStore(cfg, reg),
		reg:     reg,
		log:     cfg.logger(),
		tracer:  tracer,
		started: time.Now(),
		tenants: make(map[string]*tenantState, len(cfg.Tenants)),
		defaultTenant: &tenantState{
			cfg: TenantConfig{Name: defaultTenantName},
		},
	}
	for _, tc := range cfg.Tenants {
		s.tenants[tc.Key] = &tenantState{
			cfg:    tc,
			bucket: newTokenBucket(tc.RatePerSec, tc.Burst),
		}
	}
	replicaDir := ""
	if cfg.DataDir != "" {
		replicaDir = filepath.Join(cfg.DataDir, "replicas")
	}
	s.replicas = newReplicaStore(replicaDir, cfg.Faults, s.log)
	s.replicaMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}/groups", s.handleGroups)
	mux.HandleFunc("GET /v1/sessions/{id}/groups/{key}/updates", s.handleUpdates)
	mux.HandleFunc("POST /v1/sessions/{id}/feedback", s.handleFeedback)
	mux.HandleFunc("GET /v1/sessions/{id}/status", s.handleStatus)
	mux.HandleFunc("GET /v1/sessions/{id}/export", s.handleExport)
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("PUT /v1/replicas/{key}", s.handleReplicaPut)
	mux.HandleFunc("GET /v1/replicas/{key}", s.handleReplicaGet)
	mux.HandleFunc("DELETE /v1/replicas/{key}", s.handleReplicaDelete)
	mux.HandleFunc("GET /v1/replicas", s.handleReplicaList)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.handler = s.instrument(s.admit(s.withDeadline(mux)))
	return s
}

// buildRevision is the short VCS revision baked into the binary, for the
// gdrd_build_info metric ("unknown" outside a stamped build).
func buildRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				if len(kv.Value) > 12 {
					return kv.Value[:12]
				}
				return kv.Value
			}
		}
	}
	return "unknown"
}

// Handler returns the fully instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the server's metrics (for embedding and tests).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Store exposes the session store (for tests and the daemon's drain).
func (s *Server) Store() *Store { return s.store }

// Close drains the store: every actor finishes its in-flight command, a
// final checkpoint of each live session is flushed (with persistence
// enabled), then the actors stop. Call after http.Server.Shutdown has
// stopped new traffic.
func (s *Server) Close() { s.store.Close() }

// statusRecorder captures the response code for logging and metrics, and
// injects the trace's Server-Timing header at the last possible moment —
// when the handler commits the response — so it covers every stage recorded
// up to then.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	trace       *obs.Trace
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.wroteHeader {
		return
	}
	r.wroteHeader = true
	r.status = code
	if st := r.trace.ServerTiming(); st != "" {
		r.Header().Set("Server-Timing", st)
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write catches handlers that never call WriteHeader explicitly (the CSV
// export streams straight into Write), so the Server-Timing injection still
// happens before the implicit 200.
func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wroteHeader {
		r.WriteHeader(http.StatusOK)
	}
	return r.ResponseWriter.Write(b)
}

// exemptPath reports whether a path skips auth, admission and deadlines:
// the probes must answer even when every tenant is over quota, or the
// orchestrator would restart a healthy overloaded server. The trace debug
// endpoint is loopback-guarded instead of authenticated.
func exemptPath(p string) bool {
	return p == "/healthz" || p == "/metrics" || p == "/debug/traces"
}

// routeLabel maps a request to a small fixed label set for metrics and
// traces. It is hand-rolled rather than read from the mux (the matched
// pattern is invisible to middleware outside the mux), and must stay
// bounded — every value becomes a Prometheus label.
func routeLabel(method, path string) string {
	switch path {
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	case "/debug/traces":
		return "traces"
	}
	if strings.HasPrefix(path, "/v1/replicas") {
		return "replicas"
	}
	rest, ok := strings.CutPrefix(path, "/v1/sessions")
	if !ok {
		return "other"
	}
	switch {
	case rest == "" || rest == "/":
		if method == http.MethodPost {
			return "create"
		}
		return "list"
	case strings.HasSuffix(rest, "/updates"):
		return "updates"
	case strings.HasSuffix(rest, "/groups"):
		return "groups"
	case strings.HasSuffix(rest, "/feedback"):
		return "feedback"
	case strings.HasSuffix(rest, "/status"):
		return "status"
	case strings.HasSuffix(rest, "/export"):
		return "export"
	case strings.HasSuffix(rest, "/snapshot"):
		return "snapshot"
	case method == http.MethodDelete:
		return "delete"
	}
	return "other"
}

// instrument wraps the stack with body limiting, request tracing, logging
// and the request counter/latency metrics. Non-exempt requests get a trace:
// its ID is adopted from an incoming W3C traceparent header (and echoed
// back with this server's span ID), the trace rides the request context
// through every tier, and the response carries a Server-Timing header with
// the stage breakdown.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		route := routeLabel(r.Method, r.URL.Path)
		var t *obs.Trace
		if !exemptPath(r.URL.Path) {
			t = s.tracer.Start(r.Header.Get("Traceparent"), route)
			if tp := t.TraceParent(); tp != "" {
				w.Header().Set("Traceparent", tp)
			}
			r = r.WithContext(obs.NewContext(r.Context(), t))
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK, trace: t}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.reg.Counter("gdrd_http_requests_total").Inc()
		// Only server faults count as errors: 4xx is client misuse, and a
		// 503 shed (Retry-After present) is the server protecting itself —
		// sheds have their own counter, and alerting on them would page for
		// an abusive client.
		if rec.status >= 500 && rec.Header().Get("Retry-After") == "" {
			s.reg.Counter("gdrd_http_errors_total").Inc()
		}
		s.reg.Histogram("gdrd_request_seconds").Observe(elapsed.Seconds())
		t.Finish(rec.status)
		s.logRequest(r, t, route, rec.status, elapsed)
	})
}

// logRequest emits the per-request log line; requests at or above the
// SlowRequest threshold escalate to warn level so slow outliers surface
// without debug scraping.
func (s *Server) logRequest(r *http.Request, t *obs.Trace, route string, status int, elapsed time.Duration) {
	lvl, msg := slog.LevelInfo, "request"
	if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
		lvl, msg = slog.LevelWarn, "slow request"
	}
	ctx := r.Context()
	if !s.log.Enabled(ctx, lvl) {
		return
	}
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs,
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", route),
		slog.Int("status", status),
		slog.Duration("dur", elapsed.Round(time.Microsecond)),
	)
	if id := t.ID(); id != "" {
		attrs = append(attrs, slog.String("trace_id", id))
		if tn := t.Tenant(); tn != "" {
			attrs = append(attrs, slog.String("tenant", tn))
		}
		if sid := t.Session(); sid != "" {
			attrs = append(attrs, slog.String("session", sid))
		}
		if qw := t.SpanDur("queue"); qw > 0 {
			attrs = append(attrs, slog.Duration("queue_wait", qw.Round(time.Microsecond)))
		}
	}
	s.log.LogAttrs(ctx, lvl, msg, attrs...)
}

// handleTraces serves the retained traces. The endpoint is deliberately
// loopback-only — traces carry tenant names and session tokens, so it must
// never face the open network even on a misconfigured deploy; operators on
// the box (or through a forwarded port) are the audience.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if !loopbackAddr(r.RemoteAddr) {
		writeJSON(w, http.StatusForbidden, ErrorBody{Error: "server: /debug/traces is loopback-only"})
		return
	}
	s.tracer.Handler().ServeHTTP(w, r)
}

// TracesHandler exposes the raw trace debug handler for embedders that
// mount it on their own (already loopback-bound) debug listener.
func (s *Server) TracesHandler() http.Handler { return s.tracer.Handler() }

// loopbackAddr reports whether a RemoteAddr is a loopback peer.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// admit is the admission-control middleware: authenticate, then enforce the
// tenant's token-bucket rate and in-flight cap, shedding the excess with
// 429 + Retry-After before it can touch a session. Everything it admits
// carries its *tenantState in the request context.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		admitStart := time.Now()
		t, err := s.authenticate(r)
		if err != nil {
			s.reg.Counter("gdrd_auth_failures_total").Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="gdrd"`)
			writeJSON(w, http.StatusUnauthorized, ErrorBody{Error: err.Error()})
			return
		}
		if t.bucket != nil {
			if wait := t.bucket.take(time.Now()); wait > 0 {
				s.shed(t, "rate")
				writeError(w, &shedError{
					status:     http.StatusTooManyRequests,
					retryAfter: wait,
					msg:        fmt.Sprintf("server: tenant %s over request rate", t.cfg.Name),
				})
				return
			}
		}
		if max := int64(t.cfg.MaxInFlight); max > 0 {
			if t.inflight.Add(1) > max {
				t.inflight.Add(-1)
				s.shed(t, "inflight")
				writeError(w, &shedError{
					status:     http.StatusTooManyRequests,
					retryAfter: time.Second,
					msg:        fmt.Sprintf("server: tenant %s over in-flight cap", t.cfg.Name),
				})
				return
			}
			defer t.inflight.Add(-1)
		}
		if tr := obs.FromContext(r.Context()); tr != nil {
			tr.SetTenant(metricTenant(t.cfg.Name))
			tr.RecordSince("admit", "", admitStart)
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
	})
}

// withDeadline bounds each admitted request with Config.RequestTimeout. The
// deadline travels in the request context through the actor queue, so work
// whose budget was spent waiting is dropped before it costs CPU.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// shed counts one shed request against a tenant.
func (s *Server) shed(t *tenantState, reason string) {
	s.reg.LabeledCounter("gdrd_shed_total", "reason", reason, "tenant", metricTenant(t.cfg.Name)).Inc()
}

// shedError is a load-shedding refusal: the request was turned away to
// protect the service, with a hint for when to retry. It matches
// ErrOverloaded via errors.Is.
type shedError struct {
	status     int           // 429 (per-tenant quota) or 503 (server pressure)
	retryAfter time.Duration // rendered as the Retry-After header, min 1s
	msg        string
}

func (e *shedError) Error() string        { return e.msg }
func (e *shedError) Is(target error) bool { return target == ErrOverloaded }

// errQueueFull sheds a command because its session's queue is saturated.
func errQueueFull() error {
	return &shedError{
		status:     http.StatusServiceUnavailable,
		retryAfter: time.Second,
		msg:        "server: session queue full",
	}
}

// errExpiredQueued is the single deterministic mapping for "the request
// context expired while the command waited its turn" — whether it was still
// in the actor queue, waiting for CPU slots, or abandoned by the handler.
// It is a 503: the server was too slow to reach the command in time, and
// the client should retry after backoff.
func errExpiredQueued() error {
	return &shedError{
		status:     http.StatusServiceUnavailable,
		retryAfter: time.Second,
		msg:        "server: request deadline expired while queued",
	}
}

// writeJSON sends one response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

// marshalJSONBody renders a body to the exact bytes writeJSON would send
// (same encoder settings, trailing newline included) — the dedup window
// stores these so a replayed response is byte-identical to the original.
func marshalJSONBody(body any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeJSONBytes sends pre-rendered JSON bytes (a dedup replay).
func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// retryAfterValue renders a Retry-After duration as whole seconds, rounded
// up, minimum 1 — the header's integer form.
func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// writeError maps an error to its HTTP status and JSON body. Shed errors
// additionally carry a Retry-After header so clients back off instead of
// hammering an overloaded server.
func writeError(w http.ResponseWriter, err error) {
	var shed *shedError
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", retryAfterValue(shed.retryAfter))
		writeJSON(w, shed.status, ErrorBody{Error: shed.msg})
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadUpload), errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrForbidden):
		status = http.StatusForbidden
	case errors.Is(err, ErrTooManySessions):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrTokenInUse):
		status = http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The request's budget ran out mid-command; same deterministic
		// contract as expiring in the queue — 503, retry after backoff.
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	}
	var maxBytes *http.MaxBytesError
	if errors.As(err, &maxBytes) {
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}

func writeNotFound(w http.ResponseWriter, what string) {
	writeJSON(w, http.StatusNotFound, ErrorBody{Error: fmt.Sprintf("unknown %s", what)})
}
