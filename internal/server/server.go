// Package server exposes guided-repair sessions over an HTTP/JSON API — the
// serving tier the paper's interactive Figure 2 loop needs to face real
// users. A Server owns a session store (create-from-CSV-upload, token
// lookup, TTL eviction, capped live count); each core.Session, single-writer
// by design, sits behind an actor goroutine that executes queued commands,
// so concurrent HTTP traffic is safe with no locks on the repair hot paths,
// and CPU across all sessions is budgeted by the Workers knob.
//
// Endpoints (see the README's "Serving repairs" section for a walkthrough):
//
//	POST   /v1/sessions                          create (CSV + rules upload, or a snapshot)
//	GET    /v1/sessions                          list live sessions
//	GET    /v1/sessions/{id}/groups              ranked groups (?order=voi|greedy|random);
//	                                             ETag + If-None-Match → 304 while unchanged
//	GET    /v1/sessions/{id}/groups/{key}/updates  one group's live updates
//	POST   /v1/sessions/{id}/feedback            batched confirm/reject/retain
//	GET    /v1/sessions/{id}/status              pending/dirty counts, model trust
//	GET    /v1/sessions/{id}/export              download the instance as CSV
//	POST   /v1/sessions/{id}/snapshot            download a binary session snapshot
//	DELETE /v1/sessions/{id}                     close a session
//	GET    /healthz                              liveness
//	GET    /metrics                              Prometheus text exposition
//
// With Config.DataDir set, sessions are durable: every feedback round is
// checkpointed to disk (temp-file + rename, so a crash never leaves a torn
// snapshot), a periodic flusher retries failed writes, shutdown flushes a
// final checkpoint of every live session, and a restarting server restores
// all sessions under their original tokens.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"gdr/internal/core"
	"gdr/internal/metrics"
)

// Upload and capacity errors, mapped to HTTP statuses by the handlers.
var (
	// ErrBadUpload wraps any client-side problem with a create request.
	ErrBadUpload = errors.New("server: bad upload")
	// ErrBadRequest wraps malformed parameters on non-upload endpoints
	// (bad order/limit values, malformed group keys, bad feedback bodies).
	ErrBadRequest = errors.New("server: bad request")
	// ErrTooManySessions is returned when the live-session cap is reached.
	ErrTooManySessions = errors.New("server: too many live sessions")
)

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// MaxSessions caps concurrently live sessions (default 64; <0 = no cap).
	MaxSessions int
	// TTL evicts sessions idle for longer (default 30m).
	TTL time.Duration
	// Workers is the CPU slot budget shared by all session actors and
	// session creation (default GOMAXPROCS).
	Workers int
	// Session provides per-session defaults; uploads override Seed and
	// (clamped) Workers. Session.Workers defaults to 1 — the server scales
	// across sessions.
	Session core.Config
	// Logf receives one line per request (nil disables logging).
	Logf func(format string, args ...any)
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// DataDir enables durable sessions: every live session is checkpointed
	// into this directory (one <token>.snap file each) and restored on the
	// next boot. Empty disables persistence.
	DataDir string
	// CheckpointEvery is the cadence of the periodic flusher that retries
	// checkpoints for sessions whose on-feedback write failed (default 30s;
	// only meaningful with DataDir set). Feedback itself checkpoints
	// synchronously — the flusher is the safety net, not the main path.
	CheckpointEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0 // uncapped
	}
	if c.TTL <= 0 {
		c.TTL = 30 * time.Minute
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Session.Workers < 1 {
		c.Session.Workers = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	return c
}

// Server is the gdrd HTTP service.
type Server struct {
	cfg     Config
	store   *Store
	reg     *metrics.Registry
	handler http.Handler
	started time.Time
}

// New builds a Server ready to serve via Handler.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	// Pre-register the metrics the dashboards scrape, so a fresh server
	// exposes zeros instead of an empty page.
	reg.Gauge("gdrd_sessions_live")
	reg.Counter("gdrd_sessions_created_total")
	reg.Counter("gdrd_sessions_evicted_total")
	reg.Counter("gdrd_http_requests_total")
	reg.Counter("gdrd_http_errors_total")
	reg.Counter("gdrd_feedback_total")
	reg.Counter("gdrd_feedback_stale_total")
	reg.Counter("gdrd_feedback_invalid_total")
	reg.Counter("gdrd_learner_decisions_total")
	reg.Counter("gdrd_groups_not_modified_total")
	reg.Counter("gdrd_sessions_restored_total")
	reg.Counter("gdrd_checkpoints_total")
	reg.Counter("gdrd_checkpoint_failures_total")
	reg.Histogram("gdrd_request_seconds")
	reg.Histogram("gdrd_suggest_seconds")
	reg.Histogram("gdrd_feedback_seconds")
	reg.Histogram("gdrd_checkpoint_seconds")
	s := &Server{
		cfg:     cfg,
		store:   NewStore(cfg, reg),
		reg:     reg,
		started: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}/groups", s.handleGroups)
	mux.HandleFunc("GET /v1/sessions/{id}/groups/{key}/updates", s.handleUpdates)
	mux.HandleFunc("POST /v1/sessions/{id}/feedback", s.handleFeedback)
	mux.HandleFunc("GET /v1/sessions/{id}/status", s.handleStatus)
	mux.HandleFunc("GET /v1/sessions/{id}/export", s.handleExport)
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.instrument(mux)
	return s
}

// Handler returns the fully instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the server's metrics (for embedding and tests).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Store exposes the session store (for tests and the daemon's drain).
func (s *Server) Store() *Store { return s.store }

// Close drains the store: every actor finishes its in-flight command, a
// final checkpoint of each live session is flushed (with persistence
// enabled), then the actors stop. Call after http.Server.Shutdown has
// stopped new traffic.
func (s *Server) Close() { s.store.Close() }

// logf logs through the configured sink, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with body limiting, request logging and the
// request counter/latency metrics.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.reg.Counter("gdrd_http_requests_total").Inc()
		// Only server faults count as errors: 4xx is client misuse and 499
		// a client abort — alerting on either would page for impatient
		// clients.
		if rec.status >= 500 {
			s.reg.Counter("gdrd_http_errors_total").Inc()
		}
		s.reg.Histogram("gdrd_request_seconds").Observe(elapsed.Seconds())
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s %d %s", r.Method, r.URL.Path, rec.status, elapsed.Round(time.Microsecond))
		}
	})
}

// writeJSON sends one response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

// statusClientClosedRequest is nginx's convention for a request abandoned
// by its own client; there is no net/http constant for it.
const statusClientClosedRequest = 499

// writeError maps an error to its HTTP status and JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadUpload), errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrTooManySessions):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrSessionClosed):
		status = http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The request context expired while the command was queued — the
		// client went away or ran out of patience; not a server fault.
		status = statusClientClosedRequest
	}
	var maxBytes *http.MaxBytesError
	if errors.As(err, &maxBytes) {
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}

func writeNotFound(w http.ResponseWriter, what string) {
	writeJSON(w, http.StatusNotFound, ErrorBody{Error: fmt.Sprintf("unknown %s", what)})
}
