package server

import (
	"fmt"
	"net/url"
	"strings"
	"time"

	"gdr/internal/core"
	"gdr/internal/group"
	"gdr/internal/repair"
)

// The wire types of the gdrd HTTP/JSON API. Every response body is one of
// these structs (or ErrorBody); request bodies are CreateSessionRequest and
// FeedbackRequest. Field names are stable API surface — the load client and
// the curl walkthrough in the README depend on them.

// CreateSessionRequest opens a session from an inline CSV instance and a
// rule set in the cfd text format ("name: A -> B :: p || q", one per line).
// The same fields can instead be posted as a multipart form (csv and rules
// file parts; name, seed and workers as value parts) so that curl can
// upload files directly.
type CreateSessionRequest struct {
	// Name is an optional human label echoed back in status.
	Name string `json:"name,omitempty"`
	// CSV is the dirty instance, header row first.
	CSV string `json:"csv"`
	// Rules is the CFD rule set, one rule per line.
	Rules string `json:"rules"`
	// Seed drives every random choice in the session (group shuffles,
	// committee training); 0 (or omitted) keeps the server's default.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the goroutines one request into this session may use
	// for VOI scoring and candidate generation; it is clamped to the
	// server's worker budget. Sessions default to 1: the serving tier
	// scales across sessions, not inside one.
	Workers int `json:"workers,omitempty"`
	// Snapshot, when present, selects the restore-on-create path: the body
	// of a previous POST .../snapshot export (base64 in JSON, raw bytes as
	// a multipart "snapshot" file part). The snapshot carries the whole
	// session — CSV, Rules and Seed must be absent; Workers may still
	// override the restored session's fan-out (clamped to the budget).
	Snapshot []byte `json:"snapshot,omitempty"`
	// Token pre-assigns the session's token instead of generating one. It
	// is the cluster-placement hook — the routing proxy chooses tokens so
	// they consistent-hash to the node it creates the session on, and a
	// migrated session keeps the token its clients hold. It never travels
	// in a body: only the X-GDR-Assign-Token header sets it, and only with
	// Config.ClusterMode or an admin tenant (403 otherwise).
	Token string `json:"-"`
	// Tenant pre-assigns the session's owning tenant — the migration
	// import path preserves ownership across nodes with it. Header-only
	// (X-GDR-Assign-Tenant) and gated exactly like Token.
	Tenant string `json:"-"`
}

// SessionInfo describes one live session.
type SessionInfo struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	Tenant    string    `json:"tenant,omitempty"`
	Tuples    int       `json:"tuples"`
	Attrs     []string  `json:"attrs"`
	Rules     int       `json:"rules"`
	CreatedAt time.Time `json:"created_at"`
	ExpiresAt time.Time `json:"expires_at"`
	// MutSeq is the session's mutation-sequence watermark — how many
	// mutating rounds it has absorbed. The cluster proxy compares it
	// against replica watermarks to spot lagging replicas.
	MutSeq uint64 `json:"mut_seq,omitempty"`
}

// ReplicaInfo describes one held replica snapshot on a node's spill store.
type ReplicaInfo struct {
	Key    string `json:"key"`              // <tenant>@<token> or bare <token>
	Token  string `json:"token"`            // the session token
	Tenant string `json:"tenant,omitempty"` // owning tenant ("" = unowned)
	Seq    uint64 `json:"seq"`              // mutation watermark of the bytes
	Size   int    `json:"size"`             // snapshot size in bytes
}

// ReplicaList is the GET /v1/replicas response.
type ReplicaList struct {
	Replicas []ReplicaInfo `json:"replicas"`
}

// StatsBody mirrors core.Stats on the wire.
type StatsBody struct {
	Pending      int     `json:"pending"`
	Dirty        int     `json:"dirty"`
	InitialDirty int     `json:"initial_dirty"`
	Tuples       int     `json:"tuples"`
	Applied      int     `json:"applied"`
	ForcedFixes  int     `json:"forced_fixes"`
	CleanedPct   float64 `json:"cleaned_pct"`
}

func statsBody(st core.Stats) StatsBody {
	return StatsBody{
		Pending:      st.Pending,
		Dirty:        st.Dirty,
		InitialDirty: st.InitialDirty,
		Tuples:       st.Tuples,
		Applied:      st.Applied,
		ForcedFixes:  st.ForcedFixes,
		CleanedPct:   st.CleanedPct,
	}
}

// ModelStatBody mirrors core.ModelStat on the wire.
type ModelStatBody struct {
	Attr     string  `json:"attr"`
	Examples int     `json:"examples"`
	Ready    bool    `json:"ready"`
	Assessed bool    `json:"assessed"`
	Accuracy float64 `json:"accuracy"`
	Trusted  bool    `json:"trusted"`
}

// CreateSessionResponse returns the token and the initial suggestion state.
type CreateSessionResponse struct {
	Session SessionInfo `json:"session"`
	Stats   StatsBody   `json:"stats"`
}

// SessionList is the GET /v1/sessions response.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// UpdateBody is one suggested repair ⟨t, A, v, s⟩ on the wire. Current is
// the cell's value at response time, so a remote user (or simulated oracle)
// can choose retain without another round trip; it is omitted for
// already-applied learner decisions.
type UpdateBody struct {
	Tid     int     `json:"tid"`
	Attr    string  `json:"attr"`
	Value   string  `json:"value"`
	Current string  `json:"current,omitempty"`
	Score   float64 `json:"score"`
}

func updateBody(sess *core.Session, u repair.Update) UpdateBody {
	return UpdateBody{
		Tid:     u.Tid,
		Attr:    u.Attr,
		Value:   u.Value,
		Current: sess.DB().Get(u.Tid, u.Attr),
		Score:   u.Score,
	}
}

func updateBodies(sess *core.Session, ups []repair.Update) []UpdateBody {
	out := make([]UpdateBody, len(ups))
	for i, u := range ups {
		out[i] = updateBody(sess, u)
	}
	return out
}

func appliedBodies(ups []repair.Update) []UpdateBody {
	out := make([]UpdateBody, len(ups))
	for i, u := range ups {
		out[i] = UpdateBody{Tid: u.Tid, Attr: u.Attr, Value: u.Value, Score: u.Score}
	}
	return out
}

// GroupBody is one ranked update group. Key is the opaque path token for
// GET .../groups/{key}/updates: the attribute and the suggested value,
// individually query-escaped and joined by ':'.
type GroupBody struct {
	Key     string  `json:"key"`
	Attr    string  `json:"attr"`
	Value   string  `json:"value"`
	Size    int     `json:"size"`
	Benefit float64 `json:"benefit"`
}

// GroupsResponse is the ranked group listing. The session's monotone
// ranking version travels in the response's ETag (not the body, which stays
// byte-identical across snapshot/restore): poll with If-None-Match to get a
// bodyless 304 while the ranking is unchanged (voi and greedy orders only;
// random produces a fresh shuffle per request and is never cacheable).
type GroupsResponse struct {
	Order  string      `json:"order"`
	Total  int         `json:"total"`
	Groups []GroupBody `json:"groups"`
}

// UpdatesResponse lists the live updates of one group.
type UpdatesResponse struct {
	Key     string       `json:"key"`
	Attr    string       `json:"attr"`
	Value   string       `json:"value"`
	Updates []UpdateBody `json:"updates"`
}

// FeedbackItem is one user decision on one suggested update. The (tid,
// attr, value) triple must match a live suggestion exactly; a stale triple
// (already decided, or replaced by a newer suggestion) is reported, not
// applied.
type FeedbackItem struct {
	Tid      int    `json:"tid"`
	Attr     string `json:"attr"`
	Value    string `json:"value"`
	Feedback string `json:"feedback"` // confirm | reject | retain
}

// FeedbackRequest is a batched round of user feedback.
type FeedbackRequest struct {
	Items []FeedbackItem `json:"items"`
	// NoLearn suppresses committee training (the raw ApplyFeedback path);
	// by default every answer is also a training example, as in
	// Procedure 1 step 6.
	NoLearn bool `json:"no_learn,omitempty"`
	// Sweep asks the trained committees to decide everything still pending
	// after the batch (the Section 4.2 hand-off). Decisions are returned
	// in LearnerDecisions.
	Sweep bool `json:"sweep,omitempty"`
}

// Feedback item outcome codes.
const (
	FeedbackApplied = "applied" // decision recorded
	FeedbackStale   = "stale"   // no live suggestion matched the triple
	FeedbackInvalid = "invalid" // malformed item (bad tid/attr/feedback)
)

// FeedbackResult reports the outcome of one item, plus the newly derived
// consequence for rejects: the replacement suggestion for the same cell,
// when the generator finds one.
type FeedbackResult struct {
	Status      string      `json:"status"`
	Error       string      `json:"error,omitempty"`
	Replacement *UpdateBody `json:"replacement,omitempty"`
}

// FeedbackResponse summarizes one feedback round: per-item outcomes, the
// updates the learner decided during the optional sweep, and the deltas the
// round caused (applied writes and forced constant-rule fixes include the
// consistency manager's cascades).
type FeedbackResponse struct {
	Results          []FeedbackResult `json:"results"`
	LearnerDecisions []UpdateBody     `json:"learner_decisions,omitempty"`
	AppliedDelta     int              `json:"applied_delta"`
	ForcedFixesDelta int              `json:"forced_fixes_delta"`
	Stats            StatsBody        `json:"stats"`
}

// StatusResponse is the session introspection snapshot.
type StatusResponse struct {
	Session SessionInfo     `json:"session"`
	Stats   StatsBody       `json:"stats"`
	Models  []ModelStatBody `json:"models"`
}

// ErrorBody is every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}

// GroupKeyToken renders a group key as its opaque URL path token.
func GroupKeyToken(k group.Key) string {
	return url.QueryEscape(k.Attr) + ":" + url.QueryEscape(k.Value)
}

// ParseGroupKeyToken inverts GroupKeyToken. raw must be the undecoded path
// segment: QueryEscape escapes ':' inside the attribute and the value, so
// the first raw ':' is always the separator.
func ParseGroupKeyToken(raw string) (group.Key, error) {
	i := strings.IndexByte(raw, ':')
	if i < 0 {
		return group.Key{}, fmt.Errorf("group key %q: want attr:value", raw)
	}
	attr, err := url.QueryUnescape(raw[:i])
	if err != nil {
		return group.Key{}, fmt.Errorf("group key attribute: %w", err)
	}
	value, err := url.QueryUnescape(raw[i+1:])
	if err != nil {
		return group.Key{}, fmt.Errorf("group key value: %w", err)
	}
	return group.Key{Attr: attr, Value: value}, nil
}
