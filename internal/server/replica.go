package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gdr/internal/faultfs"
	"gdr/internal/obs"
	"gdr/internal/snapshot"
)

// The replica spill store: every cluster node holds, next to its own
// sessions, the replicated snapshots of sessions whose ring owner is
// another node. The cluster proxy pushes a versioned snapshot here after
// each mutating round (PUT, watermarked with X-Gdr-Mutation-Seq), promotes
// from here on a dead-node failover (GET), and garbage-collects replicas
// whose placement moved (DELETE). Pushes are monotone: a push older than
// what the store already holds is rejected with 409, so a delayed or
// replayed push can never roll a replica back.

// replicaSuffix names replica files inside the store's directory.
const replicaSuffix = ".replica"

// errReplicaStale rejects a replica push whose watermark is behind the
// stored copy (mapped to 409).
var errReplicaStale = fmt.Errorf("server: replica push is stale")

// replicaRec is one held replica. With a directory configured the bytes
// live on disk and data is nil; without one they stay in memory (a
// diskless node can still serve as a replica target).
type replicaRec struct {
	seq  uint64
	size int
	data []byte
}

// replicaStore holds replica snapshots keyed by "<tenant>@<token>" (or a
// bare token for unowned sessions). It is deliberately dumb storage: no
// TTLs, no interpretation of the bytes beyond envelope verification — the
// proxy's anti-entropy sweep owns the lifecycle.
type replicaStore struct {
	dir    string // "" = memory-only
	faults *faultfs.Injector
	log    *slog.Logger

	mu   sync.Mutex
	held map[string]replicaRec // gdr:guarded-by mu
}

// newReplicaStore builds the store and, with a directory configured,
// rescans replicas that survived a restart (keeping only the highest
// watermark per key).
func newReplicaStore(dir string, faults *faultfs.Injector, log *slog.Logger) *replicaStore {
	rs := &replicaStore{dir: dir, faults: faults, log: log, held: make(map[string]replicaRec)}
	if dir == "" {
		return rs
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		rs.log.Error("creating replica dir failed", "dir", dir, "err", err)
		rs.dir = "" // fall back to memory-only rather than failing every push
		return rs
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"+replicaSuffix))
	if err != nil {
		rs.log.Error("scanning replica dir failed", "dir", dir, "err", err)
		return rs
	}
	rs.mu.Lock()
	for _, path := range names {
		key, seq, ok := parseReplicaName(filepath.Base(path))
		if !ok {
			rs.log.Warn("skipping unparseable replica file", "path", path)
			continue
		}
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		if prev, dup := rs.held[key]; dup {
			// Two files for one key (a crash between write and cleanup):
			// keep the higher watermark, drop the other.
			stale := path
			if seq > prev.seq {
				stale = rs.path(key, prev.seq)
				rs.held[key] = replicaRec{seq: seq, size: int(fi.Size())}
			}
			if err := os.Remove(stale); err != nil && !os.IsNotExist(err) {
				rs.log.Warn("removing superseded replica failed", "path", stale, "err", err)
			}
			continue
		}
		rs.held[key] = replicaRec{seq: seq, size: int(fi.Size())}
	}
	restored := len(rs.held)
	rs.mu.Unlock()
	if restored > 0 {
		rs.log.Info("restored replicas", "count", restored, "dir", dir)
	}
	return rs
}

// path names the replica file for a key at a watermark. The key's charset
// (hex token, tenant matching tenantNameRE, the '@' separator) is
// filename-safe by construction.
func (rs *replicaStore) path(key string, seq uint64) string {
	return filepath.Join(rs.dir, key+"."+strconv.FormatUint(seq, 10)+replicaSuffix)
}

// parseReplicaName splits "<key>.<seq>.replica". The seq is delimited by
// the RIGHTMOST interior dot — tenant names may themselves contain dots.
func parseReplicaName(base string) (key string, seq uint64, ok bool) {
	rest, found := strings.CutSuffix(base, replicaSuffix)
	if !found {
		return "", 0, false
	}
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 {
		return "", 0, false
	}
	seq, err := strconv.ParseUint(rest[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], seq, true
}

// put stores one replica push. Watermarks are monotone per key: an older
// push returns errReplicaStale, an equal one is an idempotent no-op (the
// proxy retries pushes), a newer one replaces the copy atomically.
func (rs *replicaStore) put(key string, seq uint64, data []byte, t *obs.Trace) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	prev, exists := rs.held[key]
	if exists && seq < prev.seq {
		return errReplicaStale
	}
	if exists && seq == prev.seq {
		return nil
	}
	rec := replicaRec{seq: seq, size: len(data)}
	if rs.dir == "" {
		rec.data = append([]byte(nil), data...)
	} else {
		if err := writeAtomic(rs.path(key, seq), data, rs.faults, t); err != nil {
			return err
		}
		if exists {
			if err := os.Remove(rs.path(key, prev.seq)); err != nil && !os.IsNotExist(err) {
				rs.log.Warn("removing superseded replica failed", "key", key, "err", err)
			}
		}
	}
	rs.held[key] = rec
	return nil
}

// get returns the held replica bytes and watermark for a key.
func (rs *replicaStore) get(key string) ([]byte, uint64, bool) {
	rs.mu.Lock()
	rec, ok := rs.held[key]
	rs.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	if rs.dir == "" {
		return rec.data, rec.seq, true
	}
	data, err := os.ReadFile(rs.path(key, rec.seq))
	if err != nil {
		rs.log.Warn("reading replica failed", "key", key, "err", err)
		return nil, 0, false
	}
	return data, rec.seq, true
}

// drop removes a held replica; it reports whether one existed.
func (rs *replicaStore) drop(key string) bool {
	rs.mu.Lock()
	rec, ok := rs.held[key]
	if ok {
		delete(rs.held, key)
	}
	rs.mu.Unlock()
	if !ok {
		return false
	}
	if rs.dir != "" {
		if err := os.Remove(rs.path(key, rec.seq)); err != nil && !os.IsNotExist(err) {
			rs.log.Warn("removing replica failed", "key", key, "err", err)
		}
	}
	return true
}

// list snapshots the held replicas, ordered by key.
func (rs *replicaStore) list() []ReplicaInfo {
	rs.mu.Lock()
	out := make([]ReplicaInfo, 0, len(rs.held))
	for key, rec := range rs.held {
		tenant, token := splitReplicaKey(key)
		out = append(out, ReplicaInfo{Key: key, Token: token, Tenant: tenant, Seq: rec.seq, Size: rec.size})
	}
	rs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// count returns the number of held replicas.
func (rs *replicaStore) count() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.held)
}

// splitReplicaKey splits a store key into tenant and token. Tokens are hex
// and tenant names cannot contain '@', so the first '@' is the separator.
func splitReplicaKey(key string) (tenant, token string) {
	if t, tok, ok := strings.Cut(key, "@"); ok {
		return t, tok
	}
	return "", key
}

// validReplicaKey checks a client-supplied replica key: a valid session
// token, optionally prefixed "<tenant>@" with a well-formed tenant name.
// Anything else could escape the file naming scheme — or, for an explicit
// empty tenant ("@<token>"), alias the bare-token key — and is rejected.
func validReplicaKey(key string) bool {
	tenant, token := splitReplicaKey(key)
	if !validToken(token) {
		return false
	}
	if strings.Contains(key, "@") {
		return tenantNameRE.MatchString(tenant)
	}
	return true
}

// replicaMetrics refreshes the replica gauges after a store mutation.
func (s *Server) replicaMetrics() {
	s.reg.Gauge("gdrd_replicas_held").Set(int64(s.replicas.count()))
}

// handleReplicaPut accepts one replica push. Gated like the placement
// headers (cluster mode or an admin tenant): replicas bypass the normal
// session lifecycle, so open tenants must not reach them.
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	if !s.mayAssign(r) {
		writeError(w, fmt.Errorf("%w: replica endpoints need cluster mode or an admin key", ErrForbidden))
		return
	}
	key := r.PathValue("key")
	if !validReplicaKey(key) {
		writeError(w, fmt.Errorf("%w: malformed replica key", ErrBadRequest))
		return
	}
	seq, err := strconv.ParseUint(r.Header.Get(MutationSeqHeader), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("%w: missing or malformed %s header", ErrBadRequest, MutationSeqHeader))
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading replica body: %w", ErrBadRequest, err))
		return
	}
	// Envelope check before the disk is touched: a corrupt push (bad magic,
	// unreadable version, CRC mismatch) must never replace a good replica.
	if err := snapshot.Verify(data); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	prevSeq, hadPrev := uint64(0), false
	s.replicas.mu.Lock()
	if rec, ok := s.replicas.held[key]; ok {
		prevSeq, hadPrev = rec.seq, true
	}
	s.replicas.mu.Unlock()
	if err := s.replicas.put(key, seq, data, obs.FromContext(r.Context())); err != nil {
		if err == errReplicaStale {
			s.reg.Counter("gdrd_replica_stale_pushes_total").Inc()
			writeJSON(w, http.StatusConflict, ErrorBody{Error: fmt.Sprintf("%v: holds seq %d, push carries %d", err, prevSeq, seq)})
			return
		}
		writeError(w, err)
		return
	}
	s.reg.Counter("gdrd_replica_pushes_total").Inc()
	// Lag: how many mutating rounds this replica had missed before the push
	// caught it up (consecutive pushes are one round apart).
	if hadPrev && seq > prevSeq+1 {
		s.reg.Gauge("gdrd_replica_lag_rounds").Set(int64(seq - prevSeq - 1))
	} else {
		s.reg.Gauge("gdrd_replica_lag_rounds").Set(0)
	}
	s.replicaMetrics()
	writeJSON(w, http.StatusOK, map[string]any{"status": "stored", "seq": seq})
}

// handleReplicaGet serves the held replica bytes (the failover pull path).
func (s *Server) handleReplicaGet(w http.ResponseWriter, r *http.Request) {
	if !s.mayAssign(r) {
		writeError(w, fmt.Errorf("%w: replica endpoints need cluster mode or an admin key", ErrForbidden))
		return
	}
	data, seq, ok := s.replicas.get(r.PathValue("key"))
	if !ok {
		writeNotFound(w, "replica")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(MutationSeqHeader, strconv.FormatUint(seq, 10))
	_, _ = w.Write(data)
}

// handleReplicaDelete drops a held replica (placement moved, or the
// session was deleted).
func (s *Server) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	if !s.mayAssign(r) {
		writeError(w, fmt.Errorf("%w: replica endpoints need cluster mode or an admin key", ErrForbidden))
		return
	}
	if !s.replicas.drop(r.PathValue("key")) {
		writeNotFound(w, "replica")
		return
	}
	s.replicaMetrics()
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// handleReplicaList inventories the held replicas (the anti-entropy sweep
// reads this from every node).
func (s *Server) handleReplicaList(w http.ResponseWriter, r *http.Request) {
	if !s.mayAssign(r) {
		writeError(w, fmt.Errorf("%w: replica endpoints need cluster mode or an admin key", ErrForbidden))
		return
	}
	writeJSON(w, http.StatusOK, ReplicaList{Replicas: s.replicas.list()})
}
