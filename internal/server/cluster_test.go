package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gdr/internal/core"
)

// doJSONHeaders is doJSON with arbitrary request headers attached — the
// cluster tests speak the proxy's placement-header dialect.
func doJSONHeaders(t testing.TB, client *http.Client, method, url string, hdr map[string]string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// TestSnapshotLeaseDefersEviction is the regression test for the
// TTL-eviction/migration race: a snapshot export in flight (the proxy
// pulling the session off this node) must pin the session against the
// janitor, or the source could be evicted while the importing node is
// still reading bytes — losing the session from both nodes. The test
// jams the actor so the export's encode blocks, expires the TTL under
// it, and runs the janitor pass.
func TestSnapshotLeaseDefersEviction(t *testing.T) {
	st, clk := newTestStore(t, time.Minute, 0)
	info, _, err := st.Create(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := st.Get(info.ID)
	if !ok {
		t.Fatal("session missing")
	}
	// Occupy the actor so Snapshot's encode stays queued behind it, holding
	// the export (and its lease) open for as long as the test needs.
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = e.actor.do(context.Background(), "test", func(*core.Session) {
			close(entered)
			<-release
		})
	}()
	<-entered
	snapDone := make(chan error, 1)
	go func() {
		_, _, err := st.Snapshot(context.Background(), e)
		snapDone <- err
	}()
	// Wait until the export holds its lease (acquired before the encode is
	// queued, so this is quick even with the actor jammed).
	for {
		e.mu.Lock()
		held := e.leases > 0
		e.mu.Unlock()
		if held {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// TTL expires mid-export; the janitor pass must skip the leased entry.
	clk.advance(5 * time.Minute)
	st.evictIdle()
	if st.Len() != 1 {
		t.Fatal("janitor evicted a session with a snapshot export in flight")
	}
	close(release)
	if err := <-snapDone; err != nil {
		t.Fatalf("export failed: %v", err)
	}
	// The lease is gone and the export restamped the idle clock: the session
	// lives a full TTL from the export's end, then eviction works again.
	clk.advance(30 * time.Second)
	st.evictIdle()
	if st.Len() != 1 {
		t.Fatal("session evicted before a full TTL after the export")
	}
	clk.advance(5 * time.Minute)
	st.evictIdle()
	if st.Len() != 0 {
		t.Fatal("released session never became evictable")
	}
}

// TestAssignHeadersRequirePrivilege pins the placement-header gate: a
// plain client (open mode, no -cluster) presenting X-Gdr-Assign-Token
// must be refused — otherwise any tenant could squat tokens and break
// the proxy's routing invariants.
func TestAssignHeadersRequirePrivilege(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code := doJSONHeaders(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]string{AssignTokenHeader: strings.Repeat("ab", 16)}, fig1Request(), nil)
	if code != http.StatusForbidden {
		t.Fatalf("assign header without privilege: code = %d, want 403", code)
	}
	code = doJSONHeaders(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]string{AssignTenantHeader: "acme"}, fig1Request(), nil)
	if code != http.StatusForbidden {
		t.Fatalf("assign-tenant header without privilege: code = %d, want 403", code)
	}
}

// TestClusterModeAssignedToken drives the header path the proxy uses for
// placement and migration imports: the assigned token is honored exactly,
// a colliding token is a 409 (the migration dedup signal), and a
// malformed token is rejected before any session is built.
func TestClusterModeAssignedToken(t *testing.T) {
	_, ts := newTestServer(t, Config{ClusterMode: true})
	token := strings.Repeat("0123456789abcdef", 2)
	var created CreateSessionResponse
	code := doJSONHeaders(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]string{AssignTokenHeader: token}, fig1Request(), &created)
	if code != http.StatusCreated {
		t.Fatalf("assigned-token create: code = %d, want 201", code)
	}
	if created.Session.ID != token {
		t.Fatalf("session ID = %q, want assigned token %q", created.Session.ID, token)
	}
	// The session answers on its assigned token like any other.
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/sessions/"+token+"/status", nil, nil); code != http.StatusOK {
		t.Fatalf("GET assigned session status: code = %d", code)
	}
	// Same token again: the conflict the migration dedup path keys off.
	code = doJSONHeaders(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]string{AssignTokenHeader: token}, fig1Request(), nil)
	if code != http.StatusConflict {
		t.Fatalf("colliding token: code = %d, want 409", code)
	}
	for _, bad := range []string{"short", strings.Repeat("G", 32), strings.Repeat("AB", 16)} {
		code = doJSONHeaders(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
			map[string]string{AssignTokenHeader: bad}, fig1Request(), nil)
		if code != http.StatusBadRequest {
			t.Fatalf("malformed token %q: code = %d, want 400", bad, code)
		}
	}
}

// TestAdminKeyAssignsAcrossTenants exercises the authenticated cluster
// flow: an admin key places a session under another tenant's ownership
// (what a migration import does), the owning tenant sees and uses it,
// other tenants do not, and a non-admin key may not use the headers.
func TestAdminKeyAssignsAcrossTenants(t *testing.T) {
	tenants, err := ParseKeyfile(strings.NewReader(`
opskey-123 ops admin
acmekey-123 acme
rivalkey-12 rival
`))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Tenants: tenants})
	token := strings.Repeat("f00d", 8)

	// Non-admin tenants must not place sessions, even their own.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", bytes.NewReader(mustJSON(t, fig1Request())))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer acmekey-123")
	req.Header.Set(AssignTokenHeader, token)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("non-admin assign: code = %d, want 403", resp.StatusCode)
	}

	// The admin key imports the session with acme's ownership preserved.
	var created CreateSessionResponse
	code := doJSONHeaders(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]string{
			"Authorization":    "Bearer opskey-123",
			AssignTokenHeader:  token,
			AssignTenantHeader: "acme",
		}, fig1Request(), &created)
	if code != http.StatusCreated || created.Session.ID != token {
		t.Fatalf("admin placement: code = %d id = %q", code, created.Session.ID)
	}
	url := ts.URL + "/v1/sessions/" + token + "/status"
	if code, _ := doJSONKey(t, ts.Client(), "acmekey-123", "GET", url, nil, nil); code != http.StatusOK {
		t.Fatalf("owning tenant GET: code = %d, want 200", code)
	}
	if code, _ := doJSONKey(t, ts.Client(), "rivalkey-12", "GET", url, nil, nil); code != http.StatusNotFound {
		t.Fatalf("other tenant GET: code = %d, want 404", code)
	}
	if code, _ := doJSONKey(t, ts.Client(), "opskey-123", "GET", url, nil, nil); code != http.StatusOK {
		t.Fatalf("admin GET: code = %d, want 200", code)
	}
	// Bogus assigned tenant names are rejected — they would corrupt
	// snapshot file naming.
	code = doJSONHeaders(t, ts.Client(), "POST", ts.URL+"/v1/sessions",
		map[string]string{
			"Authorization":    "Bearer opskey-123",
			AssignTenantHeader: "not/a/name",
		}, fig1Request(), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad assigned tenant: code = %d, want 400", code)
	}
}

// TestParseKeyfileAdmin covers the bare "admin" keyfile option.
func TestParseKeyfileAdmin(t *testing.T) {
	tenants, err := ParseKeyfile(strings.NewReader("opskey-123 ops admin rate=5\nuserkey-12 user rate=5"))
	if err != nil {
		t.Fatal(err)
	}
	if !tenants[0].Admin || tenants[0].RatePerSec != 5 {
		t.Fatalf("admin tenant parsed as %+v", tenants[0])
	}
	if tenants[1].Admin {
		t.Fatal("non-admin tenant parsed as admin")
	}
	if _, err := ParseKeyfile(strings.NewReader("k1234567 t admin=yes")); err == nil {
		t.Fatal("admin=yes must be rejected (the option is bare)")
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
