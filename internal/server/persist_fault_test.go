package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdr/internal/core"
	"gdr/internal/faultfs"
)

// faultedServer boots a durable server wired to a fresh injector.
func faultedServer(t *testing.T, dir string, cfg Config) (*faultfs.Injector, *Server, *httptest.Server) {
	t.Helper()
	faults := faultfs.New(1)
	cfg.Faults = faults
	cfg.DataDir = dir
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Session.Workers == 0 {
		cfg.Session = core.Config{Workers: 1}
	}
	srv, ts := newTestServer(t, cfg)
	return faults, srv, ts
}

func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	files := names[:0]
	for _, n := range names {
		if fi, err := os.Stat(n); err == nil && fi.IsDir() {
			continue // the replicas/ subdir is not session litter
		}
		files = append(files, n)
	}
	return files
}

// TestCheckpointFaultsNeverCorruptSnapshot: an injected failure at any of
// the three checkpoint decision points — temp-file write (disk full),
// fsync, rename — leaves the previous on-disk snapshot byte-identical,
// leaves no temp litter behind, keeps the entry dirty, and heals fully once
// the fault clears.
func TestCheckpointFaultsNeverCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	faults, srv, ts := faultedServer(t, dir, Config{})
	id := createFigure1Session(t, ts).Session.ID
	path := filepath.Join(dir, id+snapSuffix)
	healthy, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no snapshot after create: %v", err)
	}
	e, ok := srv.Store().Get(id)
	if !ok {
		t.Fatal("session vanished")
	}

	points := []struct {
		p   faultfs.Point
		err error
	}{
		{faultfs.Write, faultfs.ErrDiskFull},
		{faultfs.Sync, faultfs.ErrInjected},
		{faultfs.Rename, faultfs.ErrInjected},
	}
	for _, pt := range points {
		faults.Set(pt.p, faultfs.Rule{P: 1, Err: pt.err})
		e.markUndurable()
		if err := srv.Store().Checkpoint(context.Background(), e); err == nil {
			t.Fatalf("%s: injected fault did not surface", pt.p)
		}
		if !e.isDirty() {
			t.Fatalf("%s: entry marked durable after a failed checkpoint", pt.p)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: previous snapshot gone: %v", pt.p, err)
		}
		if !bytes.Equal(got, healthy) {
			t.Fatalf("%s: failed checkpoint corrupted the previous snapshot", pt.p)
		}
		faults.Clear()
	}
	if got := srv.Registry().Counter("gdrd_checkpoint_failures_total").Value(); got != int64(len(points)) {
		t.Fatalf("checkpoint failures counted %d, want %d", got, len(points))
	}
	// The cleanup path must not strand temp files: only the snapshot remains.
	if files := snapFiles(t, dir); len(files) != 1 {
		t.Fatalf("data dir littered after failed checkpoints: %v", files)
	}

	// Healed: the next checkpoint lands and the entry is clean again.
	if err := srv.Store().Checkpoint(context.Background(), e); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if e.isDirty() {
		t.Fatal("entry still dirty after a landed checkpoint")
	}
}

// TestFlusherHealsAfterFaultsClear: with the disk failing from the start,
// the session is created but undurable; once the fault clears, the periodic
// flusher lands the missing checkpoint without any new traffic.
func TestFlusherHealsAfterFaultsClear(t *testing.T) {
	dir := t.TempDir()
	faults, srv, ts := faultedServer(t, dir, Config{CheckpointEvery: 10 * time.Millisecond})
	faults.Set(faultfs.Sync, faultfs.Rule{P: 1, Err: faultfs.ErrInjected})
	id := createFigure1Session(t, ts).Session.ID
	path := filepath.Join(dir, id+snapSuffix)
	if _, err := os.Stat(path); err == nil {
		t.Fatal("snapshot landed despite a failing fsync")
	}
	e, ok := srv.Store().Get(id)
	if !ok {
		t.Fatal("session vanished")
	}
	if !e.isDirty() {
		t.Fatal("entry not dirty after failed initial checkpoint")
	}

	faults.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for e.isDirty() {
		if time.Now().After(deadline) {
			t.Fatal("flusher never healed the session after faults cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("flusher reported durable but no snapshot on disk: %v", err)
	}
}

// TestCheckpointRetryBackoff: consecutive failures space the flusher's
// retries out exponentially (capped at 32× the base), and one success
// resets the schedule.
func TestCheckpointRetryBackoff(t *testing.T) {
	e := &entry{}
	t0 := time.Unix(1000, 0)
	base := time.Second

	e.ckptFailed(t0, base)
	if e.retryDue(t0) {
		t.Fatal("retry due immediately after a failure")
	}
	if !e.retryDue(t0.Add(base)) {
		t.Fatal("first retry must come after one base interval")
	}
	e.ckptFailed(t0, base)
	if e.retryDue(t0.Add(base)) {
		t.Fatal("second failure did not double the spacing")
	}
	if !e.retryDue(t0.Add(2 * base)) {
		t.Fatal("second retry must come after two base intervals")
	}
	for i := 0; i < 20; i++ {
		e.ckptFailed(t0, base)
	}
	if e.retryDue(t0.Add(31 * base)) {
		t.Fatal("backoff below the 32x cap after many failures")
	}
	if !e.retryDue(t0.Add(32 * base)) {
		t.Fatal("backoff exceeded the 32x cap")
	}
	e.ckptSucceeded()
	if !e.retryDue(t0) {
		t.Fatal("success did not reset the retry schedule")
	}
}

// TestTenantOwnershipSurvivesRestart: ownership rides the snapshot file
// name, so after a reboot the restored session is still invisible to other
// tenants.
func TestTenantOwnershipSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	tenants := []TenantConfig{
		{Name: "alice", Key: "alicekey123"},
		{Name: "bob", Key: "bobkey45678"},
	}
	srvA := New(Config{Workers: 2, Session: core.Config{Workers: 1}, DataDir: dir, Tenants: tenants})
	info, _, err := srvA.Store().CreateAs(context.Background(), "alice",
		CreateSessionRequest{Name: "fig1", CSV: figure1CSV, Rules: figure1Rules, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvA.Close()
	want := filepath.Join(dir, "alice"+ownerSep+info.ID+snapSuffix)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("owned snapshot not at %s: %v", want, err)
	}

	srvB := New(Config{Workers: 2, Session: core.Config{Workers: 1}, DataDir: dir, Tenants: tenants})
	defer srvB.Close()
	e, ok := srvB.Store().GetFor(info.ID, "alice")
	if !ok {
		t.Fatal("owner cannot see the restored session")
	}
	if e.tenant != "alice" {
		t.Fatalf("restored tenant tag %q, want alice", e.tenant)
	}
	if _, ok := srvB.Store().GetFor(info.ID, "bob"); ok {
		t.Fatal("restored session visible across tenants")
	}
}
