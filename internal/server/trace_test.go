package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gdr/internal/obs"
)

// feedbackFirstGroup drives one full feedback round (groups → updates →
// confirm all) against a live test server, returning the response to the
// feedback POST itself so callers can inspect its headers.
func feedbackFirstGroup(t *testing.T, ts *httptest.Server, sessionID, traceparent string) *http.Response {
	t.Helper()
	base := ts.URL + "/v1/sessions/" + sessionID
	var groups GroupsResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/groups?order=voi", nil, &groups); code != 200 {
		t.Fatalf("groups: status %d", code)
	}
	if len(groups.Groups) == 0 {
		t.Fatal("no groups")
	}
	var ups UpdatesResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/groups/"+groups.Groups[0].Key+"/updates", nil, &ups); code != 200 {
		t.Fatalf("updates: status %d", code)
	}
	items := make([]FeedbackItem, len(ups.Updates))
	for i, u := range ups.Updates {
		items[i] = FeedbackItem{Tid: u.Tid, Attr: u.Attr, Value: u.Value, Feedback: "confirm"}
	}
	payload, err := json.Marshal(FeedbackRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/feedback", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != 200 {
		t.Fatalf("feedback: status %d", resp.StatusCode)
	}
	return resp
}

// TestRequestTracingEndToEnd drives a feedback round with persistence on and
// checks the full observability contract: the traceparent echo, the
// Server-Timing stage breakdown, and the span tree at /debug/traces showing
// the request's path through the queue, the engine and the checkpoint
// pipeline.
func TestRequestTracingEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{
		DataDir: t.TempDir(),
		Trace:   obs.Config{Seed: 42},
	})
	created := createFigure1Session(t, ts)

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp := feedbackFirstGroup(t, ts, created.Session.ID, inbound)

	echo := resp.Header.Get("Traceparent")
	tid, sid, ok := obs.ParseTraceParent(echo)
	if !ok || tid != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("traceparent echo %q: want the inbound trace ID back", echo)
	}
	if sid == "00f067aa0ba902b7" {
		t.Error("traceparent echo must carry this server's span ID, not the inbound parent's")
	}
	st := resp.Header.Get("Server-Timing")
	for _, stage := range []string{"queue", "exec", "persist"} {
		if !strings.Contains(st, stage+";dur=") {
			t.Errorf("Server-Timing %q missing stage %q", st, stage)
		}
	}

	// The trace debug endpoint (loopback, since httptest serves on 127.0.0.1)
	// must show the feedback trace as a span tree.
	var body obs.TracesBody
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/debug/traces", nil, &body); code != 200 {
		t.Fatalf("/debug/traces: status %d", code)
	}
	if !body.Enabled || len(body.Recent) == 0 {
		t.Fatalf("traces body: enabled=%v recent=%d", body.Enabled, len(body.Recent))
	}
	tr := body.Recent[0] // newest first; /debug/traces itself is untraced
	if tr.Route != "feedback" || tr.TraceID != tid || tr.Status != 200 {
		t.Fatalf("newest trace: %+v", tr)
	}
	if tr.Session != created.Session.ID {
		t.Errorf("trace session = %q, want %q", tr.Session, created.Session.ID)
	}
	roots := map[string]obs.SpanJSON{}
	var rootSum float64
	for _, sp := range tr.Spans {
		roots[sp.Stage] = sp
		rootSum += sp.Seconds
	}
	for _, stage := range []string{"admit", "queue", "slot", "exec", "persist"} {
		if _, ok := roots[stage]; !ok {
			t.Errorf("span tree missing root stage %q (have %v)", stage, tr.Spans)
		}
	}
	// Root stages are sequential, so their durations must not exceed the
	// request's total (small epsilon for float rounding in the JSON).
	if rootSum > tr.Seconds*1.01+0.001 {
		t.Errorf("root stages sum to %fs > request total %fs", rootSum, tr.Seconds)
	}
	persistChildren := map[string]bool{}
	for _, c := range roots["persist"].Children {
		persistChildren[c.Stage] = true
	}
	for _, stage := range []string{"write", "fsync", "rename"} {
		if !persistChildren[stage] {
			t.Errorf("persist span missing child %q (have %v)", stage, roots["persist"].Children)
		}
	}
}

// TestTracesLoopbackOnly pins the access rule: traces carry tenant names and
// session tokens, so a non-loopback peer gets 403 no matter what.
func TestTracesLoopbackOnly(t *testing.T) {
	srv := New(Config{Trace: obs.Config{Seed: 1}})
	defer srv.Close()
	for addr, want := range map[string]int{
		"192.0.2.1:1234": http.StatusForbidden,
		"127.0.0.1:5000": http.StatusOK,
		"[::1]:5000":     http.StatusOK,
		"10.0.0.8:443":   http.StatusForbidden,
		"not-an-address": http.StatusForbidden,
	} {
		req := httptest.NewRequest("GET", "/debug/traces", nil)
		req.RemoteAddr = addr
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("RemoteAddr %s: status %d, want %d", addr, rec.Code, want)
		}
	}
}

// TestTracingDisabled runs the stack with Capacity -1: requests must work
// unchanged with no trace headers, and /debug/traces reports disabled.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Trace: obs.Config{Capacity: -1}})
	created := createFigure1Session(t, ts)
	resp := feedbackFirstGroup(t, ts, created.Session.ID, "")
	if h := resp.Header.Get("Traceparent"); h != "" {
		t.Errorf("disabled tracing still echoed traceparent %q", h)
	}
	if h := resp.Header.Get("Server-Timing"); h != "" {
		t.Errorf("disabled tracing still sent Server-Timing %q", h)
	}
	var body obs.TracesBody
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/debug/traces", nil, &body); code != 200 {
		t.Fatalf("/debug/traces: status %d", code)
	}
	if body.Enabled {
		t.Error("traces body should report disabled")
	}
}

// TestRouteLabel pins the bounded route label set — every value becomes a
// Prometheus label, so unknown shapes must collapse to "other".
func TestRouteLabel(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/healthz", "healthz"},
		{"GET", "/metrics", "metrics"},
		{"GET", "/debug/traces", "traces"},
		{"POST", "/v1/sessions", "create"},
		{"GET", "/v1/sessions", "list"},
		{"GET", "/v1/sessions/abc/groups", "groups"},
		{"GET", "/v1/sessions/abc/groups/k1/updates", "updates"},
		{"POST", "/v1/sessions/abc/feedback", "feedback"},
		{"GET", "/v1/sessions/abc/status", "status"},
		{"GET", "/v1/sessions/abc/export", "export"},
		{"POST", "/v1/sessions/abc/snapshot", "snapshot"},
		{"DELETE", "/v1/sessions/abc", "delete"},
		{"GET", "/v1/sessions/abc", "other"},
		{"GET", "/nope", "other"},
	}
	for _, c := range cases {
		if got := routeLabel(c.method, c.path); got != c.want {
			t.Errorf("routeLabel(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}
