package server

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// waitQueued blocks until the tenant has n waiters registered — the only
// way to order concurrent acquires deterministically from a test.
func waitQueued(t *testing.T, s *sched, tenant string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		st, ok := s.tenants[tenant]
		queued := 0
		if ok {
			queued = len(st.waiters)
		}
		s.mu.Unlock()
		if queued >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s never reached %d queued waiters", tenant, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedClampSlots(t *testing.T) {
	s := newSched(4, nil)
	for in, want := range map[int]int{-1: 1, 0: 1, 1: 1, 4: 4, 9: 4} {
		if got := s.clampSlots(in); got != want {
			t.Fatalf("clampSlots(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestSchedFairness: with one slot and a hot tenant already served once, a
// cold tenant's first acquisition jumps ahead of the hot tenant's next,
// even though the hot tenant queued first.
func TestSchedFairness(t *testing.T) {
	s := newSched(1, nil)
	if err := s.acquire(context.Background(), "hot", 1); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.acquire(context.Background(), "hot", 1); err != nil {
			t.Errorf("hot: %v", err)
			return
		}
		order <- "hot"
		s.release("hot", 1)
	}()
	waitQueued(t, s, "hot", 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.acquire(context.Background(), "cold", 1); err != nil {
			t.Errorf("cold: %v", err)
			return
		}
		order <- "cold"
		s.release("cold", 1)
	}()
	waitQueued(t, s, "cold", 1)
	s.release("hot", 1) // frees the slot; dispatch picks the next tenant
	wg.Wait()
	if first := <-order; first != "cold" {
		t.Fatalf("slot went to %q first; deficit fairness should favor the cold tenant", first)
	}
}

// TestSchedWideWaiterNotStarved: when the most deserving tenant needs more
// slots than are free, freed slots accumulate for it instead of leaking to
// narrower latecomers — the head-of-line rule that makes multi-slot
// acquisition starvation-free.
func TestSchedWideWaiterNotStarved(t *testing.T) {
	s := newSched(4, nil)
	for i := 0; i < 4; i++ {
		if err := s.acquire(context.Background(), "holder", 1); err != nil {
			t.Fatal(err)
		}
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.acquire(context.Background(), "wide", 4); err != nil {
			t.Errorf("wide: %v", err)
			return
		}
		order <- "wide"
		s.release("wide", 4)
	}()
	waitQueued(t, s, "wide", 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.acquire(context.Background(), "narrow", 1); err != nil {
			t.Errorf("narrow: %v", err)
			return
		}
		order <- "narrow"
		s.release("narrow", 1)
	}()
	waitQueued(t, s, "narrow", 1)
	// Free slots one at a time: none of them may leak to the narrow waiter
	// while the wide one (earlier, equally deserving) still waits.
	for i := 0; i < 4; i++ {
		s.release("holder", 1)
	}
	wg.Wait()
	if first := <-order; first != "wide" {
		t.Fatalf("slot went to %q first; freed slots must accumulate for the wide waiter", first)
	}
}

// TestSchedCancelReturnsSlots: a waiter whose context expires leaves
// nothing held, and the capacity remains fully grantable afterwards.
func TestSchedCancelReturnsSlots(t *testing.T) {
	s := newSched(2, nil)
	if err := s.acquire(context.Background(), "a", 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.acquire(ctx, "b", 2); err == nil {
		t.Fatal("acquire succeeded with all slots held and an expiring context")
	}
	s.release("a", 2)
	// The cancelled waiter must be gone: the full capacity grants again.
	if err := s.acquire(context.Background(), "b", 2); err != nil {
		t.Fatalf("capacity not fully restored after cancellation: %v", err)
	}
	s.release("b", 2)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.free != 2 {
		t.Fatalf("free = %d after all releases, want 2", s.free)
	}
}

// TestSchedCancellationStress hammers multi-slot acquisition with
// aggressive cancellation racing the grants (run under -race). Afterwards
// every slot must be back — a cancellation that raced a concurrent grant
// must return the granted slots, not leak them — and no waiter may be
// stranded.
func TestSchedCancellationStress(t *testing.T) {
	const capacity = 4
	s := newSched(capacity, nil)
	tenants := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				tenant := tenants[rng.Intn(len(tenants))]
				n := 1 + rng.Intn(capacity)
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Intn(2) == 0 {
					// Short fuse: frequently expires mid-wait, racing grants.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				if err := s.acquire(ctx, tenant, n); err == nil {
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
					}
					s.release(tenant, n)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.free != capacity {
		t.Fatalf("free = %d after stress, want %d — cancellation leaked slots", s.free, capacity)
	}
	for name, st := range s.tenants {
		if st.inUse != 0 || len(st.waiters) != 0 {
			t.Fatalf("tenant %s stranded: inUse=%d waiters=%d", name, st.inUse, len(st.waiters))
		}
	}
}
