package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gdr/internal/core"
)

// ErrSessionClosed is returned for requests against a deleted or evicted
// session.
var ErrSessionClosed = errors.New("server: session closed")

// actor wraps one core.Session — which is single-writer by design — in a
// command loop: one goroutine owns the session and executes closures from a
// queue, so any number of concurrent HTTP handlers can touch the session
// without locks on the hot paths. CPU time across all actors is budgeted by
// a shared slot semaphore sized from the server's Workers knob: a command
// holds as many slots as its session's worker fan-out while it runs, so M
// live sessions make progress in parallel up to the budget, and queued
// commands of one session never block another session's loop.
type actor struct {
	sess *core.Session
	cmds chan *command
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	// slots is how many budget slots one command of this session occupies —
	// its configured intra-session worker fan-out — so a session that
	// parallelizes VOI scoring over 4 workers accounts for 4 CPUs, and the
	// sum of running fan-outs never overshoots the server budget. acqMu is
	// shared store-wide: multi-slot acquisition must be serialized or two
	// actors could each hold half the budget and deadlock.
	slots  int
	budget chan struct{}
	acqMu  *sync.Mutex
}

// command is one queued unit of session work. state is the handshake
// between the caller (which may abandon a command it no longer waits for)
// and the loop (which claims it before running).
type command struct {
	state atomic.Int32
	fn    func()
}

// Command lifecycle states.
const (
	cmdPending   = iota // queued, not yet picked up
	cmdRunning          // the loop owns it; it will run to completion
	cmdAbandoned        // the caller gave up first; the loop must skip it
)

// actorQueueDepth bounds how many commands one session may have waiting;
// beyond it, do blocks (applying backpressure to that session's clients
// only).
const actorQueueDepth = 64

// clampSlots bounds a requested fan-out to what the budget can ever hold.
func clampSlots(budget chan struct{}, n int) int {
	if n < 1 {
		return 1
	}
	if n > cap(budget) {
		return cap(budget)
	}
	return n
}

// acquireSlots takes n slots from budget. mu serializes multi-slot waits
// across all acquirers — without it two acquirers could each hold half the
// budget and deadlock; release never needs mu, so a waiter always drains.
// A ctx cancellation mid-acquisition returns the slots already taken.
func acquireSlots(ctx context.Context, mu *sync.Mutex, budget chan struct{}, n int) error {
	mu.Lock()
	for got := 0; got < n; got++ {
		select {
		case budget <- struct{}{}:
		case <-ctx.Done():
			mu.Unlock()
			releaseSlots(budget, got)
			return ctx.Err()
		}
	}
	mu.Unlock()
	return nil
}

// releaseSlots returns n slots to budget.
func releaseSlots(budget chan struct{}, n int) {
	for i := 0; i < n; i++ {
		<-budget
	}
}

func newActor(sess *core.Session, budget chan struct{}, slots int, acqMu *sync.Mutex) *actor {
	a := &actor{
		sess:   sess,
		cmds:   make(chan *command, actorQueueDepth),
		done:   make(chan struct{}),
		slots:  clampSlots(budget, slots),
		budget: budget,
		acqMu:  acqMu,
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for {
			select {
			case c := <-a.cmds:
				// Claim before spending shared CPU slots: an abandoned
				// command must not delay live sessions' work.
				if !c.state.CompareAndSwap(cmdPending, cmdRunning) {
					continue
				}
				_ = acquireSlots(context.Background(), a.acqMu, a.budget, a.slots)
				c.fn()
				releaseSlots(a.budget, a.slots)
			case <-a.done:
				return
			}
		}
	}()
	return a
}

// do runs fn on the actor goroutine with exclusive access to the session
// and waits for it to finish. A command whose caller gives up first — the
// session closes or the context expires while it is still queued — is
// abandoned and never runs, so an errored request can be safely retried.
// Once fn has started it always runs to completion (the session must never
// be left mid-command); a caller whose context expires mid-run waits it out
// and still gets nil, because the decision was applied.
//
// A panic inside fn is contained to this one command: in a multi-tenant
// daemon, one session tripping an edge case must not unwind the actor
// goroutine and take every other tenant down. The panic comes back as this
// call's error (the session may be mid-mutation — the caller decides
// whether to keep using it).
func (a *actor) do(ctx context.Context, fn func(sess *core.Session)) error {
	ran := make(chan struct{})
	var panicked error
	c := &command{fn: func() {
		defer close(ran)
		defer func() {
			if p := recover(); p != nil {
				panicked = fmt.Errorf("server: session command panicked: %v", p)
			}
		}()
		fn(a.sess)
	}}
	select {
	case a.cmds <- c:
	case <-a.done:
		return ErrSessionClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-ran:
		return panicked
	case <-a.done:
		if c.state.CompareAndSwap(cmdPending, cmdAbandoned) {
			return ErrSessionClosed
		}
		<-ran // mid-flight; close() waits for the loop, so this resolves
		return panicked
	case <-ctx.Done():
		if c.state.CompareAndSwap(cmdPending, cmdAbandoned) {
			return ctx.Err()
		}
		<-ran
		return panicked
	}
}

// close stops the command loop. Queued commands that were not yet picked up
// are dropped; their callers get ErrSessionClosed. close waits for the loop
// goroutine (and thus any in-flight command) to finish.
func (a *actor) close() {
	a.once.Do(func() { close(a.done) })
	a.wg.Wait()
}
