package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"gdr/internal/core"
	"gdr/internal/faultfs"
	"gdr/internal/metrics"
	"gdr/internal/obs"
)

// ErrSessionClosed is returned for requests against a deleted or evicted
// session.
var ErrSessionClosed = errors.New("server: session closed")

// actor wraps one core.Session — which is single-writer by design — in a
// command loop: one goroutine owns the session and executes closures from a
// bounded queue, so any number of concurrent HTTP handlers can touch the
// session without locks on the hot paths. CPU time across all actors is
// budgeted by the store's fair slot scheduler: a command holds as many
// slots as its session's worker fan-out while it runs, charged to the
// session's tenant, so M live sessions make progress in parallel up to the
// budget and no tenant can monopolize it.
//
// Overload never blocks: a full queue sheds the command immediately
// (ErrOverloaded → 503 + Retry-After), and a command whose request context
// expires while it waits — in the queue or for CPU slots — is dropped
// before it spends any, with the same deterministic 503.
type actor struct {
	sess   *core.Session
	cmds   chan *command
	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	slots  int // slots one command occupies: the session's worker fan-out
	tenant string
	sched  *sched
	reg    *metrics.Registry
	faults *faultfs.Injector

	// cur is the trace of the command being executed right now. It is
	// written and read only on the actor goroutine (set before run, cleared
	// after), which is also where the session's phase hook fires — so engine
	// phases can attach spans to the request that triggered them without any
	// synchronization.
	cur *obs.Trace
}

// command is one queued unit of session work. state is the handshake
// between the caller (which may abandon a command it no longer waits for)
// and the loop (which claims it before running). The loop reports back by
// either running run (which finishes the command) or calling drop with the
// reason it refused to.
type command struct {
	state atomic.Int32
	ctx   context.Context
	name  string    // short verb for pprof labels and traces ("feedback", "encode", …)
	enq   time.Time // when the command entered the queue, for the queue-wait span
	run   func()
	drop  func(error)
}

// Command lifecycle states.
const (
	cmdPending   = iota // queued, not yet picked up
	cmdRunning          // the loop owns it; run or drop will resolve it
	cmdAbandoned        // the caller gave up first; the loop must skip it
)

// defaultQueueDepth bounds how many commands one session may have waiting
// when Config.QueueDepth is unset. Beyond it the command is shed, not
// queued — backpressure must reach the client as Retry-After, not stall
// the handler goroutine.
const defaultQueueDepth = 64

func newActor(sess *core.Session, sch *sched, slots int, tenant string, queueDepth int, reg *metrics.Registry, faults *faultfs.Injector) *actor {
	if queueDepth < 1 {
		queueDepth = defaultQueueDepth
	}
	a := &actor{
		sess:   sess,
		cmds:   make(chan *command, queueDepth),
		done:   make(chan struct{}),
		slots:  sch.clampSlots(slots),
		tenant: tenant,
		sched:  sch,
		reg:    reg,
		faults: faults,
	}
	// The phase hook lets the repair engine attribute its internal phases
	// (suggest/rerank/retrain) to the request being executed. It fires on
	// the actor goroutine, inside c.run, so reading a.cur needs no lock.
	sess.SetPhaseHook(func(phase string) func() {
		t := a.cur
		if t == nil {
			return nil
		}
		h := t.StartChild("exec", phase)
		return h.End
	})
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for {
			select {
			case c := <-a.cmds:
				a.queueGauge().Add(-1)
				// Claim before spending shared CPU slots: an abandoned
				// command must not delay live sessions' work.
				if !c.state.CompareAndSwap(cmdPending, cmdRunning) {
					continue
				}
				// A command whose deadline budget was spent in the queue is
				// dropped before it costs anything; likewise one whose
				// budget runs out while waiting for CPU slots.
				if c.ctx.Err() != nil {
					a.shed("deadline")
					c.drop(errExpiredQueued())
					continue
				}
				t := obs.FromContext(c.ctx)
				parent := obs.SpanParent(c.ctx)
				t.RecordSince("queue", parent, c.enq)
				slotStart := time.Now()
				if err := a.sched.acquire(c.ctx, a.tenant, a.slots); err != nil {
					a.shed("deadline")
					c.drop(errExpiredQueued())
					continue
				}
				t.RecordSince("slot", parent, slotStart)
				a.faults.Fault(faultfs.Actor) // chaos: slow actor, slots held
				a.runLabeled(t, parent, c)
				a.sched.release(a.tenant, a.slots)
			case <-a.done:
				return
			}
		}
	}()
	return a
}

// runLabeled executes one claimed command under an exec span and pprof
// labels (tenant, route, cmd), so CPU profiles attribute actor work to the
// traffic that caused it.
func (a *actor) runLabeled(t *obs.Trace, parent string, c *command) {
	h := t.StartChild(parent, "exec")
	a.cur = t
	route := t.Route()
	if route == "" {
		route = "none"
	}
	pprof.Do(c.ctx, pprof.Labels("tenant", metricTenant(a.tenant), "route", route, "cmd", c.name), func(context.Context) {
		c.run()
	})
	a.cur = nil
	h.End()
}

func (a *actor) queueGauge() *metrics.Gauge {
	return a.reg.Gauge("gdrd_actor_queue_depth")
}

func (a *actor) shed(reason string) {
	a.reg.LabeledCounter("gdrd_shed_total", "reason", reason, "tenant", metricTenant(a.tenant)).Inc()
}

// metricTenant renders a tenant ownership tag for metric labels; unowned
// (open-mode) sessions report as the implicit default tenant.
func metricTenant(tenant string) string {
	if tenant == "" {
		return defaultTenantName
	}
	return tenant
}

// do runs fn on the actor goroutine with exclusive access to the session
// and waits for it to finish. Admission is shed-early: a full queue fails
// immediately with ErrOverloaded (the caller maps it to 503 +
// Retry-After), and a command whose context expires while it is still
// queued — on either side of the handshake — resolves to the same
// deterministic overload error. Once fn has started it always runs to
// completion (the session must never be left mid-command); a caller whose
// context expires mid-run waits it out and still gets nil, because the
// decision was applied.
//
// A panic inside fn is contained to this one command: in a multi-tenant
// daemon, one session tripping an edge case must not unwind the actor
// goroutine and take every other tenant down. The panic comes back as this
// call's error (the session may be mid-mutation — the caller decides
// whether to keep using it).
func (a *actor) do(ctx context.Context, name string, fn func(sess *core.Session)) error {
	ran := make(chan struct{})
	// cmdErr is written by whichever side resolves the command, always
	// before close(ran), and read only after <-ran.
	var cmdErr error
	c := &command{ctx: ctx, name: name, enq: time.Now()}
	c.run = func() {
		defer close(ran)
		defer func() {
			if p := recover(); p != nil {
				cmdErr = fmt.Errorf("server: session command panicked: %v", p)
			}
		}()
		fn(a.sess)
	}
	c.drop = func(err error) {
		cmdErr = err
		close(ran)
	}
	select {
	case <-a.done:
		return ErrSessionClosed
	default:
	}
	select {
	case a.cmds <- c:
		a.queueGauge().Add(1)
	default:
		// Queue saturated: shed now, never block the handler. The client
		// retries after backoff; blocking here would pile goroutines up
		// behind a session that is already drowning.
		a.shed("queue")
		return errQueueFull()
	}
	select {
	case <-ran:
		return cmdErr
	case <-a.done:
		if c.state.CompareAndSwap(cmdPending, cmdAbandoned) {
			return ErrSessionClosed
		}
		<-ran // mid-flight; close() waits for the loop, so this resolves
		return cmdErr
	case <-ctx.Done():
		if c.state.CompareAndSwap(cmdPending, cmdAbandoned) {
			a.shed("deadline")
			return errExpiredQueued()
		}
		<-ran
		return cmdErr
	}
}

// close stops the command loop. Queued commands that were not yet picked up
// are dropped; their callers get ErrSessionClosed. close waits for the loop
// goroutine (and thus any in-flight command) to finish.
func (a *actor) close() {
	a.once.Do(func() { close(a.done) })
	a.wg.Wait()
}
