package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/core"
	"gdr/internal/relation"
	"gdr/internal/snapshot"
)

// mustFigure1State builds a fresh core session state from the Figure 1
// instance for tests that need raw snapshot material.
func mustFigure1State(t testing.TB) *core.SessionState {
	t.Helper()
	db, err := relation.ReadCSV(strings.NewReader(figure1CSV), "upload")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := cfd.Parse(strings.NewReader(figure1Rules))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(db, rules, core.Config{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sess.ExportState()
}

// postFeedbackRaw issues one feedback POST with a client request id and
// returns the status, the raw response body, and the duplicate marker.
func postFeedbackRaw(t *testing.T, ts *httptest.Server, base, reqID string, body []byte) (int, []byte, bool) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/feedback", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(RequestIDHeader, reqID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get(DuplicateHeader) == "1"
}

// TestFeedbackExactlyOnce: a retried feedback POST (same X-Gdr-Request-Id)
// replays the original response byte-for-byte instead of applying the round
// a second time.
func TestFeedbackExactlyOnce(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	created := createFigure1Session(t, ts)
	base := ts.URL + "/v1/sessions/" + created.Session.ID

	var groups GroupsResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/groups?order=voi", nil, &groups); code != 200 {
		t.Fatalf("groups: status %d", code)
	}
	var ups UpdatesResponse
	if code := doJSON(t, ts.Client(), "GET", base+"/groups/"+groups.Groups[0].Key+"/updates", nil, &ups); code != 200 {
		t.Fatalf("updates: status %d", code)
	}
	items := make([]string, 0, len(ups.Updates))
	for _, u := range ups.Updates {
		items = append(items, fmt.Sprintf(`{"tid":%d,"attr":%q,"value":%q,"feedback":"confirm"}`, u.Tid, u.Attr, u.Value))
	}
	body := []byte(`{"items":[` + strings.Join(items, ",") + `]}`)

	code, first, dup := postFeedbackRaw(t, ts, base, "retry-demo-1", body)
	if code != 200 || dup {
		t.Fatalf("first post: status %d, duplicate %v", code, dup)
	}
	var st1 StatusResponse
	doJSON(t, ts.Client(), "GET", base+"/status", nil, &st1)
	if st1.Session.MutSeq != 1 {
		t.Fatalf("mut_seq after one round: %d, want 1", st1.Session.MutSeq)
	}

	// The retry: identical request, identical id. Must replay, not re-apply.
	code, second, dup := postFeedbackRaw(t, ts, base, "retry-demo-1", body)
	if code != 200 {
		t.Fatalf("retry: status %d", code)
	}
	if !dup {
		t.Fatal("retry not marked as a duplicate")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("replayed body differs:\n first: %s\nsecond: %s", first, second)
	}

	// The session did not move: same applied count, same mutation sequence.
	var st2 StatusResponse
	doJSON(t, ts.Client(), "GET", base+"/status", nil, &st2)
	if st2.Stats.Applied != st1.Stats.Applied || st2.Session.MutSeq != st1.Session.MutSeq {
		t.Fatalf("duplicate moved the session: %+v vs %+v", st2, st1)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "gdrd_feedback_duplicates_total 1") {
		t.Fatalf("metrics missing duplicate count:\n%s", metrics)
	}
}

// TestFeedbackRequestIDValidation: an oversized request id is rejected
// before it can bloat the dedup window.
func TestFeedbackRequestIDValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	created := createFigure1Session(t, ts)
	base := ts.URL + "/v1/sessions/" + created.Session.ID
	code, _, _ := postFeedbackRaw(t, ts, base, strings.Repeat("x", maxRequestIDLen+1), []byte(`{"items":[]}`))
	if code != http.StatusBadRequest {
		t.Fatalf("oversized request id: status %d, want 400", code)
	}
}

// TestFeedbackDedupSurvivesSnapshot: the dedup window rides inside the
// session snapshot, so a retry that lands after a migration (export on one
// node, import on another) still replays instead of re-applying.
func TestFeedbackDedupSurvivesSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{ClusterMode: true})
	created := createFigure1Session(t, ts)
	base := ts.URL + "/v1/sessions/" + created.Session.ID

	var groups GroupsResponse
	doJSON(t, ts.Client(), "GET", base+"/groups?order=voi", nil, &groups)
	var ups UpdatesResponse
	doJSON(t, ts.Client(), "GET", base+"/groups/"+groups.Groups[0].Key+"/updates", nil, &ups)
	u := ups.Updates[0]
	body := []byte(fmt.Sprintf(`{"items":[{"tid":%d,"attr":%q,"value":%q,"feedback":"confirm"}]}`, u.Tid, u.Attr, u.Value))

	code, first, _ := postFeedbackRaw(t, ts, base, "migrating-retry", body)
	if code != 200 {
		t.Fatalf("feedback: status %d", code)
	}

	// Export, delete, re-import under the same token — a session migration.
	resp, err := ts.Client().Post(base+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if resp.Header.Get(MutationSeqHeader) != "1" {
		t.Fatalf("snapshot watermark header: %q, want 1", resp.Header.Get(MutationSeqHeader))
	}
	if code := doJSON(t, ts.Client(), "DELETE", base, nil, nil); code != 200 {
		t.Fatalf("delete: status %d", code)
	}
	createBody, err := json.Marshal(CreateSessionRequest{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions", bytes.NewReader(createBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(AssignTokenHeader, created.Session.ID)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("import: status %d", resp.StatusCode)
	}

	// The retry hits the restored session and must still be recognized.
	code, second, dup := postFeedbackRaw(t, ts, base, "migrating-retry", body)
	if code != 200 || !dup {
		t.Fatalf("post-migration retry: status %d, duplicate %v", code, dup)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("post-migration replay differs:\n first: %s\nsecond: %s", first, second)
	}
	var st StatusResponse
	doJSON(t, ts.Client(), "GET", base+"/status", nil, &st)
	if st.Session.MutSeq != 1 {
		t.Fatalf("mut_seq after migration + retry: %d, want 1", st.Session.MutSeq)
	}
}

// TestDedupWindowEviction: the window holds exactly dedupWindowSize entries
// and evicts oldest-first.
func TestDedupWindowEviction(t *testing.T) {
	d := newDedupWindow()
	for i := 0; i < dedupWindowSize+5; i++ {
		d.put(fmt.Sprintf("id-%d", i), []byte(fmt.Sprintf("body-%d", i)))
	}
	for i := 0; i < 5; i++ {
		if _, ok := d.get(fmt.Sprintf("id-%d", i)); ok {
			t.Fatalf("id-%d should have been evicted", i)
		}
	}
	for i := 5; i < dedupWindowSize+5; i++ {
		body, ok := d.get(fmt.Sprintf("id-%d", i))
		if !ok || string(body) != fmt.Sprintf("body-%d", i) {
			t.Fatalf("id-%d: got %q, %v", i, body, ok)
		}
	}
	if len(d.ring) != dedupWindowSize || len(d.index) != dedupWindowSize {
		t.Fatalf("window grew: ring %d, index %d", len(d.ring), len(d.index))
	}

	// In-place overwrite neither grows the window nor disturbs the ring.
	d.put("id-10", []byte("rewritten"))
	if len(d.ring) != dedupWindowSize {
		t.Fatalf("overwrite grew the ring to %d", len(d.ring))
	}
	if body, _ := d.get("id-10"); string(body) != "rewritten" {
		t.Fatalf("overwrite not visible: %q", body)
	}
}

// TestDedupWindowExportRestore: export → restore → export is a fixed point,
// so two snapshots of the same session state encode byte-identically.
func TestDedupWindowExportRestore(t *testing.T) {
	d := newDedupWindow()
	for i := 0; i < dedupWindowSize+7; i++ {
		d.put(fmt.Sprintf("id-%d", i), []byte(fmt.Sprintf("body-%d", i)))
	}
	exported := d.export()
	if len(exported) != dedupWindowSize {
		t.Fatalf("export length %d", len(exported))
	}
	r := newDedupWindow()
	r.restore(exported)
	again := r.export()
	if len(again) != len(exported) {
		t.Fatalf("round trip changed length: %d vs %d", len(again), len(exported))
	}
	for i := range exported {
		if exported[i].ID != again[i].ID || !bytes.Equal(exported[i].Body, again[i].Body) {
			t.Fatalf("entry %d changed across restore: %+v vs %+v", i, exported[i], again[i])
		}
	}
	// The restored window must also evict in the same order as the original.
	d.put("tail", []byte("t"))
	r.put("tail", []byte("t"))
	de, re := d.export(), r.export()
	for i := range de {
		if de[i].ID != re[i].ID {
			t.Fatalf("eviction order diverged at %d: %q vs %q", i, de[i].ID, re[i].ID)
		}
	}
}

// TestDedupHotPathAllocBound pins the per-request dedup cost: a get on the
// actor's hot path must not allocate at all, and a put of an already-seen
// id only rebinds the body.
func TestDedupHotPathAllocBound(t *testing.T) {
	d := newDedupWindow()
	for i := 0; i < dedupWindowSize; i++ {
		d.put(fmt.Sprintf("id-%d", i), []byte("body"))
	}
	body := []byte("replacement")
	allocs := testing.AllocsPerRun(500, func() {
		if _, ok := d.get("id-7"); !ok {
			t.Fail()
		}
		d.put("id-7", body)
	})
	if allocs != 0 {
		t.Fatalf("dedup hot path allocates %.1f times per call, want 0", allocs)
	}
}

// TestDedupWindowSnapshotDeterminism: two encodes of a session whose dedup
// window has wrapped produce identical bytes — the ring export order is
// stable, not map order.
func TestDedupWindowSnapshotDeterminism(t *testing.T) {
	d := newDedupWindow()
	for i := 0; i < dedupWindowSize*2; i++ {
		d.put(fmt.Sprintf("id-%d", i), []byte{byte(i)})
	}
	meta := snapshot.Meta{MutSeq: 42, Dedup: d.export()}
	st := mustFigure1State(t)
	a, err := snapshot.EncodeStateMeta("det", meta, st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapshot.EncodeStateMeta("det", snapshot.Meta{MutSeq: 42, Dedup: d.export()}, st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two exports of the same window encode differently")
	}
}
