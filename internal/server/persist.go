package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gdr/internal/core"
	"gdr/internal/faultfs"
	"gdr/internal/obs"
	"gdr/internal/snapshot"
)

// snapSuffix names the per-session snapshot files in the data directory.
const snapSuffix = ".snap"

// ownerSep separates the owning tenant from the token in a snapshot file
// name. Neither side can contain it: tokens are hex and tenant names match
// tenantNameRE, so the encoding is unambiguous.
const ownerSep = "@"

// snapshotPath places a session's snapshot in the data directory. Unowned
// sessions are plain <token>.snap; owned ones carry their tenant as a
// <tenant>@<token>.snap prefix, so ownership survives a restart without
// changing the snapshot byte format.
func (s *Store) snapshotPath(e *entry) string {
	base := e.id + snapSuffix
	if e.tenant != "" {
		base = e.tenant + ownerSep + base
	}
	return filepath.Join(s.dir, base)
}

// Snapshot encodes the session's current state on its actor goroutine and
// returns the bytes plus the mutation sequence they capture (the replica
// watermark); with persistence enabled the same bytes are also written
// through the checkpoint path, so an explicit export doubles as a durable
// checkpoint. The write is best-effort: a failing disk must not block the
// export — taking sessions off a sick node is exactly what the endpoint is
// for — so persist errors are logged and counted, and the periodic flusher
// keeps retrying.
func (s *Store) Snapshot(ctx context.Context, e *entry) ([]byte, uint64, error) {
	// The lease pins the session against TTL eviction for the whole export:
	// the cluster proxy calls this to move a session, and the janitor
	// harvesting the source mid-export would hand the importing node a
	// snapshot of a session that no longer exists anywhere else.
	e.acquireLease(s.now())
	defer func() { e.releaseLease(s.now()) }()
	data, mut, err := s.encode(ctx, e)
	if err != nil {
		return nil, 0, err
	}
	if s.dir != "" {
		t := obs.FromContext(ctx)
		h := t.StartSpan("persist")
		err := s.persist(e, data, mut, t)
		h.End()
		if err != nil {
			s.reg.Counter("gdrd_checkpoint_failures_total").Inc()
			e.ckptFailed(s.now(), s.ckptEvery)
			s.log.Warn("persisting snapshot failed", "session", e.id, "err", err)
		} else {
			e.ckptSucceeded()
		}
	}
	return data, mut, nil
}

// Checkpoint makes the session durable: encode on the actor, write to a
// temp file, fsync, rename. A no-op without a data directory. Concurrent
// checkpoints of one session are safe — snapshots are sequence-stamped in
// session-mutation order and a stale one never overwrites a newer file. A
// failure leaves the entry dirty (the flusher retries with backoff) but
// never corrupts the previous on-disk snapshot.
func (s *Store) Checkpoint(ctx context.Context, e *entry) error {
	if s.dir == "" {
		return nil
	}
	// The whole checkpoint is one "persist" span; the encode rides the actor
	// queue with this span as its parent, so its queue/slot/exec spans nest
	// under persist instead of reading as a second request.
	t := obs.FromContext(ctx)
	h := t.StartSpan("persist")
	defer h.End()
	start := time.Now()
	data, mut, err := s.encode(obs.WithSpanParent(ctx, "persist"), e)
	if err != nil {
		s.reg.Counter("gdrd_checkpoint_failures_total").Inc()
		e.ckptFailed(s.now(), s.ckptEvery)
		return err
	}
	if err := s.persist(e, data, mut, t); err != nil {
		s.reg.Counter("gdrd_checkpoint_failures_total").Inc()
		e.ckptFailed(s.now(), s.ckptEvery)
		return err
	}
	e.ckptSucceeded()
	s.reg.Counter("gdrd_checkpoints_total").Inc()
	s.reg.Histogram("gdrd_checkpoint_seconds").ObserveSince(start)
	return nil
}

// encode runs the snapshot encoder on the session's actor and records
// which mutation sequence the captured state corresponds to. The watermark
// and the dedup window ride inside the snapshot (format v2 meta): both are
// read on the actor, so the encoded triple is always mutually consistent.
func (s *Store) encode(ctx context.Context, e *entry) (data []byte, mut uint64, err error) {
	var encErr error
	doErr := e.actor.do(ctx, "encode", func(sess *core.Session) {
		mut = e.mutSeq.Load()
		meta := snapshot.Meta{MutSeq: mut, Dedup: e.dedup.export()}
		data, encErr = snapshot.EncodeStateMeta(e.name, meta, sess.ExportState())
	})
	if doErr != nil {
		return nil, 0, doErr
	}
	if encErr != nil {
		return nil, 0, encErr
	}
	return data, mut, nil
}

// persist writes one captured snapshot crash-safely, advancing the
// durability watermark to the mutation it covers. A snapshot at or behind
// the watermark is skipped: the file already holds that state (or newer),
// and advancing nothing means mutations the snapshot missed stay dirty for
// the flusher.
func (s *Store) persist(e *entry, data []byte, mut uint64, t *obs.Trace) error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if e.hasDurable && mut <= e.durableMut {
		return nil
	}
	if err := writeAtomic(s.snapshotPath(e), data, s.faults, t); err != nil {
		return err
	}
	e.durableMut = mut
	e.hasDurable = true
	return nil
}

// writeAtomic lands data at path via temp-file + fsync + rename, so a crash
// at any moment leaves either the old snapshot or the new one — never a
// torn file. faults (possibly nil) injects write/fsync/rename failures at
// the same decision points a real disk fails at; an injected failure takes
// the same cleanup path, which is how the chaos tests prove a failing disk
// can never corrupt the previous snapshot.
func writeAtomic(path string, data []byte, faults *faultfs.Injector, t *obs.Trace) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	h := t.StartChild("persist", "write")
	if err = faults.Fault(faultfs.Write); err == nil {
		_, err = f.Write(data)
	}
	h.End()
	if err == nil {
		h = t.StartChild("persist", "fsync")
		if err = faults.Fault(faultfs.Sync); err == nil {
			err = f.Sync()
		}
		h.End()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		h = t.StartChild("persist", "rename")
		if err = faults.Fault(faultfs.Rename); err == nil {
			err = os.Rename(tmp, path)
		}
		h.End()
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// removeSnapshot drops a session's durable state; called when the session
// itself is deliberately removed (explicit delete, TTL eviction), so the
// data directory always mirrors the live session set.
func (s *Store) removeSnapshot(e *entry) {
	if s.dir == "" {
		return
	}
	if err := os.Remove(s.snapshotPath(e)); err != nil && !os.IsNotExist(err) {
		s.log.Warn("removing snapshot failed", "session", e.id, "err", err)
	}
}

// restoreDir loads every *.snap file in the data directory and registers
// the sessions under their original tokens and owners (both encoded in the
// file names). It runs during store construction, before any traffic.
// Unreadable or corrupt snapshots are skipped with a log line — one bad
// file must not take the daemon down — and left in place for operator
// inspection.
func (s *Store) restoreDir() {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		s.log.Error("creating data dir failed", "dir", s.dir, "err", err)
		return
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "*"+snapSuffix))
	if err != nil {
		s.log.Error("scanning data dir failed", "dir", s.dir, "err", err)
		return
	}
	restored := 0
	// Construction is single-threaded (no janitor, flusher or traffic yet),
	// but the map mutations take the lock anyway to keep the invariant
	// obvious — setLiveLocked requires it.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, path := range names {
		base := strings.TrimSuffix(filepath.Base(path), snapSuffix)
		tenant, token, owned := strings.Cut(base, ownerSep)
		if !owned {
			tenant, token = "", base
		}
		if s.maxLive > 0 && len(s.entries) >= s.maxLive {
			s.log.Warn("session cap reached; not restoring", "cap", s.maxLive, "path", path)
			break
		}
		e, err := s.restoreFile(token, tenant, path)
		if err != nil {
			s.log.Warn("skipping snapshot "+path, "err", err)
			continue
		}
		s.entries[token] = e
		restored++
	}
	s.setLiveLocked()
	if restored > 0 || len(names) > 0 {
		s.log.Info("restored sessions", "count", restored, "dir", s.dir)
	}
	s.reg.Counter("gdrd_sessions_restored_total").Add(int64(restored))
}

// restoreFile rebuilds one session from its snapshot file.
func (s *Store) restoreFile(token, tenant, path string) (*entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name, meta, st, err := snapshot.DecodeStateMeta(data)
	if err != nil {
		return nil, err
	}
	// The snapshot may come from a server with a larger worker budget.
	st.Config.Workers = s.sched.clampSlots(st.Config.Workers)
	sess, err := core.RestoreSession(st)
	if err != nil {
		return nil, fmt.Errorf("restoring session: %w", err)
	}
	e := s.newEntry(sess, token, name, tenant, st.Config.Workers)
	// The on-disk state is exactly what we restored: durable at the
	// snapshot's own watermark, which also seeds the live sequence — a
	// restored session must not restart at 0, or its replica pushes would
	// read as stale. The entry is unpublished, so no lock is needed.
	e.mutSeq.Store(meta.MutSeq)
	e.dedup.restore(meta.Dedup)
	//lint:ignore guardedby pre-publication write: no other goroutine can hold a reference to e yet
	e.hasDurable = true
	//lint:ignore guardedby pre-publication write: no other goroutine can hold a reference to e yet
	e.durableMut = meta.MutSeq
	return e, nil
}

// flusher periodically re-checkpoints sessions whose synchronous write
// failed (the dirty flag survives a failed Checkpoint), so a transient
// disk error does not leave a session undurable forever. Repeatedly
// failing sessions back off exponentially (see entry.ckptFailed) instead
// of hammering a sick disk every tick.
func (s *Store) flusher() {
	defer s.flushWG.Done()
	tick := time.NewTicker(s.ckptEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			now := s.now()
			s.mu.Lock()
			dirty := make([]*entry, 0, len(s.entries))
			for _, e := range s.entries {
				if e != nil && e.isDirty() && e.retryDue(now) {
					dirty = append(dirty, e)
				}
			}
			s.mu.Unlock()
			// The dirty set was harvested in map order; checkpoint in id
			// order so the flush sequence is reproducible.
			sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
			for _, e := range dirty {
				if err := s.Checkpoint(context.Background(), e); err != nil {
					s.log.Warn("periodic checkpoint failed", "session", e.id, "err", err)
				}
			}
		case <-s.flushStop:
			return
		}
	}
}
