package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"gdr/internal/snapshot"
)

// replicaTestToken is a well-formed session token for replica keys.
const replicaTestToken = "0123456789abcdef0123456789abcdef"

// mustSnapshotBytes encodes a valid v2 snapshot for replica pushes.
func mustSnapshotBytes(t testing.TB, mut uint64) []byte {
	t.Helper()
	data, err := snapshot.EncodeStateMeta("replica-test", snapshot.Meta{MutSeq: mut}, mustFigure1State(t))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// pushReplica issues one replica PUT and returns the status code.
func pushReplica(t testing.TB, ts *httptest.Server, key string, seq uint64, data []byte) int {
	t.Helper()
	req, err := http.NewRequest("PUT", ts.URL+"/v1/replicas/"+key, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(MutationSeqHeader, strconv.FormatUint(seq, 10))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestReplicaLifecycle drives the spill store over HTTP: push, list, pull,
// watermark monotonicity, drop.
func TestReplicaLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{ClusterMode: true, DataDir: t.TempDir()})
	key := "acme@" + replicaTestToken
	snap3 := mustSnapshotBytes(t, 3)

	if code := pushReplica(t, ts, key, 3, snap3); code != 200 {
		t.Fatalf("push: status %d", code)
	}
	// Equal watermark: idempotent retry, still 200.
	if code := pushReplica(t, ts, key, 3, snap3); code != 200 {
		t.Fatalf("idempotent re-push: status %d", code)
	}
	// Older watermark: a delayed push must never roll the copy back.
	if code := pushReplica(t, ts, key, 2, mustSnapshotBytes(t, 2)); code != http.StatusConflict {
		t.Fatalf("stale push: status %d, want 409", code)
	}

	var list ReplicaList
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/replicas", nil, &list); code != 200 {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Replicas) != 1 {
		t.Fatalf("list: %+v", list)
	}
	r := list.Replicas[0]
	if r.Key != key || r.Tenant != "acme" || r.Token != replicaTestToken || r.Seq != 3 || r.Size != len(snap3) {
		t.Fatalf("listed replica: %+v", r)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/replicas/" + key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get(MutationSeqHeader) != "3" {
		t.Fatalf("get: status %d, seq %q", resp.StatusCode, resp.Header.Get(MutationSeqHeader))
	}
	if !bytes.Equal(got, snap3) {
		t.Fatal("pulled replica differs from the pushed bytes")
	}

	if code := doJSON(t, ts.Client(), "DELETE", ts.URL+"/v1/replicas/"+key, nil, nil); code != 200 {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, ts.Client(), "DELETE", ts.URL+"/v1/replicas/"+key, nil, nil); code != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", code)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/replicas/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestReplicaPutRejections: corrupt bodies, malformed keys, and missing
// watermarks never reach the disk.
func TestReplicaPutRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{ClusterMode: true})
	good := mustSnapshotBytes(t, 1)

	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)/2] ^= 0xff // CRC mismatch
	if code := pushReplica(t, ts, replicaTestToken, 1, corrupt); code != http.StatusBadRequest {
		t.Fatalf("corrupt body: status %d, want 400", code)
	}
	if code := pushReplica(t, ts, replicaTestToken, 1, []byte("not a snapshot")); code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", code)
	}
	for _, key := range []string{
		"short",                                // not a token
		"UPPER@" + replicaTestToken[:31] + "G", // bad hex
		"bad tenant@" + replicaTestToken,       // space escapes tenantNameRE
		"@" + replicaTestToken,                 // empty tenant with separator
	} {
		if code := pushReplica(t, ts, key, 1, good); code != http.StatusBadRequest {
			t.Fatalf("key %q: status %d, want 400", key, code)
		}
	}
	// Missing watermark header.
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/replicas/"+replicaTestToken, bytes.NewReader(good))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing seq header: status %d, want 400", resp.StatusCode)
	}
}

// TestReplicaEndpointsGated: without cluster mode or an admin key, every
// replica endpoint is forbidden.
func TestReplicaEndpointsGated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := pushReplica(t, ts, replicaTestToken, 1, mustSnapshotBytes(t, 1)); code != http.StatusForbidden {
		t.Fatalf("put: status %d, want 403", code)
	}
	for _, c := range []struct{ method, path string }{
		{"GET", "/v1/replicas"},
		{"GET", "/v1/replicas/" + replicaTestToken},
		{"DELETE", "/v1/replicas/" + replicaTestToken},
	} {
		if code := doJSON(t, ts.Client(), c.method, ts.URL+c.path, nil, nil); code != http.StatusForbidden {
			t.Fatalf("%s %s: status %d, want 403", c.method, c.path, code)
		}
	}
}

// TestReplicaSurvivesRestart: with a data directory, held replicas are
// rescanned on boot — the whole point of the spill store is surviving the
// owner's death, so it must also survive its own host's restart.
func TestReplicaSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{ClusterMode: true, DataDir: dir})
	snap := mustSnapshotBytes(t, 7)
	if code := pushReplica(t, ts, replicaTestToken, 7, snap); code != 200 {
		t.Fatalf("push: status %d", code)
	}
	ts.Close()

	_, ts2 := newTestServer(t, Config{ClusterMode: true, DataDir: dir})
	resp, err := ts2.Client().Get(ts2.URL + "/v1/replicas/" + replicaTestToken)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get(MutationSeqHeader) != "7" {
		t.Fatalf("get after restart: status %d, seq %q", resp.StatusCode, resp.Header.Get(MutationSeqHeader))
	}
	if !bytes.Equal(got, snap) {
		t.Fatal("restored replica differs from the pushed bytes")
	}
	// The watermark survived too: an older push is still stale.
	if code := pushReplica(t, ts2, replicaTestToken, 6, mustSnapshotBytes(t, 6)); code != http.StatusConflict {
		t.Fatalf("stale push after restart: status %d, want 409", code)
	}
}

// TestParseReplicaName: the seq is split on the rightmost dot, so dotted
// tenant names round-trip.
func TestParseReplicaName(t *testing.T) {
	cases := []struct {
		base string
		key  string
		seq  uint64
		ok   bool
	}{
		{"abc.12.replica", "abc", 12, true},
		{"team.a@abc.3.replica", "team.a@abc", 3, true},
		{"abc.replica", "", 0, false},   // no seq
		{".12.replica", "", 0, false},   // empty key
		{"abc.x.replica", "", 0, false}, // non-numeric seq
		{"abc.12.snap", "", 0, false},   // wrong suffix
	}
	for _, c := range cases {
		key, seq, ok := parseReplicaName(c.base)
		if key != c.key || seq != c.seq || ok != c.ok {
			t.Errorf("parseReplicaName(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.base, key, seq, ok, c.key, c.seq, c.ok)
		}
	}
}

// FuzzReplicaPut throws arbitrary keys, watermarks, and bodies at the
// replica PUT handler: it must never panic, never 5xx, and never store a
// body that fails envelope verification.
func FuzzReplicaPut(f *testing.F) {
	valid, err := snapshot.EncodeStateMeta("fuzz", snapshot.Meta{MutSeq: 1}, mustFigure1State(f))
	if err != nil {
		f.Fatal(err)
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(replicaTestToken, "1", valid)
	f.Add("t@"+replicaTestToken, "2", corrupt)
	f.Add("nonsense", "x", []byte("GDRS"))
	f.Add(replicaTestToken, "18446744073709551615", []byte{})

	srv := New(Config{ClusterMode: true})
	f.Cleanup(srv.Close)
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, key, seq string, body []byte) {
		if key == "" || len(key) > 256 {
			return
		}
		// Escape so any key is routable as one path segment; the mux hands
		// the handler the decoded value.
		req := httptest.NewRequest("PUT", "/v1/replicas/"+url.PathEscape(key), bytes.NewReader(body))
		req.Header.Set(MutationSeqHeader, seq)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusConflict, http.StatusNotFound:
		default:
			t.Fatalf("PUT key=%q seq=%q: status %d", key, seq, rec.Code)
		}
		if rec.Code == http.StatusOK {
			// Whatever was accepted must verify — pull it back and check.
			data, _, ok := srv.replicas.get(key)
			if !ok {
				t.Fatalf("stored replica %q not retrievable", key)
			}
			if err := snapshot.Verify(data); err != nil {
				t.Fatalf("stored replica fails verification: %v", err)
			}
		}
	})
}
