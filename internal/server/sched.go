package server

import (
	"context"
	"sync"
	"time"

	"gdr/internal/metrics"
)

// sched is the fair CPU-slot scheduler shared by every session actor (and
// by session construction). It replaces a plain counting semaphore with
// deficit-style fairness across tenants: waiters queue per tenant, and a
// freed slot goes to the eligible tenant currently using the fewest slots
// (ties broken by the smaller lifetime grant count, then arrival order), so
// a hot tenant with a deep backlog cannot monopolize the Workers budget —
// a cold tenant's first command jumps ahead of the hot tenant's fortieth.
//
// Grants are all-or-nothing: a waiter needing n slots is granted only when
// n are free, and nothing is handed out while the chosen head waiter cannot
// fit (slots accumulate for it instead), which is what makes multi-slot
// acquisition deadlock- and starvation-free — the property the old
// acquireSlots mutex provided, now with fairness.
type sched struct {
	capacity int
	// waitHist, when set, observes the seconds each acquire spent waiting
	// for its slots (the queueing-delay signal dashboards watch).
	waitHist *metrics.Histogram

	mu      sync.Mutex
	free    int                     // gdr:guarded-by mu
	seq     uint64                  // gdr:guarded-by mu — arrival stamp for FIFO ties
	tenants map[string]*schedTenant // gdr:guarded-by mu
	order   []*schedTenant          // gdr:guarded-by mu — creation order, for deterministic scans
}

// schedTenant is one tenant's scheduling state. Every mutable field is
// guarded by the owning sched's mu.
type schedTenant struct {
	name    string
	inUse   int       // slots held right now
	granted uint64    // lifetime grants, the deficit tie-break
	waiters []*waiter // FIFO
}

// waiter is one queued acquisition; granted is guarded by the owning
// sched's mu.
type waiter struct {
	n       int
	seq     uint64
	ready   chan struct{}
	granted bool
}

func newSched(capacity int, waitHist *metrics.Histogram) *sched {
	if capacity < 1 {
		capacity = 1
	}
	return &sched{
		capacity: capacity,
		waitHist: waitHist,
		free:     capacity,
		tenants:  make(map[string]*schedTenant),
	}
}

// clampSlots bounds a requested fan-out to what the scheduler can ever
// grant at once.
func (s *sched) clampSlots(n int) int {
	if n < 1 {
		return 1
	}
	if n > s.capacity {
		return s.capacity
	}
	return n
}

func (s *sched) tenantLocked(name string) *schedTenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &schedTenant{name: name}
		s.tenants[name] = t
		s.order = append(s.order, t)
	}
	return t
}

// acquire takes n slots on behalf of tenant, waiting its fair turn. A ctx
// expiry while waiting removes the waiter and leaves nothing held — even
// when it races a concurrent grant, the granted slots are returned before
// the error, so cancellation can never leak slots.
func (s *sched) acquire(ctx context.Context, tenant string, n int) error {
	n = s.clampSlots(n)
	start := time.Now()
	s.mu.Lock()
	t := s.tenantLocked(tenant)
	w := &waiter{n: n, seq: s.seq, ready: make(chan struct{})}
	s.seq++
	t.waiters = append(t.waiters, w)
	s.dispatchLocked()
	granted := w.granted
	s.mu.Unlock()
	if granted {
		s.observeWait(start)
		return nil
	}
	select {
	case <-w.ready:
		s.observeWait(start)
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Lost the race with a grant: give the slots straight back.
			t.inUse -= n
			s.free += n
			s.dispatchLocked()
			s.mu.Unlock()
			return ctx.Err()
		}
		for i, cand := range t.waiters {
			if cand == w {
				t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// release returns n slots taken by acquire and hands them to whoever is
// next by the fairness order.
func (s *sched) release(tenant string, n int) {
	n = s.clampSlots(n)
	s.mu.Lock()
	t := s.tenantLocked(tenant)
	t.inUse -= n
	s.free += n
	s.dispatchLocked()
	s.mu.Unlock()
}

// dispatchLocked grants as many queued waiters as the free slots allow,
// always picking the most deserving tenant first. When that tenant's head
// waiter needs more slots than are free, dispatch stops entirely — the
// slots accumulate for it rather than leaking to narrower latecomers, so a
// wide (multi-slot) acquisition is never starved.
func (s *sched) dispatchLocked() {
	for {
		var best *schedTenant
		for _, t := range s.order {
			if len(t.waiters) == 0 {
				continue
			}
			if best == nil || tenantBefore(t, best) {
				best = t
			}
		}
		if best == nil {
			return
		}
		w := best.waiters[0]
		if w.n > s.free {
			return
		}
		best.waiters = best.waiters[1:]
		s.free -= w.n
		best.inUse += w.n
		best.granted++
		w.granted = true
		close(w.ready)
	}
}

// tenantBefore is the fairness order: fewest slots in use first, then the
// smaller lifetime grant count (deficit round-robin), then the earlier
// head waiter. The final tie-break is a unique arrival stamp, so the
// relation is a strict total order and dispatch is deterministic.
func tenantBefore(a, b *schedTenant) bool {
	if a.inUse != b.inUse {
		return a.inUse < b.inUse
	}
	if a.granted != b.granted {
		return a.granted < b.granted
	}
	return a.waiters[0].seq < b.waiters[0].seq
}

func (s *sched) observeWait(start time.Time) {
	if s.waitHist != nil {
		s.waitHist.ObserveSince(start)
	}
}
