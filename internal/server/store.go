package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gdr/internal/cfd"
	"gdr/internal/core"
	"gdr/internal/metrics"
	"gdr/internal/relation"
)

// Store owns the live sessions of one server: creation from an uploaded
// instance, token lookup, a cap on concurrently live sessions, and
// TTL-based eviction of idle ones (touched on every lookup). All session
// work after creation goes through each entry's actor.
type Store struct {
	ttl     time.Duration
	maxLive int
	session core.Config // per-session defaults (Seed/Workers overridable per request)
	budget  chan struct{}
	reg     *metrics.Registry
	now     func() time.Time

	// acquireMu serializes multi-slot budget acquisition across actors
	// (see actor.acquire).
	acquireMu sync.Mutex

	mu      sync.Mutex
	entries map[string]*entry
	closed  bool

	janitorStop chan struct{}
	janitorWG   sync.WaitGroup
}

// entry is one live session: its actor, immutable metadata, and the
// lastUsed stamp eviction works from.
type entry struct {
	id      string
	name    string
	created time.Time
	attrs   []string
	tuples  int
	rules   int
	actor   *actor

	mu       sync.Mutex
	lastUsed time.Time
}

func (e *entry) touch(now time.Time) {
	e.mu.Lock()
	e.lastUsed = now
	e.mu.Unlock()
}

func (e *entry) idleSince() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastUsed
}

// info snapshots the entry's wire description. Expiry is projected from
// the last use, so an actively driven session never shows as expiring.
func (e *entry) info(ttl time.Duration) SessionInfo {
	return SessionInfo{
		ID:        e.id,
		Name:      e.name,
		Tuples:    e.tuples,
		Attrs:     e.attrs,
		Rules:     e.rules,
		CreatedAt: e.created,
		ExpiresAt: e.idleSince().Add(ttl),
	}
}

// NewStore builds a store. ttl bounds session idleness, maxLive the number
// of concurrently live sessions, and workers the CPU slots shared by every
// actor (the server's Workers knob). reg receives the store's gauges and
// counters.
func NewStore(ttl time.Duration, maxLive, workers int, session core.Config, reg *metrics.Registry) *Store {
	if workers < 1 {
		workers = 1
	}
	s := &Store{
		ttl:         ttl,
		maxLive:     maxLive,
		session:     session,
		budget:      make(chan struct{}, workers),
		reg:         reg,
		now:         time.Now,
		entries:     make(map[string]*entry),
		janitorStop: make(chan struct{}),
	}
	interval := ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	s.janitorWG.Add(1)
	go s.janitor(interval)
	return s
}

func (s *Store) janitor(interval time.Duration) {
	defer s.janitorWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.evictIdle()
		case <-s.janitorStop:
			return
		}
	}
}

// evictIdle removes every session idle for longer than the TTL.
func (s *Store) evictIdle() {
	deadline := s.now().Add(-s.ttl)
	var victims []*entry
	s.mu.Lock()
	for id, e := range s.entries {
		if e == nil {
			continue // cap reservation: a Create is mid-build
		}
		if e.idleSince().Before(deadline) {
			delete(s.entries, id)
			victims = append(victims, e)
		}
	}
	s.setLiveLocked()
	s.mu.Unlock()
	for _, e := range victims {
		e.actor.close()
		s.reg.Counter("gdrd_sessions_evicted_total").Inc()
	}
}

// setLiveLocked refreshes the live-session gauge. It must run under s.mu:
// publishing a count computed inside the lock after releasing it lets two
// concurrent mutations land their Sets out of order and strand a stale
// value.
func (s *Store) setLiveLocked() {
	n := 0
	for _, e := range s.entries {
		if e != nil {
			n++
		}
	}
	s.reg.Gauge("gdrd_sessions_live").Set(int64(n))
}

// newToken returns a 128-bit random session token.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session token: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create parses the uploaded CSV instance and rule set, builds the session
// (holding one CPU slot: construction runs the initial suggestion pass) and
// registers it under a fresh token. It fails with ErrTooManySessions when
// the live cap is reached, and honors ctx while waiting for a CPU slot —
// a caller that gives up does not leave an orphan session pinning the cap.
func (s *Store) Create(ctx context.Context, req CreateSessionRequest) (SessionInfo, core.Stats, error) {
	if strings.TrimSpace(req.CSV) == "" {
		return SessionInfo{}, core.Stats{}, fmt.Errorf("%w: empty csv", ErrBadUpload)
	}
	db, err := relation.ReadCSV(strings.NewReader(req.CSV), "upload")
	if err != nil {
		return SessionInfo{}, core.Stats{}, fmt.Errorf("%w: %v", ErrBadUpload, err)
	}
	rules, err := cfd.Parse(strings.NewReader(req.Rules))
	if err != nil {
		return SessionInfo{}, core.Stats{}, fmt.Errorf("%w: %v", ErrBadUpload, err)
	}
	if len(rules) == 0 {
		return SessionInfo{}, core.Stats{}, fmt.Errorf("%w: empty rule set", ErrBadUpload)
	}
	cfg := s.session
	if req.Seed != 0 {
		cfg.Seed = req.Seed // 0 (or omitted) keeps the server default
	}
	if req.Workers > 0 {
		cfg.Workers = req.Workers
	}
	// Clamp the session's actual fan-out, not just its slot accounting:
	// a session must never run wider than the budget it can hold.
	cfg.Workers = clampSlots(s.budget, cfg.Workers)

	// Reserve the slot in the cap before the expensive build, so a burst
	// of concurrent creates cannot overshoot it; the reservation is rolled
	// back if the build fails.
	token, err := newToken()
	if err != nil {
		return SessionInfo{}, core.Stats{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SessionInfo{}, core.Stats{}, ErrSessionClosed
	}
	if s.maxLive > 0 && len(s.entries) >= s.maxLive {
		s.mu.Unlock()
		return SessionInfo{}, core.Stats{}, ErrTooManySessions
	}
	s.entries[token] = nil // reservation
	s.mu.Unlock()
	rollback := func() {
		s.mu.Lock()
		delete(s.entries, token)
		s.mu.Unlock()
	}

	// Creation runs the initial suggestion pass with cfg.Workers-way
	// fan-out, so it must hold that many slots — the same accounting the
	// actors enforce — or concurrent builds would overshoot the CPU budget
	// and starve live sessions' commands.
	if err := acquireSlots(ctx, &s.acquireMu, s.budget, cfg.Workers); err != nil {
		rollback()
		return SessionInfo{}, core.Stats{}, err
	}
	sess, err := core.NewSession(db, rules, cfg)
	releaseSlots(s.budget, cfg.Workers)
	if err != nil {
		rollback()
		return SessionInfo{}, core.Stats{}, fmt.Errorf("%w: %v", ErrBadUpload, err)
	}
	if ctx.Err() != nil {
		// The client vanished mid-build: registering the session anyway
		// would pin a cap slot under a token nobody holds, until the TTL.
		rollback()
		return SessionInfo{}, core.Stats{}, ctx.Err()
	}

	now := s.now()
	e := &entry{
		id:       token,
		name:     req.Name,
		created:  now,
		lastUsed: now,
		attrs:    append([]string(nil), db.Schema.Attrs...),
		tuples:   db.N(),
		rules:    len(rules),
		actor:    newActor(sess, s.budget, cfg.Workers, &s.acquireMu),
	}
	st := sess.Stats()
	s.mu.Lock()
	if s.closed {
		delete(s.entries, token)
		s.mu.Unlock()
		e.actor.close()
		return SessionInfo{}, core.Stats{}, ErrSessionClosed
	}
	s.entries[token] = e
	s.setLiveLocked()
	s.mu.Unlock()
	s.reg.Counter("gdrd_sessions_created_total").Inc()
	return e.info(s.ttl), st, nil
}

// Get returns the live entry for a token, refreshing its idle clock. An
// entry past its TTL is evicted on the spot, whatever the janitor's phase.
func (s *Store) Get(id string) (*entry, bool) {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok || e == nil { // unknown, or still being built
		s.mu.Unlock()
		return nil, false
	}
	now := s.now()
	if e.idleSince().Before(now.Add(-s.ttl)) {
		delete(s.entries, id)
		s.setLiveLocked()
		s.mu.Unlock()
		e.actor.close()
		s.reg.Counter("gdrd_sessions_evicted_total").Inc()
		return nil, false
	}
	// Touch before releasing s.mu: a janitor tick between unlock and touch
	// would still see the stale idle stamp and evict a session that is
	// actively in use.
	e.touch(now)
	s.mu.Unlock()
	return e, true
}

// Delete removes a session and stops its actor; it reports whether the
// token was live.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok || e == nil {
		s.mu.Unlock()
		return false
	}
	delete(s.entries, id)
	s.setLiveLocked()
	s.mu.Unlock()
	e.actor.close()
	return true
}

// List snapshots every live session, ordered by creation time then token.
func (s *Store) List() []SessionInfo {
	s.mu.Lock()
	out := make([]SessionInfo, 0, len(s.entries))
	for _, e := range s.entries {
		if e == nil {
			continue
		}
		out = append(out, e.info(s.ttl))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the live-session count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if e != nil {
			n++
		}
	}
	return n
}

// Close stops the janitor and every actor, draining in-flight commands.
// New creates and lookups fail afterwards.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	victims := make([]*entry, 0, len(s.entries))
	for id, e := range s.entries {
		delete(s.entries, id)
		if e != nil {
			victims = append(victims, e)
		}
	}
	s.setLiveLocked()
	s.mu.Unlock()
	close(s.janitorStop)
	s.janitorWG.Wait()
	for _, e := range victims {
		e.actor.close()
	}
}
