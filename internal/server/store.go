package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdr/internal/cfd"
	"gdr/internal/core"
	"gdr/internal/faultfs"
	"gdr/internal/metrics"
	"gdr/internal/relation"
	"gdr/internal/snapshot"
)

// Store owns the live sessions of one server: creation from an uploaded
// instance (or an imported snapshot), token lookup, a cap on concurrently
// live sessions, and TTL-based eviction of idle ones (touched on every
// lookup). All session work after creation goes through each entry's actor,
// with CPU slots granted tenant-fairly by the shared scheduler. Sessions
// created by an authenticated tenant are owned by it: other tenants cannot
// see or touch them. With a data directory configured, the store is also
// the persistence tier: it checkpoints sessions to disk, restores them on
// construction, and flushes a final checkpoint of every live session on
// Close.
type Store struct {
	ttl        time.Duration
	maxLive    int
	session    core.Config // per-session defaults (Seed/Workers overridable per request)
	sched      *sched      // tenant-fair CPU slot scheduler
	queueDepth int
	faults     *faultfs.Injector
	reg        *metrics.Registry
	now        func() time.Time

	// dir is the snapshot directory ("" disables persistence); ckptEvery
	// the periodic flusher cadence; log the store's structured sink (never nil).
	dir       string
	ckptEvery time.Duration
	log       *slog.Logger

	mu      sync.Mutex
	entries map[string]*entry // gdr:guarded-by mu
	closed  bool              // gdr:guarded-by mu

	janitorStop chan struct{}
	janitorWG   sync.WaitGroup
	flushStop   chan struct{}
	flushWG     sync.WaitGroup
}

// entry is one live session: its actor, immutable metadata, and the
// lastUsed stamp eviction works from.
type entry struct {
	id      string
	name    string
	tenant  string // owning tenant; "" = unowned (open mode), visible to all
	created time.Time
	attrs   []string
	tuples  int
	rules   int
	actor   *actor

	// etagSalt scopes /groups cache validators to this in-memory incarnation
	// of the session. The ranking version is derived, unpersisted state that
	// restarts when a snapshot is restored; without the salt, a client
	// holding a pre-restart ETag could get a false 304 once the restored
	// session's version counter passes the old value again. Empty disables
	// conditional responses for the entry (fail-safe).
	etagSalt string

	// mutSeq counts the session's state mutations; it is bumped inside the
	// actor command that performs the mutation, so a snapshot encoded on
	// the actor observes a value consistent with the state it captured.
	// ckptMu guards the durability watermark: durableMut is the mutSeq the
	// newest on-disk snapshot captured (valid once hasDurable). An entry is
	// dirty — needing a checkpoint — while mutSeq is ahead of the
	// watermark; comparing sequences (instead of a boolean) means a stale
	// in-flight snapshot can neither overwrite a newer file nor mark newer,
	// unflushed mutations as durable.
	mutSeq atomic.Uint64

	// dedup is the feedback replay window. Actor-confined, like the session
	// itself: only commands running on the entry's actor may touch it, which
	// is what keeps a snapshot's state and dedup window mutually consistent.
	dedup *dedupWindow

	ckptMu     sync.Mutex
	durableMut uint64 // gdr:guarded-by ckptMu
	hasDurable bool   // gdr:guarded-by ckptMu

	// Checkpoint retry backoff, consulted only by the periodic flusher: a
	// session whose disk keeps failing is retried with exponentially growing
	// spacing instead of hammering the sick disk every tick.
	ckptFails int       // gdr:guarded-by ckptMu — consecutive failures
	nextCkpt  time.Time // gdr:guarded-by ckptMu — flusher holds off until then

	mu       sync.Mutex
	lastUsed time.Time // gdr:guarded-by mu
	// leases counts operations that must not lose the session mid-flight —
	// a snapshot export the cluster proxy is streaming for a migration.
	// While any lease is held, the janitor (and the lazy lookup-time check)
	// treats the entry as in use: without this, a TTL tick during a slow
	// export could evict the source session the importing node is about to
	// take over, losing it from both.
	leases int // gdr:guarded-by mu
}

// acquireLease pins the entry against TTL eviction; release with
// releaseLease. Acquisition also refreshes the idle clock, so back-to-back
// exports behave like any other use.
func (e *entry) acquireLease(now time.Time) {
	e.mu.Lock()
	e.leases++
	e.lastUsed = now
	e.mu.Unlock()
}

// releaseLease drops one lease and restamps the idle clock — the TTL
// countdown starts from the end of the leased operation, not its start.
func (e *entry) releaseLease(now time.Time) {
	e.mu.Lock()
	e.leases--
	e.lastUsed = now
	e.mu.Unlock()
}

// evictable reports whether the entry may be TTL-evicted: idle past the
// deadline and not pinned by any lease.
func (e *entry) evictable(deadline time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.leases == 0 && e.lastUsed.Before(deadline)
}

// newEntry wraps a freshly built session in its entry: the metadata
// snapshot, the actor that owns the session from here on, and the ETag
// salt. Taking the session as a parameter keeps the reads here inside the
// actor-confinement rule: only a caller that legitimately holds the
// freshly built session can hand it in.
func (s *Store) newEntry(sess *core.Session, token, name, tenant string, workers int) *entry {
	db, nrules := sess.DB(), len(sess.Engine().Rules())
	now := s.now()
	return &entry{
		id:       token,
		name:     name,
		tenant:   tenant,
		created:  now,
		lastUsed: now,
		attrs:    append([]string(nil), db.Schema.Attrs...),
		tuples:   db.N(),
		rules:    nrules,
		actor:    newActor(sess, s.sched, workers, tenant, s.queueDepth, s.reg, s.faults),
		etagSalt: newETagSalt(),
		dedup:    newDedupWindow(),
	}
}

// visibleTo reports whether a caller with the given ownership tag may see
// this entry. Unowned entries (open mode, or restored from before auth was
// enabled) are visible to everyone; an empty caller tag — open mode — sees
// everything, because there is no one to hide it from.
func (e *entry) visibleTo(owner string) bool {
	return e.tenant == "" || owner == "" || e.tenant == owner
}

// isDirty reports whether the session has state not yet captured by an
// on-disk snapshot.
func (e *entry) isDirty() bool {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return !e.hasDurable || e.mutSeq.Load() > e.durableMut
}

// markUndurable invalidates the durability watermark, as if the last
// checkpoint had never landed (the on-disk file is gone or stale).
func (e *entry) markUndurable() {
	e.ckptMu.Lock()
	e.hasDurable = false
	e.ckptMu.Unlock()
}

// ckptFailed records one failed checkpoint and schedules the flusher's next
// attempt: base spacing doubles per consecutive failure, capped at 32×.
func (e *entry) ckptFailed(now time.Time, base time.Duration) {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	shift := e.ckptFails
	if shift > 5 {
		shift = 5
	}
	e.ckptFails++
	e.nextCkpt = now.Add(base << shift)
}

// ckptSucceeded resets the retry backoff after a landed checkpoint.
func (e *entry) ckptSucceeded() {
	e.ckptMu.Lock()
	e.ckptFails = 0
	e.nextCkpt = time.Time{}
	e.ckptMu.Unlock()
}

// retryDue reports whether the flusher should attempt this entry yet.
func (e *entry) retryDue(now time.Time) bool {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return !now.Before(e.nextCkpt)
}

func (e *entry) touch(now time.Time) {
	e.mu.Lock()
	e.lastUsed = now
	e.mu.Unlock()
}

func (e *entry) idleSince() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastUsed
}

// info snapshots the entry's wire description. Expiry is projected from
// the last use, so an actively driven session never shows as expiring.
func (e *entry) info(ttl time.Duration) SessionInfo {
	return SessionInfo{
		ID:        e.id,
		Name:      e.name,
		Tenant:    e.tenant,
		Tuples:    e.tuples,
		Attrs:     e.attrs,
		Rules:     e.rules,
		CreatedAt: e.created,
		ExpiresAt: e.idleSince().Add(ttl),
		MutSeq:    e.mutSeq.Load(),
	}
}

// NewStore builds a store from an already-defaulted server Config (TTL,
// session cap, worker budget, per-session defaults, persistence settings).
// reg receives the store's gauges and counters. When cfg.DataDir is set,
// every existing snapshot in it is restored before the store starts
// serving, and the periodic checkpoint flusher is started.
func NewStore(cfg Config, reg *metrics.Registry) *Store {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	s := &Store{
		ttl:         cfg.TTL,
		maxLive:     cfg.MaxSessions,
		session:     cfg.Session,
		sched:       newSched(workers, reg.Histogram("gdrd_slot_wait_seconds")),
		queueDepth:  cfg.QueueDepth,
		faults:      cfg.Faults,
		reg:         reg,
		now:         time.Now,
		dir:         cfg.DataDir,
		ckptEvery:   cfg.CheckpointEvery,
		log:         cfg.logger(),
		entries:     make(map[string]*entry),
		janitorStop: make(chan struct{}),
		flushStop:   make(chan struct{}),
	}
	if s.dir != "" {
		s.restoreDir()
		s.flushWG.Add(1)
		go s.flusher()
	}
	interval := cfg.TTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	s.janitorWG.Add(1)
	go s.janitor(interval)
	return s
}

func (s *Store) janitor(interval time.Duration) {
	defer s.janitorWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.evictIdle()
		case <-s.janitorStop:
			return
		}
	}
}

// evictIdle removes every session idle for longer than the TTL.
func (s *Store) evictIdle() {
	deadline := s.now().Add(-s.ttl)
	var victims []*entry
	s.mu.Lock()
	for id, e := range s.entries {
		if e == nil {
			continue // cap reservation: a Create is mid-build
		}
		if e.evictable(deadline) {
			delete(s.entries, id)
			victims = append(victims, e)
		}
	}
	s.setLiveLocked()
	s.mu.Unlock()
	// Victims were harvested in map order; evict oldest-idle first so the
	// teardown sequence (and its log/metric trail) is reproducible.
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, e := range victims {
		e.actor.close()
		s.removeSnapshot(e)
		s.reg.Counter("gdrd_sessions_evicted_total").Inc()
	}
}

// setLiveLocked refreshes the live-session gauge. It must run under s.mu:
// publishing a count computed inside the lock after releasing it lets two
// concurrent mutations land their Sets out of order and strand a stale
// value.
func (s *Store) setLiveLocked() {
	n := 0
	for _, e := range s.entries {
		if e != nil {
			n++
		}
	}
	s.reg.Gauge("gdrd_sessions_live").Set(int64(n))
}

// newToken returns a 128-bit random session token.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session token: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// validToken reports whether an assigned token has the exact shape
// newToken produces (32 lowercase hex characters) — anything else would
// break snapshot file naming and the proxy's hash routing.
func validToken(t string) bool {
	if len(t) != 32 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newETagSalt returns a short random incarnation marker for entry.etagSalt,
// or "" when entropy is unavailable (which merely disables 304s).
func newETagSalt() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// Create builds a session owned by nobody — the open-mode path and the
// compatibility entry point for embedders; see CreateAs.
func (s *Store) Create(ctx context.Context, req CreateSessionRequest) (SessionInfo, core.Stats, error) {
	return s.CreateAs(ctx, "", req)
}

// CreateAs builds and registers a session under a fresh token, owned by the
// given tenant tag ("" = unowned), from either an uploaded CSV instance
// plus rule set, or an exported snapshot (restore-on-create). Construction
// holds CPU slots matching the session's fan-out — acquired fairly against
// the owning tenant, so one tenant's create burst cannot freeze everyone's
// feedback — with the upload path running the initial suggestion pass and
// the snapshot path rebuilding the violation engine and retraining
// committees. It fails with ErrTooManySessions when the live cap is
// reached, and honors ctx while waiting for CPU slots — a caller that gives
// up does not leave an orphan session pinning the cap.
func (s *Store) CreateAs(ctx context.Context, tenant string, req CreateSessionRequest) (SessionInfo, core.Stats, error) {
	var build func() (*core.Session, error)
	var workers int
	var meta snapshot.Meta
	name := req.Name
	if len(req.Snapshot) > 0 {
		b, w, n, m, err := s.importBuild(req)
		if err != nil {
			return SessionInfo{}, core.Stats{}, err
		}
		build, workers, meta = b, w, m
		if name == "" {
			name = n
		}
	} else {
		b, w, err := s.uploadBuild(req)
		if err != nil {
			return SessionInfo{}, core.Stats{}, err
		}
		build, workers = b, w
	}

	// Reserve the slot in the cap before the expensive build, so a burst
	// of concurrent creates cannot overshoot it; the reservation is rolled
	// back if the build fails.
	token := req.Token
	if token != "" {
		if !validToken(token) {
			return SessionInfo{}, core.Stats{}, fmt.Errorf("%w: assigned token must be 32 lowercase hex characters", ErrBadUpload)
		}
	} else {
		fresh, err := newToken()
		if err != nil {
			return SessionInfo{}, core.Stats{}, err
		}
		token = fresh
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SessionInfo{}, core.Stats{}, ErrSessionClosed
	}
	if _, exists := s.entries[token]; exists {
		// Random tokens never collide; a pre-assigned one may — the proxy's
		// migration dedup depends on this conflict being reported, not
		// silently clobbering the live session.
		s.mu.Unlock()
		return SessionInfo{}, core.Stats{}, ErrTokenInUse
	}
	if s.maxLive > 0 && len(s.entries) >= s.maxLive {
		s.mu.Unlock()
		return SessionInfo{}, core.Stats{}, ErrTooManySessions
	}
	s.entries[token] = nil // reservation
	s.mu.Unlock()
	rollback := func() {
		s.mu.Lock()
		delete(s.entries, token)
		s.mu.Unlock()
	}

	// Construction runs with workers-way fan-out, so it must hold that many
	// slots — the same accounting the actors enforce — or concurrent builds
	// would overshoot the CPU budget and starve live sessions' commands.
	if err := s.sched.acquire(ctx, tenant, workers); err != nil {
		rollback()
		return SessionInfo{}, core.Stats{}, errExpiredQueued()
	}
	sess, err := build()
	s.sched.release(tenant, workers)
	if err != nil {
		rollback()
		return SessionInfo{}, core.Stats{}, fmt.Errorf("%w: %v", ErrBadUpload, err)
	}
	if ctx.Err() != nil {
		// The client vanished mid-build: registering the session anyway
		// would pin a cap slot under a token nobody holds, until the TTL.
		rollback()
		return SessionInfo{}, core.Stats{}, ctx.Err()
	}

	e := s.newEntry(sess, token, name, tenant, workers)
	// An imported snapshot carries its mutation watermark and dedup window;
	// the entry is unpublished and its actor quiescent, so these restores
	// race nothing. Without them a migrated session would restart at
	// sequence 0 and the proxy would take its next replica push for stale.
	e.mutSeq.Store(meta.MutSeq)
	e.dedup.restore(meta.Dedup)
	//lint:ignore actorconfine construction-time read: the actor was just created and has processed nothing, so the session is still quiescent
	st := sess.Stats()
	s.mu.Lock()
	if s.closed {
		delete(s.entries, token)
		s.mu.Unlock()
		e.actor.close()
		return SessionInfo{}, core.Stats{}, ErrSessionClosed
	}
	s.entries[token] = e
	s.setLiveLocked()
	s.mu.Unlock()
	s.reg.Counter("gdrd_sessions_created_total").Inc()
	// Make the newborn durable right away: a crash between creation and the
	// first feedback must not lose the upload. (A fresh entry has no
	// durability watermark, so it counts as dirty until this lands; a
	// failure here is retried by the periodic flusher.)
	if err := s.Checkpoint(ctx, e); err != nil {
		s.log.Warn("initial checkpoint failed", "session", token, "err", err)
	}
	return e.info(s.ttl), st, nil
}

// uploadBuild validates a CSV + rules upload and returns the session
// constructor for it, plus the worker fan-out it will hold while building.
func (s *Store) uploadBuild(req CreateSessionRequest) (build func() (*core.Session, error), workers int, err error) {
	if strings.TrimSpace(req.CSV) == "" {
		return nil, 0, fmt.Errorf("%w: empty csv", ErrBadUpload)
	}
	db, err := relation.ReadCSV(strings.NewReader(req.CSV), "upload")
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadUpload, err)
	}
	rules, err := cfd.Parse(strings.NewReader(req.Rules))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadUpload, err)
	}
	if len(rules) == 0 {
		return nil, 0, fmt.Errorf("%w: empty rule set", ErrBadUpload)
	}
	cfg := s.session
	if req.Seed != 0 {
		cfg.Seed = req.Seed // 0 (or omitted) keeps the server default
	}
	if req.Workers > 0 {
		cfg.Workers = req.Workers
	}
	// Clamp the session's actual fan-out, not just its slot accounting:
	// a session must never run wider than the budget it can hold.
	cfg.Workers = s.sched.clampSlots(cfg.Workers)
	return func() (*core.Session, error) { return core.NewSession(db, rules, cfg) }, cfg.Workers, nil
}

// importBuild validates a snapshot upload (restore-on-create) and returns
// the session constructor for it. The snapshot carries the session's own
// configuration; only Workers may be overridden (clamped to the budget
// either way), because overriding Seed would desynchronize the restored
// session's recorded randomness from its state.
func (s *Store) importBuild(req CreateSessionRequest) (build func() (*core.Session, error), workers int, name string, meta snapshot.Meta, err error) {
	if strings.TrimSpace(req.CSV) != "" || strings.TrimSpace(req.Rules) != "" {
		return nil, 0, "", meta, fmt.Errorf("%w: a snapshot upload cannot also carry csv or rules", ErrBadUpload)
	}
	if req.Seed != 0 {
		return nil, 0, "", meta, fmt.Errorf("%w: seed cannot be overridden when restoring a snapshot", ErrBadUpload)
	}
	name, meta, st, err := snapshot.DecodeStateMeta(req.Snapshot)
	if err != nil {
		return nil, 0, "", meta, fmt.Errorf("%w: %v", ErrBadUpload, err)
	}
	if err := validateImportConfig(st.Config); err != nil {
		return nil, 0, "", meta, err
	}
	if req.Workers > 0 {
		st.Config.Workers = req.Workers
	}
	st.Config.Workers = s.sched.clampSlots(st.Config.Workers)
	return func() (*core.Session, error) { return core.RestoreSession(st) }, st.Config.Workers, name, meta, nil
}

// validateImportConfig bounds the session configuration arriving inside an
// untrusted snapshot. The upload path only ever exposes Seed and Workers —
// everything else is server-chosen — so an imported config far outside
// what this server would create (million-tree committees, unbounded
// depths) is a resource-exhaustion attempt, not a legitimate migration,
// and is rejected rather than silently clamped (clamping would break the
// byte-identical-resume guarantee).
func validateImportConfig(c core.Config) error {
	limits := []struct {
		name string
		v    int
		max  int
	}{
		{"forest committee size", c.Forest.K, 256},
		{"forest depth", c.Forest.MaxDepth, 256},
		{"forest min leaf", c.Forest.MinLeaf, 1 << 20},
		{"forest mtry", c.Forest.Mtry, 1 << 16},
		{"min train", c.MinTrain, 1 << 20},
		{"min verify", c.MinVerify, 1 << 20},
		{"batch size", c.BatchSize, 1 << 20},
		{"workers", c.Workers, 1 << 16},
	}
	for _, l := range limits {
		if l.v > l.max {
			return fmt.Errorf("%w: snapshot %s %d exceeds limit %d", ErrBadUpload, l.name, l.v, l.max)
		}
	}
	if f := c.Forest.SampleFrac; f < 0 || f > 1 {
		return fmt.Errorf("%w: snapshot sample fraction %v outside [0, 1]", ErrBadUpload, f)
	}
	return nil
}

// Get returns the live entry for a token, refreshing its idle clock — with
// no ownership check; see GetFor.
func (s *Store) Get(id string) (*entry, bool) {
	return s.GetFor(id, "")
}

// GetFor returns the live entry for a token if it is visible to the caller
// (the entry is unowned, or owned by the caller's tenant), refreshing its
// idle clock. An invisible entry is indistinguishable from a missing one —
// tokens are secrets, and a 403 would confirm one exists. An entry past
// its TTL is evicted on the spot, whatever the janitor's phase.
func (s *Store) GetFor(id, owner string) (*entry, bool) {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok || e == nil { // unknown, or still being built
		s.mu.Unlock()
		return nil, false
	}
	if !e.visibleTo(owner) {
		s.mu.Unlock()
		return nil, false
	}
	now := s.now()
	if e.evictable(now.Add(-s.ttl)) {
		delete(s.entries, id)
		s.setLiveLocked()
		s.mu.Unlock()
		e.actor.close()
		s.removeSnapshot(e)
		s.reg.Counter("gdrd_sessions_evicted_total").Inc()
		return nil, false
	}
	// Touch before releasing s.mu: a janitor tick between unlock and touch
	// would still see the stale idle stamp and evict a session that is
	// actively in use.
	e.touch(now)
	s.mu.Unlock()
	return e, true
}

// Delete removes a session with no ownership check; see DeleteFor.
func (s *Store) Delete(id string) bool {
	return s.DeleteFor(id, "")
}

// DeleteFor removes a session visible to the caller and stops its actor; it
// reports whether such a session was live (an invisible one reads as
// missing, like GetFor).
func (s *Store) DeleteFor(id, owner string) bool {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok || e == nil || !e.visibleTo(owner) {
		s.mu.Unlock()
		return false
	}
	delete(s.entries, id)
	s.setLiveLocked()
	s.mu.Unlock()
	e.actor.close()
	s.removeSnapshot(e)
	return true
}

// List snapshots every live session with no ownership filter; see ListFor.
func (s *Store) List() []SessionInfo {
	return s.ListFor("")
}

// ListFor snapshots every live session visible to the caller, ordered by
// creation time then token.
func (s *Store) ListFor(owner string) []SessionInfo {
	s.mu.Lock()
	out := make([]SessionInfo, 0, len(s.entries))
	for _, e := range s.entries {
		if e == nil || !e.visibleTo(owner) {
			continue
		}
		out = append(out, e.info(s.ttl))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the live-session count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if e != nil {
			n++
		}
	}
	return n
}

// Close stops the janitor and the checkpoint flusher, flushes a final
// checkpoint of every live session that still has undurable state (so a
// graceful drain never loses feedback), then stops every actor, draining
// in-flight commands. New creates and lookups fail afterwards.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	victims := make([]*entry, 0, len(s.entries))
	for id, e := range s.entries {
		delete(s.entries, id)
		if e != nil {
			victims = append(victims, e)
		}
	}
	s.setLiveLocked()
	s.mu.Unlock()
	// Map-order harvest; sort so the final-checkpoint and shutdown sequence
	// is reproducible across runs.
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	close(s.janitorStop)
	s.janitorWG.Wait()
	if s.dir != "" {
		close(s.flushStop)
		s.flushWG.Wait()
		for _, e := range victims {
			// The actor is still live here, so the final encode sees the
			// session's last state; errors are logged, not fatal — the
			// session is going away either way.
			if e.isDirty() {
				if err := s.Checkpoint(context.Background(), e); err != nil {
					s.log.Warn("final checkpoint failed", "session", e.id, "err", err)
				}
			}
		}
	}
	for _, e := range victims {
		e.actor.close()
	}
}
