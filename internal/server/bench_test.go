package server

import (
	"net/http"
	"testing"

	"gdr/internal/core"
)

// benchPollServer uploads one 2000-row hospital tenant and returns the
// /groups URL plus its current ETag.
func benchPollServer(b *testing.B) (ts string, client *http.Client, url, etag string) {
	_, hts := newTestServer(b, Config{Session: core.Config{Workers: 1}})
	csvText, rulesText, _ := hospitalUpload(b, 2000, 7)
	var created CreateSessionResponse
	if code := doJSON(b, hts.Client(), "POST", hts.URL+"/v1/sessions",
		CreateSessionRequest{CSV: csvText, Rules: rulesText, Seed: 7}, &created); code != http.StatusCreated {
		b.Fatalf("create: status %d", code)
	}
	url = hts.URL + "/v1/sessions/" + created.Session.ID + "/groups?order=voi"
	resp, err := hts.Client().Get(url)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if etag = resp.Header.Get("ETag"); etag == "" {
		b.Fatal("no ETag on /groups")
	}
	return hts.URL, hts.Client(), url, etag
}

// BenchmarkGroupsPoll measures a steady-state /groups poll over HTTP — the
// whole stack: actor round-trip, incremental rank (a cache hit), DTO build,
// JSON encoding.
func BenchmarkGroupsPoll(b *testing.B) {
	_, client, url, _ := benchPollServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkGroupsPollNotModified is the same poll with If-None-Match: the
// server validates the ranking version and answers 304 with no body — what
// a well-behaved polling client pays while nothing changes.
func BenchmarkGroupsPollNotModified(b *testing.B) {
	_, client, url, etag := benchPollServer(b)
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
