package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys returns deterministic pseudo-token keys shaped like real session
// tokens (32 hex characters).
func testKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return keys
}

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 7001+i)
	}
	return nodes
}

func ringOf(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r = r.Add(n)
	}
	return r
}

// ownerMap routes every key on one ring snapshot.
func ownerMap(r *Ring, keys []string) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		m[k] = r.Lookup(k)
	}
	return m
}

// checkTotalCoverage asserts the core routing invariant on one snapshot:
// every key routes to exactly one node, that node is a live member, and
// repeated lookups agree (Lookup is a pure function of the snapshot).
func checkTotalCoverage(t *testing.T, r *Ring, keys []string) {
	t.Helper()
	if r.Len() == 0 {
		for _, k := range keys {
			if got := r.Lookup(k); got != "" {
				t.Fatalf("empty ring routed %q to %q", k, got)
			}
		}
		return
	}
	for _, k := range keys {
		owner := r.Lookup(k)
		if owner == "" {
			t.Fatalf("key %q routed nowhere on %v", k, r)
		}
		if !r.Has(owner) {
			t.Fatalf("key %q routed to non-member %q on %v", k, owner, r)
		}
		if again := r.Lookup(k); again != owner {
			t.Fatalf("key %q routed to %q then %q on the same snapshot", k, owner, again)
		}
	}
}

func TestRingLookupEmptyAndSingle(t *testing.T) {
	keys := testKeys(100, 1)
	empty := NewRing(0)
	checkTotalCoverage(t, empty, keys)
	if empty.Version() != 0 {
		t.Fatalf("fresh ring version = %d, want 0", empty.Version())
	}
	one := empty.Add("http://a")
	if one.Version() != 1 {
		t.Fatalf("version after first add = %d, want 1", one.Version())
	}
	for _, k := range keys {
		if got := one.Lookup(k); got != "http://a" {
			t.Fatalf("single-node ring routed %q to %q", k, got)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := ringOf(testNodes(3)...)
	if r2 := r.Add(testNodes(3)[0]); r2 != r {
		t.Fatal("re-adding a member built a new ring")
	}
	if r2 := r.Remove("http://absent"); r2 != r {
		t.Fatal("removing a non-member built a new ring")
	}
	if r2 := r.Add(""); r2 != r {
		t.Fatal("adding the empty node name built a new ring")
	}
}

// TestRingOrderIndependent: the ring is a pure function of the member set —
// whatever order members joined in, routing agrees.
func TestRingOrderIndependent(t *testing.T) {
	nodes := testNodes(5)
	keys := testKeys(2000, 2)
	a := ringOf(nodes...)
	b := ringOf(nodes[4], nodes[2], nodes[0], nodes[3], nodes[1])
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("join order changed routing for %q: %q vs %q", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

// TestRingMinimalMovementOnJoin: adding a node may only move keys TO the
// new node; no key moves between two surviving nodes.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := testKeys(5000, 3)
	r := ringOf(testNodes(3)...)
	before := ownerMap(r, keys)
	joined := "http://127.0.0.1:7999"
	r2 := r.Add(joined)
	moved := 0
	for _, k := range keys {
		after := r2.Lookup(k)
		if after == before[k] {
			continue
		}
		if after != joined {
			t.Fatalf("key %q moved %q → %q on a join of %q", k, before[k], after, joined)
		}
		moved++
	}
	// The new node should take roughly 1/4 of the keys; allow a wide band.
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("join moved %d/%d keys — expected a roughly fair share", moved, len(keys))
	}
}

// TestRingMinimalMovementOnLeave: removing a node may only move that node's
// keys; every other assignment is untouched.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	keys := testKeys(5000, 4)
	nodes := testNodes(4)
	r := ringOf(nodes...)
	before := ownerMap(r, keys)
	r2 := r.Remove(nodes[1])
	for _, k := range keys {
		after := r2.Lookup(k)
		if before[k] == nodes[1] {
			if after == nodes[1] {
				t.Fatalf("key %q still routed to the removed node", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %q → %q on removal of %q", k, before[k], after, nodes[1])
		}
	}
}

// TestRingBalance: with virtual nodes, each member of a small cluster owns
// a non-degenerate share of the key space.
func TestRingBalance(t *testing.T) {
	keys := testKeys(20000, 5)
	nodes := testNodes(4)
	r := ringOf(nodes...)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/3 || counts[n] > fair*3 {
			t.Fatalf("node %s owns %d keys, fair share %d — imbalance beyond 3x", n, counts[n], fair)
		}
	}
}

// TestRingLookupZeroAlloc pins the routing hot path: hashing a token and
// walking the ring must not allocate (the CI alloc guard runs this).
func TestRingLookupZeroAlloc(t *testing.T) {
	r := ringOf(testNodes(5)...)
	keys := testKeys(64, 6)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.Lookup(keys[i%len(keys)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Ring.Lookup allocates %v per op, want 0", allocs)
	}
}

// applyOps replays a join/leave script (byte-driven, as the fuzzer supplies
// it) over a ring, returning every intermediate snapshot.
func applyOps(ops []byte) []*Ring {
	pool := testNodes(8)
	r := NewRing(16)
	rings := []*Ring{r}
	for _, op := range ops {
		n := pool[int(op%8)]
		if op&0x80 == 0 {
			r = r.Add(n)
		} else {
			r = r.Remove(n)
		}
		rings = append(rings, r)
	}
	return rings
}

// FuzzRingConsistency drives random join/leave sequences and checks, at
// every intermediate ring version, total coverage (each key routes to
// exactly one live member) and minimal key movement between consecutive
// versions (a key changes owner only when its owner left or when it moved
// to the node that just joined).
func FuzzRingConsistency(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x83, 0x04})
	f.Add([]byte{0x00, 0x80, 0x00, 0x80, 0x00})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x81, 0x82})
	keys := testKeys(300, 7)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		rings := applyOps(ops)
		for i, r := range rings {
			checkTotalCoverage(t, r, keys)
			if i == 0 {
				continue
			}
			prev := rings[i-1]
			if r == prev {
				continue // idempotent op: same snapshot
			}
			if r.Version() != prev.Version()+1 {
				t.Fatalf("step %d: version %d → %d, want +1", i, prev.Version(), r.Version())
			}
			joined, left := memberDiff(prev, r)
			for _, k := range keys {
				was, is := prev.Lookup(k), r.Lookup(k)
				if was == is {
					continue
				}
				// A moved key must be explained by this membership change.
				movedToJoiner := joined != "" && is == joined
				ownerLeft := left != "" && was == left
				if !movedToJoiner && !ownerLeft {
					t.Fatalf("step %d (%v → %v): key %q moved %q → %q without cause",
						i, prev, r, k, was, is)
				}
			}
		}
	})
}

// memberDiff returns the single node that joined and/or left between two
// consecutive snapshots ("" for none).
func memberDiff(prev, cur *Ring) (joined, left string) {
	in := make(map[string]bool, cur.Len())
	for _, n := range cur.Nodes() {
		in[n] = true
	}
	was := make(map[string]bool, prev.Len())
	for _, n := range prev.Nodes() {
		was[n] = true
		if !in[n] {
			left = n
		}
	}
	for _, n := range cur.Nodes() {
		if !was[n] {
			joined = n
		}
	}
	return joined, left
}
