package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"gdr/internal/faultfs"
	"gdr/internal/server"
)

// replicaOf returns the fakeNode designated as a token's replica holder.
func replicaOf(p *Proxy, nodes []*fakeNode, token string) *fakeNode {
	return nodeByURL(nodes, p.currentRing().LookupReplica(token))
}

func (n *fakeNode) replica(key string) (fakeReplica, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rep, ok := n.replicas[key]
	return rep, ok
}

func (n *fakeNode) putReplica(key string, seq uint64, data []byte) {
	n.mu.Lock()
	n.replicas[key] = fakeReplica{seq: seq, data: data}
	n.mu.Unlock()
}

// TestRingLookupReplica pins the placement rule: the replica is always a
// live node distinct from the owner, deterministic per key, and absent on
// rings too small to hold a second copy.
func TestRingLookupReplica(t *testing.T) {
	r := NewRing(0)
	if r.LookupReplica("any") != "" {
		t.Fatal("empty ring should have no replica")
	}
	r = r.Add("http://n1")
	if r.LookupReplica("any") != "" {
		t.Fatal("single-node ring should have no replica")
	}
	for _, n := range []string{"http://n2", "http://n3", "http://n4"} {
		r = r.Add(n)
	}
	counts := map[string]int{}
	for i := 0; i < 256; i++ {
		key := strings.Repeat("k", 1) + string(rune('a'+i%26)) + strings.Repeat("x", i%7)
		owner, rep := r.Lookup(key), r.LookupReplica(key)
		if rep == "" || rep == owner {
			t.Fatalf("key %q: owner %q replica %q", key, owner, rep)
		}
		if rep != r.LookupReplica(key) {
			t.Fatalf("key %q: replica not deterministic", key)
		}
		counts[rep]++
	}
	if len(counts) < 3 {
		t.Fatalf("replica load concentrated on too few nodes: %v", counts)
	}
	// Removing the replica holder re-hints the key to another survivor.
	key := "pinned-key"
	rep := r.LookupReplica(key)
	r2 := r.Remove(rep)
	if got := r2.LookupReplica(key); got == "" || got == rep || got == r2.Lookup(key) {
		t.Fatalf("after losing %q the replica went to %q (owner %q)", rep, got, r2.Lookup(key))
	}
}

// TestProxyReplicatesOnCreateAndFeedback drives the full push pipeline:
// create lands a replica on the ring's replica node, feedback refreshes it
// with a higher watermark, delete drops it.
func TestProxyReplicatesOnCreateAndFeedback(t *testing.T) {
	p, nodes, ts := newTestProxy(t, 3, nil)
	p.Start() // replicator worker; health ticks are an hour away
	defer p.Close()

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var created server.CreateSessionResponse
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	token := created.Session.ID

	repNode := replicaOf(p, nodes, token)
	waitReplica := func(label string, minSeq uint64) fakeReplica {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if rep, ok := repNode.replica(token); ok && rep.seq >= minSeq {
				return rep
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: replica for %s never appeared on %s", label, token, repNode.ts.URL)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	rep := waitReplica("after create", 0)
	if len(rep.data) == 0 {
		t.Fatal("replica push carried no bytes")
	}

	// A mutating round: bump the primary's seq, then hit feedback via the
	// proxy. The fake's feedback endpoint is the status one — use a real
	// feedback-shaped path by registering the mutation directly.
	owner := nodeByURL(nodes, p.currentRing().Lookup(token))
	owner.mu.Lock()
	s := owner.sessions[token]
	s.seq, s.snap = 5, []byte("snap-v5")
	owner.sessions[token] = s
	owner.mu.Unlock()
	p.enqueueReplicate(token) // what a feedback 200 does via observeForReplication
	rep = waitReplica("after mutation", 5)
	if string(rep.data) != "snap-v5" {
		t.Fatalf("replica bytes = %q, want the v5 snapshot", rep.data)
	}

	// Delete via the proxy: the replica must go too.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+token, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := repNode.replica(token); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica survived the session delete")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProxyFeedbackResponseEnqueuesPush pins the observe hook itself: a
// feedback 200 flowing through the reverse proxy queues the token.
func TestProxyFeedbackResponseEnqueuesPush(t *testing.T) {
	p, _, _ := newTestProxy(t, 2, nil)
	token := strings.Repeat("ab", 16)
	req, _ := http.NewRequest(http.MethodPost, "http://x/v1/sessions/"+token+"/feedback", nil)
	p.observeForReplication(&http.Response{StatusCode: http.StatusOK, Request: req})
	p.replMu.Lock()
	_, queued := p.replPend[token]
	p.replMu.Unlock()
	if !queued {
		t.Fatal("feedback 200 did not queue a replica push")
	}
	// A non-mutating 200 must not queue.
	p2, _, _ := newTestProxy(t, 2, nil)
	greq, _ := http.NewRequest(http.MethodGet, "http://x/v1/sessions/"+token+"/status", nil)
	p2.observeForReplication(&http.Response{StatusCode: http.StatusOK, Request: greq})
	p2.replMu.Lock()
	pending := len(p2.replPend)
	p2.replMu.Unlock()
	if pending != 0 {
		t.Fatal("a read queued a replica push")
	}
}

// TestProxyFailoverPromotesFromReplica is the shared-nothing headline: a
// node dies, its disk is gone (no DataDirs entry at all), and its sessions
// still come back — promoted from the survivors' replica stores, freshest
// copy winning.
func TestProxyFailoverPromotesFromReplica(t *testing.T) {
	p, nodes, ts := newTestProxy(t, 3, nil)
	token := strings.Repeat("77", 16)
	owner := p.currentRing().Lookup(token)
	nodeByURL(nodes, owner).put(token, "acme")

	// Two survivors hold replicas at different watermarks; the freshest
	// must win the promotion.
	var survivors []*fakeNode
	for _, n := range nodes {
		if n.ts.URL != owner {
			survivors = append(survivors, n)
		}
	}
	survivors[0].putReplica("acme@"+token, 3, []byte("replica-v3"))
	survivors[1].putReplica("acme@"+token, 5, []byte("replica-v5"))

	dead := nodeByURL(nodes, owner)
	dead.mu.Lock()
	dead.down = true
	dead.sessions = map[string]fakeSession{} // the node and its state are gone
	dead.mu.Unlock()
	p.mu.Lock()
	p.nodes[owner].live = false
	p.ring = p.ring.Remove(owner)
	p.mu.Unlock()
	p.failover(context.Background(), owner)

	newOwner := nodeByURL(nodes, p.currentRing().Lookup(token))
	newOwner.mu.Lock()
	s, ok := newOwner.sessions[token]
	newOwner.mu.Unlock()
	if !ok {
		t.Fatal("session not promoted onto the new ring owner")
	}
	if string(s.snap) != "replica-v5" {
		t.Fatalf("promoted bytes = %q, want the freshest replica", s.snap)
	}
	if s.tenant != "acme" {
		t.Fatalf("promoted tenant = %q, want acme", s.tenant)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + token + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted session unreachable via proxy: %d", resp.StatusCode)
	}
}

// TestProxySyncReplicasConverges: the audit derives placement from the
// session inventory alone, so even replicas nobody queued (or that failed
// their first push) appear after one sync.
func TestProxySyncReplicasConverges(t *testing.T) {
	faults := faultfs.New(1)
	p, nodes, _ := newTestProxy(t, 3, func(c *Config) { c.Faults = faults })
	token := strings.Repeat("99", 16)
	owner := p.currentRing().Lookup(token)
	nodeByURL(nodes, owner).put(token, "")

	// First push eats a fault: SyncReplicas must surface the failure...
	faults.Set(FaultReplicate, faultfs.Rule{P: 1})
	p.enqueueReplicate(token)
	if err := p.SyncReplicas(context.Background()); err == nil {
		t.Fatal("SyncReplicas swallowed a replication fault")
	}
	// ...and converge once the fault clears, from the audit alone.
	faults.Clear()
	if err := p.SyncReplicas(context.Background()); err != nil {
		t.Fatalf("SyncReplicas after heal: %v", err)
	}
	if _, ok := replicaOf(p, nodes, token).replica(token); !ok {
		t.Fatal("audit did not materialize the missing replica")
	}
}

// TestProxyReadyzSplitsFromHealthz: /healthz keeps answering 200 while the
// cluster is unsettled, /readyz goes 503 — the probe a load balancer
// should watch.
func TestProxyReadyzSplitsFromHealthz(t *testing.T) {
	p, _, ts := newTestProxy(t, 2, nil)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	p.mu.Lock()
	p.settleTil = time.Time{}
	p.mu.Unlock()
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("settled readyz: %d", code)
	}
	p.mu.Lock()
	p.recover++
	p.mu.Unlock()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during failover: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during failover: %d, want 200", code)
	}
	p.mu.Lock()
	p.recover--
	p.settleTil = time.Now().Add(time.Minute)
	p.mu.Unlock()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during settle grace: %d, want 503", code)
	}
}

// TestProxyHealthHysteresis: one good probe must not re-admit a dead node;
// FailAfter consecutive ones must.
func TestProxyHealthHysteresis(t *testing.T) {
	p, nodes, _ := newTestProxy(t, 2, func(c *Config) { c.FailAfter = 3 })
	victim := nodes[1].ts.URL
	p.mu.Lock()
	p.nodes[victim].live = false
	p.ring = p.ring.Remove(victim)
	p.mu.Unlock()
	for i := 1; i <= 3; i++ {
		p.checkAll()
		has := p.currentRing().Has(victim)
		if i < 3 && has {
			t.Fatalf("node re-admitted after %d good probes, want %d", i, 3)
		}
		if i == 3 && !has {
			t.Fatal("node not re-admitted after FailAfter good probes")
		}
	}
	// A flap resets the streak: two successes, one failure, two successes
	// again — still out.
	p.mu.Lock()
	p.nodes[victim].live = false
	p.ring = p.ring.Remove(victim)
	p.mu.Unlock()
	p.checkAll()
	p.checkAll()
	nodes[1].mu.Lock()
	nodes[1].down = true
	nodes[1].mu.Unlock()
	p.checkAll()
	nodes[1].mu.Lock()
	nodes[1].down = false
	nodes[1].mu.Unlock()
	p.checkAll()
	p.checkAll()
	if p.currentRing().Has(victim) {
		t.Fatal("a flapping node was re-admitted before a full success streak")
	}
	p.checkAll()
	if !p.currentRing().Has(victim) {
		t.Fatal("node not re-admitted after the streak completed")
	}
}
