package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"gdr/internal/faultfs"
	"gdr/internal/metrics"
	"gdr/internal/server"
)

// Fault-injection points the migration chaos tests hook. They live on the
// proxy side of the wire: a faulting export/import/delete stands in for the
// node failing or the network eating the call at that step.
const (
	// FaultExport fails the snapshot export that starts a migration.
	FaultExport faultfs.Point = "cluster.export"
	// FaultImport fails the import-on-create on the destination node.
	FaultImport faultfs.Point = "cluster.import"
	// FaultDelete fails the source-side delete that finishes a migration.
	FaultDelete faultfs.Point = "cluster.delete"
	// FaultRecover fails reading one snapshot during dead-node recovery.
	FaultRecover faultfs.Point = "cluster.recover"
	// FaultReplicate fails a replica push before it leaves the proxy.
	FaultReplicate faultfs.Point = "cluster.replicate"
)

// Config configures a Proxy.
type Config struct {
	// Nodes are the gdrd base URLs the ring starts with, e.g.
	// "http://127.0.0.1:9001". All start presumed live; the health loop
	// corrects that within FailAfter checks.
	Nodes []string
	// DataDirs maps a node URL to its -data-dir as seen from the proxy
	// (shared filesystem or local loopback deployment). A dead node's
	// sessions are restored onto the survivors from these snapshots;
	// without an entry, sessions on a crashed node are lost until it
	// returns.
	DataDirs map[string]string
	// VNodes is the virtual-node count per node (DefaultVNodes if 0).
	VNodes int
	// AdminKey is the bearer key the proxy itself presents for membership
	// work: listing sessions across tenants, exporting, importing and
	// deleting during migrations. Empty for open-mode (keyfile-less) nodes.
	AdminKey string
	// HealthEvery is the membership probe cadence (default 500ms).
	HealthEvery time.Duration
	// FailAfter is how many consecutive probe failures declare a node dead
	// (default 3).
	FailAfter int
	// SettleGrace is how long after a ring change a 404 from a node is
	// answered as 503 + Retry-After instead: the session may still be in
	// flight between nodes (default 2s).
	SettleGrace time.Duration
	// Logger receives the proxy's structured logs (slog.Default if nil).
	Logger *slog.Logger
	// Client performs all upstream requests (a tuned default if nil).
	Client *http.Client
	// Faults injects migration faults for tests and chaos mode (nil = off).
	Faults *faultfs.Injector
}

// nodeState is one node's membership view. All fields are guarded by the
// owning Proxy's mu.
type nodeState struct {
	fails   int // consecutive failed probes
	succs   int // consecutive successful probes while dead (rejoin hysteresis)
	live    bool
	drained bool // operator-removed; health must not re-admit
}

// Proxy is the stateless cluster gateway: it consistent-hashes session
// tokens across gdrd nodes, creates sessions on the ring owner via the
// placement headers, transparently forwards every session verb, and moves
// sessions when the ring changes. All of its own state is soft — routing
// derives from the ring and the nodes' session sets, so a restarted proxy
// resumes service with nothing but its flags.
type Proxy struct {
	cfg    Config
	log    *slog.Logger
	client *http.Client
	reg    *metrics.Registry
	rp     *httputil.ReverseProxy
	urls   map[string]*url.URL // node -> parsed base URL (read-only after New)

	mu        sync.Mutex
	ring      *Ring                    // gdr:guarded-by mu — current immutable ring
	nodes     map[string]*nodeState    // gdr:guarded-by mu
	overrides map[string]string        // gdr:guarded-by mu — token -> node, pre-migration routing
	migrating map[string]chan struct{} // gdr:guarded-by mu — tokens mid-move; closed when done
	stale     map[string]string        // gdr:guarded-by mu — token -> node holding a superseded copy
	recover   int                      // gdr:guarded-by mu — dead-node recoveries in flight
	settleTil time.Time                // gdr:guarded-by mu — 404→503 window after ring changes

	// Replication queue: tokens whose replica copy is behind (a mutating
	// round landed, or placement moved) and tokens whose replicas must be
	// dropped (session deleted). The replicator worker drains both; the
	// anti-entropy audit re-derives them from scratch every health tick, so
	// a lost queue entry only delays a push, never loses it.
	replMu   sync.Mutex
	replPend map[string]struct{} // gdr:guarded-by replMu — tokens to (re)push
	replDrop map[string]struct{} // gdr:guarded-by replMu — tokens to drop
	replWake chan struct{}       // buffered(1) doorbell for the replicator

	stop     chan struct{}
	healthWG sync.WaitGroup
}

// New builds a Proxy over the configured nodes. Call Start to run the
// membership loop and Close to stop it.
func New(cfg Config) (*Proxy, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.SettleGrace <= 0 {
		cfg.SettleGrace = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	p := &Proxy{
		cfg:       cfg,
		log:       cfg.Logger,
		client:    cfg.Client,
		reg:       metrics.NewRegistry(),
		urls:      make(map[string]*url.URL, len(cfg.Nodes)),
		ring:      NewRing(cfg.VNodes),
		nodes:     make(map[string]*nodeState, len(cfg.Nodes)),
		overrides: make(map[string]string),
		migrating: make(map[string]chan struct{}),
		stale:     make(map[string]string),
		replPend:  make(map[string]struct{}),
		replDrop:  make(map[string]struct{}),
		replWake:  make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	p.mu.Lock()
	for _, n := range cfg.Nodes {
		u, err := url.Parse(n)
		if err != nil || u.Scheme == "" || u.Host == "" {
			p.mu.Unlock()
			return nil, fmt.Errorf("cluster: node %q: want a base URL like http://127.0.0.1:9001", n)
		}
		if _, dup := p.urls[n]; dup {
			p.mu.Unlock()
			return nil, fmt.Errorf("cluster: node %q listed twice", n)
		}
		p.urls[n] = u
		p.ring = p.ring.Add(n)
		p.nodes[n] = &nodeState{live: true}
	}
	p.mu.Unlock()
	p.rp = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			t, _ := pr.In.Context().Value(targetKey{}).(*url.URL)
			pr.SetURL(t)
			pr.SetXForwarded()
		},
		FlushInterval:  100 * time.Millisecond, // keep streaming exports flowing
		ErrorHandler:   p.upstreamError,
		ModifyResponse: p.modifyResponse,
		ErrorLog:       slog.NewLogLogger(cfg.Logger.Handler(), slog.LevelWarn),
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		p.rp.Transport = tr.Clone()
	}
	p.reg.Gauge("gdrproxy_ring_version").Set(int64(p.currentRing().Version()))
	p.reg.Gauge("gdrproxy_nodes_live").Set(int64(len(cfg.Nodes)))
	// Pre-register the replication series so /metrics shows them at zero
	// from the first scrape instead of appearing mid-incident.
	p.reg.Counter("gdrproxy_replica_pushes_total")
	p.reg.Counter("gdrproxy_replica_push_failures_total")
	p.reg.Counter("gdrproxy_replica_promotions_total")
	p.reg.Counter("gdrproxy_replica_drops_total")
	return p, nil
}

// Start launches the membership health loop and the replicator worker.
func (p *Proxy) Start() {
	p.healthWG.Add(2)
	go p.healthLoop()
	go p.replicator()
}

// Close stops the health loop and waits for it.
func (p *Proxy) Close() {
	close(p.stop)
	p.healthWG.Wait()
}

// Registry exposes the proxy's metrics registry (tests scrape it directly).
func (p *Proxy) Registry() *metrics.Registry { return p.reg }

// Ring returns the current ring snapshot; Ring values are immutable, so
// the result is safe to use lock-free (it just goes stale on membership
// changes).
func (p *Proxy) Ring() *Ring { return p.currentRing() }

// targetKey carries the chosen upstream URL through the request context to
// the shared ReverseProxy's Rewrite hook.
type targetKey struct{}

// Handler returns the proxy's HTTP surface: the full gdrd /v1 session API
// (forwarded), plus the proxy's own /healthz and /metrics.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", p.handleCreate)
	mux.HandleFunc("GET /v1/sessions", p.handleList)
	mux.HandleFunc("/v1/sessions/{id}", p.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", p.handleSession)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /readyz", p.handleReadyz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	return mux
}

// currentRing snapshots the ring pointer; the Ring value itself is
// immutable, so callers may use it lock-free after this.
func (p *Proxy) currentRing() *Ring {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring
}

// routeToken picks the node serving a token right now: a migration
// override if one is pending, the ring owner otherwise. Zero-alloc — this
// plus the ring lookup is the per-request routing cost.
func (p *Proxy) routeToken(token string) string {
	p.mu.Lock()
	if n, ok := p.overrides[token]; ok {
		p.mu.Unlock()
		return n
	}
	r := p.ring
	p.mu.Unlock()
	return r.Lookup(token)
}

// migratingCh returns the wait channel if the token is mid-migration.
func (p *Proxy) migratingCh(token string) chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.migrating[token]
}

// unsettled reports whether a 404 from a node may be transient: a
// migration or recovery is in flight, or the ring changed moments ago.
func (p *Proxy) unsettled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recover > 0 || len(p.migrating) > 0 || time.Now().Before(p.settleTil)
}

// markSettling opens the 404→503 grace window; callers hold p.mu.
func (p *Proxy) markSettlingLocked() {
	p.settleTil = time.Now().Add(p.cfg.SettleGrace)
	p.reg.Gauge("gdrproxy_ring_version").Set(int64(p.ring.Version()))
	live := 0
	for _, st := range p.nodes {
		if st.live {
			live++
		}
	}
	p.reg.Gauge("gdrproxy_nodes_live").Set(int64(live))
}

// newToken mints a fresh session token with the exact shape gdrd generates
// (32 lowercase hex chars); the proxy chooses tokens so it can place the
// session on the ring owner before the node ever sees the request.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("cluster: generating session token: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// handleCreate places a new session: mint the token, hash it to its owner,
// and forward the create with the placement header set. A request that
// already carries an assigned token (an admin re-import) is routed by that
// token instead, so manual placement stays consistent with the ring.
func (p *Proxy) handleCreate(w http.ResponseWriter, r *http.Request) {
	token := r.Header.Get(server.AssignTokenHeader)
	if token == "" {
		fresh, err := newToken()
		if err != nil {
			writeProxyError(w, http.StatusInternalServerError, err.Error())
			return
		}
		token = fresh
		r.Header.Set(server.AssignTokenHeader, token)
	}
	node := p.routeToken(token)
	if node == "" {
		p.reg.Counter("gdrproxy_no_node_total").Inc()
		writeUnavailable(w, "no live nodes")
		return
	}
	p.forward(w, r, node)
}

// handleSession forwards every per-session verb to the token's node,
// waiting out an in-flight migration first so the client lands on the
// session's new home instead of racing the move.
func (p *Proxy) handleSession(w http.ResponseWriter, r *http.Request) {
	token := r.PathValue("id")
	if ch := p.migratingCh(token); ch != nil {
		select {
		case <-ch:
		case <-r.Context().Done():
			writeUnavailable(w, "migration in progress")
			return
		}
	}
	node := p.routeToken(token)
	if node == "" {
		p.reg.Counter("gdrproxy_no_node_total").Inc()
		writeUnavailable(w, "no live nodes")
		return
	}
	p.forward(w, r, node)
}

// forward proxies one request to a node through the shared ReverseProxy.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, node string) {
	u := p.urls[node]
	if u == nil {
		writeUnavailable(w, "unknown node")
		return
	}
	p.reg.LabeledCounter("gdrproxy_requests_total", "node", node).Inc()
	ctx := context.WithValue(r.Context(), targetKey{}, u)
	p.rp.ServeHTTP(w, r.WithContext(ctx))
}

// upstreamError answers for a node the proxy could not reach: 503 with a
// short Retry-After, which the gdrd client dialect already retries. The
// health loop, not the data path, decides whether the node is dead.
func (p *Proxy) upstreamError(w http.ResponseWriter, r *http.Request, err error) {
	p.reg.Counter("gdrproxy_upstream_errors_total").Inc()
	p.log.Warn("upstream request failed", "path", r.URL.Path, "err", err)
	writeUnavailable(w, "upstream unreachable")
}

// modifyResponse watches successful upstream answers to drive replication
// (a mutated or created session needs its replica refreshed; a deleted one
// needs it dropped), then rewrites transient 404s during migration
// windows: after a ring change a session can be between nodes for a
// moment, and "retry shortly" is the truthful answer where "gone" is not.
func (p *Proxy) modifyResponse(resp *http.Response) error {
	if resp.Request == nil {
		return nil
	}
	p.observeForReplication(resp)
	if resp.StatusCode != http.StatusNotFound {
		return nil
	}
	if !strings.HasPrefix(resp.Request.URL.Path, "/v1/sessions/") || !p.unsettled() {
		return nil
	}
	p.reg.Counter("gdrproxy_notfound_retries_total").Inc()
	body, _ := json.Marshal(server.ErrorBody{Error: "cluster: session settling after a ring change; retry"})
	resp.Body.Close()
	resp.StatusCode = http.StatusServiceUnavailable
	resp.Status = http.StatusText(http.StatusServiceUnavailable)
	resp.Header = resp.Header.Clone()
	resp.Header.Set("Retry-After", "1")
	resp.Header.Set("Content-Type", "application/json")
	resp.Header.Del("Content-Length")
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", fmt.Sprint(len(body)))
	resp.Body = io.NopCloser(strings.NewReader(string(body)))
	return nil
}

// handleList fans the listing out to every live node and merges: the
// cluster's sessions are the union of its nodes'. The caller's own
// credentials travel with each fan-out leg, so tenants see exactly what
// they would see asking each node themselves. Duplicates (a migration's
// transient src+dst overlap) collapse onto the ring owner's copy.
func (p *Proxy) handleList(w http.ResponseWriter, r *http.Request) {
	ring := p.currentRing()
	merged := make(map[string]server.SessionInfo)
	for _, node := range ring.Nodes() {
		infos, err := p.listNode(r.Context(), node, r.Header.Get("Authorization"))
		if err != nil {
			p.log.Warn("list fan-out leg failed", "node", node, "err", err)
			continue
		}
		for _, s := range infos {
			if _, dup := merged[s.ID]; !dup || ring.Lookup(s.ID) == node {
				merged[s.ID] = s
			}
		}
	}
	out := server.SessionList{Sessions: make([]server.SessionInfo, 0, len(merged))}
	for _, s := range merged {
		out.Sessions = append(out.Sessions, s)
	}
	sort.Slice(out.Sessions, func(i, j int) bool { return out.Sessions[i].ID < out.Sessions[j].ID })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// listNode asks one node for its sessions with the given Authorization
// header value ("" sends none).
func (p *Proxy) listNode(ctx context.Context, node, auth string) ([]server.SessionInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: list %s: %s", node, resp.Status)
	}
	var list server.SessionList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	return list.Sessions, nil
}

// nodeHealth is one node's row in the proxy /healthz body.
type nodeHealth struct {
	Node string `json:"node"`
	Live bool   `json:"live"`
}

// handleHealthz reports the proxy's membership view.
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	rows := make([]nodeHealth, 0, len(p.nodes))
	for n, st := range p.nodes {
		rows = append(rows, nodeHealth{Node: n, Live: st.live})
	}
	version := p.ring.Version()
	p.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	live := 0
	for _, row := range rows {
		if row.Live {
			live++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if live == 0 {
		status = "down"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":       status,
		"ring_version": version,
		"live_nodes":   live,
		"nodes":        rows,
	})
}

// handleReadyz is the load-balancer signal, split from /healthz: the proxy
// process being up (healthz, always 200 while serving) is not the same as
// the cluster being safe to take traffic. Readiness goes 503 while a
// failover or migration is in flight, during the post-ring-change settle
// grace, or with zero live nodes — exactly the windows where a new request
// would likely land on a 404 or a dead upstream.
func (p *Proxy) handleReadyz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	live := 0
	for _, st := range p.nodes {
		if st.live {
			live++
		}
	}
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if live == 0 || p.unsettled() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "settling", "live_nodes": live})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ready", "live_nodes": live})
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = p.reg.WriteProm(w)
}

// writeUnavailable is the proxy's retryable refusal: 503 + Retry-After,
// the same shed dialect gdrd itself speaks, so every client retry loop
// that survives an overloaded node also survives a cluster reshuffle.
func writeUnavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	writeProxyError(w, http.StatusServiceUnavailable, "cluster: "+msg)
}

func writeProxyError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(server.ErrorBody{Error: msg})
}
