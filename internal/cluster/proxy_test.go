package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gdr/internal/faultfs"
	"gdr/internal/server"
)

// fakeSession is what a fakeNode stores per token.
type fakeSession struct {
	tenant string
	snap   []byte
	seq    uint64 // mutation sequence reported on export
}

// fakeReplica is one spill-store entry on a fakeNode.
type fakeReplica struct {
	seq  uint64
	data []byte
}

// fakeNode is a minimal in-memory stand-in for a cluster-mode gdrd: enough
// of the /v1 session surface for the proxy's routing, migration and
// failover logic to be tested hermetically, plus request recording.
type fakeNode struct {
	ts *httptest.Server

	mu       sync.Mutex
	sessions map[string]fakeSession
	replicas map[string]fakeReplica
	calls    []string // "METHOD path" log, in arrival order
	down     bool     // refuse everything with a closed-ish 500
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	n := &fakeNode{sessions: make(map[string]fakeSession), replicas: make(map[string]fakeReplica)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if n.failing() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		token := r.Header.Get(server.AssignTokenHeader)
		if token == "" {
			http.Error(w, "fake node requires an assigned token", http.StatusBadRequest)
			return
		}
		var req server.CreateSessionRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		n.mu.Lock()
		if _, dup := n.sessions[token]; dup {
			n.mu.Unlock()
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(server.ErrorBody{Error: "token in use"})
			return
		}
		n.sessions[token] = fakeSession{tenant: r.Header.Get(server.AssignTenantHeader), snap: req.Snapshot}
		n.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(server.CreateSessionResponse{Session: server.SessionInfo{ID: token}})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		n.mu.Lock()
		list := server.SessionList{}
		for token, s := range n.sessions {
			list.Sessions = append(list.Sessions, server.SessionInfo{ID: token, Tenant: s.tenant})
		}
		n.mu.Unlock()
		sortSessions(list.Sessions)
		_ = json.NewEncoder(w).Encode(list)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		n.mu.Lock()
		s, ok := n.sessions[r.PathValue("id")]
		n.mu.Unlock()
		if !ok {
			http.Error(w, "no session", http.StatusNotFound)
			return
		}
		snap := s.snap
		if snap == nil {
			snap = []byte("snap-" + r.PathValue("id"))
		}
		w.Header().Set(server.MutationSeqHeader, fmt.Sprint(s.seq))
		if s.tenant != "" {
			w.Header().Set(server.AssignTenantHeader, s.tenant)
		}
		_, _ = w.Write(snap)
	})
	mux.HandleFunc("PUT /v1/replicas/{key}", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		var seq uint64
		fmt.Sscan(r.Header.Get(server.MutationSeqHeader), &seq)
		data, _ := io.ReadAll(r.Body)
		n.mu.Lock()
		defer n.mu.Unlock()
		if prev, ok := n.replicas[r.PathValue("key")]; ok && seq < prev.seq {
			w.WriteHeader(http.StatusConflict)
			return
		}
		n.replicas[r.PathValue("key")] = fakeReplica{seq: seq, data: data}
		fmt.Fprint(w, `{"status":"stored"}`)
	})
	mux.HandleFunc("GET /v1/replicas", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		n.mu.Lock()
		list := server.ReplicaList{}
		for key, rep := range n.replicas {
			tenant, token := "", key
			if t, tok, ok := strings.Cut(key, "@"); ok {
				tenant, token = t, tok
			}
			list.Replicas = append(list.Replicas, server.ReplicaInfo{
				Key: key, Token: token, Tenant: tenant, Seq: rep.seq, Size: len(rep.data)})
		}
		n.mu.Unlock()
		_ = json.NewEncoder(w).Encode(list)
	})
	mux.HandleFunc("GET /v1/replicas/{key}", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		n.mu.Lock()
		rep, ok := n.replicas[r.PathValue("key")]
		n.mu.Unlock()
		if !ok {
			http.Error(w, "no replica", http.StatusNotFound)
			return
		}
		w.Header().Set(server.MutationSeqHeader, fmt.Sprint(rep.seq))
		_, _ = w.Write(rep.data)
	})
	mux.HandleFunc("DELETE /v1/replicas/{key}", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		n.mu.Lock()
		_, ok := n.replicas[r.PathValue("key")]
		delete(n.replicas, r.PathValue("key"))
		n.mu.Unlock()
		if !ok {
			http.Error(w, "no replica", http.StatusNotFound)
			return
		}
		fmt.Fprint(w, `{"status":"deleted"}`)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/status", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		n.mu.Lock()
		_, ok := n.sessions[r.PathValue("id")]
		n.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(server.ErrorBody{Error: "session not found"})
			return
		}
		fmt.Fprintf(w, `{"id":%q}`, r.PathValue("id"))
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		n.record(r)
		n.mu.Lock()
		_, ok := n.sessions[r.PathValue("id")]
		delete(n.sessions, r.PathValue("id"))
		n.mu.Unlock()
		if !ok {
			http.Error(w, "no session", http.StatusNotFound)
			return
		}
		fmt.Fprint(w, `{"status":"deleted"}`)
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func sortSessions(s []server.SessionInfo) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (n *fakeNode) failing() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

func (n *fakeNode) record(r *http.Request) {
	n.mu.Lock()
	n.calls = append(n.calls, r.Method+" "+r.URL.Path)
	n.mu.Unlock()
}

func (n *fakeNode) has(token string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.sessions[token]
	return ok
}

func (n *fakeNode) put(token, tenant string) {
	n.mu.Lock()
	n.sessions[token] = fakeSession{tenant: tenant}
	n.mu.Unlock()
}

// saw reports whether the node ever received a given "METHOD path" call.
func (n *fakeNode) saw(call string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range n.calls {
		if c == call {
			return true
		}
	}
	return false
}

// newTestProxy builds a proxy over k fake nodes. The health loop is not
// started — membership changes are test-driven.
func newTestProxy(t *testing.T, k int, tweak func(*Config)) (*Proxy, []*fakeNode, *httptest.Server) {
	t.Helper()
	nodes := make([]*fakeNode, k)
	urls := make([]string, k)
	for i := range nodes {
		nodes[i] = newFakeNode(t)
		urls[i] = nodes[i].ts.URL
	}
	cfg := Config{Nodes: urls, HealthEvery: time.Hour}
	if tweak != nil {
		tweak(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, nodes, ts
}

// nodeByURL maps a ring member back to its fake.
func nodeByURL(nodes []*fakeNode, url string) *fakeNode {
	for _, n := range nodes {
		if n.ts.URL == url {
			return n
		}
	}
	return nil
}

func TestProxyCreateLandsOnRingOwner(t *testing.T) {
	p, nodes, ts := newTestProxy(t, 3, nil)
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		var created server.CreateSessionResponse
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: code = %d", resp.StatusCode)
		}
		token := created.Session.ID
		owner := p.currentRing().Lookup(token)
		if own := nodeByURL(nodes, owner); own == nil || !own.has(token) {
			t.Fatalf("session %s not on its ring owner %s", token, owner)
		}
		// Follow-up verbs route to the same node.
		st, err := http.Get(ts.URL + "/v1/sessions/" + token + "/status")
		if err != nil {
			t.Fatal(err)
		}
		st.Body.Close()
		if st.StatusCode != http.StatusOK {
			t.Fatalf("status via proxy: code = %d", st.StatusCode)
		}
	}
}

func TestProxyListMergesNodes(t *testing.T) {
	_, nodes, ts := newTestProxy(t, 3, nil)
	want := map[string]bool{}
	for i, n := range nodes {
		token := strings.Repeat(fmt.Sprintf("%x", i+1), 32)[:32]
		n.put(token, "")
		want[token] = true
	}
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list server.SessionList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != len(want) {
		t.Fatalf("merged list has %d sessions, want %d: %+v", len(list.Sessions), len(want), list)
	}
	for i := 1; i < len(list.Sessions); i++ {
		if list.Sessions[i-1].ID >= list.Sessions[i].ID {
			t.Fatal("merged list not sorted by id")
		}
	}
	for _, s := range list.Sessions {
		if !want[s.ID] {
			t.Fatalf("unexpected session %s in merged list", s.ID)
		}
	}
}

func TestProxyRemoveNodeMigratesSessions(t *testing.T) {
	p, nodes, ts := newTestProxy(t, 3, nil)
	// Create enough sessions that every node owns some.
	var tokens []string
	for i := 0; i < 12; i++ {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		var created server.CreateSessionResponse
		_ = json.NewDecoder(resp.Body).Decode(&created)
		resp.Body.Close()
		tokens = append(tokens, created.Session.ID)
	}
	victim := p.currentRing().Lookup(tokens[0])
	if err := p.RemoveNode(context.Background(), victim); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if nodeByURL(nodes, victim).hasAny() {
		t.Fatal("drained node still holds sessions")
	}
	ring := p.currentRing()
	if ring.Has(victim) {
		t.Fatal("drained node still in ring")
	}
	for _, token := range tokens {
		owner := ring.Lookup(token)
		if own := nodeByURL(nodes, owner); own == nil || !own.has(token) {
			t.Fatalf("session %s not on post-drain owner %s", token, owner)
		}
		resp, err := http.Get(ts.URL + "/v1/sessions/" + token + "/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s unreachable after drain: %d", token, resp.StatusCode)
		}
	}
	// The ring change is observable on the proxy's own health surface.
	var health struct {
		RingVersion uint64 `json:"ring_version"`
		LiveNodes   int    `json:"live_nodes"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.LiveNodes != 2 {
		t.Fatalf("healthz live_nodes = %d, want 2", health.LiveNodes)
	}
}

func (n *fakeNode) hasAny() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.sessions) > 0
}

// TestProxyMigrationPreservesTenant pins the ownership half of a move: the
// import must carry the source session's tenant, or a migrated session
// would go unowned and leak across tenants.
func TestProxyMigrationPreservesTenant(t *testing.T) {
	p, nodes, _ := newTestProxy(t, 2, nil)
	ring := p.currentRing()
	token := strings.Repeat("ab", 16)
	src := ring.Lookup(token)
	dst := ring.Nodes()[0]
	if dst == src {
		dst = ring.Nodes()[1]
	}
	nodeByURL(nodes, src).put(token, "acme")
	// Drain src: the session must land on dst with its tenant intact.
	if err := p.RemoveNode(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	d := nodeByURL(nodes, dst)
	d.mu.Lock()
	s, ok := d.sessions[token]
	d.mu.Unlock()
	if !ok {
		t.Fatal("session did not land on the surviving node")
	}
	if s.tenant != "acme" {
		t.Fatalf("migrated session tenant = %q, want acme", s.tenant)
	}
	if s.snap == nil {
		t.Fatal("import carried no snapshot bytes")
	}
}

// TestProxyStaleSourceResolvedBySweep drives the delete-failure path: the
// destination copy wins immediately and is ledgered as the only
// authoritative one; a ring flip back to the stale node must NOT route to
// the superseded copy; and once deletes heal, exactly one copy — the fresh
// one, identified by its mutated snapshot bytes — survives on the ring
// owner.
func TestProxyStaleSourceResolvedBySweep(t *testing.T) {
	faults := faultfs.New(1)
	p, nodes, ts := newTestProxy(t, 2, func(c *Config) { c.Faults = faults })
	ring := p.currentRing()
	token := strings.Repeat("cd", 16)
	src := ring.Lookup(token)
	dst := ring.Nodes()[0]
	if dst == src {
		dst = ring.Nodes()[1]
	}
	nodeByURL(nodes, src).put(token, "")
	faults.Set(FaultDelete, faultfs.Rule{P: 1})
	if err := p.RemoveNode(context.Background(), src); err != nil {
		t.Fatalf("drain with failing delete: %v", err)
	}
	// Both copies exist (delete was eaten), but routing prefers dst.
	if !nodeByURL(nodes, src).has(token) || !nodeByURL(nodes, dst).has(token) {
		t.Fatal("expected transient src+dst overlap after failed delete")
	}
	// Mark the fresh copy so the end state proves which one survived: the
	// destination copy diverges from the stale one the moment feedback
	// lands on it, and v2 stands in for that drift.
	fresh := []byte("snap-" + token + "-v2")
	d := nodeByURL(nodes, dst)
	d.mu.Lock()
	d.sessions[token] = fakeSession{snap: fresh}
	d.mu.Unlock()
	statusCall := "GET /v1/sessions/" + token + "/status"
	mustStatus := func(label string) {
		resp, err := http.Get(ts.URL + "/v1/sessions/" + token + "/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: session unreachable: %d", label, resp.StatusCode)
		}
	}
	mustStatus("during overlap")
	if nodeByURL(nodes, src).saw(statusCall) {
		t.Fatal("a request routed to the stale source copy during the overlap")
	}
	// Ring flips back while deletes are still failing: the token's hash
	// owner is src again — the node holding the SUPERSEDED copy. The
	// ledger's routing pin must keep serving the fresh dst copy.
	if err := p.AddNode(context.Background(), src); err == nil {
		t.Fatal("rebalance onto a node holding an undeletable stale copy should report the stuck move")
	}
	mustStatus("after ring flip-back")
	if nodeByURL(nodes, src).saw(statusCall) {
		t.Fatal("ring flip-back routed to the stale copy; the fresh one must stay pinned")
	}
	// Deletes heal: the sweep removes the stale copy, then the rebalance
	// moves the fresh copy onto its ring owner.
	faults.Clear()
	if err := p.Rebalance(context.Background()); err != nil {
		t.Fatalf("healed rebalance: %v", err)
	}
	ring = p.currentRing()
	owner := ring.Lookup(token)
	copies := 0
	for _, n := range nodes {
		if n.has(token) {
			copies++
		}
	}
	if copies != 1 {
		t.Fatalf("session exists on %d nodes after heal, want exactly 1", copies)
	}
	own := nodeByURL(nodes, owner)
	if !own.has(token) {
		t.Fatalf("surviving copy is not on the ring owner %s", owner)
	}
	own.mu.Lock()
	got := own.sessions[token].snap
	own.mu.Unlock()
	if string(got) != string(fresh) {
		t.Fatalf("the STALE copy survived the heal: snap = %q, want %q", got, fresh)
	}
}

// TestProxyFailoverRestoresFromSnapshots covers the crash path: a dead
// node's sessions come back on the survivors from its snapshot directory,
// and the recovered files are renamed so a node restart cannot resurrect
// stale copies.
func TestProxyFailoverRestoresFromSnapshots(t *testing.T) {
	dir := t.TempDir()
	var deadURL string
	p, nodes, ts := newTestProxy(t, 3, func(c *Config) {
		c.DataDirs = map[string]string{c.Nodes[2]: dir}
		deadURL = c.Nodes[2]
	})
	tokens := []string{strings.Repeat("11", 16), strings.Repeat("22", 16)}
	for i, token := range tokens {
		name := token + ".snap"
		if i == 1 {
			name = "acme@" + name
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte("snap-"+token), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the node the way the health loop would see it, then fail over.
	dead := nodeByURL(nodes, deadURL)
	dead.mu.Lock()
	dead.down = true
	dead.mu.Unlock()
	p.mu.Lock()
	p.nodes[deadURL].live = false
	p.ring = p.ring.Remove(deadURL)
	p.mu.Unlock()
	p.failover(context.Background(), deadURL)

	ring := p.currentRing()
	for i, token := range tokens {
		owner := ring.Lookup(token)
		own := nodeByURL(nodes, owner)
		if own == nil || !own.has(token) {
			t.Fatalf("session %s not recovered onto ring owner %s", token, owner)
		}
		own.mu.Lock()
		s := own.sessions[token]
		own.mu.Unlock()
		if string(s.snap) != "snap-"+token {
			t.Fatalf("recovered snapshot bytes = %q", s.snap)
		}
		if i == 1 && s.tenant != "acme" {
			t.Fatalf("recovered session tenant = %q, want acme", s.tenant)
		}
		resp, err := http.Get(ts.URL + "/v1/sessions/" + token + "/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered session unreachable: %d", resp.StatusCode)
		}
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("recovered snapshots not renamed: %v", left)
	}
}

// TestProxy404RetryableWhileUnsettled: during a migration/recovery window
// a 404 from a node means "in flight", and the proxy must answer with the
// retryable 503 dialect instead.
func TestProxy404RetryableWhileUnsettled(t *testing.T) {
	p, _, ts := newTestProxy(t, 1, nil)
	token := strings.Repeat("ee", 16)
	p.mu.Lock()
	p.recover++
	p.mu.Unlock()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + token + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsettled 404: code = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unsettled 503 missing Retry-After")
	}
	p.mu.Lock()
	p.recover--
	p.settleTil = time.Time{}
	p.mu.Unlock()
	resp, err = http.Get(ts.URL + "/v1/sessions/" + token + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("settled miss: code = %d, want 404", resp.StatusCode)
	}
}

// TestProxyHealthLoopDetectsDeath runs the real membership loop against a
// fake node flipping down and back up.
func TestProxyHealthLoopDetectsDeath(t *testing.T) {
	p, nodes, _ := newTestProxy(t, 2, func(c *Config) {
		c.HealthEvery = 10 * time.Millisecond
		c.FailAfter = 2
		c.SettleGrace = 50 * time.Millisecond
	})
	p.Start()
	defer p.Close()
	victim := nodes[1]
	victim.mu.Lock()
	victim.down = true
	victim.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for p.currentRing().Has(victim.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("health loop never removed the dead node")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.mu.Lock()
	victim.down = false
	victim.mu.Unlock()
	deadline = time.Now().Add(2 * time.Second)
	for !p.currentRing().Has(victim.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("health loop never re-admitted the recovered node")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouteTokenZeroAlloc pins the proxy's per-request routing cost — an
// override check plus a ring lookup — at zero heap allocations.
func TestRouteTokenZeroAlloc(t *testing.T) {
	p, _, _ := newTestProxy(t, 3, nil)
	token := strings.Repeat("ff", 16)
	allocs := testing.AllocsPerRun(200, func() {
		if p.routeToken(token) == "" {
			t.Fail()
		}
	})
	if allocs != 0 {
		t.Fatalf("routeToken allocates %.1f times per call, want 0", allocs)
	}
}

// TestCreateHeaderRewriteAllocBound pins the create path's header work
// (assign-token header set on a live header map) to a fixed small bound.
func TestCreateHeaderRewriteAllocBound(t *testing.T) {
	h := make(http.Header, 4)
	token := strings.Repeat("aa", 16)
	allocs := testing.AllocsPerRun(200, func() {
		h.Set(server.AssignTokenHeader, token)
	})
	if allocs > 2 {
		t.Fatalf("header rewrite allocates %.1f times per call, want <= 2", allocs)
	}
}
