package clustertest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"gdr/internal/dataset"
	"gdr/internal/relation"
	"gdr/internal/server"
)

// Test-only oracle driver: the same Procedure-1 loop the single-node
// equivalence suite drives, generalized to any base URL so one driver can
// run lockstep against the cluster gateway and a standalone control node.

// hospitalUpload renders a generated workload in the upload formats.
func hospitalUpload(t testing.TB, n int, seed int64) (csvText, rulesText string, d *dataset.Data) {
	t.Helper()
	d = dataset.Hospital(dataset.Config{N: n, Seed: seed, DirtyRate: 0.3})
	var buf bytes.Buffer
	if err := d.Dirty.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	var rules strings.Builder
	for _, r := range d.Rules {
		rules.WriteString(r.String())
		rules.WriteString("\n")
	}
	return buf.String(), rules.String(), d
}

// oracleVerb makes the paper's simulated-user decision from ground truth.
func oracleVerb(truthVal, suggested, current string) string {
	switch {
	case suggested == truthVal:
		return "confirm"
	case current == truthVal:
		return "retain"
	default:
		return "reject"
	}
}

// roundTrace is one round's observable outcome, compared across drivers.
type roundTrace struct {
	GroupAttr    string
	GroupValue   string
	Verbs        []string
	Applied      int
	ForcedFixes  int
	Pending      int
	Dirty        int
	LearnerMoves int
}

// sessionHandle is one driveable session behind some base URL.
type sessionHandle struct {
	client *http.Client
	base   string // e.g. http://host/v1/sessions
	id     string
}

func (h *sessionHandle) url(suffix string) string {
	return h.base + "/" + h.id + suffix
}

// doJSON issues one request, retrying the cluster's 503 shed dialect, and
// decodes the JSON response.
func doJSON(t testing.TB, client *http.Client, method, url string, body any, out any) int {
	t.Helper()
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		payload = b
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < 50 {
			continue // migration window; the Retry-After dialect says try again
		}
		if out != nil && len(data) > 0 && resp.StatusCode < 300 {
			if err := json.Unmarshal(data, out); err != nil {
				t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
			}
		}
		return resp.StatusCode
	}
}

// getBytes fetches a URL's raw body (retrying 503s), for byte-identity
// comparisons.
func getBytes(t testing.TB, client *http.Client, url string) []byte {
	t.Helper()
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < 50 {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
		}
		return data
	}
}

// createSession opens a session and returns its handle.
func createSession(t testing.TB, client *http.Client, baseURL, csvText, rulesText string, seed int64) *sessionHandle {
	t.Helper()
	var created server.CreateSessionResponse
	code := doJSON(t, client, "POST", baseURL+"/v1/sessions",
		server.CreateSessionRequest{CSV: csvText, Rules: rulesText, Seed: seed}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return &sessionHandle{client: client, base: baseURL + "/v1/sessions", id: created.Session.ID}
}

// driveRound plays one top-VOI feedback round. ok=false means the session
// has no groups left — fully repaired.
func driveRound(t testing.TB, h *sessionHandle, truth *relation.DB) (roundTrace, bool) {
	t.Helper()
	var groups server.GroupsResponse
	if code := doJSON(t, h.client, "GET", h.url("/groups?order=voi"), nil, &groups); code != 200 {
		t.Fatalf("groups: status %d", code)
	}
	if len(groups.Groups) == 0 {
		return roundTrace{}, false
	}
	g := groups.Groups[0]
	var ups server.UpdatesResponse
	if code := doJSON(t, h.client, "GET", h.url("/groups/"+g.Key+"/updates"), nil, &ups); code != 200 {
		t.Fatalf("updates: status %d", code)
	}
	items := make([]server.FeedbackItem, len(ups.Updates))
	verbs := make([]string, len(ups.Updates))
	for i, u := range ups.Updates {
		verbs[i] = oracleVerb(truth.Get(u.Tid, u.Attr), u.Value, u.Current)
		items[i] = server.FeedbackItem{Tid: u.Tid, Attr: u.Attr, Value: u.Value, Feedback: verbs[i]}
	}
	var fb server.FeedbackResponse
	if code := doJSON(t, h.client, "POST", h.url("/feedback"),
		server.FeedbackRequest{Items: items, Sweep: true}, &fb); code != 200 {
		t.Fatalf("feedback: status %d", code)
	}
	return roundTrace{
		GroupAttr:    g.Attr,
		GroupValue:   g.Value,
		Verbs:        verbs,
		Applied:      fb.Stats.Applied,
		ForcedFixes:  fb.Stats.ForcedFixes,
		Pending:      fb.Stats.Pending,
		Dirty:        fb.Stats.Dirty,
		LearnerMoves: len(fb.LearnerDecisions),
	}, true
}

// observe captures every byte-comparable view of a session at the current
// trace point: the ranked groups body, the first group's updates body, the
// status stats+models, and the CSV export.
type observation struct {
	groups  string
	updates string
	stats   string
	models  string
	export  string
}

func observe(t testing.TB, h *sessionHandle) observation {
	t.Helper()
	var o observation
	o.groups = string(getBytes(t, h.client, h.url("/groups?order=voi")))
	var groups server.GroupsResponse
	if err := json.Unmarshal([]byte(o.groups), &groups); err != nil {
		t.Fatal(err)
	}
	if len(groups.Groups) > 0 {
		o.updates = string(getBytes(t, h.client, h.url("/groups/"+groups.Groups[0].Key+"/updates")))
	}
	// Status carries per-instance metadata (token, timestamps); the
	// byte-comparable parts are the stats and model assessments.
	var status map[string]json.RawMessage
	if err := json.Unmarshal(getBytes(t, h.client, h.url("/status")), &status); err != nil {
		t.Fatal(err)
	}
	o.stats = string(status["stats"])
	o.models = string(status["models"])
	o.export = string(getBytes(t, h.client, h.url("/export")))
	return o
}

// mustEqualObservation asserts two sessions are byte-identical at the same
// trace point.
func mustEqualObservation(t testing.TB, label string, got, want observation) {
	t.Helper()
	if got.groups != want.groups {
		t.Fatalf("%s: /groups diverges:\n got: %s\nwant: %s", label, got.groups, want.groups)
	}
	if got.updates != want.updates {
		t.Fatalf("%s: /updates diverges:\n got: %s\nwant: %s", label, got.updates, want.updates)
	}
	if got.stats != want.stats {
		t.Fatalf("%s: status stats diverge:\n got: %s\nwant: %s", label, got.stats, want.stats)
	}
	if got.models != want.models {
		t.Fatalf("%s: status models diverge:\n got: %s\nwant: %s", label, got.models, want.models)
	}
	if got.export != want.export {
		t.Fatalf("%s: /export diverges (%d vs %d bytes)", label, len(got.export), len(want.export))
	}
}
