// Package clustertest boots a real multi-node gdrd cluster inside one test
// process: K genuine server.Server instances (cluster mode, each with its
// own snapshot directory) listening on loopback ports, fronted by a real
// cluster.Proxy. Tests drive oracle repair traffic through the proxy,
// inject ring changes (graceful drains, node crashes, fault-injected
// migrations) mid-session, and assert that a migrated session remains
// byte-identical to an unmigrated control at the same trace point — the
// equivalence bar that proves live migration safe.
package clustertest

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"gdr/internal/cluster"
	"gdr/internal/core"
	"gdr/internal/faultfs"
	"gdr/internal/server"
)

// Node is one booted gdrd server.
type Node struct {
	URL     string
	DataDir string

	srv *server.Server
	hs  *http.Server
	ln  net.Listener
}

// Options shapes a test cluster.
type Options struct {
	// N is the node count (default 3).
	N int
	// VNodes overrides the ring's virtual-node count (ring default if 0).
	VNodes int
	// Workers is each node's CPU-slot budget (default 2).
	Workers int
	// SessionWorkers is each session's intra-request fan-out (default 1).
	SessionWorkers int
	// Faults plugs a proxy-side injector into the migration machinery.
	Faults *faultfs.Injector
	// HealthEvery / FailAfter / SettleGrace tune the membership loop
	// (fast test defaults: 50ms / 2 / 250ms).
	HealthEvery time.Duration
	FailAfter   int
	SettleGrace time.Duration
}

// Cluster is the booted rig: nodes, proxy, and the proxy's front door.
type Cluster struct {
	tb      testing.TB
	opts    Options
	Nodes   []*Node
	Proxy   *cluster.Proxy
	Gateway *httptest.Server
}

// quietLogger drops everything below Error — the rig boots and kills whole
// servers, and their routine lifecycle chatter would bury test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Start boots the rig and registers cleanup on tb.
func Start(tb testing.TB, opts Options) *Cluster {
	tb.Helper()
	if opts.N <= 0 {
		opts.N = 3
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.SessionWorkers <= 0 {
		opts.SessionWorkers = 1
	}
	if opts.HealthEvery <= 0 {
		opts.HealthEvery = 50 * time.Millisecond
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 2
	}
	if opts.SettleGrace <= 0 {
		opts.SettleGrace = 250 * time.Millisecond
	}
	c := &Cluster{tb: tb, opts: opts}
	urls := make([]string, opts.N)
	dataDirs := make(map[string]string, opts.N)
	for i := 0; i < opts.N; i++ {
		n := c.bootNode(tb.TempDir())
		c.Nodes = append(c.Nodes, n)
		urls[i] = n.URL
		dataDirs[n.URL] = n.DataDir
	}
	p, err := cluster.New(cluster.Config{
		Nodes:       urls,
		DataDirs:    dataDirs,
		VNodes:      opts.VNodes,
		HealthEvery: opts.HealthEvery,
		FailAfter:   opts.FailAfter,
		SettleGrace: opts.SettleGrace,
		Logger:      quietLogger(),
		Faults:      opts.Faults,
	})
	if err != nil {
		tb.Fatal(err)
	}
	c.Proxy = p
	p.Start()
	c.Gateway = httptest.NewServer(p.Handler())
	tb.Cleanup(c.Close)
	return c
}

// bootNode starts one real gdrd server on a loopback port.
func (c *Cluster) bootNode(dataDir string) *Node {
	c.tb.Helper()
	srv := server.New(server.Config{
		ClusterMode: true,
		DataDir:     dataDir,
		Workers:     c.opts.Workers,
		TTL:         time.Hour,
		Session:     core.Config{Workers: c.opts.SessionWorkers},
		Logger:      quietLogger(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.tb.Fatal(err)
	}
	n := &Node{
		URL:     "http://" + ln.Addr().String(),
		DataDir: dataDir,
		srv:     srv,
		hs:      &http.Server{Handler: srv.Handler()},
		ln:      ln,
	}
	go func() {
		if err := n.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			// The rig closes listeners on purpose; anything else is test noise
			// worth surfacing.
			os.Stderr.WriteString("clustertest: node serve: " + err.Error() + "\n")
		}
	}()
	return n
}

// URL is the cluster's front door — clients talk only to the proxy.
func (c *Cluster) URL() string { return c.Gateway.URL }

// Client returns the gateway's HTTP client.
func (c *Cluster) Client() *http.Client { return c.Gateway.Client() }

// Kill makes node i drop off the network abruptly, like a crashed process:
// its listener closes mid-flight and nothing drains. The node's snapshot
// directory survives — that is what the proxy's failover restores from.
func (c *Cluster) Kill(i int) {
	c.tb.Helper()
	n := c.Nodes[i]
	if n.hs == nil {
		return
	}
	_ = n.hs.Close()
	n.srv.Close()
	n.hs = nil
}

// KillAndWipe is the shared-nothing crash: node i drops off the network
// AND its snapshot directory is destroyed. Nothing of the node survives,
// so recovery must come from the replicas the proxy pushed to the other
// nodes — the disk-failover path has nothing to read.
func (c *Cluster) KillAndWipe(i int) {
	c.tb.Helper()
	c.Kill(i)
	if err := os.RemoveAll(c.Nodes[i].DataDir); err != nil {
		c.tb.Fatalf("clustertest: wiping %s: %v", c.Nodes[i].DataDir, err)
	}
}

// WaitReady blocks until the gateway's /readyz reports ready — no failover
// or migration in flight and the post-ring-change settle window closed —
// or the deadline passes.
func (c *Cluster) WaitReady(deadline time.Duration) {
	c.tb.Helper()
	end := time.Now().Add(deadline)
	for {
		resp, err := http.Get(c.Gateway.URL + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(end) {
			c.tb.Fatal("clustertest: gateway never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Restart boots a replacement server for a killed node on the same
// address and data dir — the "replacement node" heal path. The health loop
// re-admits it once it answers probes.
func (c *Cluster) Restart(i int) {
	c.tb.Helper()
	n := c.Nodes[i]
	if n.hs != nil {
		c.tb.Fatal("clustertest: Restart of a live node")
	}
	srv := server.New(server.Config{
		ClusterMode: true,
		DataDir:     n.DataDir,
		Workers:     c.opts.Workers,
		TTL:         time.Hour,
		Session:     core.Config{Workers: c.opts.SessionWorkers},
		Logger:      quietLogger(),
	})
	ln, err := net.Listen("tcp", n.ln.Addr().String())
	if err != nil {
		c.tb.Fatalf("clustertest: rebinding %s: %v", n.URL, err)
	}
	n.srv = srv
	n.ln = ln
	n.hs = &http.Server{Handler: srv.Handler()}
	go func() { _ = n.hs.Serve(ln) }()
}

// Drain gracefully removes node i from the ring, migrating its sessions.
func (c *Cluster) Drain(ctx context.Context, i int) error {
	return c.Proxy.RemoveNode(ctx, c.Nodes[i].URL)
}

// AddBack re-admits a drained node and rebalances onto it.
func (c *Cluster) AddBack(ctx context.Context, i int) error {
	return c.Proxy.AddNode(ctx, c.Nodes[i].URL)
}

// Owner returns the index of the node currently owning a token on the
// ring, or -1.
func (c *Cluster) Owner(token string) int {
	owner := c.Proxy.Ring().Lookup(token)
	for i, n := range c.Nodes {
		if n.URL == owner {
			return i
		}
	}
	return -1
}

// WaitRing blocks until the ring's live member count reaches want (the
// health loop runs asynchronously) or the deadline passes.
func (c *Cluster) WaitRing(want int, deadline time.Duration) {
	c.tb.Helper()
	end := time.Now().Add(deadline)
	for {
		if c.Proxy.Ring().Len() == want {
			return
		}
		if time.Now().After(end) {
			c.tb.Fatalf("clustertest: ring never reached %d live nodes (have %d)", want, c.Proxy.Ring().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close tears the whole rig down.
func (c *Cluster) Close() {
	if c.Gateway != nil {
		c.Gateway.Close()
		c.Gateway = nil
	}
	if c.Proxy != nil {
		c.Proxy.Close()
		c.Proxy = nil
	}
	for _, n := range c.Nodes {
		if n.hs != nil {
			_ = n.hs.Close()
			n.srv.Close()
			n.hs = nil
		}
	}
}
