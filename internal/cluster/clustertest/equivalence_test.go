package clustertest

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"gdr/internal/core"
	"gdr/internal/server"
)

// newControlServer boots a standalone single gdrd — the unmigrated control
// the cluster session is compared against.
func newControlServer(t testing.TB, workers, sessionWorkers int) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{
		Workers: workers,
		Session: core.Config{Workers: sessionWorkers},
		Logger:  quietLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// runMigrationEquivalence drives one cluster session and one standalone
// control session in lockstep through the oracle repair loop, forces ring
// changes mid-session (a graceful drain while the session is half
// repaired, then the drained node's return), and asserts the migrated
// session is byte-identical to the control at every compared trace point.
func runMigrationEquivalence(t *testing.T, workers, sessionWorkers, n, maxRounds int) {
	t.Helper()
	const seed = int64(11)
	csvText, rulesText, d := hospitalUpload(t, n, seed)

	c := Start(t, Options{N: 3, Workers: workers, SessionWorkers: sessionWorkers})
	control := newControlServer(t, workers, sessionWorkers)

	clusterSess := createSession(t, c.Client(), c.URL(), csvText, rulesText, seed)
	controlSess := createSession(t, control.Client(), control.URL, csvText, rulesText, seed)

	// The proxy placed the session on its ring owner.
	firstOwner := c.Owner(clusterSess.id)
	if firstOwner < 0 {
		t.Fatalf("session %s has no ring owner", clusterSess.id)
	}

	migrated := false
	returned := false
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		clusterTrace, more := driveRound(t, clusterSess, d.Truth)
		controlTrace, controlMore := driveRound(t, controlSess, d.Truth)
		if more != controlMore {
			t.Fatalf("round %d: cluster done=%v but control done=%v", rounds, !more, !controlMore)
		}
		if !more {
			break
		}
		if !reflect.DeepEqual(clusterTrace, controlTrace) {
			t.Fatalf("round %d diverges:\ncluster: %+v\ncontrol: %+v", rounds, clusterTrace, controlTrace)
		}
		switch rounds {
		case 2:
			// Mid-session ring change #1: gracefully drain the node that
			// owns the session, forcing a live migration.
			if err := c.Drain(context.Background(), firstOwner); err != nil {
				t.Fatalf("drain: %v", err)
			}
			newOwner := c.Owner(clusterSess.id)
			if newOwner == firstOwner || newOwner < 0 {
				t.Fatalf("session still owned by drained node %d", firstOwner)
			}
			migrated = true
			// The moved session must be byte-identical right now, not just
			// at the end.
			mustEqualObservation(t, "post-migration", observe(t, clusterSess), observe(t, controlSess))
		case 4:
			// Ring change #2: the node returns; if the token hashes back to
			// it, the session migrates home again.
			if err := c.AddBack(context.Background(), firstOwner); err != nil {
				t.Fatalf(" add back: %v", err)
			}
			returned = true
			mustEqualObservation(t, "post-return", observe(t, clusterSess), observe(t, controlSess))
		}
	}
	if !migrated || !returned {
		t.Fatalf("test never exercised both ring changes (rounds=%d migrated=%v returned=%v)", rounds, migrated, returned)
	}
	if rounds < 5 {
		t.Fatalf("repair finished after %d rounds — too few to cover the ring changes", rounds)
	}
	// Final trace point: the fully driven session, after two migrations,
	// against the never-migrated control.
	mustEqualObservation(t, "final", observe(t, clusterSess), observe(t, controlSess))

	// The session must have actually repaired something.
	var status map[string]any
	if code := doJSON(t, clusterSess.client, "GET", clusterSess.url("/status"), nil, &status); code != 200 {
		t.Fatalf("status: %d", code)
	}
	stats := status["stats"].(map[string]any)
	if stats["applied"].(float64) == 0 {
		t.Fatal("no repairs applied over the whole drive")
	}
}

// TestClusterMigrationEquivalenceSerial is the tentpole assertion: a
// session that lived on three different nodes over its lifetime is
// byte-identical — groups, updates, status, export — to one that never
// moved.
func TestClusterMigrationEquivalenceSerial(t *testing.T) {
	n, rounds := 150, 120
	if testing.Short() {
		n, rounds = 90, 80
	}
	runMigrationEquivalence(t, 2, 1, n, rounds)
}

// TestClusterMigrationEquivalenceWorkers4 re-runs the equivalence drive
// with intra-session parallelism (workers=4): migration must preserve
// byte-identity under the parallel scoring paths too.
func TestClusterMigrationEquivalenceWorkers4(t *testing.T) {
	n, rounds := 120, 100
	if testing.Short() {
		n, rounds = 80, 60
	}
	runMigrationEquivalence(t, 8, 4, n, rounds)
}
