package clustertest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"testing"
	"time"

	"gdr/internal/cluster"
	"gdr/internal/faultfs"
	"gdr/internal/server"
)

// The shared-nothing drives: the same lockstep oracle loop as the
// migration equivalence suite, but the node loss is total — SIGKILL plus
// the snapshot directory deleted. Recovery has nothing of the dead node to
// read; the session must come back from the replica the proxy pushed to a
// survivor, byte-identical to the unmigrated control.

// replicaHolders lists which live nodes hold a replica of the token,
// asked of the nodes' spill stores directly so proxy state cannot hide a
// missing or duplicated copy.
func replicaHolders(t testing.TB, c *Cluster, token string) []int {
	t.Helper()
	var holders []int
	for i, n := range c.Nodes {
		if n.hs == nil {
			continue // killed
		}
		resp, err := http.Get(n.URL + "/v1/replicas")
		if err != nil {
			t.Fatal(err)
		}
		var list server.ReplicaList
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range list.Replicas {
			if rep.Token == token {
				holders = append(holders, i)
			}
		}
	}
	return holders
}

// getReplicaRaw pulls one replica's bytes and watermark straight off a
// node's spill store.
func getReplicaRaw(t testing.TB, nodeURL, key string) ([]byte, uint64) {
	t.Helper()
	resp, err := http.Get(nodeURL + "/v1/replicas/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET replica %s: status %d", key, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(server.MutationSeqHeader), 10, 64)
	if err != nil {
		t.Fatalf("replica %s: bad watermark header: %v", key, err)
	}
	return data, seq
}

// putReplicaRaw PUTs watermarked snapshot bytes into a node's spill store
// and returns the status code.
func putReplicaRaw(t testing.TB, nodeURL, key string, seq uint64, data []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, nodeURL+"/v1/replicas/"+key, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(server.MutationSeqHeader, strconv.FormatUint(seq, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// runShardLossEquivalence drives one cluster session and one standalone
// control in lockstep, then destroys the session's owner completely —
// process and disk — mid-drive. The session must be promoted from its
// replica onto a survivor and stay byte-identical to the control; later
// the wiped node returns empty and the drive must still converge.
func runShardLossEquivalence(t *testing.T, workers, sessionWorkers, n, maxRounds int) {
	t.Helper()
	const seed = int64(17)
	csvText, rulesText, d := hospitalUpload(t, n, seed)

	c := Start(t, Options{N: 3, Workers: workers, SessionWorkers: sessionWorkers})
	control := newControlServer(t, workers, sessionWorkers)
	ctx := context.Background()

	cs := createSession(t, c.Client(), c.URL(), csvText, rulesText, seed)
	ctl := createSession(t, control.Client(), control.URL, csvText, rulesText, seed)
	token := cs.id

	equal := func(label string) {
		t.Helper()
		mustEqualObservation(t, label, observe(t, cs), observe(t, ctl))
	}

	wiped, rejoined := false, false
	owner := -1
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		clusterTrace, more := driveRound(t, cs, d.Truth)
		controlTrace, controlMore := driveRound(t, ctl, d.Truth)
		if more != controlMore {
			t.Fatalf("round %d: cluster done=%v but control done=%v", rounds, !more, !controlMore)
		}
		if !more {
			break
		}
		if !reflect.DeepEqual(clusterTrace, controlTrace) {
			t.Fatalf("round %d diverges:\ncluster: %+v\ncontrol: %+v", rounds, clusterTrace, controlTrace)
		}
		switch rounds {
		case 2:
			// The shared-nothing kill: flush replication so the replica is
			// provably current, then take the owner's process AND disk.
			owner = c.Owner(token)
			if owner < 0 {
				t.Fatalf("session %s has no ring owner", token)
			}
			if err := c.Proxy.SyncReplicas(ctx); err != nil {
				t.Fatalf("sync before kill: %v", err)
			}
			c.KillAndWipe(owner)
			c.WaitRing(2, 10*time.Second)
			c.WaitReady(10 * time.Second)
			if newOwner := c.Owner(token); newOwner == owner || newOwner < 0 {
				t.Fatalf("post-wipe: session still routed to dead node %d (owner=%d)", owner, newOwner)
			}
			mustCopies(t, c, token, 1, "post-wipe")
			equal("post-wipe")
			wiped = true
		case 4:
			// The wiped node returns with an empty disk; the health loop
			// re-admits it after FailAfter clean probes and the session may
			// migrate home. Nothing stale can resurrect — there is nothing
			// on its disk to resurrect from.
			c.Restart(owner)
			c.WaitRing(3, 10*time.Second)
			c.WaitReady(10 * time.Second)
			mustCopies(t, c, token, 1, "post-rejoin")
			equal("post-rejoin")
			rejoined = true
		}
	}
	if !wiped || !rejoined {
		t.Fatalf("drive never exercised both phases (rounds=%d wiped=%v rejoined=%v)", rounds, wiped, rejoined)
	}
	if rounds < 5 {
		t.Fatalf("repair finished after %d rounds — too few to cover the kill and rejoin", rounds)
	}
	equal("final")

	// The recovery must have come from a replica — the disk path had
	// nothing to read.
	if v := c.Proxy.Registry().Counter("gdrproxy_replica_promotions_total").Value(); v == 0 {
		t.Fatal("no replica promotions recorded; recovery did not use the replica path")
	}

	var status map[string]any
	if code := doJSON(t, cs.client, "GET", cs.url("/status"), nil, &status); code != 200 {
		t.Fatalf("status: %d", code)
	}
	if status["stats"].(map[string]any)["applied"].(float64) == 0 {
		t.Fatal("no repairs applied over the whole drive")
	}
}

// TestClusterShardLossEquivalenceSerial is the tentpole assertion for
// replication: losing a node and its disk mid-session costs nothing the
// client can observe.
func TestClusterShardLossEquivalenceSerial(t *testing.T) {
	n, rounds := 150, 120
	if testing.Short() {
		n, rounds = 90, 80
	}
	runShardLossEquivalence(t, 2, 1, n, rounds)
}

// TestClusterShardLossEquivalenceWorkers4 re-runs the shard-loss drive
// with intra-session parallelism: promotion from a replica must preserve
// byte-identity under the parallel scoring paths too.
func TestClusterShardLossEquivalenceWorkers4(t *testing.T) {
	n, rounds := 120, 100
	if testing.Short() {
		n, rounds = 80, 60
	}
	runShardLossEquivalence(t, 8, 4, n, rounds)
}

// TestClusterReplicationChaos injects replication-specific faults into the
// oracle drive: pushes that fail at the wire, the replica holder dying and
// losing its spill store, and a stale-watermark write replayed at a node.
// After every heal the cluster must converge back to one fresh primary
// plus one fresh replica, still byte-identical to the control.
func TestClusterReplicationChaos(t *testing.T) {
	n, maxRounds := 120, 80
	if testing.Short() {
		n, maxRounds = 80, 50
	}
	const seed = int64(29)
	csvText, rulesText, d := hospitalUpload(t, n, seed)

	faults := faultfs.New(11)
	c := Start(t, Options{N: 3, Faults: faults})
	control := newControlServer(t, 2, 1)
	ctx := context.Background()

	cs := createSession(t, c.Client(), c.URL(), csvText, rulesText, seed)
	ctl := createSession(t, control.Client(), control.URL, csvText, rulesText, seed)
	token := cs.id

	equal := func(label string) {
		t.Helper()
		mustEqualObservation(t, label, observe(t, cs), observe(t, ctl))
	}

	phases := 0
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		clusterTrace, more := driveRound(t, cs, d.Truth)
		controlTrace, controlMore := driveRound(t, ctl, d.Truth)
		if more != controlMore {
			t.Fatalf("round %d: cluster done=%v but control done=%v", rounds, !more, !controlMore)
		}
		if !more {
			break
		}
		if verbs, controlVerbs := clusterTrace.Verbs, controlTrace.Verbs; len(verbs) != len(controlVerbs) {
			t.Fatalf("round %d diverges: %+v vs %+v", rounds, clusterTrace, controlTrace)
		}

		switch rounds {
		case 0:
			// Arm phase A: every replica push now dies at the wire, so the
			// feedback round just driven (and the next) leaves the replica
			// behind its primary.
			faults.Set(cluster.FaultReplicate, faultfs.Rule{P: 1})
		case 1:
			// Phase A — push failures are loud, and healing converges. The
			// replica is stale right now; a sync must say so, and serving
			// must be unaffected.
			if err := c.Proxy.SyncReplicas(ctx); err == nil {
				t.Fatal("phase A: sync with failing pushes should report the lag")
			}
			equal("phase A mid-fault")
			faults.Clear()
			if err := c.Proxy.SyncReplicas(ctx); err != nil {
				t.Fatalf("phase A: healed sync: %v", err)
			}
			owner := c.Owner(token)
			holders := replicaHolders(t, c, token)
			if len(holders) != 1 || holders[0] == owner {
				t.Fatalf("phase A: replica holders %v (owner %d), want exactly one non-owner", holders, owner)
			}
			equal("phase A healed")
			phases++
		case 3:
			// Phase B — the replica holder dies and loses its disk. The
			// audit must re-hint the replica to the remaining survivor, and
			// the returned (empty) node must be re-populated, not trusted.
			holders := replicaHolders(t, c, token)
			if len(holders) != 1 {
				t.Fatalf("phase B: replica holders %v, want exactly one", holders)
			}
			holder := holders[0]
			c.KillAndWipe(holder)
			c.WaitRing(2, 10*time.Second)
			c.WaitReady(10 * time.Second)
			if err := c.Proxy.SyncReplicas(ctx); err != nil {
				t.Fatalf("phase B: sync after holder loss: %v", err)
			}
			owner := c.Owner(token)
			rehinted := replicaHolders(t, c, token)
			if len(rehinted) != 1 || rehinted[0] == owner || rehinted[0] == holder {
				t.Fatalf("phase B: replica holders %v (owner %d, dead %d), want the surviving non-owner", rehinted, owner, holder)
			}
			equal("phase B re-hinted")
			c.Restart(holder)
			c.WaitRing(3, 10*time.Second)
			c.WaitReady(10 * time.Second)
			if err := c.Proxy.SyncReplicas(ctx); err != nil {
				t.Fatalf("phase B: sync after holder return: %v", err)
			}
			mustCopies(t, c, token, 1, "phase B restored")
			equal("phase B restored")
			phases++
		case 5:
			// Phase C — a delayed push replays an old watermark straight at
			// the node. The spill store must refuse to roll back, and an
			// exact replay of the current version must stay idempotent.
			if err := c.Proxy.SyncReplicas(ctx); err != nil {
				t.Fatalf("phase C: sync: %v", err)
			}
			holders := replicaHolders(t, c, token)
			if len(holders) != 1 {
				t.Fatalf("phase C: replica holders %v, want exactly one", holders)
			}
			nodeURL := c.Nodes[holders[0]].URL
			data, seq := getReplicaRaw(t, nodeURL, token)
			if seq == 0 {
				t.Fatal("phase C: replica watermark is 0 after mutating rounds")
			}
			if code := putReplicaRaw(t, nodeURL, token, seq-1, data); code != http.StatusConflict {
				t.Fatalf("phase C: stale-watermark push answered %d, want 409", code)
			}
			if _, after := getReplicaRaw(t, nodeURL, token); after != seq {
				t.Fatalf("phase C: stale push moved the watermark %d -> %d", seq, after)
			}
			if code := putReplicaRaw(t, nodeURL, token, seq, data); code != http.StatusOK {
				t.Fatalf("phase C: same-watermark replay answered %d, want 200", code)
			}
			equal("phase C")
			phases++
		}
	}
	if phases != 3 {
		t.Fatalf("only %d of 3 replication chaos phases ran (repair finished after %d rounds)", phases, rounds)
	}
	equal("final")
}
