package clustertest

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"gdr/internal/cluster"
	"gdr/internal/faultfs"
	"gdr/internal/server"
)

// The migration chaos drive: the same lockstep oracle loop as the
// equivalence suite, but every ring change happens under an injected
// migration fault — a failed export, a failed import, and a failed source
// delete followed by the stale node crashing and coming back. After every
// heal the cluster session must be byte-identical to the unmigrated
// control, the session must never be lost (unreachable) or duplicated
// (two live authoritative copies), and the drive must still finish with
// repairs applied.

// sessionCopies counts how many live nodes hold a copy of the token —
// asked of the nodes directly, not through the proxy, so routing overrides
// cannot hide a duplicate.
func sessionCopies(t testing.TB, c *Cluster, token string) int {
	t.Helper()
	copies := 0
	for _, n := range c.Nodes {
		if n.hs == nil {
			continue // killed
		}
		resp, err := http.Get(n.URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		var list server.SessionList
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range list.Sessions {
			if s.ID == token {
				copies++
			}
		}
	}
	return copies
}

// mustCopies asserts the never-lost / never-duplicated invariant.
func mustCopies(t testing.TB, c *Cluster, token string, want int, label string) {
	t.Helper()
	if got := sessionCopies(t, c, token); got != want {
		t.Fatalf("%s: session %s exists on %d nodes, want %d", label, token, got, want)
	}
}

// waitConverged blocks until the proxy's stale ledger drains (the health
// loop's sweep runs every HealthEvery).
func waitConverged(t testing.TB, c *Cluster, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for c.Proxy.StaleCount() > 0 {
		if time.Now().After(end) {
			t.Fatalf("stale ledger never drained (%d entries left)", c.Proxy.StaleCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterMigrationChaos(t *testing.T) {
	n, maxRounds := 120, 80
	if testing.Short() {
		n, maxRounds = 80, 50
	}
	const seed = int64(23)
	csvText, rulesText, d := hospitalUpload(t, n, seed)

	faults := faultfs.New(7)
	c := Start(t, Options{N: 3, Faults: faults})
	control := newControlServer(t, 2, 1)
	ctx := context.Background()

	cs := createSession(t, c.Client(), c.URL(), csvText, rulesText, seed)
	ctl := createSession(t, control.Client(), control.URL, csvText, rulesText, seed)
	token := cs.id

	equal := func(label string) {
		t.Helper()
		mustEqualObservation(t, label, observe(t, cs), observe(t, ctl))
	}

	phases := 0
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		clusterTrace, more := driveRound(t, cs, d.Truth)
		controlTrace, controlMore := driveRound(t, ctl, d.Truth)
		if more != controlMore {
			t.Fatalf("round %d: cluster done=%v but control done=%v", rounds, !more, !controlMore)
		}
		if !more {
			break
		}
		if verbs, controlVerbs := clusterTrace.Verbs, controlTrace.Verbs; len(verbs) != len(controlVerbs) {
			t.Fatalf("round %d diverges: %+v vs %+v", rounds, clusterTrace, controlTrace)
		}

		switch rounds {
		case 1:
			// Phase A — export fails mid-drain. The session must stay on the
			// source (the only complete copy) and stay reachable through the
			// proxy's override, then move cleanly once exports heal.
			owner := c.Owner(token)
			faults.Set(cluster.FaultExport, faultfs.Rule{P: 1})
			if err := c.Drain(ctx, owner); err == nil {
				t.Fatal("phase A: drain with failing exports should report the stuck move")
			}
			mustCopies(t, c, token, 1, "phase A mid-fault")
			equal("phase A mid-fault")
			faults.Clear()
			if err := c.Drain(ctx, owner); err != nil {
				t.Fatalf("phase A: healed drain: %v", err)
			}
			if c.Owner(token) == owner {
				t.Fatal("phase A: session owner unchanged after drain")
			}
			mustCopies(t, c, token, 1, "phase A healed")
			equal("phase A healed")
			if err := c.AddBack(ctx, owner); err != nil {
				t.Fatalf("phase A: add back: %v", err)
			}
			equal("phase A restored")
			phases++
		case 3:
			// Phase B — import fails mid-drain: same contract, the copy on
			// the destination must never half-exist.
			owner := c.Owner(token)
			faults.Set(cluster.FaultImport, faultfs.Rule{P: 1})
			if err := c.Drain(ctx, owner); err == nil {
				t.Fatal("phase B: drain with failing imports should report the stuck move")
			}
			mustCopies(t, c, token, 1, "phase B mid-fault")
			equal("phase B mid-fault")
			faults.Clear()
			if err := c.Drain(ctx, owner); err != nil {
				t.Fatalf("phase B: healed drain: %v", err)
			}
			mustCopies(t, c, token, 1, "phase B healed")
			equal("phase B healed")
			if err := c.AddBack(ctx, owner); err != nil {
				t.Fatalf("phase B: add back: %v", err)
			}
			equal("phase B restored")
			phases++
		case 5:
			// Phase C — the source delete fails: the move itself succeeds and
			// a superseded copy lingers on the drained node. The stale node
			// then crashes and restarts (resurrecting the stale copy from its
			// own snapshot file) before deletes heal. The ledger must keep
			// routing pinned to the fresh copy throughout and sweep the
			// resurrected one away.
			owner := c.Owner(token)
			faults.Set(cluster.FaultDelete, faultfs.Rule{P: 1})
			if err := c.Drain(ctx, owner); err != nil {
				t.Fatalf("phase C: drain: %v", err)
			}
			mustCopies(t, c, token, 2, "phase C stale overlap")
			if c.Proxy.StaleCount() != 1 {
				t.Fatalf("phase C: stale ledger = %d, want 1", c.Proxy.StaleCount())
			}
			equal("phase C stale overlap")
			c.Kill(owner)
			faults.Clear()
			c.Restart(owner)
			waitConverged(t, c, 5*time.Second)
			mustCopies(t, c, token, 1, "phase C converged")
			equal("phase C converged")
			if err := c.AddBack(ctx, owner); err != nil {
				t.Fatalf("phase C: add back: %v", err)
			}
			mustCopies(t, c, token, 1, "phase C restored")
			equal("phase C restored")
			phases++
		}
	}
	if phases != 3 {
		t.Fatalf("only %d of 3 chaos phases ran (repair finished after %d rounds)", phases, rounds)
	}
	equal("final")

	var status map[string]any
	if code := doJSON(t, cs.client, "GET", cs.url("/status"), nil, &status); code != 200 {
		t.Fatalf("status: %d", code)
	}
	if status["stats"].(map[string]any)["applied"].(float64) == 0 {
		t.Fatal("no repairs applied over the whole chaos drive")
	}
}
