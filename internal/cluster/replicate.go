package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"gdr/internal/server"
)

// Shared-nothing session replication. Every session's latest snapshot
// lives in two places: on its ring owner (the primary, serving traffic)
// and in the replica spill store of the next distinct ring node. The proxy
// drives the copies:
//
//	push    — after every mutating round (feedback 200, create 201) the
//	          session's token is queued; the replicator exports the
//	          snapshot from the primary and PUTs it to the replica node,
//	          watermarked with the mutation sequence the bytes capture.
//	          The store rejects stale watermarks, so a delayed push can
//	          never roll a replica back.
//	promote — when a node dies, failover() pulls the freshest replica of
//	          each of its sessions from the survivors and imports it onto
//	          the new ring owner — no access to the dead node's disk
//	          required. The disk path remains as a fallback for sessions
//	          that never got a replica (single-node rings, push lag).
//	audit   — every health tick the anti-entropy sweep re-derives the
//	          desired placement (primary per ring owner, replica per
//	          LookupReplica) and queues pushes for missing or lagging
//	          replicas. Because the ring only contains live nodes, a dead
//	          replica holder's keys are automatically re-hinted to the
//	          next distinct survivor, and move back when it rejoins.
//	gc      — replicas whose session is gone or whose placement moved are
//	          deleted, but only in a quiet cluster (every configured node
//	          live, no inventory errors, no failover or migration in
//	          flight): deleting a copy is the one irreversible act here,
//	          so it waits until the sweep can see the whole board.

// observeForReplication inspects one successful upstream response on the
// proxying hot path and queues replica work. It never blocks: the queue is
// a map merge plus a buffered-channel doorbell.
func (p *Proxy) observeForReplication(resp *http.Response) {
	r := resp.Request
	switch {
	case r.Method == http.MethodPost && resp.StatusCode == http.StatusCreated && r.URL.Path == "/v1/sessions":
		// A fresh session: replicate it right away, so it survives its
		// owner's death even before the first feedback round.
		if token := r.Header.Get(server.AssignTokenHeader); token != "" {
			p.enqueueReplicate(token)
		}
	case r.Method == http.MethodPost && resp.StatusCode == http.StatusOK && strings.HasSuffix(r.URL.Path, "/feedback"):
		if token := sessionTokenFromPath(r.URL.Path); token != "" {
			p.enqueueReplicate(token)
		}
	case r.Method == http.MethodDelete && resp.StatusCode == http.StatusOK:
		if token := sessionTokenFromPath(r.URL.Path); token != "" && !strings.Contains(strings.TrimPrefix(r.URL.Path, "/v1/sessions/"), "/") {
			p.enqueueDrop(token)
		}
	}
}

// sessionTokenFromPath extracts the token segment of /v1/sessions/{id}[/…].
func sessionTokenFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// enqueueReplicate queues one token for a replica push.
func (p *Proxy) enqueueReplicate(token string) {
	p.replMu.Lock()
	p.replPend[token] = struct{}{}
	delete(p.replDrop, token) // a live mutation supersedes a pending drop
	p.replMu.Unlock()
	p.wakeReplicator()
}

// enqueueDrop queues one deleted session's replicas for removal.
func (p *Proxy) enqueueDrop(token string) {
	p.replMu.Lock()
	delete(p.replPend, token)
	p.replDrop[token] = struct{}{}
	p.replMu.Unlock()
	p.wakeReplicator()
}

func (p *Proxy) wakeReplicator() {
	select {
	case p.replWake <- struct{}{}:
	default:
	}
}

// replicator is the background worker draining the push/drop queues. It is
// deliberately not in the request path: feedback latency never waits on a
// replica push, and a slow replica node degrades durability (visible as
// audit re-queues) rather than serving.
func (p *Proxy) replicator() {
	defer p.healthWG.Done()
	for {
		select {
		case <-p.replWake:
			p.drainReplication(context.Background())
		case <-p.stop:
			return
		}
	}
}

// drainReplication processes everything currently queued, in token order.
// A failed push is counted and logged but not re-queued here — the
// anti-entropy audit re-derives the need on the next health tick, which
// also gives the target time to recover.
func (p *Proxy) drainReplication(ctx context.Context) error {
	p.replMu.Lock()
	pushes := make([]string, 0, len(p.replPend))
	for t := range p.replPend {
		pushes = append(pushes, t)
	}
	drops := make([]string, 0, len(p.replDrop))
	for t := range p.replDrop {
		drops = append(drops, t)
	}
	clear(p.replPend)
	clear(p.replDrop)
	p.replMu.Unlock()
	sort.Strings(pushes)
	sort.Strings(drops)
	var firstErr error
	for _, token := range pushes {
		if err := p.pushReplica(ctx, token); err != nil {
			p.reg.Counter("gdrproxy_replica_push_failures_total").Inc()
			p.log.Warn("replica push failed; the audit will retry", "token", token, "err", err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, token := range drops {
		p.dropReplicas(ctx, token)
	}
	return firstErr
}

// pushReplica refreshes one session's replica: export from the current
// primary, PUT to the ring's replica node, watermarked.
func (p *Proxy) pushReplica(ctx context.Context, token string) error {
	if err := p.cfg.Faults.Fault(FaultReplicate); err != nil {
		return err
	}
	primary := p.routeToken(token)
	if primary == "" {
		return fmt.Errorf("cluster: no node serves %s", token)
	}
	target := p.currentRing().LookupReplica(token)
	if target == "" {
		return nil // single-node ring: nowhere distinct to replicate
	}
	snap, seq, tenant, err := p.exportSession(ctx, primary, token)
	if err != nil {
		return fmt.Errorf("exporting %s from %s: %w", token, primary, err)
	}
	if target == primary {
		// Placement moved while exporting; the next audit re-derives it.
		return nil
	}
	if err := p.putReplica(ctx, target, replicaKey(tenant, token), seq, snap); err != nil {
		return fmt.Errorf("pushing %s to %s: %w", token, target, err)
	}
	p.reg.Counter("gdrproxy_replica_pushes_total").Inc()
	return nil
}

// dropReplicas removes every node's replica of a deleted session.
func (p *Proxy) dropReplicas(ctx context.Context, token string) {
	for _, node := range p.currentRing().Nodes() {
		held, err := p.listReplicas(ctx, node)
		if err != nil {
			continue // the quiet-cluster GC will finish the job
		}
		for _, rep := range held {
			if rep.Token != token {
				continue
			}
			if err := p.deleteReplica(ctx, node, rep.Key); err == nil {
				p.reg.Counter("gdrproxy_replica_drops_total").Inc()
			}
		}
	}
}

// replicaKey renders the spill-store key for a session.
func replicaKey(tenant, token string) string {
	if tenant == "" {
		return token
	}
	return tenant + "@" + token
}

// auditReplicas is the anti-entropy sweep: re-derive the desired replica
// placement from the live session inventory and queue a push for every
// replica that is missing, misplaced, or behind its primary's mutation
// sequence. Runs on every health tick and after ring changes (via the
// tick that applied them).
func (p *Proxy) auditReplicas(ctx context.Context) {
	ring := p.currentRing()
	if ring.Len() < 2 {
		return // no distinct node to hold replicas
	}
	desired := make(map[string]replicaWant) // replica key → requirement
	inventoryOK := true
	for _, node := range ring.Nodes() {
		infos, err := p.listNode(ctx, node, p.adminAuth())
		if err != nil {
			p.log.Warn("replica audit: listing node failed", "node", node, "err", err)
			inventoryOK = false
			continue
		}
		for _, s := range infos {
			if p.staleAt(s.ID) == node || ring.Lookup(s.ID) != node {
				continue // superseded or transient copy; only primaries replicate
			}
			desired[replicaKey(s.Tenant, s.ID)] = replicaWant{token: s.ID, seq: s.MutSeq, target: ring.LookupReplica(s.ID)}
		}
	}
	held := make(map[string]map[string]server.ReplicaInfo) // node → key → info
	for _, node := range ring.Nodes() {
		reps, err := p.listReplicas(ctx, node)
		if err != nil {
			inventoryOK = false
			continue
		}
		byKey := make(map[string]server.ReplicaInfo, len(reps))
		for _, rep := range reps {
			byKey[rep.Key] = rep
		}
		held[node] = byKey
	}
	for key, w := range desired {
		rep, ok := held[w.target][key]
		if !ok || rep.Seq < w.seq {
			p.enqueueReplicate(w.token)
		}
	}
	p.gcReplicas(ctx, desired, held, inventoryOK)
}

// replicaWant is one session's replication requirement, derived from the
// live inventory during an audit.
type replicaWant struct {
	token  string
	seq    uint64
	target string
}

// gcReplicas deletes replicas no longer called for — the session is gone
// or its placement moved — but only in a quiet cluster: every configured
// node live, the whole inventory readable, and no failover or migration in
// flight. During any of those, a copy that looks superfluous may be the
// one copy left, so the sweep keeps it.
func (p *Proxy) gcReplicas(ctx context.Context, desired map[string]replicaWant, held map[string]map[string]server.ReplicaInfo, inventoryOK bool) {
	if !inventoryOK {
		return
	}
	p.mu.Lock()
	quiet := p.recover == 0 && len(p.migrating) == 0 && len(p.stale) == 0
	for _, st := range p.nodes {
		if !st.live {
			quiet = false
			break
		}
	}
	p.mu.Unlock()
	if !quiet {
		return
	}
	for node, byKey := range held {
		for key := range byKey {
			if w, ok := desired[key]; ok && w.target == node {
				continue
			}
			if err := p.deleteReplica(ctx, node, key); err != nil {
				p.log.Warn("replica gc delete failed", "node", node, "key", key, "err", err)
				continue
			}
			p.reg.Counter("gdrproxy_replica_drops_total").Inc()
			p.log.Info("garbage-collected replica", "node", node, "key", key)
		}
	}
}

// SyncReplicas drives replication to convergence right now: drain the
// queue, audit, drain again. Tests and operational scripts call this
// before deliberately killing a node, so the kill provably costs nothing.
func (p *Proxy) SyncReplicas(ctx context.Context) error {
	if err := p.drainReplication(ctx); err != nil {
		return err
	}
	p.auditReplicas(ctx)
	return p.drainReplication(ctx)
}

// putReplica PUTs one watermarked snapshot into a node's spill store.
func (p *Proxy) putReplica(ctx context.Context, node, key string, seq uint64, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, node+"/v1/replicas/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(server.MutationSeqHeader, strconv.FormatUint(seq, 10))
	p.setAdminAuth(req)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		// The store already holds a newer copy — a racing push won. Fine.
		return nil
	default:
		return fmt.Errorf("%s: %s", resp.Status, readErrorBody(resp.Body))
	}
}

// getReplica pulls one replica's bytes and watermark from a node.
func (p *Proxy) getReplica(ctx context.Context, node, key string) ([]byte, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/replicas/"+key, nil)
	if err != nil {
		return nil, 0, err
	}
	p.setAdminAuth(req)
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("%s: %s", resp.Status, readErrorBody(resp.Body))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	seq, _ := strconv.ParseUint(resp.Header.Get(server.MutationSeqHeader), 10, 64)
	return data, seq, nil
}

// deleteReplica drops one replica from a node's spill store.
func (p *Proxy) deleteReplica(ctx context.Context, node, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, node+"/v1/replicas/"+key, nil)
	if err != nil {
		return err
	}
	p.setAdminAuth(req)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("%s: %s", resp.Status, readErrorBody(resp.Body))
	}
	return nil
}

// listReplicas inventories one node's spill store. A node that does not
// expose the replica surface (pre-replication build) reads as empty.
func (p *Proxy) listReplicas(ctx context.Context, node string) ([]server.ReplicaInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/replicas", nil)
	if err != nil {
		return nil, err
	}
	p.setAdminAuth(req)
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: listing replicas on %s: %s", node, resp.Status)
	}
	var list server.ReplicaList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	return list.Replicas, nil
}
