package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"gdr/internal/server"
)

// The migration protocol. A session moves in four steps:
//
//	drain   — the token is marked migrating; new requests for it wait
//	export  — POST src/…/snapshot captures the session (the export rides
//	          the source actor queue behind every in-flight command, and
//	          holds an eviction lease, so the bytes are complete and safe)
//	import  — POST dst/v1/sessions with the snapshot body and the
//	          placement headers recreates the session under its original
//	          token and tenant; byte-identical resume (the snapshot
//	          invariant) makes the copy indistinguishable from the source
//	redirect — the source copy is deleted and the routing override drops,
//	          so the ring sends every subsequent request to dst
//
// Failure at any step leaves the session with exactly one authoritative
// copy: export fails → still src; import fails → still src (override
// stays). A failed source delete leaves a superseded copy behind, so the
// proxy records it in the stale ledger and pins the routing override to
// dst: the stale copy is never served — even if the ring later flips back
// to its node — and every sweep retries deleting it until it is gone. The
// ledger is also what keeps the 409 duplicate-token dedup safe: an import
// conflict only ever deletes a copy the ledger (or the move direction)
// proves superseded, never the fresh one.

// migrateTimeout bounds one session move end to end.
const migrateTimeout = 30 * time.Second

// move is one planned session migration.
type move struct {
	token  string
	tenant string
	from   string
	to     string
}

// rebalance sweeps every live node's session set and moves each session
// whose ring owner is no longer the node holding it. Overrides for all
// pending moves are installed before the first migration starts, so a
// request for a not-yet-moved session still reaches its current home.
func (p *Proxy) rebalance(ctx context.Context) error {
	p.sweepStale(ctx)
	ring := p.currentRing()
	var moves []move
	for _, node := range ring.Nodes() {
		infos, err := p.listNode(ctx, node, p.adminAuth())
		if err != nil {
			p.log.Warn("rebalance: listing node failed", "node", node, "err", err)
			continue
		}
		for _, s := range infos {
			if p.staleAt(s.ID) == node {
				continue // superseded copy the sweep could not delete yet
			}
			if want := ring.Lookup(s.ID); want != "" && want != node {
				moves = append(moves, move{token: s.ID, tenant: s.Tenant, from: node, to: want})
			}
		}
	}
	return p.runMoves(ctx, moves)
}

// Rebalance is the operator/test resync entry point: clean superseded
// copies, then move every session back onto its ring owner.
func (p *Proxy) Rebalance(ctx context.Context) error { return p.rebalance(ctx) }

// staleAt returns the node ledgered as holding a superseded copy of the
// token ("" if none).
func (p *Proxy) staleAt(token string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stale[token]
}

// sweepStale retries deleting every ledgered superseded copy. A cleared
// entry also releases the token's routing override when the ring already
// points at the fresh copy's node.
func (p *Proxy) sweepStale(ctx context.Context) {
	p.mu.Lock()
	pending := make([]move, 0, len(p.stale))
	for token, node := range p.stale {
		pending = append(pending, move{token: token, from: node})
	}
	p.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].token < pending[j].token })
	for _, s := range pending {
		err := p.cfg.Faults.Fault(FaultDelete)
		if err == nil {
			err = p.deleteSession(ctx, s.from, s.token)
		}
		if err != nil {
			p.log.Warn("stale copy still undeletable; will retry", "token", s.token, "node", s.from, "err", err)
			continue
		}
		p.clearStale(s.token)
		p.log.Info("deleted superseded session copy", "token", s.token, "node", s.from)
	}
}

// clearStale drops a token's stale-ledger entry, and its routing override
// too once the ring already sends the token to the override's node.
func (p *Proxy) clearStale(token string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.stale, token)
	if ow, ok := p.overrides[token]; ok && p.ring.Lookup(token) == ow {
		delete(p.overrides, token)
	}
}

// StaleCount reports how many superseded session copies the ledger still
// tracks — 0 once the cluster has converged back to one copy per session.
// It is the health loop's retry trigger and the chaos tests' convergence
// probe.
func (p *Proxy) StaleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stale)
}

// drainNode moves every session off one node (which has already left the
// ring) to the sessions' new ring owners.
func (p *Proxy) drainNode(ctx context.Context, node string) error {
	ring := p.currentRing()
	infos, err := p.listNode(ctx, node, p.adminAuth())
	if err != nil {
		return fmt.Errorf("cluster: draining %s: %w", node, err)
	}
	var moves []move
	for _, s := range infos {
		if p.staleAt(s.ID) == node {
			continue // a superseded copy; the sweep deletes it, never migrates it
		}
		if want := ring.Lookup(s.ID); want != "" {
			moves = append(moves, move{token: s.ID, tenant: s.Tenant, from: node, to: want})
		}
	}
	return p.runMoves(ctx, moves)
}

// runMoves executes planned migrations serially in token order
// (deterministic and gentle: one session is in flight at a time). The
// first error does not stop the sweep — every move is attempted — but is
// reported.
func (p *Proxy) runMoves(ctx context.Context, moves []move) error {
	if len(moves) == 0 {
		return nil
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].token < moves[j].token })
	p.mu.Lock()
	planned := moves[:0]
	for _, m := range moves {
		if _, busy := p.migrating[m.token]; busy {
			continue // someone else is already moving it
		}
		p.overrides[m.token] = m.from
		planned = append(planned, m)
	}
	p.mu.Unlock()
	var firstErr error
	for _, m := range planned {
		if err := p.migrate(ctx, m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// migrate moves one session. On success the override is dropped (the ring
// now routes to dst); on failure the override stays pointing at src, which
// still authoritatively holds the session.
func (p *Proxy) migrate(ctx context.Context, m move) (err error) {
	p.mu.Lock()
	if _, busy := p.migrating[m.token]; busy {
		p.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	p.migrating[m.token] = ch
	p.mu.Unlock()

	start := time.Now()
	moved := false
	staleSrc := false
	defer func() {
		p.mu.Lock()
		delete(p.migrating, m.token)
		switch {
		case moved && staleSrc:
			// The superseded source copy is still alive; pin routing to the
			// fresh destination copy until the sweep deletes it. Without the
			// pin, a later ring flip back to src would serve stale state.
			p.stale[m.token] = m.from
			p.overrides[m.token] = m.to
		case moved:
			if _, lingering := p.stale[m.token]; lingering {
				// An older stale copy is still out there; keep the fresh
				// copy pinned so a ring flip cannot route to it.
				p.overrides[m.token] = m.to
			} else {
				delete(p.overrides, m.token)
			}
		}
		p.mu.Unlock()
		close(ch)
		if err != nil {
			p.reg.Counter("gdrproxy_migration_failures_total").Inc()
			p.log.Warn("migration failed; session stays on source",
				"token", m.token, "from", m.from, "to", m.to, "err", err)
		} else {
			p.reg.Counter("gdrproxy_migrations_total").Inc()
			p.reg.Histogram("gdrproxy_migration_seconds").ObserveSince(start)
			p.log.Info("migrated session", "token", m.token, "from", m.from, "to", m.to,
				"took", time.Since(start))
		}
	}()

	ctx, cancel := context.WithTimeout(ctx, migrateTimeout)
	defer cancel()
	if ferr := p.cfg.Faults.Fault(FaultExport); ferr != nil {
		return fmt.Errorf("cluster: exporting %s from %s: %w", m.token, m.from, ferr)
	}
	snap, _, _, err := p.exportSession(ctx, m.from, m.token)
	if err != nil {
		return fmt.Errorf("cluster: exporting %s from %s: %w", m.token, m.from, err)
	}
	if p.staleAt(m.token) == m.to {
		// The destination holds a superseded copy of this very token. It
		// must go before the import: otherwise the import's 409 would be
		// read as "destination already has it" and the fresh source copy
		// would be deleted.
		derr := p.cfg.Faults.Fault(FaultDelete)
		if derr == nil {
			derr = p.deleteSession(ctx, m.to, m.token)
		}
		if derr != nil {
			return fmt.Errorf("cluster: destination %s holds an undeletable stale copy of %s: %w", m.to, m.token, derr)
		}
		p.clearStale(m.token)
	}
	if ferr := p.cfg.Faults.Fault(FaultImport); ferr != nil {
		return fmt.Errorf("cluster: importing %s onto %s: %w", m.token, m.to, ferr)
	}
	if err := p.importSession(ctx, m.to, m.token, m.tenant, snap); err != nil {
		return fmt.Errorf("cluster: importing %s onto %s: %w", m.token, m.to, err)
	}
	// The destination copy is authoritative from here on; routing flips to
	// it even if the source-side delete fails.
	moved = true
	if ferr := p.cfg.Faults.Fault(FaultDelete); ferr != nil {
		staleSrc = true
		p.reg.Counter("gdrproxy_stale_source_total").Inc()
		p.log.Warn("migration source delete failed; ledgered for the sweep",
			"token", m.token, "from", m.from, "err", ferr)
		return nil
	}
	if err := p.deleteSession(ctx, m.from, m.token); err != nil {
		// Not a failed migration: dst owns the session. The ledger keeps
		// routing pinned to dst and the sweep keeps retrying the delete.
		staleSrc = true
		p.reg.Counter("gdrproxy_stale_source_total").Inc()
		p.log.Warn("migration source delete failed; ledgered for the sweep",
			"token", m.token, "from", m.from, "err", err)
	}
	return nil
}

// exportSession pulls a session's snapshot bytes off a node, plus the
// mutation sequence the bytes capture (the replica push watermark) and the
// owning tenant, both from the export's response headers. A node predating
// those headers yields seq 0 and tenant "" — still importable, just
// watermarked conservatively.
func (p *Proxy) exportSession(ctx context.Context, node, token string) ([]byte, uint64, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/sessions/"+token+"/snapshot", nil)
	if err != nil {
		return nil, 0, "", err
	}
	p.setAdminAuth(req)
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, "", fmt.Errorf("%s: %s", resp.Status, readErrorBody(resp.Body))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, "", err
	}
	seq, _ := strconv.ParseUint(resp.Header.Get(server.MutationSeqHeader), 10, 64)
	return data, seq, resp.Header.Get(server.AssignTenantHeader), nil
}

// importSession recreates a session from snapshot bytes on a node, under
// its original token and tenant. A 409 means the destination already has
// the session (a half-finished earlier move); the destination copy wins
// and the caller proceeds to delete the source.
func (p *Proxy) importSession(ctx context.Context, node, token, tenant string, snap []byte) error {
	body, err := json.Marshal(server.CreateSessionRequest{Snapshot: snap})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.AssignTokenHeader, token)
	if tenant != "" {
		req.Header.Set(server.AssignTenantHeader, tenant)
	}
	p.setAdminAuth(req)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		return nil
	case http.StatusConflict:
		p.reg.Counter("gdrproxy_duplicate_imports_total").Inc()
		return nil
	default:
		return fmt.Errorf("%s: %s", resp.Status, readErrorBody(resp.Body))
	}
}

// deleteSession removes a session from a node.
func (p *Proxy) deleteSession(ctx context.Context, node, token string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, node+"/v1/sessions/"+token, nil)
	if err != nil {
		return err
	}
	p.setAdminAuth(req)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("%s: %s", resp.Status, readErrorBody(resp.Body))
	}
	return nil
}

// failover restores a dead node's sessions onto the survivors. Two
// sources, tried in order:
//
//  1. Replicas — shared-nothing: every survivor's spill store is asked for
//     replicas of sessions that no longer exist anywhere live, and the
//     freshest copy of each is promoted onto its new ring owner. This
//     needs nothing from the dead node, not even its disk.
//  2. The dead node's snapshot directory (when DataDirs maps one) — the
//     fallback for sessions that never got a replica (single-node rings,
//     a push that had not landed yet). Files for already-promoted tokens
//     are neutralized, never imported: the replica is at least as fresh.
//
// Recovered and neutralized files are renamed (<name>.snap.recovered), so
// the dead node restarting later cannot resurrect a stale copy of a
// session that now lives elsewhere.
func (p *Proxy) failover(ctx context.Context, node string) {
	p.mu.Lock()
	p.recover++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.recover--
		p.mu.Unlock()
	}()
	promoted := p.promoteReplicas(ctx, node)
	p.failoverFromDisk(ctx, node, promoted)
}

// promoteReplicas recovers a dead node's sessions from the survivors'
// replica stores, returning the set of promoted tokens. The freshest
// (highest-watermark) copy of each orphaned session wins; after import the
// token is queued for re-replication, so the cluster converges back to
// primary + replica under the new placement.
func (p *Proxy) promoteReplicas(ctx context.Context, node string) map[string]bool {
	promoted := make(map[string]bool)
	ring := p.currentRing()
	if ring.Len() == 0 {
		return promoted
	}
	// Sessions that still exist somewhere live are not orphans — their
	// replicas must stay replicas, or a promotion would fork the session.
	alive := make(map[string]bool)
	for _, n := range ring.Nodes() {
		infos, err := p.listNode(ctx, n, p.adminAuth())
		if err != nil {
			p.log.Warn("failover: listing node failed; skipping replica promotion",
				"node", n, "err", err)
			return promoted
		}
		for _, s := range infos {
			alive[s.ID] = true
		}
	}
	type candidate struct {
		holder string
		info   server.ReplicaInfo
	}
	best := make(map[string]candidate) // replica key → freshest copy
	for _, n := range ring.Nodes() {
		reps, err := p.listReplicas(ctx, n)
		if err != nil {
			p.log.Warn("failover: listing replicas failed", "node", n, "err", err)
			continue
		}
		for _, rep := range reps {
			if alive[rep.Token] {
				continue
			}
			if cur, ok := best[rep.Key]; !ok || rep.Seq > cur.info.Seq {
				best[rep.Key] = candidate{holder: n, info: rep}
			}
		}
	}
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		c := best[key]
		token := c.info.Token
		want := ring.Lookup(token)
		if want == "" {
			continue
		}
		data, _, err := p.getReplica(ctx, c.holder, key)
		if err != nil {
			p.reg.Counter("gdrproxy_recovery_failures_total").Inc()
			p.log.Warn("pulling replica for promotion failed", "key", key, "holder", c.holder, "err", err)
			continue
		}
		if err := p.importSession(ctx, want, token, c.info.Tenant, data); err != nil {
			p.reg.Counter("gdrproxy_recovery_failures_total").Inc()
			p.log.Warn("promoting replica failed", "token", token, "to", want, "err", err)
			continue
		}
		promoted[token] = true
		p.reg.Counter("gdrproxy_replica_promotions_total").Inc()
		p.log.Info("promoted replica", "token", token, "seq", c.info.Seq,
			"from", c.holder, "to", want)
		// The promoted copy is the new primary; re-derive its replica.
		p.enqueueReplicate(token)
	}
	if len(promoted) > 0 {
		p.reg.Counter("gdrproxy_recovered_sessions_total").Add(int64(len(promoted)))
	}
	return promoted
}

// failoverFromDisk restores whatever promoteReplicas could not from the
// dead node's snapshot directory, when one is configured.
func (p *Proxy) failoverFromDisk(ctx context.Context, node string, promoted map[string]bool) {
	dir := p.cfg.DataDirs[node]
	if dir == "" {
		if len(promoted) == 0 {
			p.log.Warn("dead node has no data dir and no replicas; its sessions are unrecoverable until it returns", "node", node)
		}
		return
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		p.log.Warn("scanning dead node's data dir failed", "node", node, "dir", dir, "err", err)
		return
	}
	sort.Strings(names)
	ring := p.currentRing()
	recovered := 0
	for _, path := range names {
		token, tenant := parseSnapName(path)
		if token == "" {
			continue
		}
		if promoted[token] {
			// A fresher (or equal) replica already became the new primary;
			// importing the disk copy over it would roll the session back.
			// Neutralize the file so a node restart cannot resurrect it.
			if err := os.Rename(path, path+".recovered"); err != nil {
				p.log.Warn("renaming superseded snapshot failed", "path", path, "err", err)
			}
			continue
		}
		if p.staleAt(token) == node {
			// A superseded copy a failed source delete left behind — the
			// fresh copy lives elsewhere. Neutralize the file instead of
			// restoring it; the dead server's in-memory copy is gone too.
			if err := os.Rename(path, path+".stale"); err != nil {
				p.log.Warn("renaming stale snapshot failed", "path", path, "err", err)
				continue
			}
			p.clearStale(token)
			continue
		}
		want := ring.Lookup(token)
		if want == "" {
			p.log.Warn("no live node to recover session onto", "token", token)
			continue
		}
		if err := p.recoverOne(ctx, path, token, tenant, want); err != nil {
			p.reg.Counter("gdrproxy_recovery_failures_total").Inc()
			p.log.Warn("recovering session failed", "token", token, "to", want, "err", err)
			continue
		}
		recovered++
	}
	p.reg.Counter("gdrproxy_recovered_sessions_total").Add(int64(recovered))
	p.log.Info("dead-node recovery finished", "node", node, "recovered", recovered, "snapshots", len(names))
}

// recoverOne imports one snapshot file onto a live node and renames the
// file so it cannot be restored twice.
func (p *Proxy) recoverOne(ctx context.Context, path, token, tenant, to string) error {
	if ferr := p.cfg.Faults.Fault(FaultRecover); ferr != nil {
		return ferr
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := p.importSession(ctx, to, token, tenant, data); err != nil {
		return err
	}
	if err := os.Rename(path, path+".recovered"); err != nil {
		p.log.Warn("renaming recovered snapshot failed; a node restart may resurrect a stale copy",
			"path", path, "err", err)
	}
	return nil
}

// parseSnapName extracts the token and owning tenant from a snapshot file
// name (<token>.snap or <tenant>@<token>.snap — the store's naming).
func parseSnapName(path string) (token, tenant string) {
	base := strings.TrimSuffix(filepath.Base(path), ".snap")
	tenant, token, owned := strings.Cut(base, "@")
	if !owned {
		return base, ""
	}
	return token, tenant
}

// adminAuth renders the proxy's own Authorization header value ("" in
// open mode).
func (p *Proxy) adminAuth() string {
	if p.cfg.AdminKey == "" {
		return ""
	}
	return "Bearer " + p.cfg.AdminKey
}

func (p *Proxy) setAdminAuth(req *http.Request) {
	if a := p.adminAuth(); a != "" {
		req.Header.Set("Authorization", a)
	}
}

// readErrorBody extracts the error string from a gdrd error response,
// falling back to the raw body.
func readErrorBody(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var eb server.ErrorBody
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return strings.TrimSpace(string(data))
}
