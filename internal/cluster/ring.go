// Package cluster turns a set of independent gdrd nodes into one service:
// a stateless routing proxy consistent-hashes session tokens across the
// nodes (hash ring with virtual nodes), creates each session on its owning
// node, transparently forwards every /v1/sessions verb, and live-migrates
// sessions between nodes when the ring changes — drain, snapshot export,
// import-on-create under the original token, delete the source copy — so a
// moved session is byte-identical to one that never moved (the guarantee
// PR 4's snapshot format provides). Every session is also replicated
// shared-nothing: after each mutating round its snapshot is pushed,
// watermarked by mutation sequence, to the next distinct node on the ring.
// A health-checking membership loop (symmetric hysteresis in both
// directions) removes dead nodes from the ring and promotes their sessions
// onto the new owners from the freshest replicas — the dead node's
// snapshot directory is only a fallback for sessions no replica covered.
// See ARCHITECTURE.md "Cluster".
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node fan-out per physical node. 64 points
// per node keeps the expected load imbalance across a handful of nodes in
// the few-percent range while the whole ring stays small enough to rebuild
// on every membership change.
const DefaultVNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring snapshot. Mutations (Add,
// Remove) return a new Ring and bump its version; readers hold one snapshot
// for the duration of a routing decision, so a concurrent membership change
// can never tear a lookup. The zero ring owns nothing — Lookup returns "".
type Ring struct {
	vnodes  int
	version uint64
	points  []point  // sorted by hash, ties broken by node name
	nodes   []string // sorted member list
}

// NewRing builds an empty ring with the given virtual-node fan-out
// (DefaultVNodes when n < 1). Its version is 0; every membership change
// increments it.
func NewRing(n int) *Ring {
	if n < 1 {
		n = DefaultVNodes
	}
	return &Ring{vnodes: n}
}

// fnv64a hashes a string with FNV-1a. Hand-rolled (rather than hash/fnv)
// so the routing hot path hashes a token with zero allocations.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// vnodeHash places virtual node i of a node on the ring. The vnode index is
// folded in after the node name's FNV hash, so a node's points are stable
// across ring rebuilds — that stability is what makes key movement minimal
// when membership changes.
func vnodeHash(node string, i int) uint64 {
	// splitmix64 finalizer over (node hash, vnode index): full avalanche, so
	// a node's points spread evenly instead of clustering in one arc — a
	// weak mix here shows up directly as load imbalance.
	h := fnv64a(node) + uint64(i)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Version identifies this membership snapshot; it increases by one per Add
// or Remove along a derivation chain.
func (r *Ring) Version() uint64 { return r.version }

// Nodes returns the sorted member list. The slice is shared — callers must
// not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Has reports membership.
func (r *Ring) Has(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Lookup returns the node owning a key, or "" on an empty ring. The owner
// is the first virtual node clockwise from the key's hash. It allocates
// nothing — this is the proxy's per-request hot path.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv64a(key)
	// Binary search, inlined rather than sort.Search: the closure there
	// costs an allocation and this runs on every routed request.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap: the first point owns the arc past the last hash
	}
	return r.points[lo].node
}

// LookupReplica returns the node holding a key's replica: the first
// virtual node clockwise past the owner that belongs to a DIFFERENT
// physical node. On a ring with fewer than two members there is nowhere
// distinct to replicate to and it returns "". Because the walk starts from
// the key's own arc, the replica is as stable across membership changes as
// the owner itself — and because the ring only ever contains live members,
// a key whose usual replica died is automatically hinted to the next
// distinct survivor.
func (r *Ring) LookupReplica(key string) string {
	if len(r.nodes) < 2 {
		return ""
	}
	h := fnv64a(key)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	owner := r.points[lo].node
	for i := 1; i < len(r.points); i++ {
		if n := r.points[(lo+i)%len(r.points)].node; n != owner {
			return n
		}
	}
	return ""
}

// rebuild constructs the sorted point list for a member set.
func rebuild(nodes []string, vnodes int) []point {
	points := make([]point, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			points = append(points, point{hash: vnodeHash(n, i), node: n})
		}
	}
	// Ties (two vnodes hashing identically) are broken by node name so the
	// ring is a pure function of the member set — never of insertion order.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].node < points[j].node
	})
	return points
}

// Add returns a new ring including node (a no-op snapshot bump is avoided:
// adding an existing member returns the receiver unchanged).
func (r *Ring) Add(node string) *Ring {
	if node == "" || r.Has(node) {
		return r
	}
	nodes := make([]string, 0, len(r.nodes)+1)
	nodes = append(nodes, r.nodes...)
	nodes = append(nodes, node)
	sort.Strings(nodes)
	return &Ring{
		vnodes:  r.vnodes,
		version: r.version + 1,
		points:  rebuild(nodes, r.vnodes),
		nodes:   nodes,
	}
}

// Remove returns a new ring without node (removing a non-member returns the
// receiver unchanged).
func (r *Ring) Remove(node string) *Ring {
	if !r.Has(node) {
		return r
	}
	nodes := make([]string, 0, len(r.nodes)-1)
	for _, n := range r.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	return &Ring{
		vnodes:  r.vnodes,
		version: r.version + 1,
		points:  rebuild(nodes, r.vnodes),
		nodes:   nodes,
	}
}

// String renders the ring for logs and /healthz.
func (r *Ring) String() string {
	return fmt.Sprintf("ring v%d %v", r.version, r.nodes)
}
