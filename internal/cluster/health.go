package cluster

import (
	"context"
	"math/rand/v2"
	"net/http"
	"time"
)

// healthLoop is the membership driver: it probes every configured node's
// /healthz on a jittered cadence, declares a node dead after FailAfter
// consecutive failures (removing it from the ring and restoring its
// sessions onto the survivors), and welcomes a recovered node back only
// after FailAfter consecutive successes — symmetric hysteresis, so a node
// flapping at the probe frequency cannot thrash the ring in either
// direction. Ring changes happen only here and in the explicit
// AddNode/RemoveNode calls, so membership is single-writer. Each round
// ends with the replica anti-entropy sweep, which converges every session
// toward one fresh primary plus one fresh replica.
func (p *Proxy) healthLoop() {
	defer p.healthWG.Done()
	timer := time.NewTimer(p.jitteredCadence())
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			p.checkAll()
			p.auditReplicas(context.Background())
			timer.Reset(p.jitteredCadence())
		case <-p.stop:
			return
		}
	}
}

// jitteredCadence spreads probes ±10% around HealthEvery so a fleet of
// proxies started together does not synchronize its probe bursts against
// the nodes.
func (p *Proxy) jitteredCadence() time.Duration {
	d := p.cfg.HealthEvery
	span := int64(d / 5)
	if span <= 0 {
		return d
	}
	return d - d/10 + time.Duration(rand.Int64N(span))
}

// checkAll runs one probe round over the configured node set, then retries
// deleting any ledgered stale session copies.
func (p *Proxy) checkAll() {
	defer func() {
		if p.StaleCount() > 0 {
			p.sweepStale(context.Background())
		}
	}()
	for _, node := range p.cfg.Nodes {
		ok := p.probe(node)
		p.mu.Lock()
		st := p.nodes[node]
		if st == nil {
			p.mu.Unlock()
			continue
		}
		var died, revived bool
		if ok {
			st.fails = 0
			if st.live {
				st.succs = 0
			} else if !st.drained {
				// Hysteresis: one good probe is not proof of life. A node must
				// answer FailAfter times in a row before it re-enters the ring,
				// or a half-up node would bounce sessions on every probe.
				st.succs++
				if st.succs >= p.cfg.FailAfter {
					revived = true
					st.live = true
					st.succs = 0
					p.ring = p.ring.Add(node)
					p.markSettlingLocked()
				}
			}
		} else {
			st.succs = 0
			st.fails++
			if st.live && st.fails >= p.cfg.FailAfter {
				died = true
				st.live = false
				p.ring = p.ring.Remove(node)
				p.markSettlingLocked()
			}
		}
		p.mu.Unlock()
		switch {
		case died:
			p.log.Warn("node declared dead", "node", node, "fail_after", p.cfg.FailAfter)
			p.reg.LabeledCounter("gdrproxy_node_deaths_total", "node", node).Inc()
			p.failover(context.Background(), node)
			p.rebalance(context.Background())
		case revived:
			p.log.Info("node rejoined", "node", node, "after_successes", p.cfg.FailAfter)
			p.reg.LabeledCounter("gdrproxy_node_joins_total", "node", node).Inc()
			p.rebalance(context.Background())
		}
	}
}

// probe is one health check; any 200 /healthz within the cadence counts.
func (p *Proxy) probe(node string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// AddNode grows the ring by one live node and rebalances sessions onto it.
// The node must be in the configured set (static membership: the health
// loop only probes configured nodes). It is the test- and operator-driven
// twin of a health-loop revival, so it skips the hysteresis — the operator
// has asserted the node is fit.
func (p *Proxy) AddNode(ctx context.Context, node string) error {
	p.mu.Lock()
	st := p.nodes[node]
	if st == nil {
		p.mu.Unlock()
		return errUnknownNode(node)
	}
	st.live = true
	st.fails = 0
	st.succs = 0
	st.drained = false
	p.ring = p.ring.Add(node)
	p.markSettlingLocked()
	p.mu.Unlock()
	return p.rebalance(ctx)
}

// RemoveNode gracefully drains a live node: it leaves the ring first (new
// sessions avoid it), then every session it holds is migrated to its new
// ring owner. The node stays up and healthy throughout — this is the
// planned-maintenance path, not the crash path.
func (p *Proxy) RemoveNode(ctx context.Context, node string) error {
	p.mu.Lock()
	st := p.nodes[node]
	if st == nil {
		p.mu.Unlock()
		return errUnknownNode(node)
	}
	st.live = false
	// A drained node stays out until AddNode: it is still healthy, and the
	// health loop must not re-admit it on the next probe.
	st.drained = true
	p.ring = p.ring.Remove(node)
	p.markSettlingLocked()
	p.mu.Unlock()
	return p.drainNode(ctx, node)
}

type errUnknownNode string

func (e errUnknownNode) Error() string { return "cluster: unknown node " + string(e) }
