package snapshot

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"gdr/internal/core"
)

// lockFile records, per format version, a hash of the shape of every Go
// struct the snapshot serializes. TestFormatLock recomputes the hash and
// fails when it no longer matches the entry for FormatVersion — i.e. when
// someone changed a serialized struct without bumping the version. To
// accept an intentional change: bump FormatVersion in snapshot.go, then
// regenerate with
//
//	GDR_UPDATE_FORMAT_LOCK=1 go test ./internal/snapshot/ -run TestFormatLock
//
// which appends the new version's line (old lines stay as history).
const lockFile = "testdata/format.lock"

// typeSignature renders a type's full serialized shape — struct names,
// field names and types, recursively — as a canonical string.
func typeSignature(t reflect.Type, seen map[reflect.Type]bool) string {
	switch t.Kind() {
	case reflect.Pointer:
		return "*" + typeSignature(t.Elem(), seen)
	case reflect.Slice:
		return "[]" + typeSignature(t.Elem(), seen)
	case reflect.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), typeSignature(t.Elem(), seen))
	case reflect.Map:
		return "map[" + typeSignature(t.Key(), seen) + "]" + typeSignature(t.Elem(), seen)
	case reflect.Struct:
		if seen[t] {
			return t.String()
		}
		seen[t] = true
		var b strings.Builder
		fmt.Fprintf(&b, "%s{", t.String())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fmt.Fprintf(&b, "%s %s;", f.Name, typeSignature(f.Type, seen))
		}
		b.WriteString("}")
		return b.String()
	default:
		return t.String()
	}
}

func currentSignature() string {
	sig := typeSignature(reflect.TypeOf(core.SessionState{}), map[reflect.Type]bool{})
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sig)))
}

func readLock(t *testing.T) map[int]string {
	t.Helper()
	out := map[int]string{}
	data, err := os.ReadFile(lockFile)
	if os.IsNotExist(err) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var v int
		var h string
		if _, err := fmt.Sscanf(line, "v%d %s", &v, &h); err != nil {
			t.Fatalf("malformed lock line %q: %v", line, err)
		}
		out[v] = h
	}
	return out
}

// TestFormatLock is the golden-hash guard wired into CI: the snapshot
// version constant must be bumped whenever a serialized struct changes.
func TestFormatLock(t *testing.T) {
	sig := currentSignature()
	lock := readLock(t)

	if os.Getenv("GDR_UPDATE_FORMAT_LOCK") != "" {
		lock[FormatVersion] = sig
		versions := make([]int, 0, len(lock))
		for v := range lock {
			versions = append(versions, v)
		}
		sort.Ints(versions)
		var b strings.Builder
		for _, v := range versions {
			fmt.Fprintf(&b, "v%d %s\n", v, lock[v])
		}
		if err := os.MkdirAll(filepath.Dir(lockFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(lockFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s: v%d %s", lockFile, FormatVersion, sig)
		return
	}

	recorded, ok := lock[FormatVersion]
	if !ok {
		t.Fatalf("no lock entry for format version %d — run GDR_UPDATE_FORMAT_LOCK=1 go test ./internal/snapshot/ -run TestFormatLock", FormatVersion)
	}
	if recorded != sig {
		t.Fatalf("serialized structs changed but FormatVersion is still %d —\n"+
			"bump FormatVersion in snapshot.go, audit the encoder/decoder for the new layout,\n"+
			"then regenerate the lock (GDR_UPDATE_FORMAT_LOCK=1 go test ./internal/snapshot/ -run TestFormatLock)\n"+
			"recorded: %s\ncurrent:  %s", FormatVersion, recorded, sig)
	}

	// The version actually written on the wire must match the constant the
	// lock protects (a stale hard-coded header would defeat the guard).
	data, err := Encode("lock", canonicalSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if v := int(data[4]) | int(data[5])<<8; v != FormatVersion {
		t.Fatalf("wire version %d != FormatVersion %d", v, FormatVersion)
	}
}

// TestGoldenSnapshotStillDecodes pins decoder compatibility within one
// format version: a snapshot written in the past (checked into testdata)
// must keep decoding, restoring, and re-encoding to the exact same bytes.
// Regenerate alongside a version bump with GDR_UPDATE_FORMAT_LOCK=1.
func TestGoldenSnapshotStillDecodes(t *testing.T) {
	golden := fmt.Sprintf("testdata/golden_v%d.snap", FormatVersion)
	if os.Getenv("GDR_UPDATE_FORMAT_LOCK") != "" {
		data, err := Encode("golden", canonicalSession(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(data))
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v — run GDR_UPDATE_FORMAT_LOCK=1 go test ./internal/snapshot/ to regenerate", err)
	}
	name, st, err := DecodeState(data)
	if err != nil {
		t.Fatalf("golden snapshot no longer decodes: %v", err)
	}
	if _, err := core.RestoreSession(st); err != nil {
		t.Fatalf("golden snapshot no longer restores: %v", err)
	}
	again, err := EncodeState(name, st)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("golden snapshot no longer re-encodes byte-identically — the layout drifted without a version bump")
	}
}

// TestGoldenV1StillDecodes pins backward compatibility across the v1→v2
// bump: a pre-replication snapshot (no meta section) must keep decoding
// with a zero Meta and restoring. No re-encode identity — this build
// writes v2, so the bytes legitimately differ.
func TestGoldenV1StillDecodes(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_v1.snap")
	if err != nil {
		t.Fatalf("v1 golden missing: %v", err)
	}
	name, meta, st, err := DecodeStateMeta(data)
	if err != nil {
		t.Fatalf("v1 snapshot no longer decodes: %v", err)
	}
	if name != "golden" {
		t.Fatalf("v1 golden name = %q", name)
	}
	if meta.MutSeq != 0 || len(meta.Dedup) != 0 {
		t.Fatalf("v1 snapshot decoded a non-zero meta: %+v", meta)
	}
	if _, err := core.RestoreSession(st); err != nil {
		t.Fatalf("v1 snapshot no longer restores: %v", err)
	}
}
