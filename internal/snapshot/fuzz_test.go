package snapshot

import (
	"bytes"
	"testing"
)

// FuzzDecodeState: arbitrary bytes must never panic the decoder (or the
// session restorer behind Decode) and anything that does decode must
// re-encode. The seed corpus includes a full valid snapshot so mutations
// explore deep into the body, plus resealed prefixes that pass the CRC.
func FuzzDecodeState(f *testing.F) {
	valid, err := Encode("fuzz", canonicalSession(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("GDRS"))
	f.Add(reseal(valid[:6]))
	f.Add(reseal(valid[:len(valid)/2]))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, st, err := DecodeState(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode (possibly to different bytes:
		// non-minimal varints decode fine but re-encode canonically).
		if _, err := EncodeState(name, st); err != nil {
			t.Fatalf("decoded state failed to re-encode: %v", err)
		}
		// And restoring it must error or succeed — never panic.
		_, _, _ = Decode(data)
	})
}

// FuzzDecodeBodyMutations reseals mutated bodies with a fresh CRC so the
// fuzzer reaches the structural parser instead of bouncing off the
// checksum.
func FuzzDecodeBodyMutations(f *testing.F) {
	valid, err := Encode("fuzz", canonicalSession(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid[:len(valid)-4], 0, byte(0))
	f.Add(valid[:len(valid)-4], 100, byte(0xff))
	f.Fuzz(func(t *testing.T, body []byte, off int, x byte) {
		mut := append([]byte(nil), body...)
		if len(mut) > 0 {
			mut[((off%len(mut))+len(mut))%len(mut)] ^= x
		}
		data := reseal(mut)
		if _, _, err := DecodeState(data); err != nil {
			return
		}
		_, _, _ = Decode(data)
	})
}

// TestFuzzSeedsAsUnit keeps the fuzz targets exercised in plain `go test`
// runs with a couple of adversarial inputs beyond the corpus.
func TestFuzzSeedsAsUnit(t *testing.T) {
	valid, err := Encode("unit", canonicalSession(t))
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		bytes.Repeat([]byte{0xff}, 64),
		reseal(append(append([]byte(nil), valid[:6]...), bytes.Repeat([]byte{0x80}, 32)...)),
		reseal(valid[:len(valid)-5]),
	}
	for i, in := range inputs {
		if _, _, err := DecodeState(in); err == nil {
			t.Fatalf("adversarial input %d decoded without error", i)
		}
	}
}
