package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"gdr/internal/core"
	"gdr/internal/dataset"
	"gdr/internal/repair"
)

// canonicalSession builds a deterministic session with every kind of state
// populated: applied/rejected/retained feedback (so locks and prevented
// lists exist), trained committees with accuracy windows, and one consumed
// fallback shuffle.
func canonicalSession(t testing.TB) *core.Session {
	t.Helper()
	d := dataset.Hospital(dataset.Config{N: 80, Seed: 42, DirtyRate: 0.3})
	sess, err := core.NewSession(d.Dirty.Clone(), d.Rules, core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		gs := sess.Groups(core.OrderVOI, nil)
		if len(gs) == 0 {
			break
		}
		for _, u := range sess.GroupUpdates(gs[0].Key) {
			cur, live := sess.Pending(u.Cell())
			if !live || cur.Value != u.Value {
				continue
			}
			switch tv := d.Truth.Get(u.Tid, u.Attr); {
			case u.Value == tv:
				sess.UserFeedback(cur, repair.Confirm)
			case sess.DB().Get(u.Tid, u.Attr) == tv:
				sess.UserFeedback(cur, repair.Retain)
			default:
				sess.UserFeedback(cur, repair.Reject)
			}
		}
		sess.LearnerSweep(2)
	}
	sess.Groups(core.OrderRandom, nil) // consume one fallback shuffle
	return sess
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sess := canonicalSession(t)
	data, err := Encode("canonical", sess)
	if err != nil {
		t.Fatal(err)
	}

	// State-level round trip: decode and re-encode must reproduce the
	// exact bytes (the encoding is deterministic and canonical).
	name, st, err := DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "canonical" {
		t.Fatalf("name %q", name)
	}
	again, err := EncodeState(name, st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("decode→encode did not reproduce the snapshot bytes")
	}

	// Session-level round trip: the restored session observes identically.
	_, restored, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Stats(), sess.Stats(); got != want {
		t.Fatalf("stats diverge: %+v vs %+v", got, want)
	}
	var a, b bytes.Buffer
	if err := sess.DB().WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := restored.DB().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("restored export diverges")
	}

	// Snapshotting the restored session reproduces the same bytes again.
	third, err := Encode("canonical", restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, third) {
		t.Fatal("snapshot of the restored session diverges from the original snapshot")
	}
}

// TestMetaRoundTrip pins the v2 meta section: watermark and dedup window
// survive an encode/decode cycle and participate in byte determinism.
func TestMetaRoundTrip(t *testing.T) {
	sess := canonicalSession(t)
	meta := Meta{
		MutSeq: 17,
		Dedup: []DedupEntry{
			{ID: "req-1", Body: []byte(`{"applied_delta":3}` + "\n")},
			{ID: "req-2", Body: []byte{}},
			{ID: "", Body: []byte{0, 1, 2}},
		},
	}
	data, err := EncodeStateMeta("meta", meta, sess.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	name, got, st, err := DecodeStateMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "meta" || got.MutSeq != 17 || len(got.Dedup) != 3 {
		t.Fatalf("meta round trip: name=%q meta=%+v", name, got)
	}
	for i, ent := range got.Dedup {
		if ent.ID != meta.Dedup[i].ID || !bytes.Equal(ent.Body, meta.Dedup[i].Body) {
			t.Fatalf("dedup entry %d diverged: %+v vs %+v", i, ent, meta.Dedup[i])
		}
	}
	again, err := EncodeStateMeta(name, got, st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("meta decode→encode did not reproduce the snapshot bytes")
	}
	if err := Verify(data); err != nil {
		t.Fatalf("Verify rejects a valid snapshot: %v", err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x41
	if err := Verify(mut); err == nil {
		t.Fatal("Verify accepted a corrupt snapshot")
	}
}

// TestCorruptSnapshotsFailCleanly: every kind of damage must surface as an
// error — never a panic, never a runaway allocation.
func TestCorruptSnapshotsFailCleanly(t *testing.T) {
	sess := canonicalSession(t)
	data, err := Encode("x", sess)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation point (sampled densely near the ends, sparsely in
	// the middle to keep the test quick).
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, len(data) - 1, len(data) - 2, len(data) - 5}
	for n := 16; n < len(data); n += len(data) / 97 {
		lengths = append(lengths, n)
	}
	for _, n := range lengths {
		if n < 0 || n >= len(data) {
			continue
		}
		if _, _, err := DecodeState(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}

	// Every single-byte flip is caught by the CRC.
	for _, off := range []int{0, 4, 5, 6, 100, 1000, len(data) / 2, len(data) - 5, len(data) - 1} {
		if off >= len(data) {
			continue
		}
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x41
		if _, _, err := DecodeState(mut); err == nil {
			t.Fatalf("byte flip at %d decoded without error", off)
		}
	}

	// A body that passes the CRC but lies structurally: valid header and
	// trailer around garbage.
	if _, _, err := DecodeState(reseal(append(append([]byte(nil), data[:6]...), 0xff, 0xff, 0xff, 0xff, 0x0f))); err == nil {
		t.Fatal("structural garbage decoded without error")
	}

	// Wrong version.
	mut := append([]byte(nil), data...)
	mut[4] = 99
	if _, _, err := DecodeState(reseal(mut[:len(mut)-4])); err == nil {
		t.Fatal("future format version decoded without error")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	sess := canonicalSession(t)
	data, err := Encode("x", sess)
	if err != nil {
		t.Fatal(err)
	}
	mut := append(append([]byte(nil), data[:len(data)-4]...), 0, 0, 0)
	if _, _, err := DecodeState(reseal(mut)); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

// reseal appends a fresh CRC trailer so structural mutations reach the body
// parser instead of being shadowed by the checksum.
func reseal(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}
