// Package snapshot serializes guided-repair sessions to a versioned,
// self-describing binary format, so a session — the accumulated user
// feedback, the trained committees and the repaired instance — survives a
// daemon restart and can migrate between processes (the prerequisite for
// multi-node sharding).
//
// Wire layout (all integers little-endian; varints are encoding/binary's):
//
//	offset  size  field
//	0       4     magic "GDRS"
//	4       2     format version (uint16); readers accept v1 and v2
//	6       n     body: [v2+] the session meta (mutation sequence and the
//	              feedback dedup window), then the session name, then
//	              core.SessionState, encoded field by field with varint
//	              counts, length-prefixed strings and IEEE-754 bit-exact
//	              float64s
//	6+n     4     CRC-32 (IEEE) of everything before it
//
// Compatibility rules: the version is bumped whenever the body layout (or
// any serialized struct feeding it) changes — a hash lock test enforces
// this. Writers always emit the current version; readers additionally
// accept version 1 snapshots (pre-replication, no meta section), decoding
// them with a zero Meta. Forward migration beyond that is a higher-level
// concern; the format's job is to never misinterpret bytes. Decoding
// validates every count against the remaining input and every
// cross-reference against the decoded instance, so corrupt or truncated
// snapshots fail with an error — never a panic and never an oversized
// allocation.
//
// Encoding is deterministic: the same session state always produces the
// same bytes (maps are serialized in sorted order), which the format-lock
// golden test relies on.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"gdr/internal/cfd"
	"gdr/internal/core"
	"gdr/internal/learn"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// FormatVersion is the snapshot format this build writes. Bump it whenever
// the body layout or any serialized struct changes (the TestFormatLock
// golden test fails until you do).
const FormatVersion = 2

// minReadVersion is the oldest format this build still decodes. Version 1
// predates the Meta section; v1 snapshots decode with a zero Meta.
const minReadVersion = 1

// magic identifies a GDR snapshot.
var magic = [4]byte{'G', 'D', 'R', 'S'}

// Meta is the per-session bookkeeping serialized alongside the state since
// format v2: the mutation-sequence watermark (replica pushes carrying an
// older sequence are stale) and the feedback dedup window (request id →
// rendered response), persisted so state and dedup roll back atomically.
type Meta struct {
	MutSeq uint64
	Dedup  []DedupEntry
}

// DedupEntry is one remembered feedback request: the client-chosen id and
// the exact response body originally served, replayed on a duplicate.
type DedupEntry struct {
	ID   string
	Body []byte
}

// ErrFormat wraps every decode failure: bad magic, wrong version, CRC
// mismatch, truncation, or structurally invalid contents.
var ErrFormat = errors.New("snapshot: invalid snapshot")

// Encode snapshots a live session under a display name. It must be called
// from the goroutine that owns the session (for a served session, its
// actor).
func Encode(name string, sess *core.Session) ([]byte, error) {
	return EncodeState(name, sess.ExportState())
}

// Write is Encode directly to a writer.
func Write(w io.Writer, name string, sess *core.Session) error {
	b, err := Encode(name, sess)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Decode rebuilds a session from snapshot bytes.
func Decode(data []byte) (name string, sess *core.Session, err error) {
	name, st, err := DecodeState(data)
	if err != nil {
		return "", nil, err
	}
	sess, err = core.RestoreSession(st)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return name, sess, nil
}

// Read is Decode from a reader (the whole snapshot is buffered; callers
// serving untrusted input should bound the reader first).
func Read(r io.Reader) (name string, sess *core.Session, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return "", nil, err
	}
	return Decode(data)
}

// EncodeState serializes an already-exported state with a zero Meta.
func EncodeState(name string, st *core.SessionState) ([]byte, error) {
	return EncodeStateMeta(name, Meta{}, st)
}

// EncodeStateMeta serializes an already-exported state plus its session
// meta (mutation watermark and dedup window).
func EncodeStateMeta(name string, meta Meta, st *core.SessionState) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("snapshot: nil session state")
	}
	e := &encoder{}
	e.b = append(e.b, magic[:]...)
	e.b = binary.LittleEndian.AppendUint16(e.b, FormatVersion)
	e.uv(meta.MutSeq)
	e.uv(uint64(len(meta.Dedup)))
	for _, ent := range meta.Dedup {
		e.str(ent.ID)
		e.bytes(ent.Body)
	}
	e.str(name)
	e.sessionConfig(st.Config)
	e.str(st.Relation)
	e.strs(st.Attrs)
	e.uv(uint64(len(st.Dicts)))
	for _, vals := range st.Dicts {
		e.strs(vals)
	}
	e.uv(uint64(len(st.Rows)))
	for _, row := range st.Rows {
		if len(row) != len(st.Attrs) {
			return nil, fmt.Errorf("snapshot: row arity %d, want %d", len(row), len(st.Attrs))
		}
		for _, v := range row {
			e.uv(uint64(v))
		}
	}
	e.f64s(st.Weights)
	e.uv(uint64(len(st.Rules)))
	for i, r := range st.Rules {
		if r == nil {
			return nil, fmt.Errorf("snapshot: nil rule at index %d", i)
		}
		e.rule(r)
	}
	e.f64s(st.RuleWeights)
	e.uv(uint64(len(st.Possible)))
	for _, u := range st.Possible {
		e.v(int64(u.Tid))
		e.str(u.Attr)
		e.str(u.Value)
		e.f64(u.Score)
	}
	e.uv(uint64(len(st.Locked)))
	for _, c := range st.Locked {
		e.v(int64(c.Tid))
		e.v(int64(c.Pos))
	}
	e.uv(uint64(len(st.Prevented)))
	for _, c := range st.Prevented {
		e.v(int64(c.Tid))
		e.v(int64(c.Pos))
		e.uv(uint64(len(c.Values)))
		for _, v := range c.Values {
			e.uv(uint64(v))
		}
	}
	e.v(int64(st.InitialDirty))
	e.v(int64(st.Applied))
	e.v(int64(st.ForcedFixes))
	e.uv(st.Shuffles)
	e.uv(uint64(len(st.Models)))
	for _, ms := range st.Models {
		e.str(ms.Attr)
		e.modelState(ms.State)
	}
	e.uv(uint64(len(st.Hits)))
	for _, hw := range st.Hits {
		e.str(hw.Attr)
		e.bools(hw.Window)
	}
	e.b = binary.LittleEndian.AppendUint32(e.b, crc32.ChecksumIEEE(e.b))
	return e.b, nil
}

// DecodeState parses snapshot bytes into the display name and the session
// state, discarding the meta section.
func DecodeState(data []byte) (name string, st *core.SessionState, err error) {
	name, _, st, err = DecodeStateMeta(data)
	return name, st, err
}

// Verify cheaply validates the snapshot envelope — magic, a readable
// version and the CRC trailer — without decoding the body. The replica
// store uses it to reject corrupt pushes before touching disk.
func Verify(data []byte) error {
	const overhead = 4 + 2 + 4 // magic + version + crc
	if len(data) < overhead {
		return fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrFormat, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v < minReadVersion || v > FormatVersion {
		return fmt.Errorf("%w: format version %d (this build reads %d..%d)", ErrFormat, v, minReadVersion, FormatVersion)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("%w: CRC mismatch (corrupt or truncated)", ErrFormat)
	}
	return nil
}

// DecodeStateMeta parses snapshot bytes into the display name, the session
// meta and the session state without rebuilding the session — the serving
// tier uses this to adjust the configuration (worker clamping) before
// restoring. Version 1 snapshots decode with a zero Meta.
func DecodeStateMeta(data []byte) (name string, meta Meta, st *core.SessionState, err error) {
	if err := Verify(data); err != nil {
		return "", Meta{}, nil, err
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	body := data[:len(data)-4]
	d := &decoder{b: body, off: 6}
	if version >= 2 {
		meta.MutSeq = d.uv()
		meta.Dedup = make([]DedupEntry, 0, d.count(2))
		for i := 0; i < cap(meta.Dedup) && d.err == nil; i++ {
			meta.Dedup = append(meta.Dedup, DedupEntry{ID: d.str(), Body: d.bytes()})
		}
	}
	name = d.str()
	st = &core.SessionState{}
	st.Config = d.sessionConfig()
	st.Relation = d.str()
	st.Attrs = d.strs()
	st.Dicts = make([][]string, 0, d.count(1))
	for i := 0; i < cap(st.Dicts) && d.err == nil; i++ {
		st.Dicts = append(st.Dicts, d.strs())
	}
	arity := len(st.Attrs)
	nRows := d.count(arity) // each row is at least arity bytes
	if arity == 0 && nRows > 0 {
		d.fail("rows with empty schema")
	}
	st.Rows = make([][]relation.VID, 0, nRows)
	for i := 0; i < nRows && d.err == nil; i++ {
		row := make([]relation.VID, arity)
		for ai := range row {
			row[ai] = relation.VID(d.u32())
		}
		st.Rows = append(st.Rows, row)
	}
	st.Weights = d.f64s()
	st.Rules = make([]*cfd.CFD, 0, d.count(1))
	for i := 0; i < cap(st.Rules) && d.err == nil; i++ {
		st.Rules = append(st.Rules, d.rule())
	}
	st.RuleWeights = d.f64s()
	st.Possible = make([]repair.Update, 0, d.count(1))
	for i := 0; i < cap(st.Possible) && d.err == nil; i++ {
		st.Possible = append(st.Possible, repair.Update{
			Tid: d.int_(), Attr: d.str(), Value: d.str(), Score: d.f64(),
		})
	}
	st.Locked = make([]repair.LockedCell, 0, d.count(1))
	for i := 0; i < cap(st.Locked) && d.err == nil; i++ {
		st.Locked = append(st.Locked, repair.LockedCell{Tid: d.int_(), Pos: d.int_()})
	}
	st.Prevented = make([]repair.PreventedCell, 0, d.count(1))
	for i := 0; i < cap(st.Prevented) && d.err == nil; i++ {
		c := repair.PreventedCell{Tid: d.int_(), Pos: d.int_()}
		c.Values = make([]relation.VID, 0, d.count(1))
		for j := 0; j < cap(c.Values) && d.err == nil; j++ {
			c.Values = append(c.Values, relation.VID(d.u32()))
		}
		st.Prevented = append(st.Prevented, c)
	}
	st.InitialDirty = d.int_()
	st.Applied = d.int_()
	st.ForcedFixes = d.int_()
	st.Shuffles = d.uv()
	st.Models = make([]core.AttrModelState, 0, d.count(1))
	for i := 0; i < cap(st.Models) && d.err == nil; i++ {
		st.Models = append(st.Models, core.AttrModelState{Attr: d.str(), State: d.modelState()})
	}
	st.Hits = make([]core.AttrHitWindow, 0, d.count(1))
	for i := 0; i < cap(st.Hits) && d.err == nil; i++ {
		st.Hits = append(st.Hits, core.AttrHitWindow{Attr: d.str(), Window: d.bools()})
	}
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	if d.err != nil {
		return "", Meta{}, nil, d.err
	}
	return name, meta, st, nil
}

// encoder builds the body with deterministic, append-only primitives.
type encoder struct{ b []byte }

func (e *encoder) uv(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encoder) v(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *encoder) f64(f float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(f))
}
func (e *encoder) bool_(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) bytes(p []byte) {
	e.uv(uint64(len(p)))
	e.b = append(e.b, p...)
}
func (e *encoder) strs(ss []string) {
	e.uv(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}
func (e *encoder) f64s(fs []float64) {
	e.uv(uint64(len(fs)))
	for _, f := range fs {
		e.f64(f)
	}
}
func (e *encoder) bools(bs []bool) {
	e.uv(uint64(len(bs)))
	for _, b := range bs {
		e.bool_(b)
	}
}

func (e *encoder) forestConfig(c learn.Config) {
	e.v(int64(c.K))
	e.v(int64(c.MaxDepth))
	e.v(int64(c.MinLeaf))
	e.f64(c.SampleFrac)
	e.v(int64(c.Mtry))
	e.bool_(c.Unbalanced)
	e.v(c.Seed)
	e.v(int64(c.Workers))
}

func (e *encoder) sessionConfig(c core.Config) {
	e.forestConfig(c.Forest)
	e.v(int64(c.MinTrain))
	e.v(int64(c.MinVerify))
	e.v(int64(c.BatchSize))
	e.f64(c.MinDelegate)
	e.f64(c.MinAccuracy)
	e.v(c.Seed)
	e.v(int64(c.Workers))
}

func (e *encoder) rule(r *cfd.CFD) {
	e.str(r.ID)
	e.strs(r.LHS)
	e.str(r.RHS)
	attrs := make([]string, 0, len(r.TP))
	for a := range r.TP {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	e.uv(uint64(len(attrs)))
	for _, a := range attrs {
		e.str(a)
		e.str(r.TP[a])
	}
}

func (e *encoder) modelState(st learn.ModelState) {
	e.forestConfig(st.Cfg)
	e.v(int64(st.MinTrain))
	e.v(st.Retrains)
	e.bool_(st.Trained)
	e.uv(uint64(len(st.Examples)))
	for _, ex := range st.Examples {
		e.strs(ex.Cats)
		e.f64(ex.Sim)
		e.v(int64(ex.Label))
	}
}

// decoder consumes the body with hard bounds: every count is validated
// against the bytes actually remaining before anything is allocated, and
// the first failure latches (subsequent reads return zero values).
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (at offset %d)", ErrFormat, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) v() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

// int_ reads a varint that must fit a non-huge int (cell ids, counters).
func (d *decoder) int_() int {
	v := d.v()
	if v < math.MinInt32 || v > math.MaxInt32 {
		// Wider than any plausible tuple id or counter; long before
		// overflowing int on 32-bit platforms.
		d.fail("integer %d out of range", v)
		return 0
	}
	return int(v)
}

// u32 reads a uvarint that must fit uint32 (VIDs).
func (d *decoder) u32() uint32 {
	v := d.uv()
	if v > math.MaxUint32 {
		d.fail("value id %d out of range", v)
		return 0
	}
	return uint32(v)
}

// count reads an element count and bounds it by the remaining input: each
// element occupies at least elemMin bytes, so a corrupt count can never
// trigger an oversized allocation.
func (d *decoder) count(elemMin int) int {
	if elemMin < 1 {
		elemMin = 1
	}
	v := d.uv()
	if v > uint64(d.remaining()/elemMin) {
		d.fail("count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) bool_() bool {
	if d.err != nil {
		return false
	}
	if d.remaining() < 1 {
		d.fail("truncated bool")
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("bool byte %d", v)
		return false
	}
	return v == 1
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[d.off:d.off+n])
	d.off += n
	return p
}

func (d *decoder) strs() []string {
	out := make([]string, 0, d.count(1))
	for i := 0; i < cap(out) && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *decoder) f64s() []float64 {
	out := make([]float64, 0, d.count(8))
	for i := 0; i < cap(out) && d.err == nil; i++ {
		out = append(out, d.f64())
	}
	return out
}

func (d *decoder) bools() []bool {
	out := make([]bool, 0, d.count(1))
	for i := 0; i < cap(out) && d.err == nil; i++ {
		out = append(out, d.bool_())
	}
	return out
}

func (d *decoder) forestConfig() learn.Config {
	return learn.Config{
		K:          d.int_(),
		MaxDepth:   d.int_(),
		MinLeaf:    d.int_(),
		SampleFrac: d.f64(),
		Mtry:       d.int_(),
		Unbalanced: d.bool_(),
		Seed:       d.v(),
		Workers:    d.int_(),
	}
}

func (d *decoder) sessionConfig() core.Config {
	return core.Config{
		Forest:      d.forestConfig(),
		MinTrain:    d.int_(),
		MinVerify:   d.int_(),
		BatchSize:   d.int_(),
		MinDelegate: d.f64(),
		MinAccuracy: d.f64(),
		Seed:        d.v(),
		Workers:     d.int_(),
	}
}

func (d *decoder) rule() *cfd.CFD {
	id := d.str()
	lhs := d.strs()
	rhs := d.str()
	n := d.count(2)
	tp := make(map[string]string, n)
	for i := 0; i < n && d.err == nil; i++ {
		a := d.str()
		v := d.str()
		if _, dup := tp[a]; dup {
			d.fail("duplicate pattern attribute %q in rule %q", a, id)
			return nil
		}
		tp[a] = v
	}
	if d.err != nil {
		return nil
	}
	r, err := cfd.New(id, lhs, rhs, tp)
	if err != nil {
		d.fail("rule %q: %v", id, err)
		return nil
	}
	return r
}

func (d *decoder) modelState() learn.ModelState {
	st := learn.ModelState{
		Cfg:      d.forestConfig(),
		MinTrain: d.int_(),
		Retrains: d.v(),
		Trained:  d.bool_(),
	}
	st.Examples = make([]learn.Example, 0, d.count(1))
	for i := 0; i < cap(st.Examples) && d.err == nil; i++ {
		st.Examples = append(st.Examples, learn.Example{
			Cats:  d.strs(),
			Sim:   d.f64(),
			Label: learn.Label(d.int_()),
		})
	}
	return st
}
