package metrics

// Service-side observability primitives for the gdrd daemon: counters,
// gauges and latency histograms collected in a Registry and exposed in the
// Prometheus text format. They complement this package's paper-evaluation
// measures (Quality, Accuracy): those score repairs against a ground truth,
// these watch a running repair service. Everything here is dependency-free
// and safe for concurrent use.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (e.g. feedbacks served).
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters only grow).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a metric that can go up and down (e.g. live sessions).
type Gauge struct {
	n atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add moves the gauge by d (either sign).
func (g *Gauge) Add(d int64) { g.n.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// FloatGauge is a gauge holding a float64 (e.g. cumulative GC pause seconds
// re-exported from runtime counters). The value is stored as its IEEE bits
// in one atomic word, so Set and Value never tear.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets spans 100µs–10s in roughly 3×-ish steps — wide
// enough for both the sub-millisecond status reads and multi-second
// session-creation uploads of a repair service.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram accumulates observations into cumulative buckets, Prometheus
// style: counts[i] tallies observations ≤ uppers[i], plus a +Inf overflow.
type Histogram struct {
	mu sync.Mutex
	// uppers is immutable after construction (Observe reads it without the
	// lock), so it is deliberately not guarded.
	uppers []float64
	counts []uint64 // len(uppers)+1; last is +Inf; gdr:guarded-by mu
	sum    float64  // gdr:guarded-by mu
	total  uint64   // gdr:guarded-by mu
}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil selects DefaultLatencyBuckets.
func NewHistogram(uppers []float64) *Histogram {
	if uppers == nil {
		uppers = DefaultLatencyBuckets
	}
	uppers = append([]float64(nil), uppers...)
	sort.Float64s(uppers)
	return &Histogram{uppers: uppers, counts: make([]uint64, len(uppers)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// attributing each bucket's mass to its upper bound — the same conservative
// estimate Prometheus' histogram_quantile makes without intra-bucket
// interpolation. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.uppers) {
				return h.uppers[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Registry is a named collection of metrics with a stable text exposition.
// Counters may carry label pairs (LabeledCounter); all series of one family
// share a single # TYPE line and are grouped together in the exposition,
// each family in first-registration order.
type Registry struct {
	mu       sync.Mutex
	families []string               // gdr:guarded-by mu
	series   map[string][]string    // gdr:guarded-by mu — family → series keys
	counts   map[string]*Counter    // gdr:guarded-by mu — keyed by series
	gauges   map[string]*Gauge      // gdr:guarded-by mu
	fgauges  map[string]*FloatGauge // gdr:guarded-by mu
	hists    map[string]*Histogram  // gdr:guarded-by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:  make(map[string][]string),
		counts:  make(map[string]*Counter),
		gauges:  make(map[string]*Gauge),
		fgauges: make(map[string]*FloatGauge),
		hists:   make(map[string]*Histogram),
	}
}

// registerLocked records a series under its family, keeping both orders.
func (r *Registry) registerLocked(family, key string) {
	if _, ok := r.series[family]; !ok {
		r.families = append(r.families, family)
	}
	r.series[family] = append(r.series[family], key)
}

// seriesKey renders a family name plus label pairs (k1, v1, k2, v2, ...)
// as the canonical Prometheus series string. Labels are sorted by key so
// the same logical series always maps to the same entry, whatever order
// the caller listed the pairs in.
func seriesKey(family string, labels []string) string {
	if len(labels) == 0 {
		return family
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b []byte
	b = append(b, family...)
	b = append(b, '{')
	for i, p := range pairs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p.k...)
		b = append(b, '=', '"')
		b = append(b, labelEscaper.Replace(p.v)...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b)
}

// labelEscaper escapes label values per the Prometheus text format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	return r.LabeledCounter(name)
}

// LabeledCounter returns (registering on first use) the counter for the
// family with the given label pairs, e.g.
// LabeledCounter("gdrd_shed_total", "reason", "rate", "tenant", "acme").
func (r *Registry) LabeledCounter(name string, labels ...string) *Counter {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[key]
	if !ok {
		c = &Counter{}
		r.counts[key] = c
		r.registerLocked(name, key)
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	return r.LabeledGauge(name)
}

// LabeledGauge returns (registering on first use) the gauge for the family
// with the given label pairs, e.g.
// LabeledGauge("gdrd_build_info", "go_version", "go1.24.0").
func (r *Registry) LabeledGauge(name string, labels ...string) *Gauge {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.registerLocked(name, key)
	}
	return g
}

// FloatGauge returns (registering on first use) the named float gauge.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
		r.registerLocked(name, name)
	}
	return g
}

// Histogram returns (registering on first use) the named histogram over
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name string) *Histogram {
	return r.LabeledHistogram(name)
}

// LabeledHistogram returns (registering on first use) the histogram for the
// family with the given label pairs, e.g.
// LabeledHistogram("gdrd_stage_seconds", "stage", "exec", "route", "feedback").
// All series of one family share the DefaultLatencyBuckets bounds.
func (r *Registry) LabeledHistogram(name string, labels ...string) *Histogram {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = NewHistogram(nil)
		r.hists[key] = h
		r.registerLocked(name, key)
	}
	return h
}

// WriteProm writes every registered metric in the Prometheus text format,
// families in registration order, one # TYPE line per family with its
// series grouped beneath it (stable across scrapes once the server is
// warm).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	families := append([]string(nil), r.families...)
	keysOf := make(map[string][]string, len(families))
	for _, f := range families {
		keysOf[f] = append([]string(nil), r.series[f]...)
	}
	r.mu.Unlock()
	for _, family := range families {
		typed := false
		for _, key := range keysOf[family] {
			r.mu.Lock()
			c, g, fg, h := r.counts[key], r.gauges[key], r.fgauges[key], r.hists[key]
			r.mu.Unlock()
			var kind string
			switch {
			case c != nil:
				kind = "counter"
			case g != nil, fg != nil:
				kind = "gauge"
			case h != nil:
				kind = "histogram"
			default:
				continue
			}
			if !typed {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind); err != nil {
					return err
				}
				typed = true
			}
			var err error
			switch {
			case c != nil:
				_, err = fmt.Fprintf(w, "%s %d\n", key, c.Value())
			case g != nil:
				_, err = fmt.Fprintf(w, "%s %d\n", key, g.Value())
			case fg != nil:
				_, err = fmt.Fprintf(w, "%s %g\n", key, fg.Value())
			case h != nil:
				err = h.writeProm(w, key)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *Histogram) writeProm(w io.Writer, key string) error {
	h.mu.Lock()
	uppers := h.uppers
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	// A labeled series key arrives as family{a="b"}; the histogram's
	// per-line suffixes (_bucket, _sum, _count) attach to the family, with
	// the labels re-spliced inside each line's brace set.
	family, labels := splitSeriesKey(key)
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, up := range uppers {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", family, labels, sep, trimFloat(up), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			family, cum, family, sum, family, total)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n%s_sum{%s} %g\n%s_count{%s} %d\n",
		family, labels, cum, family, labels, sum, family, labels, total)
	return err
}

// splitSeriesKey recovers the family name and the rendered label pairs
// (without braces) from a seriesKey result.
func splitSeriesKey(key string) (family, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], key[i+1 : len(key)-1]
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
