package metrics

// Service-side observability primitives for the gdrd daemon: counters,
// gauges and latency histograms collected in a Registry and exposed in the
// Prometheus text format. They complement this package's paper-evaluation
// measures (Quality, Accuracy): those score repairs against a ground truth,
// these watch a running repair service. Everything here is dependency-free
// and safe for concurrent use.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (e.g. feedbacks served).
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters only grow).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a metric that can go up and down (e.g. live sessions).
type Gauge struct {
	n atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add moves the gauge by d (either sign).
func (g *Gauge) Add(d int64) { g.n.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// DefaultLatencyBuckets spans 100µs–10s in roughly 3×-ish steps — wide
// enough for both the sub-millisecond status reads and multi-second
// session-creation uploads of a repair service.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram accumulates observations into cumulative buckets, Prometheus
// style: counts[i] tallies observations ≤ uppers[i], plus a +Inf overflow.
type Histogram struct {
	mu sync.Mutex
	// uppers is immutable after construction (Observe reads it without the
	// lock), so it is deliberately not guarded.
	uppers []float64
	counts []uint64 // len(uppers)+1; last is +Inf; gdr:guarded-by mu
	sum    float64  // gdr:guarded-by mu
	total  uint64   // gdr:guarded-by mu
}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil selects DefaultLatencyBuckets.
func NewHistogram(uppers []float64) *Histogram {
	if uppers == nil {
		uppers = DefaultLatencyBuckets
	}
	uppers = append([]float64(nil), uppers...)
	sort.Float64s(uppers)
	return &Histogram{uppers: uppers, counts: make([]uint64, len(uppers)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// attributing each bucket's mass to its upper bound — the same conservative
// estimate Prometheus' histogram_quantile makes without intra-bucket
// interpolation. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.uppers) {
				return h.uppers[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Registry is a named collection of metrics with a stable text exposition.
type Registry struct {
	mu     sync.Mutex
	names  []string              // gdr:guarded-by mu
	counts map[string]*Counter   // gdr:guarded-by mu
	gauges map[string]*Gauge     // gdr:guarded-by mu
	hists  map[string]*Histogram // gdr:guarded-by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
		r.names = append(r.names, name)
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.names = append(r.names, name)
	}
	return g
}

// Histogram returns (registering on first use) the named histogram over
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(nil)
		r.hists[name] = h
		r.names = append(r.names, name)
	}
	return h
}

// WriteProm writes every registered metric in the Prometheus text format,
// in registration order (stable across scrapes once the server is warm).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		c, g, h := r.counts[name], r.gauges[name], r.hists[name]
		r.mu.Unlock()
		var err error
		switch {
		case c != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value())
		case g != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value())
		case h != nil:
			err = h.writeProm(w, name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) writeProm(w io.Writer, name string) error {
	h.mu.Lock()
	uppers := h.uppers
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, up := range uppers {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(up), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, cum, name, sum, name, total)
	return err
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
