// Package metrics implements the paper's evaluation measures: the data
// quality loss of Eq. 2–3 computed against the ground truth as Dopt
// (Section 5's "data quality state metric"), the derived percentage quality
// improvement plotted in Figures 3–4, and the precision/recall of applied
// repairs from Appendix B.1 (Figure 5).
package metrics

import (
	"fmt"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// Quality measures the Eq. 3 loss of a database under repair against a
// fixed ground-truth instance Dopt:
//
//	L(D) = Σ_i wi · (|Dopt ⊨ φi| − |D ⊨ φi|) / |Dopt ⊨ φi|        (Eq. 2–3)
//
// with wi = |D(φi)|/|D| by default (the paper's experimental choice, taken
// on the initial dirty instance). Rules that no ground-truth tuple satisfies
// are skipped: they cannot measure quality.
type Quality struct {
	weights []float64
	satOpt  []int
	loss0   float64
}

// NewQuality snapshots the rule weights and the ground-truth satisfaction
// counts, plus the initial loss L(D0) of the dirty engine, which anchors the
// percentage-improvement scale.
func NewQuality(truth *relation.DB, dirty *cfd.Engine, weights []float64) (*Quality, error) {
	rules := dirty.Rules()
	// NewEngine interns any rule constant missing from the instance's
	// dictionaries — a write. Concurrent runs (figure cells, bench jobs)
	// share one truth instance and assume it is read-only, so the scoring
	// engine gets a private clone; it is discarded when this returns.
	truthEng, err := cfd.NewEngine(truth.Clone(), rules)
	if err != nil {
		return nil, fmt.Errorf("metrics: building ground-truth engine: %w", err)
	}
	q := &Quality{satOpt: make([]int, len(rules))}
	if weights != nil {
		if len(weights) != len(rules) {
			return nil, fmt.Errorf("metrics: %d weights for %d rules", len(weights), len(rules))
		}
		q.weights = append([]float64(nil), weights...)
	} else {
		q.weights = make([]float64, len(rules))
		n := dirty.DB().N()
		for ri := range rules {
			if n > 0 {
				q.weights[ri] = float64(dirty.Context(ri)) / float64(n)
			}
		}
	}
	for ri := range rules {
		q.satOpt[ri] = truthEng.Sat(ri)
	}
	q.loss0 = q.Loss(dirty)
	return q, nil
}

// Loss computes L(D) for the engine's current instance.
func (q *Quality) Loss(eng *cfd.Engine) float64 {
	total := 0.0
	for ri := range q.satOpt {
		opt := q.satOpt[ri]
		if opt <= 0 {
			continue
		}
		ql := float64(opt-eng.Sat(ri)) / float64(opt)
		if ql < 0 {
			ql = 0
		}
		total += q.weights[ri] * ql
	}
	return total
}

// InitialLoss returns L(D0), the loss of the dirty instance at construction.
func (q *Quality) InitialLoss() float64 { return q.loss0 }

// Improvement returns the percentage quality improvement relative to the
// initial dirty instance: 100 · (L(D0) − L(D)) / L(D0), clamped to [0, 100].
// A database that was already clean reports 100.
func (q *Quality) Improvement(eng *cfd.Engine) float64 {
	if q.loss0 <= 0 {
		return 100
	}
	imp := 100 * (q.loss0 - q.Loss(eng)) / q.loss0
	if imp < 0 {
		return 0
	}
	if imp > 100 {
		return 100
	}
	return imp
}

// Accuracy measures repair precision and recall against the ground truth
// (Appendix B.1): precision is the fraction of modified cells whose new
// value is correct; recall is the fraction of initially incorrect cells that
// now hold the correct value.
type Accuracy struct {
	initial *relation.DB
	truth   *relation.DB
	wrong0  [][2]int
}

// NewAccuracy snapshots the initial dirty instance and diffs it against the
// ground truth to enumerate the initially incorrect cells.
func NewAccuracy(dirty, truth *relation.DB) (*Accuracy, error) {
	wrong0, err := dirty.DiffCells(truth)
	if err != nil {
		return nil, err
	}
	return &Accuracy{initial: dirty.Clone(), truth: truth, wrong0: wrong0}, nil
}

// InitiallyWrong returns the number of cells that differed from the truth
// in the initial instance.
func (a *Accuracy) InitiallyWrong() int { return len(a.wrong0) }

// PrecisionRecall evaluates the current instance. With no modified cells the
// precision is defined as 1; with no initially wrong cells the recall is 1.
func (a *Accuracy) PrecisionRecall(current *relation.DB) (precision, recall float64) {
	changed, correct := 0, 0
	for tid := 0; tid < current.N(); tid++ {
		for ai := 0; ai < current.Schema.Arity(); ai++ {
			cur := current.GetAt(tid, ai)
			if cur == a.initial.GetAt(tid, ai) {
				continue
			}
			changed++
			if cur == a.truth.GetAt(tid, ai) {
				correct++
			}
		}
	}
	precision = 1
	if changed > 0 {
		precision = float64(correct) / float64(changed)
	}
	recall = 1
	if len(a.wrong0) > 0 {
		fixed := 0
		for _, c := range a.wrong0 {
			if current.GetAt(c[0], c[1]) == a.truth.GetAt(c[0], c[1]) {
				fixed++
			}
		}
		recall = float64(fixed) / float64(len(a.wrong0))
	}
	return precision, recall
}
