package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only grow
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // ≤ 0.01
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // ≤ 0.1
	}
	h.Observe(5) // overflow
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	if got := h.Quantile(0.95); got != 0.1 {
		t.Fatalf("p95 = %v, want 0.1", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("p100 = %v, want +Inf", got)
	}
	if h.Sum() <= 0 {
		t.Fatal("sum not accumulated")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("gdrd_feedback_total").Add(3)
	r.Gauge("gdrd_sessions_live").Set(2)
	r.Histogram("gdrd_latency_seconds").Observe(0.004)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gdrd_feedback_total counter",
		"gdrd_feedback_total 3",
		"# TYPE gdrd_sessions_live gauge",
		"gdrd_sessions_live 2",
		"# TYPE gdrd_latency_seconds histogram",
		`gdrd_latency_seconds_bucket{le="+Inf"} 1`,
		"gdrd_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Same instance on re-lookup.
	if r.Counter("gdrd_feedback_total").Value() != 3 {
		t.Fatal("counter not shared across lookups")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j) / 1000)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != 8000 {
		t.Fatalf("histogram count = %d", r.Histogram("h").Count())
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	// Every observation past the last bucket: any quantile can only say
	// "worse than the largest bound", i.e. +Inf — never a finite bound the
	// data provably exceeded.
	h := NewHistogram([]float64{0.01, 0.1})
	for i := 0; i < 10; i++ {
		h.Observe(99)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsInf(got, 1) {
			t.Errorf("Quantile(%v) = %v, want +Inf with all mass in overflow", q, got)
		}
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// One finite bucket holding everything: every quantile collapses to its
	// upper bound, including q=0 (rank clamps to 1, never to index -1).
	h := NewHistogram([]float64{0.25})
	for i := 0; i < 7; i++ {
		h.Observe(0.2)
	}
	for _, q := range []float64{0, 0.01, 0.5, 1} {
		if got := h.Quantile(q); got != 0.25 {
			t.Errorf("Quantile(%v) = %v, want 0.25", q, got)
		}
	}
}
