package metrics

import (
	"math"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

func fixture(t *testing.T) (*relation.DB, *relation.DB, []*cfd.CFD) {
	t.Helper()
	s := relation.MustSchema("R", []string{"CT", "STT", "ZIP"})
	truth := relation.NewDB(s)
	rows := []relation.Tuple{
		{"Michigan City", "IN", "46360"},
		{"Michigan City", "IN", "46360"},
		{"Westville", "IN", "46391"},
		{"Fort Wayne", "IN", "46825"},
	}
	for _, r := range rows {
		truth.MustInsert(r)
	}
	dirty := truth.Clone()
	dirty.Set(0, "CT", "Westvile")
	dirty.Set(2, "CT", "Michigan Cty")
	rules := cfd.MustParse(`
p1: ZIP -> CT :: 46360 || Michigan City
p2: ZIP -> CT :: 46391 || Westville
p3: ZIP -> CT :: 46825 || Fort Wayne
`)
	return dirty, truth, rules
}

func TestLossAndImprovement(t *testing.T) {
	dirty, truth, rules := fixture(t)
	eng, err := cfd.NewEngine(dirty, rules)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuality(truth, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	// weights: p1 = 2/4, p2 = 1/4, p3 = 1/4; satOpt: 2, 1, 1.
	// dirty sat: p1 = 1 (t1), p2 = 0, p3 = 1.
	// L0 = 0.5*(2-1)/2 + 0.25*(1-0)/1 + 0.25*0 = 0.25 + 0.25 = 0.5
	if got := q.InitialLoss(); !close(got, 0.5) {
		t.Fatalf("L0 = %v, want 0.5", got)
	}
	if got := q.Improvement(eng); !close(got, 0) {
		t.Fatalf("initial improvement = %v", got)
	}
	// Fix t0: p1 fully satisfied -> L = 0.25, improvement 50%.
	eng.Apply(0, "CT", "Michigan City")
	if got := q.Loss(eng); !close(got, 0.25) {
		t.Fatalf("L after one fix = %v, want 0.25", got)
	}
	if got := q.Improvement(eng); !close(got, 50) {
		t.Fatalf("improvement = %v, want 50", got)
	}
	// Fix t2: loss 0, improvement 100%.
	eng.Apply(2, "CT", "Westville")
	if got := q.Improvement(eng); !close(got, 100) {
		t.Fatalf("improvement = %v, want 100", got)
	}
}

func TestQualityCustomWeightsValidation(t *testing.T) {
	dirty, truth, rules := fixture(t)
	eng, _ := cfd.NewEngine(dirty, rules)
	if _, err := NewQuality(truth, eng, []float64{1}); err == nil {
		t.Fatal("want error for wrong weight count")
	}
	q, err := NewQuality(truth, eng, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Only p1 counts now: L0 = (2-1)/2 = 0.5.
	if got := q.InitialLoss(); !close(got, 0.5) {
		t.Fatalf("weighted L0 = %v", got)
	}
}

func TestCleanDatabaseImprovementIs100(t *testing.T) {
	_, truth, rules := fixture(t)
	eng, _ := cfd.NewEngine(truth.Clone(), rules)
	q, err := NewQuality(truth, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Improvement(eng); got != 100 {
		t.Fatalf("clean improvement = %v", got)
	}
}

func TestAccuracyPrecisionRecall(t *testing.T) {
	dirty, truth, _ := fixture(t)
	a, err := NewAccuracy(dirty, truth)
	if err != nil {
		t.Fatal(err)
	}
	if a.InitiallyWrong() != 2 {
		t.Fatalf("InitiallyWrong = %d", a.InitiallyWrong())
	}
	// Nothing changed yet: precision 1 by convention, recall 0.
	p, r := a.PrecisionRecall(dirty)
	if p != 1 || r != 0 {
		t.Fatalf("initial p/r = %v/%v", p, r)
	}
	// One correct fix and one wrong edit.
	dirty.Set(0, "CT", "Michigan City") // correct
	dirty.Set(3, "ZIP", "00000")        // damage a clean cell
	p, r = a.PrecisionRecall(dirty)
	if !close(p, 0.5) {
		t.Fatalf("precision = %v, want 0.5", p)
	}
	if !close(r, 0.5) {
		t.Fatalf("recall = %v, want 0.5", r)
	}
	// Fix the remaining wrong cell: recall 1, precision 2/3.
	dirty.Set(2, "CT", "Westville")
	p, r = a.PrecisionRecall(dirty)
	if !close(p, 2.0/3) || !close(r, 1) {
		t.Fatalf("final p/r = %v/%v", p, r)
	}
}

func TestAccuracyMismatchedInstances(t *testing.T) {
	dirty, _, _ := fixture(t)
	other := relation.NewDB(dirty.Schema)
	if _, err := NewAccuracy(dirty, other); err == nil {
		t.Fatal("want error for mismatched instances")
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
