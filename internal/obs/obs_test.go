package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseTraceParent(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const sid = "00f067aa0ba902b7"
	good := "00-" + tid + "-" + sid + "-01"
	gotT, gotS, ok := ParseTraceParent(good)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("ParseTraceParent(%q) = %q, %q, %v", good, gotT, gotS, ok)
	}
	bad := map[string]string{
		"empty":         "",
		"truncated":     good[:54],
		"long":          good + "0",
		"version":       "01-" + tid + "-" + sid + "-01",
		"uppercase":     "00-" + strings.ToUpper(tid) + "-" + sid + "-01",
		"nonhex":        "00-" + tid[:31] + "g-" + sid + "-01",
		"zero trace id": "00-" + strings.Repeat("0", 32) + "-" + sid + "-01",
		"zero span id":  "00-" + tid + "-" + strings.Repeat("0", 16) + "-01",
		"bad separator": "00_" + tid + "-" + sid + "-01",
	}
	for name, h := range bad {
		if _, _, ok := ParseTraceParent(h); ok {
			t.Errorf("%s: ParseTraceParent(%q) accepted", name, h)
		}
	}
}

func TestStartAdoptsAndMintsIDs(t *testing.T) {
	tr := NewTracer(Config{Seed: 1})
	const in = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	adopted := tr.Start(in, "feedback")
	if adopted.ID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("adopted trace ID = %q", adopted.ID())
	}
	if adopted.parentSpan != "00f067aa0ba902b7" {
		t.Errorf("parent span = %q", adopted.parentSpan)
	}
	out := adopted.TraceParent()
	if !strings.HasPrefix(out, "00-"+adopted.ID()+"-") || !strings.HasSuffix(out, "-01") {
		t.Errorf("outbound traceparent %q does not echo the trace ID", out)
	}
	if _, sid, ok := ParseTraceParent(out); !ok || sid == "00f067aa0ba902b7" {
		t.Errorf("outbound traceparent %q must carry our own span ID", out)
	}

	minted := tr.Start("garbage", "status")
	if len(minted.ID()) != 32 || !isLowerHex(minted.ID()) {
		t.Errorf("minted trace ID = %q, want 32 lowercase hex chars", minted.ID())
	}
	if minted.Route() != "status" {
		t.Errorf("route = %q", minted.Route())
	}

	// A fixed seed makes minted IDs reproducible.
	again := NewTracer(Config{Seed: 1}).Start(in, "feedback")
	if again.TraceParent() != out {
		t.Errorf("seeded span IDs differ: %q vs %q", again.TraceParent(), out)
	}
}

func TestNewTracerDisabled(t *testing.T) {
	tr := NewTracer(Config{Capacity: -1})
	if tr != nil {
		t.Fatal("negative capacity should disable tracing")
	}
	tct := tr.Start("", "feedback") // nil receiver: valid, returns nil
	if tct != nil {
		t.Fatal("nil tracer must hand out nil traces")
	}
	// Every trace method must be a no-op on nil.
	tct.SetTenant("a")
	tct.SetSession("b")
	tct.RecordSpan("x", "", time.Now(), time.Second)
	h := tct.StartSpan("y")
	h.End()
	tct.Finish(200)
	if tct.ID() != "" || tct.ServerTiming() != "" || tct.Spans() != nil {
		t.Fatal("nil trace should render empty")
	}
}

// finishWithDur seals tct as if it had run for dur.
func finishWithDur(tct *Trace, dur time.Duration, status int) {
	tct.start = time.Now().Add(-dur)
	tct.Finish(status)
}

func TestRingRetention(t *testing.T) {
	tr := NewTracer(Config{Capacity: 3, Slowest: 2, Seed: 7})
	for i := 0; i < 5; i++ {
		tct := tr.Start("", fmt.Sprintf("r%d", i))
		finishWithDur(tct, time.Duration(i+1)*time.Millisecond, 200)
	}
	recent, slowest, total := tr.snapshot()
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	var got []string
	for _, tct := range recent {
		got = append(got, tct.Route())
	}
	if want := []string{"r4", "r3", "r2"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("recent = %v, want %v (newest first)", got, want)
	}
	got = got[:0]
	for _, tct := range slowest {
		got = append(got, tct.Route())
	}
	if want := []string{"r4", "r3"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("slowest = %v, want %v (descending)", got, want)
	}
}

func TestSlowestKeepsOutliers(t *testing.T) {
	// A slow early request must survive a burst of fast ones that wraps the
	// ring — that is the whole point of the separate slowest list.
	tr := NewTracer(Config{Capacity: 2, Slowest: 4, Seed: 7})
	outlier := tr.Start("", "slow")
	finishWithDur(outlier, time.Second, 200)
	for i := 0; i < 10; i++ {
		finishWithDur(tr.Start("", "fast"), time.Millisecond, 200)
	}
	recent, slowest, _ := tr.snapshot()
	for _, tct := range recent {
		if tct.Route() == "slow" {
			t.Fatal("outlier should have been evicted from the ring by now")
		}
	}
	if len(slowest) == 0 || slowest[0].Route() != "slow" {
		t.Fatalf("slowest[0] should be the outlier, got %v", slowest)
	}
	if len(slowest) > 4 {
		t.Fatalf("slowest list exceeded its bound: %d", len(slowest))
	}
}

func TestSpanCapDropsExcess(t *testing.T) {
	tr := NewTracer(Config{Seed: 1})
	tct := tr.Start("", "feedback")
	for i := 0; i < maxSpans+5; i++ {
		tct.RecordSpan("s", "", time.Now(), time.Millisecond)
	}
	if n := len(tct.Spans()); n != maxSpans {
		t.Errorf("retained %d spans, want %d", n, maxSpans)
	}
	if d := tct.Dropped(); d != 5 {
		t.Errorf("dropped = %d, want 5", d)
	}
}

func TestServerTimingMergesRoots(t *testing.T) {
	tr := NewTracer(Config{Seed: 1})
	tct := tr.Start("", "feedback")
	now := time.Now()
	tct.RecordSpan("admit", "", now, 2*time.Millisecond)
	tct.RecordSpan("queue", "", now, 3*time.Millisecond)
	tct.RecordSpan("queue", "", now, 4*time.Millisecond) // merged with the first
	tct.RecordSpan("suggest", "exec", now, time.Millisecond)
	got := tct.ServerTiming()
	if got != "admit;dur=2.000, queue;dur=7.000" {
		t.Errorf("ServerTiming = %q", got)
	}
	if empty := tr.Start("", "x").ServerTiming(); empty != "" {
		t.Errorf("no roots should render empty, got %q", empty)
	}
}

func TestFinishSealsOnce(t *testing.T) {
	tr := NewTracer(Config{Seed: 1})
	tct := tr.Start("", "feedback")
	finishWithDur(tct, 50*time.Millisecond, 503)
	first := tct.Duration()
	if tct.Status() != 503 || first < 50*time.Millisecond {
		t.Fatalf("sealed status=%d dur=%v", tct.Status(), first)
	}
	tct.Finish(200) // second call must be ignored
	if tct.Status() != 503 || tct.Duration() != first {
		t.Error("Finish resealed an already-finished trace")
	}
	if _, _, total := tr.snapshot(); total != 1 {
		t.Errorf("trace filed %d times", total)
	}
}

func TestSpanDurSumsStage(t *testing.T) {
	tr := NewTracer(Config{Seed: 1})
	tct := tr.Start("", "feedback")
	now := time.Now()
	tct.RecordSpan("queue", "", now, 2*time.Millisecond)
	tct.RecordSpan("queue", "persist", now, 3*time.Millisecond)
	if d := tct.SpanDur("queue"); d != 5*time.Millisecond {
		t.Errorf("SpanDur(queue) = %v", d)
	}
	if d := tct.SpanDur("absent"); d != 0 {
		t.Errorf("SpanDur(absent) = %v", d)
	}
}

func TestBuildTreeNestsByStage(t *testing.T) {
	// Spans are recorded at End, so parents follow their children in the
	// flat list — exactly the order a feedback round with a checkpoint
	// produces. The tree must reattach children to the nearest FOLLOWING
	// matching stage, falling back to a preceding one.
	spans := []Span{
		{Stage: "admit", Parent: ""},
		{Stage: "queue", Parent: ""},
		{Stage: "suggest", Parent: "exec"},
		{Stage: "exec", Parent: ""},
		{Stage: "write", Parent: "persist"},
		{Stage: "fsync", Parent: "persist"},
		{Stage: "persist", Parent: ""},
		{Stage: "orphan", Parent: "nosuch"},
	}
	tree := buildTree(spans)
	byStage := map[string][]string{}
	var walk func(nodes []SpanJSON, parent string)
	walk = func(nodes []SpanJSON, parent string) {
		for _, n := range nodes {
			byStage[parent] = append(byStage[parent], n.Stage)
			walk(n.Children, n.Stage)
		}
	}
	walk(tree, "")
	if want := "[admit queue exec persist orphan]"; fmt.Sprint(byStage[""]) != want {
		t.Errorf("roots = %v, want %s", byStage[""], want)
	}
	if want := "[suggest]"; fmt.Sprint(byStage["exec"]) != want {
		t.Errorf("exec children = %v, want %s", byStage["exec"], want)
	}
	if want := "[write fsync]"; fmt.Sprint(byStage["persist"]) != want {
		t.Errorf("persist children = %v, want %s", byStage["persist"], want)
	}
}

func TestHandlerServesTraces(t *testing.T) {
	tr := NewTracer(Config{Seed: 1})
	fast := tr.Start("", "status")
	finishWithDur(fast, time.Millisecond, 200)
	slow := tr.Start("", "feedback")
	slow.SetTenant("acme")
	slow.SetSession("tok123")
	slow.RecordSpan("queue", "", time.Now(), 2*time.Millisecond)
	finishWithDur(slow, 200*time.Millisecond, 200)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var body TracesBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !body.Enabled || body.Total != 2 || len(body.Recent) != 2 {
		t.Fatalf("body = enabled %v total %d recent %d", body.Enabled, body.Total, len(body.Recent))
	}
	got := body.Recent[0]
	if got.Route != "feedback" || got.Tenant != "acme" || got.Session != "tok123" {
		t.Errorf("newest trace = %+v", got)
	}
	if len(got.Spans) != 1 || got.Spans[0].Stage != "queue" {
		t.Errorf("spans = %+v", got.Spans)
	}

	// min_dur filters both lists.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_dur=100ms", nil))
	body = TracesBody{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Recent) != 1 || body.Recent[0].Route != "feedback" {
		t.Errorf("min_dur filter kept %+v", body.Recent)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_dur=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad min_dur: status %d, want 400", rec.Code)
	}

	// A nil tracer serves a well-formed disabled document.
	rec = httptest.NewRecorder()
	(*Tracer)(nil).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	body = TracesBody{Enabled: true}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Enabled {
		t.Errorf("nil tracer: err=%v enabled=%v", err, body.Enabled)
	}
}

func TestNewLoggerAndParseLevel(t *testing.T) {
	var buf strings.Builder
	logger, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hidden")
	logger.Warn("shown", "trace_id", "abc")
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "hidden") {
		t.Error("info line leaked past warn level")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("json log line %q: %v", line, err)
	}
	if rec["msg"] != "shown" || rec["trace_id"] != "abc" {
		t.Errorf("record = %v", rec)
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	for name, want := range map[string]string{"": "INFO", "debug": "DEBUG", "warning": "WARN", "error": "ERROR"} {
		lvl, err := ParseLevel(name)
		if err != nil || lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %v, %v", name, lvl, err)
		}
	}
}

func TestLogfHandlerRendersLegacyLines(t *testing.T) {
	var lines []string
	logger := slog.New(NewLogfHandler(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}))
	logger.Warn("skipping snapshot /tmp/x", "err", "corrupt")
	logger.With("session", "s1").Info("request", "status", 200)
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "skipping snapshot /tmp/x err=corrupt" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if lines[1] != "request session=s1 status=200" {
		t.Errorf("line 1 = %q", lines[1])
	}
}
