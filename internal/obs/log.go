package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// NewLogger builds the daemon's structured logger. format selects the
// handler ("text" or "json"; "" = text), level the minimum severity
// ("debug", "info", "warn", "error"; "" = info).
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: log format %q (want text|json)", format)
	}
}

// ParseLevel maps a level name to its slog.Level ("" = info).
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: log level %q (want debug|info|warn|error)", level)
	}
}

// NewLogfHandler adapts a printf-style sink to slog, so embedders (and
// tests) that configure the legacy Logf callback keep receiving the
// daemon's logs: each record renders as "msg key=value ...", one call per
// record. The sink is assumed to be line-oriented and concurrency-safe the
// way log.Printf is; a mutex still serializes rendering so interleaved
// WithAttrs clones cannot tear a line.
func NewLogfHandler(logf func(format string, args ...any)) slog.Handler {
	return &logfHandler{logf: logf, mu: &sync.Mutex{}}
}

// logfHandler is the slog.Handler behind NewLogfHandler. Clones made by
// WithAttrs share the sink and mutex but own their attribute prefix.
type logfHandler struct {
	logf  func(format string, args ...any)
	mu    *sync.Mutex
	attrs string // pre-rendered " key=value" pairs from WithAttrs
}

// Enabled reports every level as enabled: filtering is the sink's business
// (the legacy Logf contract had none).
func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

// Handle renders one record through the sink.
func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	b.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, a)
		return true
	})
	h.mu.Lock()
	h.logf("%s", b.String())
	h.mu.Unlock()
	return nil
}

// WithAttrs returns a clone carrying the extra attributes on every record.
func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		appendAttr(&b, a)
	}
	return &logfHandler{logf: h.logf, mu: h.mu, attrs: b.String()}
}

// WithGroup is accepted but flattened: the legacy line format has no
// nesting, so group names are dropped rather than erroring.
func (h *logfHandler) WithGroup(string) slog.Handler { return h }

func appendAttr(b *strings.Builder, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	fmt.Fprintf(b, "%v", a.Value.Any())
}
