package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// TraceJSON is the wire form of one finished trace at /debug/traces.
type TraceJSON struct {
	TraceID    string     `json:"trace_id"`
	SpanID     string     `json:"span_id"`
	ParentSpan string     `json:"parent_span,omitempty"`
	Route      string     `json:"route"`
	Tenant     string     `json:"tenant,omitempty"`
	Session    string     `json:"session,omitempty"`
	Start      time.Time  `json:"start"`
	Seconds    float64    `json:"duration_seconds"`
	Status     int        `json:"status"`
	Dropped    int        `json:"dropped_spans,omitempty"`
	Spans      []SpanJSON `json:"spans"`
}

// SpanJSON is one node of the rendered span tree.
type SpanJSON struct {
	Stage    string     `json:"stage"`
	Offset   float64    `json:"start_seconds"`
	Seconds  float64    `json:"duration_seconds"`
	Children []SpanJSON `json:"children,omitempty"`
}

// TracesBody is the /debug/traces response document.
type TracesBody struct {
	Enabled bool        `json:"enabled"`
	Total   uint64      `json:"finished_total"`
	Recent  []TraceJSON `json:"recent"`
	Slowest []TraceJSON `json:"slowest"`
}

// Handler serves the retained traces as JSON: the recent ring (newest
// first) and the slowest list, each optionally filtered by ?min_dur= (a Go
// duration, e.g. 100ms). A nil tracer serves an "enabled": false document.
// The handler performs no access control — the serving tier mounts it
// behind a loopback guard.
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tr == nil {
			_ = json.NewEncoder(w).Encode(TracesBody{})
			return
		}
		var minDur time.Duration
		if v := r.URL.Query().Get("min_dur"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "bad min_dur: " + err.Error()})
				return
			}
			minDur = d
		}
		recent, slowest, total := tr.snapshot()
		body := TracesBody{
			Enabled: true,
			Total:   total,
			Recent:  render(recent, minDur),
			Slowest: render(slowest, minDur),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}

// render converts finished traces to their wire form, dropping those
// faster than minDur.
func render(traces []*Trace, minDur time.Duration) []TraceJSON {
	out := make([]TraceJSON, 0, len(traces))
	for _, t := range traces {
		if j, ok := t.render(minDur); ok {
			out = append(out, j)
		}
	}
	return out
}

// render builds the wire form of one finished trace. The trace is sealed
// (immutable) by the time it is retained, but the snapshot still copies
// everything under the trace's own lock for safety.
func (t *Trace) render(minDur time.Duration) (TraceJSON, bool) {
	t.mu.Lock()
	dur := t.dur
	if dur < minDur {
		t.mu.Unlock()
		return TraceJSON{}, false
	}
	j := TraceJSON{
		TraceID:    t.id,
		SpanID:     t.spanID,
		ParentSpan: t.parentSpan,
		Route:      t.route,
		Tenant:     t.tenant,
		Session:    t.session,
		Start:      t.start,
		Seconds:    dur.Seconds(),
		Status:     t.status,
		Dropped:    t.dropped,
	}
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	j.Spans = buildTree(spans)
	return j, true
}

// treeNode is the mutable form of a span while the tree is assembled.
type treeNode struct {
	span     Span
	children []*treeNode
}

// buildTree nests flat spans by parent stage name. Spans are recorded when
// they end, so an enclosing span (exec, persist) lands in the list after
// the children it covered: each span therefore attaches to the nearest
// following span whose stage matches its Parent — the soonest-ending
// enclosure, which resolves repeated stage names (each suggest span finds
// the exec that enclosed it, not a later one). A span whose parent only
// occurs earlier (recorded out of discipline) falls back to the nearest
// preceding match; "" or unknown parents join the root list.
func buildTree(spans []Span) []SpanJSON {
	nodes := make([]*treeNode, len(spans))
	for i, sp := range spans {
		nodes[i] = &treeNode{span: sp}
	}
	var roots []*treeNode
	for i, sp := range spans {
		parent := (*treeNode)(nil)
		if sp.Parent != "" {
			for j := i + 1; j < len(nodes); j++ {
				if nodes[j].span.Stage == sp.Parent {
					parent = nodes[j]
					break
				}
			}
			if parent == nil {
				for j := i - 1; j >= 0; j-- {
					if nodes[j].span.Stage == sp.Parent {
						parent = nodes[j]
						break
					}
				}
			}
		}
		if parent == nil {
			roots = append(roots, nodes[i])
		} else {
			parent.children = append(parent.children, nodes[i])
		}
	}
	return materialize(roots)
}

func materialize(nodes []*treeNode) []SpanJSON {
	if len(nodes) == 0 {
		return nil
	}
	out := make([]SpanJSON, len(nodes))
	for i, n := range nodes {
		out[i] = SpanJSON{
			Stage:    n.span.Stage,
			Offset:   n.span.Start.Seconds(),
			Seconds:  n.span.Dur.Seconds(),
			Children: materialize(n.children),
		}
	}
	return out
}
