package obs

import (
	"testing"
	"time"

	"gdr/internal/par"
)

// TestDisabledTracingZeroAlloc pins the disabled-tracing path to zero
// allocations: the serving tier instruments unconditionally, so a daemon
// running with -trace=-1 (nil tracer, nil traces everywhere) must pay
// nothing for the instrumentation it isn't using. The CI alloc-guard step
// runs this test.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		tct := tr.Start("", "feedback")
		tct.SetTenant("acme")
		h := tct.StartChild("exec", "suggest")
		h.End()
		tct.RecordSince("queue", "", time.Time{})
		tct.Finish(200)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer cost %v allocs per request, want 0", allocs)
	}
}

// TestSpanRecordingSteadyStateAllocs pins the per-span cost on a live trace:
// below the preallocated span capacity, opening and ending a span must not
// allocate — SpanHandle is a value and the spans slice is sized for a full
// feedback round up front.
func TestSpanRecordingSteadyStateAllocs(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	tr := NewTracer(Config{Seed: 1})
	tct := tr.Start("", "feedback")
	allocs := testing.AllocsPerRun(spanPrealloc-2, func() {
		h := tct.StartChild("exec", "suggest")
		h.End()
	})
	if allocs != 0 {
		t.Errorf("span recording cost %v allocs, want 0 below the preallocated capacity", allocs)
	}
}

// TestTraceLifecycleAllocBound bounds the whole per-request tracing cost —
// mint, a representative span set, Server-Timing render, finish — to a small
// constant, so tracing stays cheap enough to leave on in production.
func TestTraceLifecycleAllocBound(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	tr := NewTracer(Config{Capacity: 8, Seed: 1})
	allocs := testing.AllocsPerRun(100, func() {
		tct := tr.Start("", "feedback")
		now := time.Now()
		tct.RecordSpan("admit", "", now, time.Millisecond)
		tct.RecordSpan("queue", "", now, time.Millisecond)
		tct.RecordSpan("exec", "", now, time.Millisecond)
		_ = tct.ServerTiming()
		tct.Finish(200)
	})
	// Trace struct, span slice, two ID strings, Server-Timing buffer and its
	// string — leave modest headroom without letting a per-span regression by.
	if allocs > 8 {
		t.Errorf("trace lifecycle cost %v allocs per request, want <= 8", allocs)
	}
}
