// Package obs is gdrd's observability layer: a stdlib-only, context-
// propagated request tracer and the daemon's structured-logging helpers.
//
// Every HTTP request gets a Trace at ingress — its ID adopted from an
// incoming W3C traceparent header or minted from the tracer's seeded RNG —
// and the trace rides the request context through admission, the actor
// queue, the CPU-slot scheduler, command execution, the engine phases and
// the checkpoint pipeline. Each tier records flat Spans (stage name, parent
// stage name, offset, duration); the span tree is only materialized when a
// human asks for it at /debug/traces. Completed traces land in a fixed-size
// ring plus a separate slowest-N list, so the interesting outliers survive
// even under high request rates.
//
// The package is deliberately dependency-free and nil-tolerant: a nil
// *Tracer (tracing disabled) and a nil *Trace (untraced request, background
// work) are valid receivers everywhere and cost zero allocations, which is
// what lets the serving tier instrument unconditionally.
package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// Config tunes a Tracer.
type Config struct {
	// Capacity is the completed-trace ring size (default 256). A negative
	// value disables tracing entirely: NewTracer returns nil, and the nil
	// Tracer is a valid zero-cost no-op.
	Capacity int
	// Slowest is how many slowest traces are retained independently of the
	// ring (default 32), so outliers survive a burst of fast requests.
	Slowest int
	// Seed seeds the trace/span ID source (0 = from the wall clock). A
	// fixed seed makes trace IDs reproducible for tests.
	Seed int64
}

// Defaults for Config's zero values.
const (
	defaultCapacity = 256
	defaultSlowest  = 32
)

// Span bounds: enough for a feedback round with a checkpoint (admit, queue,
// slot, exec, a handful of engine phases, persist and its four children);
// pathological cascades overflow into the dropped counter instead of
// growing without bound.
const (
	spanPrealloc = 16
	maxSpans     = 64
)

// Tracer mints per-request Traces and retains completed ones: the last
// Capacity in a ring plus the Slowest worst offenders.
type Tracer struct {
	slowN int

	// OnFinish, when set before serving starts, observes every finished
	// trace (the server exports per-stage histograms from it). It runs on
	// the goroutine that calls Finish.
	OnFinish func(*Trace)

	mu    sync.Mutex
	rng   *rand.Rand  // gdr:guarded-by mu — trace/span ID source
	ring  []*Trace    // gdr:guarded-by mu — finished traces, oldest overwritten
	next  int         // gdr:guarded-by mu — ring write cursor
	total uint64      // gdr:guarded-by mu — finished traces ever
	slow  []slowEntry // gdr:guarded-by mu — slowest finished, descending
}

// slowEntry pairs a finished trace with its duration, copied at insertion
// so ordering the list never reads another trace's fields.
type slowEntry struct {
	t   *Trace
	dur time.Duration
}

// NewTracer builds a tracer, or returns nil (tracing disabled) when
// cfg.Capacity is negative.
func NewTracer(cfg Config) *Tracer {
	if cfg.Capacity < 0 {
		return nil
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = defaultCapacity
	}
	if cfg.Slowest <= 0 {
		cfg.Slowest = defaultSlowest
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Tracer{
		slowN: cfg.Slowest,
		rng:   rand.New(rand.NewSource(seed)),
		ring:  make([]*Trace, cfg.Capacity),
		slow:  make([]slowEntry, 0, cfg.Slowest),
	}
}

// Start begins a trace for one request. traceparent is the raw incoming
// header value ("" or malformed mints a fresh trace ID); route is the
// bounded route label the trace is attributed to. A nil tracer returns a
// nil trace, which every method accepts as a no-op.
func (tr *Tracer) Start(traceparent, route string) *Trace {
	if tr == nil {
		return nil
	}
	t := &Trace{
		tracer: tr,
		route:  route,
		start:  time.Now(),
		spans:  make([]Span, 0, spanPrealloc),
	}
	if tid, sid, ok := ParseTraceParent(traceparent); ok {
		t.id, t.parentSpan = tid, sid
	}
	tr.mu.Lock()
	if t.id == "" {
		t.id = randHex(tr.rng, 16)
	}
	t.spanID = randHex(tr.rng, 8)
	tr.mu.Unlock()
	return t
}

// finish files a completed trace into the ring and the slowest list.
func (tr *Tracer) finish(t *Trace, dur time.Duration) {
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.total++
	if len(tr.slow) < tr.slowN || dur > tr.slow[len(tr.slow)-1].dur {
		// Insertion point by hand: the list is short (defaultSlowest) and a
		// sort.Search closure would read tr.slow outside guardedby's lock
		// tracking.
		i := 0
		for i < len(tr.slow) && tr.slow[i].dur >= dur {
			i++
		}
		if len(tr.slow) < tr.slowN {
			tr.slow = append(tr.slow, slowEntry{})
		}
		copy(tr.slow[i+1:], tr.slow[i:])
		tr.slow[i] = slowEntry{t: t, dur: dur}
	}
	tr.mu.Unlock()
	if tr.OnFinish != nil {
		tr.OnFinish(t)
	}
}

// snapshot copies the retained traces: ring contents newest-first, then the
// slowest list (descending). Total is the number of traces ever finished.
func (tr *Tracer) snapshot() (recent, slowest []*Trace, total uint64) {
	if tr == nil {
		return nil, nil, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	recent = make([]*Trace, 0, len(tr.ring))
	for i := 0; i < len(tr.ring); i++ {
		t := tr.ring[(tr.next-1-i+2*len(tr.ring))%len(tr.ring)]
		if t == nil {
			break
		}
		recent = append(recent, t)
	}
	slowest = make([]*Trace, len(tr.slow))
	for i, e := range tr.slow {
		slowest[i] = e.t
	}
	return recent, slowest, tr.total
}

// randHex draws nbytes (at most 16) of seeded randomness as lowercase hex.
func randHex(rng *rand.Rand, nbytes int) string {
	var b [16]byte
	for i := 0; i < nbytes; i += 8 {
		binary.BigEndian.PutUint64(b[i:i+8], rng.Uint64())
	}
	return hex.EncodeToString(b[:nbytes])
}

// Span is one completed stage of a trace. Start is the offset from the
// trace's start; Parent names the enclosing stage ("" = a root span).
// Parent-by-stage-name keeps recording allocation-free across goroutine and
// process layers — the tree is only built for display.
type Span struct {
	Stage  string
	Parent string
	Start  time.Duration
	Dur    time.Duration
}

// Trace is one request's trace. It is created by Tracer.Start, carried in
// the request context, filled with Spans by each tier (from any goroutine),
// and sealed by Finish. All methods are safe on a nil receiver.
type Trace struct {
	tracer     *Tracer
	id         string // 32 lowercase hex chars
	spanID     string // this server's span, 16 hex chars
	parentSpan string // inbound parent span ID ("" when we originated the trace)
	route      string
	start      time.Time

	mu      sync.Mutex
	tenant  string        // gdr:guarded-by mu
	session string        // gdr:guarded-by mu
	spans   []Span        // gdr:guarded-by mu
	dropped int           // gdr:guarded-by mu — spans beyond maxSpans
	done    bool          // gdr:guarded-by mu — Finish sealed the trace
	status  int           // gdr:guarded-by mu — HTTP status, set by Finish
	dur     time.Duration // gdr:guarded-by mu — total duration, set by Finish
}

// ID returns the 32-hex-char trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Route returns the bounded route label ("" on a nil trace).
func (t *Trace) Route() string {
	if t == nil {
		return ""
	}
	return t.route
}

// TraceParent renders the outbound W3C traceparent header for this trace:
// our span ID under the (possibly adopted) trace ID, sampled flag set.
func (t *Trace) TraceParent() string {
	if t == nil {
		return ""
	}
	return "00-" + t.id + "-" + t.spanID + "-01"
}

// SetTenant attributes the trace to a tenant.
func (t *Trace) SetTenant(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tenant = name
	t.mu.Unlock()
}

// Tenant returns the attributed tenant ("" if none).
func (t *Trace) Tenant() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tenant
}

// SetSession attributes the trace to a session token.
func (t *Trace) SetSession(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.session = id
	t.mu.Unlock()
}

// Session returns the attributed session token ("" if none).
func (t *Trace) Session() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.session
}

// RecordSpan appends one completed span. Spans beyond maxSpans are counted
// as dropped instead of growing the trace without bound.
func (t *Trace) RecordSpan(stage, parent string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	off := start.Sub(t.start)
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Stage: stage, Parent: parent, Start: off, Dur: dur})
	}
	t.mu.Unlock()
}

// RecordSince records a span that started at start and ends now.
func (t *Trace) RecordSince(stage, parent string, start time.Time) {
	if t == nil {
		return
	}
	t.RecordSpan(stage, parent, start, time.Since(start))
}

// SpanHandle is an open span: created by StartSpan/StartChild, completed by
// End. It is a value (no allocation); the zero handle (from a nil trace) is
// a no-op.
type SpanHandle struct {
	t      *Trace
	stage  string
	parent string
	start  time.Time
}

// StartSpan opens a root span.
func (t *Trace) StartSpan(stage string) SpanHandle {
	return t.StartChild("", stage)
}

// StartChild opens a span under the named parent stage.
func (t *Trace) StartChild(parent, stage string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, stage: stage, parent: parent, start: time.Now()}
}

// End records the span. Safe on the zero handle.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.RecordSpan(h.stage, h.parent, h.start, time.Since(h.start))
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans were discarded past the per-trace cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanDur sums the durations of all spans with the given stage name.
func (t *Trace) SpanDur(stage string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	for _, sp := range t.spans {
		if sp.Stage == stage {
			d += sp.Dur
		}
	}
	return d
}

// maxTimingStages bounds the distinct root stages a Server-Timing header
// reports; the serving tier records at most five.
const maxTimingStages = 8

// ServerTiming renders the root spans recorded so far as a Server-Timing
// header value (durations in milliseconds), merging repeated stages. It is
// called at response-header time, before Finish.
func (t *Trace) ServerTiming() string {
	if t == nil {
		return ""
	}
	type agg struct {
		stage string
		dur   time.Duration
	}
	var roots [maxTimingStages]agg
	n := 0
	t.mu.Lock()
	for _, sp := range t.spans {
		if sp.Parent != "" {
			continue
		}
		merged := false
		for i := 0; i < n; i++ {
			if roots[i].stage == sp.Stage {
				roots[i].dur += sp.Dur
				merged = true
				break
			}
		}
		if !merged && n < len(roots) {
			roots[n] = agg{stage: sp.Stage, dur: sp.Dur}
			n++
		}
	}
	t.mu.Unlock()
	if n == 0 {
		return ""
	}
	buf := make([]byte, 0, 24*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ',', ' ')
		}
		buf = append(buf, roots[i].stage...)
		buf = append(buf, ";dur="...)
		buf = strconv.AppendFloat(buf, float64(roots[i].dur)/float64(time.Millisecond), 'f', 3, 64)
	}
	return string(buf)
}

// Finish seals the trace with the response status and files it with the
// tracer. Only the first call has effect; later span recording is dropped
// by the done flag staying set (finished traces are immutable, which is
// what makes them safe to serve from /debug/traces).
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	d := time.Since(t.start)
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.status = status
	t.dur = d
	t.mu.Unlock()
	t.tracer.finish(t, d)
}

// Duration returns the sealed total duration (0 before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// Status returns the sealed HTTP status (0 before Finish).
func (t *Trace) Status() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// ctxKey carries the *Trace in a request context.
type ctxKey struct{}

// parentKey carries the span-parent stage name across the actor boundary:
// a tier that dispatches actor work inside an open span (the checkpoint
// path) sets it so the actor's queue/slot/exec spans nest correctly.
type parentKey struct{}

// NewContext returns ctx carrying the trace (ctx unchanged for nil).
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// WithSpanParent returns ctx carrying a span-parent stage name for work
// dispatched to another goroutine while the named span is open.
func WithSpanParent(ctx context.Context, stage string) context.Context {
	return context.WithValue(ctx, parentKey{}, stage)
}

// SpanParent returns the context's span-parent stage name, or "".
func SpanParent(ctx context.Context) string {
	s, _ := ctx.Value(parentKey{}).(string)
	return s
}

// ParseTraceParent parses a W3C traceparent header
// (version "00": 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>).
// It returns the trace and parent span IDs, or ok=false for anything
// malformed — a bad header is ignored, never an error.
func ParseTraceParent(h string) (traceID, spanID string, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	tid, sid, flags := h[3:35], h[36:52], h[53:55]
	if !isLowerHex(tid) || !isLowerHex(sid) || !isLowerHex(flags) {
		return "", "", false
	}
	if allZero(tid) || allZero(sid) {
		return "", "", false
	}
	return tid, sid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
