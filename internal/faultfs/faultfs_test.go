package faultfs

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

func TestNilInjectorNeverFaults(t *testing.T) {
	var in *Injector
	if err := in.Fault(Write); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}
	in.Set(Write, Rule{P: 1})
	in.Clear()
	if got := in.Hits(Write); got != 0 {
		t.Fatalf("nil injector hits = %d", got)
	}
}

func TestFaultProbabilities(t *testing.T) {
	in := New(1)
	in.Set(Write, Rule{P: 1, Err: ErrDiskFull})
	in.Set(Sync, Rule{P: 0})
	for i := 0; i < 50; i++ {
		if err := in.Fault(Write); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("p=1 write fault %d: %v", i, err)
		}
		if err := in.Fault(Sync); err != nil {
			t.Fatalf("p=0 sync faulted: %v", err)
		}
	}
	if got := in.Hits(Write); got != 50 {
		t.Fatalf("write hits = %d, want 50", got)
	}
	// No rule at all → no fault.
	if err := in.Fault(Rename); err != nil {
		t.Fatalf("ruleless point faulted: %v", err)
	}
}

func TestSeededRollsReplay(t *testing.T) {
	roll := func() []bool {
		in := New(42)
		in.Set(Rename, Rule{P: 0.5, Err: ErrInjected})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fault(Rename) != nil
		}
		return out
	}
	a, b := roll(), roll()
	faulted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d diverged between equal seeds", i)
		}
		if a[i] {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(a) {
		t.Fatalf("p=0.5 produced %d/%d faults — rule not probabilistic", faulted, len(a))
	}
}

func TestDelayOnlyRuleSlowsWithoutFailing(t *testing.T) {
	in := New(3)
	in.Set(Actor, Rule{P: 1, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Fault(Actor); err != nil {
		t.Fatalf("delay-only rule errored: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay not applied")
	}
	if in.Hits(Actor) != 1 {
		t.Fatalf("actor hits = %d", in.Hits(Actor))
	}
}

func TestClearHeals(t *testing.T) {
	in := New(9)
	in.Set(Write, Rule{P: 1, Err: ErrDiskFull})
	if in.Fault(Write) == nil {
		t.Fatal("rule not active")
	}
	in.Clear()
	if err := in.Fault(Write); err != nil {
		t.Fatalf("cleared injector still faults: %v", err)
	}
	if in.Hits(Write) != 1 {
		t.Fatalf("hits must survive Clear: %d", in.Hits(Write))
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("write=0.3,sync=0.2,rename=0.1,actor=1:25ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{Write, Sync, Rename, Actor} {
		in.mu.Lock()
		_, ok := in.rules[p]
		in.mu.Unlock()
		if !ok {
			t.Fatalf("point %s missing from parsed spec", p)
		}
	}
	for _, bad := range []string{
		"write",        // no probability
		"write=2",      // out of range
		"write=-0.1",   // out of range
		"bogus=0.5",    // unknown point
		"actor=1:-5ms", // negative delay
		"actor=1:x",    // unparsable delay
	} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Empty spec is a no-op injector.
	if in, err := ParseSpec("", 1); err != nil || in.Fault(Write) != nil {
		t.Fatalf("empty spec: %v", err)
	}
}
