// Package faultfs injects faults at named points in the serving stack —
// checkpoint write/fsync/rename failures (disk full, sick disks), slow
// session actors — for tests and gdrd's -chaos dev mode. An Injector is
// seeded, so a failing chaos run reproduces exactly; call sites hold a
// possibly-nil *Injector and consult it unconditionally (every method is
// nil-receiver safe, and a nil injector never faults), which keeps the
// production paths free of feature flags.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Point names one injection site. The serving tier consults these; tests
// may define their own.
type Point string

const (
	// Write fails the checkpoint temp-file write (simulated disk full).
	Write Point = "write"
	// Sync fails the checkpoint fsync.
	Sync Point = "sync"
	// Rename fails the rename that lands a checkpoint.
	Rename Point = "rename"
	// Actor delays a session command while it holds CPU slots (slow actor).
	Actor Point = "actor"
)

// ErrInjected is the default error returned at a faulting point.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrDiskFull is the injected disk-full error; it wraps syscall.ENOSPC so
// code inspecting errno semantics sees the real thing.
var ErrDiskFull = fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)

// Rule decides what happens when a point is hit: with probability P the
// point sleeps Delay and returns Err (ErrInjected when Err is nil and the
// rule has no delay-only purpose — a rule with a Delay and a nil Err just
// slows the caller down).
type Rule struct {
	P     float64
	Err   error
	Delay time.Duration
}

// Injector holds the active rules. The zero value (and nil) never faults.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand      // gdr:guarded-by mu
	rules map[Point]Rule  // gdr:guarded-by mu
	hits  map[Point]int64 // gdr:guarded-by mu
}

// New returns an injector whose probabilistic decisions replay from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[Point]Rule),
		hits:  make(map[Point]int64),
	}
}

// Set installs (or replaces) the rule at a point.
func (in *Injector) Set(p Point, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules[p] = r
	in.mu.Unlock()
}

// Clear heals the injector: every rule is dropped, hit counts are kept.
func (in *Injector) Clear() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules = make(map[Point]Rule)
	in.mu.Unlock()
}

// Fault rolls the point's rule. It returns nil when the injector is nil,
// the point has no rule, or the roll passes; otherwise it sleeps the
// rule's Delay and returns its error (a delay-only rule returns nil after
// sleeping — a slowdown, not a failure).
func (in *Injector) Fault(p Point) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	r, ok := in.rules[p]
	if !ok || r.P <= 0 || in.rng.Float64() >= r.P {
		in.mu.Unlock()
		return nil
	}
	in.hits[p]++
	in.mu.Unlock()
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Err != nil {
		return r.Err
	}
	if r.Delay > 0 {
		return nil
	}
	return ErrInjected
}

// Hits reports how many times a point has actually faulted (or delayed).
func (in *Injector) Hits(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// ParseSpec builds an injector from a gdrd -chaos flag value: a
// comma-separated list of point=probability[:delay] entries, e.g.
//
//	write=0.3,sync=0.2,rename=0.1,actor=1:25ms
//
// write faults with ErrDiskFull, sync and rename with ErrInjected, actor
// entries are delay-only (the delay defaults to 10ms when omitted).
func ParseSpec(spec string, seed int64) (*Injector, error) {
	in := New(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faultfs: entry %q: want point=probability[:delay]", part)
		}
		probStr, delayStr, hasDelay := strings.Cut(val, ":")
		p, err := strconv.ParseFloat(probStr, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("faultfs: entry %q: probability must be in [0, 1]", part)
		}
		r := Rule{P: p}
		if hasDelay {
			d, err := time.ParseDuration(delayStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultfs: entry %q: bad delay", part)
			}
			r.Delay = d
		}
		switch Point(name) {
		case Write:
			r.Err = ErrDiskFull
		case Sync, Rename:
			r.Err = ErrInjected
		case Actor:
			if r.Delay == 0 {
				r.Delay = 10 * time.Millisecond
			}
		default:
			return nil, fmt.Errorf("faultfs: unknown point %q (want write|sync|rename|actor)", name)
		}
		in.Set(Point(name), r)
	}
	return in, nil
}
