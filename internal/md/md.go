// Package md implements Matching Dependencies — the second rule type the
// paper's future work names (Fan, "Dependencies revisited for improving data
// quality", PODS 2008). An MD
//
//	R[A ≈δ A] → R[B ⇌ B]
//
// states that whenever two tuples agree *approximately* on A (similarity at
// least δ), their B values must be identified (made equal). MDs catch the
// duplicate-entity inconsistencies exact-match CFDs cannot: two records for
// the same street spelled slightly differently must carry the same zip.
//
// The checker uses q-gram blocking to avoid the quadratic similarity join,
// reports violating pairs, and suggests the standard MD repair: identify the
// mismatching values, preferring the value carried by the larger fraction of
// the block (the matching counterpart of minimal change).
package md

import (
	"fmt"
	"sort"

	"gdr/internal/relation"
	"gdr/internal/strsim"
)

// MD is one matching dependency over a single relation: tuples similar on
// SimAttr (≥ Threshold) must agree on MatchAttr.
type MD struct {
	// ID names the rule.
	ID string
	// SimAttr is the approximately-compared attribute A.
	SimAttr string
	// Threshold δ ∈ (0, 1]: pairs with sim(A, A') ≥ δ are matches.
	Threshold float64
	// MatchAttr is the attribute B whose values must be identified.
	MatchAttr string
}

// New validates and builds an MD.
func New(id, simAttr string, threshold float64, matchAttr string) (*MD, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("md %s: threshold %v outside (0,1]", id, threshold)
	}
	if simAttr == matchAttr {
		return nil, fmt.Errorf("md %s: compared and identified attributes must differ", id)
	}
	return &MD{ID: id, SimAttr: simAttr, Threshold: threshold, MatchAttr: matchAttr}, nil
}

// MustNew is New that panics on error.
func MustNew(id, simAttr string, threshold float64, matchAttr string) *MD {
	m, err := New(id, simAttr, threshold, matchAttr)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *MD) String() string {
	return fmt.Sprintf("%s: [%s ≈%.2f] -> [%s ⇌]", m.ID, m.SimAttr, m.Threshold, m.MatchAttr)
}

// Violation is one matching pair with diverging identified values; T1 < T2.
type Violation struct {
	Rule       int
	T1, T2     int
	Similarity float64
}

// Suggestion proposes identifying a tuple's MatchAttr with its match
// partner's value; Support counts how many matching partners carry Value.
type Suggestion struct {
	Tid     int
	Attr    string
	Value   string
	Support int
}

// Checker evaluates MDs over one relation with q-gram blocking.
type Checker struct {
	db    *relation.DB
	rules []*MD
	sim   func(a, b string) float64
	// q is the blocking gram size.
	q int
	// maxBlock caps candidate comparisons per tuple; enormous blocks (very
	// frequent grams) are skipped for that gram.
	maxBlock int
}

// Option configures a Checker.
type Option func(*Checker)

// WithSimilarity replaces the similarity function (default: Eq. 7 edit
// similarity).
func WithSimilarity(f func(a, b string) float64) Option {
	return func(c *Checker) { c.sim = f }
}

// WithBlocking tunes the q-gram size and per-gram block cap.
func WithBlocking(q, maxBlock int) Option {
	return func(c *Checker) { c.q, c.maxBlock = q, maxBlock }
}

// NewChecker validates the rules against the schema.
func NewChecker(db *relation.DB, rules []*MD, opts ...Option) (*Checker, error) {
	c := &Checker{db: db, rules: rules, sim: strsim.Similarity, q: 3, maxBlock: 256}
	for _, o := range opts {
		o(c)
	}
	for _, r := range rules {
		if _, ok := db.Schema.Index(r.SimAttr); !ok {
			return nil, fmt.Errorf("md %s: attribute %q not in schema", r.ID, r.SimAttr)
		}
		if _, ok := db.Schema.Index(r.MatchAttr); !ok {
			return nil, fmt.Errorf("md %s: attribute %q not in schema", r.ID, r.MatchAttr)
		}
	}
	return c, nil
}

// grams returns the q-gram set of s (whole string when shorter than q).
func (c *Checker) grams(s string) []string {
	rs := []rune(s)
	if len(rs) < c.q {
		return []string{string(rs)}
	}
	seen := make(map[string]bool)
	var out []string
	for i := 0; i+c.q <= len(rs); i++ {
		g := string(rs[i : i+c.q])
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// Violations computes all violating pairs of rule ri.
func (c *Checker) Violations(ri int) []Violation {
	r := c.rules[ri]
	simIdx := c.db.Schema.MustIndex(r.SimAttr)
	matchIdx := c.db.Schema.MustIndex(r.MatchAttr)

	// Block by q-grams of the compared attribute.
	blocks := make(map[string][]int)
	for tid := 0; tid < c.db.N(); tid++ {
		for _, g := range c.grams(c.db.GetAt(tid, simIdx)) {
			blocks[g] = append(blocks[g], tid)
		}
	}
	seen := make(map[[2]int]bool)
	var out []Violation
	for _, block := range blocks {
		if len(block) > c.maxBlock {
			continue
		}
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				t1, t2 := block[i], block[j]
				if t1 > t2 {
					t1, t2 = t2, t1
				}
				key := [2]int{t1, t2}
				if seen[key] {
					continue
				}
				seen[key] = true
				if c.db.GetAt(t1, matchIdx) == c.db.GetAt(t2, matchIdx) {
					continue
				}
				s := c.sim(c.db.GetAt(t1, simIdx), c.db.GetAt(t2, simIdx))
				if s >= r.Threshold {
					out = append(out, Violation{Rule: ri, T1: t1, T2: t2, Similarity: s})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].T1 != out[b].T1 {
			return out[a].T1 < out[b].T1
		}
		return out[a].T2 < out[b].T2
	})
	return out
}

// AllViolations concatenates Violations across every rule.
func (c *Checker) AllViolations() []Violation {
	var out []Violation
	for ri := range c.rules {
		out = append(out, c.Violations(ri)...)
	}
	return out
}

// Suggest proposes the MD repair for a violating pair: identify the
// identified attribute on both sides, preferring the value held by more of
// each tuple's matching partners. Both directions are returned, strongest
// support first.
func (c *Checker) Suggest(v Violation) []Suggestion {
	r := c.rules[v.Rule]
	matchIdx := c.db.Schema.MustIndex(r.MatchAttr)
	v1 := c.db.GetAt(v.T1, matchIdx)
	v2 := c.db.GetAt(v.T2, matchIdx)
	s1 := c.partnerSupport(v.Rule, v.T1, v2)
	s2 := c.partnerSupport(v.Rule, v.T2, v1)
	out := []Suggestion{
		{Tid: v.T1, Attr: r.MatchAttr, Value: v2, Support: s1},
		{Tid: v.T2, Attr: r.MatchAttr, Value: v1, Support: s2},
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Support > out[j].Support })
	return out
}

// partnerSupport counts the matching partners of tid carrying value on the
// identified attribute.
func (c *Checker) partnerSupport(ri, tid int, value string) int {
	r := c.rules[ri]
	simIdx := c.db.Schema.MustIndex(r.SimAttr)
	matchIdx := c.db.Schema.MustIndex(r.MatchAttr)
	mine := c.db.GetAt(tid, simIdx)
	n := 0
	for other := 0; other < c.db.N(); other++ {
		if other == tid {
			continue
		}
		if c.db.GetAt(other, matchIdx) != value {
			continue
		}
		if c.sim(mine, c.db.GetAt(other, simIdx)) >= r.Threshold {
			n++
		}
	}
	return n
}

// Rules returns the checker's rule list.
func (c *Checker) Rules() []*MD { return c.rules }
