package md

import (
	"testing"

	"gdr/internal/relation"
)

func fixture(t *testing.T) *relation.DB {
	t.Helper()
	db := relation.NewDB(relation.MustSchema("Addr", []string{"Street", "Zip"}))
	rows := []relation.Tuple{
		{"100 Sherden Road", "46825"},
		{"100 Sherden Raod", "46835"}, // near-duplicate street, different zip
		{"100 Sherden Road", "46825"},
		{"200 Canal Street", "46601"},
		{"742 Evergreen Terrace", "99999"},
	}
	for _, r := range rows {
		db.MustInsert(r)
	}
	return db
}

func TestViolatingPairsFound(t *testing.T) {
	db := fixture(t)
	c, err := NewChecker(db, []*MD{MustNew("m", "Street", 0.85, "Zip")})
	if err != nil {
		t.Fatal(err)
	}
	vs := c.Violations(0)
	// t0/t1 and t1/t2 are similar streets with diverging zips; t0/t2 agree
	// on zip so they are fine despite being identical streets.
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].T1 != 0 || vs[0].T2 != 1 || vs[1].T1 != 1 || vs[1].T2 != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Similarity < 0.85 {
		t.Fatalf("similarity = %v", vs[0].Similarity)
	}
	if got := c.AllViolations(); len(got) != 2 {
		t.Fatalf("AllViolations = %v", got)
	}
}

func TestSuggestPrefersSupportedValue(t *testing.T) {
	db := fixture(t)
	c, _ := NewChecker(db, []*MD{MustNew("m", "Street", 0.85, "Zip")})
	vs := c.Violations(0)
	sugs := c.Suggest(vs[0]) // pair (t0, t1)
	if len(sugs) != 2 {
		t.Fatalf("suggestions = %v", sugs)
	}
	// The typo'd record t1 should adopt 46825: two matching partners carry
	// it, while t0's adoption of 46835 has support 1 (only t1 itself).
	best := sugs[0]
	if best.Tid != 1 || best.Value != "46825" {
		t.Fatalf("best suggestion = %+v", best)
	}
	if best.Support <= sugs[1].Support {
		t.Fatalf("support ordering broken: %+v vs %+v", sugs[0], sugs[1])
	}
}

func TestNoFalsePairsAcrossBlocks(t *testing.T) {
	db := fixture(t)
	c, _ := NewChecker(db, []*MD{MustNew("m", "Street", 0.85, "Zip")})
	for _, v := range c.Violations(0) {
		if v.T1 == 4 || v.T2 == 4 {
			t.Fatalf("Evergreen Terrace matched something: %v", v)
		}
	}
}

func TestThresholdControlsMatching(t *testing.T) {
	db := fixture(t)
	strict, _ := NewChecker(db, []*MD{MustNew("m", "Street", 0.999, "Zip")})
	if vs := strict.Violations(0); len(vs) != 0 {
		t.Fatalf("near-exact threshold still matched: %v", vs)
	}
	loose, _ := NewChecker(db, []*MD{MustNew("m", "Street", 0.3, "Zip")})
	if vs := loose.Violations(0); len(vs) < 2 {
		t.Fatalf("loose threshold found only %v", vs)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New("bad", "A", 0, "B"); err == nil {
		t.Fatal("want error for zero threshold")
	}
	if _, err := New("bad", "A", 1.5, "B"); err == nil {
		t.Fatal("want error for threshold > 1")
	}
	if _, err := New("bad", "A", 0.5, "A"); err == nil {
		t.Fatal("want error for self-identified attribute")
	}
	db := fixture(t)
	if _, err := NewChecker(db, []*MD{MustNew("m", "Nope", 0.9, "Zip")}); err == nil {
		t.Fatal("want error for unknown attribute")
	}
	if _, err := NewChecker(db, []*MD{MustNew("m", "Street", 0.9, "Nope")}); err == nil {
		t.Fatal("want error for unknown match attribute")
	}
}

func TestShortValuesBlockedWholesale(t *testing.T) {
	db := relation.NewDB(relation.MustSchema("R", []string{"A", "B"}))
	db.MustInsert(relation.Tuple{"ab", "1"})
	db.MustInsert(relation.Tuple{"ab", "2"})
	c, _ := NewChecker(db, []*MD{MustNew("m", "A", 0.9, "B")}, WithBlocking(3, 64))
	if vs := c.Violations(0); len(vs) != 1 {
		t.Fatalf("short-string pair missed: %v", vs)
	}
}

func TestStringer(t *testing.T) {
	m := MustNew("m", "Street", 0.85, "Zip")
	if got := m.String(); got != "m: [Street ≈0.85] -> [Zip ⇌]" {
		t.Fatalf("String = %q", got)
	}
}
