package cind

import (
	"testing"

	"gdr/internal/relation"
)

// fixture: Visits reference Hospitals by name; only accredited hospitals
// count as valid targets for emergency visits.
func fixture(t *testing.T) (*relation.DB, *relation.DB, []*CIND) {
	t.Helper()
	visits := relation.NewDB(relation.MustSchema("Visits", []string{"Patient", "HospitalName", "Kind"}))
	hospitals := relation.NewDB(relation.MustSchema("Hospitals", []string{"Name", "City", "Accredited"}))

	hospitals.MustInsert(relation.Tuple{"St. Mary Medical Center", "Michigan City", "yes"})
	hospitals.MustInsert(relation.Tuple{"Parkview Regional", "Fort Wayne", "yes"})
	hospitals.MustInsert(relation.Tuple{"Lakeshore Clinic", "Portage", "no"})

	visits.MustInsert(relation.Tuple{"Alice", "St. Mary Medical Center", "emergency"})
	visits.MustInsert(relation.Tuple{"Bob", "St Mary Medical Center", "emergency"}) // typo: dangling
	visits.MustInsert(relation.Tuple{"Carol", "Parkview Regional", "routine"})
	visits.MustInsert(relation.Tuple{"Dave", "Lakeshore Clinic", "emergency"}) // not accredited: dangling
	visits.MustInsert(relation.Tuple{"Eve", "Lakeshore Clinic", "routine"})    // unconditional rule only

	rules := []*CIND{
		MustNew("ref", []string{"HospitalName"}, []string{"Name"}, nil, nil),
		MustNew("emergency-accredited",
			[]string{"HospitalName"}, []string{"Name"},
			map[string]string{"Kind": "emergency"},
			map[string]string{"Accredited": "yes"}),
	}
	return visits, hospitals, rules
}

func TestViolationsDetected(t *testing.T) {
	visits, hospitals, rules := fixture(t)
	c, err := NewChecker(visits, hospitals, rules)
	if err != nil {
		t.Fatal(err)
	}
	vs := c.Violations()
	// Bob (typo) violates both rules; Dave violates only the conditional one.
	want := []Violation{{Rule: 0, Tid: 1}, {Rule: 1, Tid: 1}, {Rule: 1, Tid: 3}}
	if len(vs) != len(want) {
		t.Fatalf("violations = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("violations = %v, want %v", vs, want)
		}
	}
	if c.Violates(0, 0) {
		t.Fatal("Alice's reference is valid")
	}
	if c.Violates(1, 4) {
		t.Fatal("Eve's routine visit is outside the conditional rule's scope")
	}
}

func TestSuggestClosestExistingKey(t *testing.T) {
	visits, hospitals, rules := fixture(t)
	c, _ := NewChecker(visits, hospitals, rules)
	sugs := c.Suggest(Violation{Rule: 0, Tid: 1}, 2)
	if len(sugs) == 0 {
		t.Fatal("no suggestions for the typo reference")
	}
	best := sugs[0]
	if best.Attr != "HospitalName" || best.Value != "St. Mary Medical Center" {
		t.Fatalf("best suggestion = %+v", best)
	}
	if best.Score < 0.9 {
		t.Fatalf("typo fix score = %v", best.Score)
	}
	// The conditional rule must not suggest the unaccredited clinic.
	for _, s := range c.Suggest(Violation{Rule: 1, Tid: 3}, 10) {
		if s.Value == "Lakeshore Clinic" {
			t.Fatal("unaccredited hospital suggested as emergency target")
		}
	}
}

func TestRightInsertedResolvesViolation(t *testing.T) {
	visits, hospitals, rules := fixture(t)
	c, _ := NewChecker(visits, hospitals, rules)
	if !c.Violates(0, 1) {
		t.Fatal("Bob should start dangling")
	}
	tid := hospitals.MustInsert(relation.Tuple{"St Mary Medical Center", "Michigan City", "yes"})
	c.RightInserted(tid)
	if c.Violates(0, 1) {
		t.Fatal("insert of the referenced key should resolve the violation")
	}
	if c.Violates(1, 1) {
		t.Fatal("the new hospital is accredited; the conditional rule is satisfied too")
	}
}

func TestRightUpdatedMaintainsIndex(t *testing.T) {
	visits, hospitals, rules := fixture(t)
	c, _ := NewChecker(visits, hospitals, rules)
	// Accrediting the clinic legitimizes Dave's emergency visit.
	old := hospitals.Get(2, "Accredited")
	hospitals.Set(2, "Accredited", "yes")
	c.RightUpdated(2, "Accredited", old)
	if c.Violates(1, 3) {
		t.Fatal("accreditation should resolve the conditional violation")
	}
	// Renaming a hospital breaks references to the old name.
	old = hospitals.Get(0, "Name")
	hospitals.Set(0, "Name", "St. Mary Hospital")
	c.RightUpdated(0, "Name", old)
	if !c.Violates(0, 0) {
		t.Fatal("Alice's reference should dangle after the rename")
	}
	// Cross-check against a full rebuild.
	fresh, err := NewChecker(visits, hospitals, rules)
	if err != nil {
		t.Fatal(err)
	}
	for ri := range rules {
		for tid := 0; tid < visits.N(); tid++ {
			if c.Violates(ri, tid) != fresh.Violates(ri, tid) {
				t.Fatalf("incremental state diverged at rule %d tuple %d", ri, tid)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", nil, nil, nil, nil); err == nil {
		t.Fatal("want error for empty correspondence")
	}
	if _, err := New("bad", []string{"A"}, []string{"X", "Y"}, nil, nil); err == nil {
		t.Fatal("want error for misaligned correspondence")
	}
	visits, hospitals, _ := fixture(t)
	bad := MustNew("r", []string{"Nope"}, []string{"Name"}, nil, nil)
	if _, err := NewChecker(visits, hospitals, []*CIND{bad}); err == nil {
		t.Fatal("want error for unknown left attribute")
	}
	bad2 := MustNew("r", []string{"HospitalName"}, []string{"Nope"}, nil, nil)
	if _, err := NewChecker(visits, hospitals, []*CIND{bad2}); err == nil {
		t.Fatal("want error for unknown right attribute")
	}
	bad3 := MustNew("r", []string{"HospitalName"}, []string{"Name"}, map[string]string{"Nope": "x"}, nil)
	if _, err := NewChecker(visits, hospitals, []*CIND{bad3}); err == nil {
		t.Fatal("want error for unknown condition attribute")
	}
}

func TestStringer(t *testing.T) {
	r := MustNew("ref", []string{"A", "B"}, []string{"X", "Y"}, nil, nil)
	if got := r.String(); got != "ref: L[A,B] ⊆ R[X,Y]" {
		t.Fatalf("String = %q", got)
	}
}
