// Package cind implements Conditional Inclusion Dependencies — the first
// rule type the paper's future work names ("extending GDR to support more
// types of data quality rules other than CFDs like CINDs [4]"), following
// Bravo, Fan and Ma, "Extending dependencies with conditions", VLDB 2007.
//
// A CIND ψ : (R1[X; Xp] ⊆ R2[Y; Yp]) states that for every R1 tuple
// matching the pattern on Xp, some R2 tuple must exist with equal values on
// the correspondence X = Y and matching the pattern on Yp. Unlike CFDs —
// which constrain tuples within one relation — CINDs are referential: they
// catch dangling references (an order naming a customer that does not
// exist, a visit naming an unknown hospital).
//
// The checker indexes the referenced side and reports violating tuples of
// the referencing side; repairs are suggested from the closest existing
// referenced keys, scored with the same Eq. 7 similarity the CFD repairs
// use, so CIND suggestions can flow into a GDR session as ordinary updates.
package cind

import (
	"fmt"
	"sort"
	"strings"

	"gdr/internal/relation"
	"gdr/internal/strsim"
)

// CIND is one conditional inclusion dependency in the normal form
// R1[X; Xp] ⊆ R2[Y; Yp] with X and Y positionally aligned.
type CIND struct {
	// ID names the rule.
	ID string
	// LHS are the referencing attributes X of the left relation.
	LHS []string
	// RHS are the referenced attributes Y of the right relation,
	// positionally corresponding to LHS.
	RHS []string
	// LHSCond restricts which left tuples the rule applies to:
	// attribute → required constant. Empty means all tuples.
	LHSCond map[string]string
	// RHSCond restricts which right tuples count as valid targets.
	RHSCond map[string]string
}

// New validates and builds a CIND.
func New(id string, lhs, rhs []string, lhsCond, rhsCond map[string]string) (*CIND, error) {
	if len(lhs) == 0 || len(lhs) != len(rhs) {
		return nil, fmt.Errorf("cind %s: correspondence must be non-empty and aligned (%d vs %d)", id, len(lhs), len(rhs))
	}
	c := &CIND{
		ID:      id,
		LHS:     append([]string(nil), lhs...),
		RHS:     append([]string(nil), rhs...),
		LHSCond: map[string]string{},
		RHSCond: map[string]string{},
	}
	for k, v := range lhsCond {
		c.LHSCond[k] = v
	}
	for k, v := range rhsCond {
		c.RHSCond[k] = v
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(id string, lhs, rhs []string, lhsCond, rhsCond map[string]string) *CIND {
	c, err := New(id, lhs, rhs, lhsCond, rhsCond)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *CIND) String() string {
	return fmt.Sprintf("%s: L[%s] ⊆ R[%s]", c.ID, strings.Join(c.LHS, ","), strings.Join(c.RHS, ","))
}

// Violation is one dangling reference: left tuple Tid of rule Rule.
type Violation struct {
	Rule int // index into the checker's rule list
	Tid  int // left-relation tuple id
}

// Suggestion is a candidate repair for one attribute of a dangling
// reference: replace the left tuple's Attr with Value (an existing
// referenced key component), with the Eq. 7 similarity Score.
type Suggestion struct {
	Tid   int
	Attr  string
	Value string
	Score float64
}

type ruleState struct {
	rule    *CIND
	lhsIdx  []int
	rhsIdx  []int
	lhsCond [][2]int // attr position, value index into condVals
	// keys holds the multiset of valid referenced key combinations.
	keys map[string]int
	// condVals aligns with lhsCond.
	condVals []string
	rhsCond  [][2]int
	rhsVals  []string
}

// Checker evaluates CINDs from a left (referencing) relation into a right
// (referenced) relation. The referenced-side index is maintained
// incrementally under inserts and cell updates on either side.
type Checker struct {
	left  *relation.DB
	right *relation.DB
	rules []*CIND
	state []*ruleState
	sim   func(a, b string) float64
}

// NewChecker validates the rules against both schemas and builds the
// referenced-key indexes.
func NewChecker(left, right *relation.DB, rules []*CIND) (*Checker, error) {
	c := &Checker{left: left, right: right, rules: rules, sim: strsim.Similarity}
	for _, r := range rules {
		st := &ruleState{rule: r, keys: make(map[string]int)}
		for _, a := range r.LHS {
			i, ok := left.Schema.Index(a)
			if !ok {
				return nil, fmt.Errorf("cind %s: attribute %q not in left schema", r.ID, a)
			}
			st.lhsIdx = append(st.lhsIdx, i)
		}
		for _, a := range r.RHS {
			i, ok := right.Schema.Index(a)
			if !ok {
				return nil, fmt.Errorf("cind %s: attribute %q not in right schema", r.ID, a)
			}
			st.rhsIdx = append(st.rhsIdx, i)
		}
		// Condition attributes come out of maps; iterate them sorted so the
		// built rule state — and anything derived from it — is reproducible.
		for _, a := range sortedKeys(r.LHSCond) {
			i, ok := left.Schema.Index(a)
			if !ok {
				return nil, fmt.Errorf("cind %s: condition attribute %q not in left schema", r.ID, a)
			}
			st.lhsCond = append(st.lhsCond, [2]int{i, len(st.condVals)})
			st.condVals = append(st.condVals, r.LHSCond[a])
		}
		for _, a := range sortedKeys(r.RHSCond) {
			i, ok := right.Schema.Index(a)
			if !ok {
				return nil, fmt.Errorf("cind %s: condition attribute %q not in right schema", r.ID, a)
			}
			st.rhsCond = append(st.rhsCond, [2]int{i, len(st.rhsVals)})
			st.rhsVals = append(st.rhsVals, r.RHSCond[a])
		}
		c.state = append(c.state, st)
	}
	c.Rebuild()
	return c, nil
}

// Rebuild recomputes the referenced-key indexes from scratch.
func (c *Checker) Rebuild() {
	for _, st := range c.state {
		st.keys = make(map[string]int)
		for tid := 0; tid < c.right.N(); tid++ {
			if !c.rightMatches(st, tid) {
				continue
			}
			st.keys[keyOf(c.right, tid, st.rhsIdx)]++
		}
	}
}

func (c *Checker) rightMatches(st *ruleState, tid int) bool {
	for _, cond := range st.rhsCond {
		if c.right.GetAt(tid, cond[0]) != st.rhsVals[cond[1]] {
			return false
		}
	}
	return true
}

func (c *Checker) leftMatches(st *ruleState, tid int) bool {
	for _, cond := range st.lhsCond {
		if c.left.GetAt(tid, cond[0]) != st.condVals[cond[1]] {
			return false
		}
	}
	return true
}

// keyOf joins the tuple's values at idx into an index key, reading cells in
// place rather than materializing the whole tuple.
func keyOf(db *relation.DB, tid int, idx []int) string {
	parts := make([]string, len(idx))
	for i, ai := range idx {
		parts[i] = db.GetAt(tid, ai)
	}
	return strings.Join(parts, "\x1f")
}

// Violates reports whether left tuple tid violates rule ri.
func (c *Checker) Violates(ri, tid int) bool {
	st := c.state[ri]
	if !c.leftMatches(st, tid) {
		return false
	}
	return st.keys[keyOf(c.left, tid, st.lhsIdx)] == 0
}

// Violations returns all dangling references across all rules, in
// deterministic order.
func (c *Checker) Violations() []Violation {
	var out []Violation
	for ri := range c.state {
		for tid := 0; tid < c.left.N(); tid++ {
			if c.Violates(ri, tid) {
				out = append(out, Violation{Rule: ri, Tid: tid})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Suggest proposes repairs for a dangling reference: the existing referenced
// keys closest to the tuple's current key, expressed as per-attribute value
// changes with Eq. 7 scores. At most maxTargets candidate keys are returned
// (most similar first).
func (c *Checker) Suggest(v Violation, maxTargets int) []Suggestion {
	st := c.state[v.Rule]
	if maxTargets <= 0 {
		maxTargets = 3
	}
	cur := make([]string, len(st.lhsIdx))
	for i, ai := range st.lhsIdx {
		cur[i] = c.left.GetAt(v.Tid, ai)
	}
	type scored struct {
		key   string
		score float64
	}
	var cands []scored
	for key := range st.keys {
		parts := strings.Split(key, "\x1f")
		total := 0.0
		for i := range parts {
			total += c.sim(cur[i], parts[i])
		}
		cands = append(cands, scored{key: key, score: total / float64(len(parts))})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].key < cands[j].key
	})
	if len(cands) > maxTargets {
		cands = cands[:maxTargets]
	}
	var out []Suggestion
	for _, cand := range cands {
		parts := strings.Split(cand.key, "\x1f")
		for i, p := range parts {
			if p == cur[i] {
				continue
			}
			out = append(out, Suggestion{
				Tid:   v.Tid,
				Attr:  st.rule.LHS[i],
				Value: p,
				Score: c.sim(cur[i], p),
			})
		}
	}
	return out
}

// RightInserted updates the indexes after a tuple was appended to the
// referenced relation.
func (c *Checker) RightInserted(tid int) {
	for _, st := range c.state {
		if c.rightMatches(st, tid) {
			st.keys[keyOf(c.right, tid, st.rhsIdx)]++
		}
	}
}

// RightUpdated updates the indexes after cell (tid, attr) of the referenced
// relation changed from old to the current value.
func (c *Checker) RightUpdated(tid int, attr, old string) {
	ai, ok := c.right.Schema.Index(attr)
	if !ok {
		return
	}
	for _, st := range c.state {
		// Reconstruct the tuple's previous contribution.
		was := func(k int) string {
			if k == ai {
				return old
			}
			return c.right.GetAt(tid, k)
		}
		matchedBefore := true
		for _, cond := range st.rhsCond {
			if was(cond[0]) != st.rhsVals[cond[1]] {
				matchedBefore = false
				break
			}
		}
		if matchedBefore {
			parts := make([]string, len(st.rhsIdx))
			for i, k := range st.rhsIdx {
				parts[i] = was(k)
			}
			key := strings.Join(parts, "\x1f")
			if n := st.keys[key]; n <= 1 {
				delete(st.keys, key)
			} else {
				st.keys[key] = n - 1
			}
		}
		if c.rightMatches(st, tid) {
			st.keys[keyOf(c.right, tid, st.rhsIdx)]++
		}
	}
}

// Rules returns the checker's rule list.
func (c *Checker) Rules() []*CIND { return c.rules }

// sortedKeys returns m's keys in sorted order, for deterministic iteration.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
