package core

import (
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// ApplyFeedback is the updates consistency manager of Appendix A.5: it
// applies one decision — from the user or the learner — to the database and
// restores the two invariants:
//
//	(i)  every tuple violating a rule is in DirtyTuples (maintained by the
//	     violation engine), and
//	(ii) no pending update depends on data values that have been modified
//	     (stale suggestions for affected tuples are dropped and regenerated).
//
// A retain locks the cell (Changeable = false). A reject adds the value to
// the cell's prevented list and immediately searches for a replacement
// suggestion. A confirm applies the value, locks the cell, revisits every
// tuple whose violation status changed, and then applies any forced
// constant-rule fixes (step 3(a)i): when all LHS cells of a violated
// constant CFD are confirmed correct, its RHS pattern value is the only
// consistent repair and is applied without consulting anyone.
func (s *Session) ApplyFeedback(u repair.Update, fb repair.Feedback) {
	cell := u.Cell()
	switch fb {
	case repair.Retain:
		s.gen.Lock(u.Tid, u.Attr)
		s.index.Delete(cell)
		// Retaining a value also confirms it, which can complete a violated
		// constant rule's LHS and force its RHS (step 3(a)i applies here too).
		s.forcedFixes(u.Tid)
	case repair.Reject:
		s.gen.Prevent(u.Tid, u.Attr, u.Value)
		s.index.Delete(cell)
		if nu, ok := s.gen.Suggest(u.Tid, u.Attr); ok {
			s.index.Set(nu)
		}
	case repair.Confirm:
		s.gen.Lock(u.Tid, u.Attr)
		s.index.Delete(cell)
		affected := s.gen.Apply(u.Tid, u.Attr, u.Value)
		s.Applied++
		s.revisit(affected)
		s.forcedFixes(u.Tid)
	}
}

// Insert adds a newly entered tuple to the session — the online monitoring
// mode the paper sketches in Section 3: the consistency manager is informed
// of the new tuple, revisits every affected tuple, and immediately derives
// suggestions for emerging violations. It returns the new tuple's id.
func (s *Session) Insert(t relation.Tuple) (int, error) {
	tid, affected, err := s.gen.Insert(t)
	if err != nil {
		return 0, err
	}
	s.tupleVer = append(s.tupleVer, 0)
	s.revisit(affected)
	return tid, nil
}

// LearnerDecision applies a model-made decision. Only confirms act: the
// learner's purpose is to "identify and apply the correct updates directly"
// (Section 1), and a confirm is applied exactly like a user confirm. Reject
// and retain predictions are advisory — the user's irreversible bookkeeping
// (prevented values, changeable flags) is reserved for actual user feedback,
// since a wrong learner reject would ban the true value forever and a wrong
// retain would freeze a wrong cell; the suggestion simply stays pending for
// a later user pass. It reports whether the decision changed anything.
func (s *Session) LearnerDecision(u repair.Update, fb repair.Feedback) bool {
	if fb != repair.Confirm {
		return false
	}
	s.ApplyFeedback(u, repair.Confirm)
	return true
}

// revisit re-derives the pending updates of every affected tuple against the
// new database instance: stale suggestions are dropped; tuples that are
// still (or newly) dirty get fresh suggestions. Suggestion generation only
// reads the instance, so after the serial invalidation pass the still-dirty
// tuples are regenerated as one SuggestBatch — fanned out over the session's
// workers for large cascades — and merged back into possible in tuple order,
// which is byte-identical to the serial per-tuple loop at any worker count.
func (s *Session) revisit(tids []int) {
	dirty := make([]int, 0, len(tids))
	for _, tid := range tids {
		s.tupleVer[tid]++
		for _, attr := range s.db.Schema.Attrs {
			s.index.Delete(repair.CellKey{Tid: tid, Attr: attr})
		}
		if s.eng.IsDirty(tid) {
			dirty = append(dirty, tid)
		}
	}
	done := s.phase(PhaseSuggest)
	batch := s.gen.SuggestBatch(dirty)
	if done != nil {
		done()
	}
	for _, nu := range batch {
		s.index.Set(nu)
	}
}

// forcedFixes applies step 3(a)i of the consistency manager to a tuple,
// cascading while new forced repairs keep appearing (each application locks
// a cell, so the cascade terminates).
func (s *Session) forcedFixes(tid int) {
	for {
		fixed := false
		for _, ri := range s.eng.VioRuleList(tid) {
			rule := s.eng.Rules()[ri]
			if !rule.Constant() {
				continue
			}
			if s.gen.Locked(tid, rule.RHS) {
				continue // contradictory confirmations; leave to the user
			}
			allLocked := true
			for _, a := range rule.LHS {
				if !s.gen.Locked(tid, a) {
					allLocked = false
					break
				}
			}
			if !allLocked {
				continue
			}
			want := rule.TP[rule.RHS]
			s.gen.Lock(tid, rule.RHS)
			s.index.Delete(repair.CellKey{Tid: tid, Attr: rule.RHS})
			affected := s.gen.Apply(tid, rule.RHS, want)
			s.Applied++
			s.ForcedFixes++
			s.revisit(affected)
			fixed = true
			break
		}
		if !fixed {
			return
		}
	}
}
