package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gdr/internal/cfd"
	"gdr/internal/group"
	"gdr/internal/metrics"
	"gdr/internal/oracle"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// Strategy names the repair-driving policies evaluated in Section 5.
type Strategy string

// The strategies of Figures 3 and 4.
const (
	// StrategyGDR is the full framework: VOI-ranked groups, active-learning
	// ordering inside groups, learner takes over after di verifications.
	StrategyGDR Strategy = "GDR"
	// StrategyGDRNoLearning ranks groups by VOI and has the user verify
	// every update (Section 5.1's GDR-NoLearning).
	StrategyGDRNoLearning Strategy = "GDR-NoLearning"
	// StrategyGDRSLearning keeps VOI ranking and the learner, but labels a
	// random selection inside each group (passive learning).
	StrategyGDRSLearning Strategy = "GDR-S-Learning"
	// StrategyActiveLearning drops grouping and VOI entirely: one global
	// pool ordered by learner uncertainty.
	StrategyActiveLearning Strategy = "Active-Learning"
	// StrategyGreedy ranks groups by size, user verifies everything.
	StrategyGreedy Strategy = "Greedy"
	// StrategyRandom orders groups randomly, user verifies everything.
	StrategyRandom Strategy = "Random"
	// StrategyHeuristic is the automatic BatchRepair of Cong et al. [7]: no
	// user at all, highest-scored update applied repeatedly.
	StrategyHeuristic Strategy = "Heuristic"
)

// RunConfig parameterizes one strategy run.
type RunConfig struct {
	// Session configures the underlying GDR session.
	Session Config
	// Budget caps the number of user feedbacks; 0 means unlimited (run to
	// convergence). The learner never consumes budget.
	Budget int
	// RecordEvery samples an improvement point every k-th feedback
	// (default 1).
	RecordEvery int
	// Seed drives the Random strategy's shuffles and random in-group
	// selections.
	Seed int64
}

func (rc RunConfig) withDefaults() RunConfig {
	if rc.RecordEvery <= 0 {
		rc.RecordEvery = 1
	}
	return rc
}

// Point is one sample of the quality trajectory: improvement after the
// Verified-th user feedback.
type Point struct {
	Verified    int
	Improvement float64
}

// Result summarizes one run.
type Result struct {
	Strategy         Strategy
	Points           []Point
	Verified         int // user feedbacks consumed
	LearnerDecisions int // updates decided by the models
	Applied          int // cell changes written
	ForcedFixes      int
	InitialDirty     int
	FinalImprovement float64
	Precision        float64
	Recall           float64
}

// runner bundles the per-run state shared by all strategies.
type runner struct {
	sess *Session
	orc  *oracle.Oracle
	qual *metrics.Quality
	acc  *metrics.Accuracy
	res  *Result
	rc   RunConfig
	rng  *rand.Rand
}

// Run executes one strategy on a copy of the dirty instance, simulating the
// user with a ground-truth oracle, and returns the quality trajectory.
func Run(st Strategy, dirty, truth *relation.DB, rules []*cfd.CFD, rc RunConfig) (*Result, error) {
	if dirty == nil {
		return nil, fmt.Errorf("core: nil dirty instance")
	}
	if truth == nil {
		return nil, fmt.Errorf("core: nil ground-truth instance")
	}
	rc = rc.withDefaults()
	db := dirty.Clone()
	sess, err := NewSession(db, rules, rc.Session)
	if err != nil {
		return nil, err
	}
	orc := oracle.New(truth)
	if err := orc.Validate(db); err != nil {
		return nil, err
	}
	qual, err := metrics.NewQuality(truth, sess.Engine(), nil)
	if err != nil {
		return nil, err
	}
	acc, err := metrics.NewAccuracy(dirty, truth)
	if err != nil {
		return nil, err
	}
	r := &runner{
		sess: sess, orc: orc, qual: qual, acc: acc,
		res: &Result{Strategy: st, InitialDirty: sess.InitialDirtyCount()},
		rc:  rc, rng: rand.New(rand.NewSource(rc.Seed)),
	}
	r.record() // the zero point

	switch st {
	case StrategyGDRNoLearning:
		r.runRanked(OrderVOI)
	case StrategyGreedy:
		r.runRanked(OrderGreedy)
	case StrategyRandom:
		r.runRanked(OrderRandom)
	case StrategyGDR:
		r.runGDR(false)
	case StrategyGDRSLearning:
		r.runGDR(true)
	case StrategyActiveLearning:
		r.runActiveLearning()
	case StrategyHeuristic:
		r.runHeuristic()
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", st)
	}

	r.res.Verified = r.orc.Asked
	r.res.Applied = sess.Applied
	r.res.ForcedFixes = sess.ForcedFixes
	r.res.FinalImprovement = qual.Improvement(sess.Engine())
	r.res.Precision, r.res.Recall = acc.PrecisionRecall(sess.DB())
	r.res.Points = append(r.res.Points, Point{Verified: r.orc.Asked, Improvement: r.res.FinalImprovement})
	return r.res, nil
}

func (r *runner) budgetLeft() bool {
	return r.rc.Budget <= 0 || r.orc.Asked < r.rc.Budget
}

func (r *runner) record() {
	r.res.Points = append(r.res.Points, Point{
		Verified:    r.orc.Asked,
		Improvement: r.qual.Improvement(r.sess.Engine()),
	})
}

// verify asks the simulated user about one update, optionally feeds the
// answer to the learner, applies it, and samples the trajectory.
func (r *runner) verify(u repair.Update, teach bool) {
	fb := r.orc.Feedback(r.sess.DB(), u)
	if teach {
		r.sess.UserFeedback(u, fb)
	} else {
		r.sess.ApplyFeedback(u, fb)
	}
	if r.orc.Asked%r.rc.RecordEvery == 0 {
		r.record()
	}
}

// runRanked drives the learning-free strategies of Figure 3: rank groups
// (VOI / size / random), let the user verify every update in the top group,
// repeat.
func (r *runner) runRanked(order Order) {
	for r.budgetLeft() && r.sess.PendingCount() > 0 {
		gs := r.sess.Groups(order, r.rng)
		if len(gs) == 0 {
			return
		}
		c := gs[0]
		for _, u := range c.Updates {
			if !r.budgetLeft() {
				return
			}
			if cur, ok := r.sess.Pending(u.Cell()); !ok || cur != u {
				continue // invalidated by an earlier feedback in this group
			}
			r.verify(u, false)
		}
	}
}

// runGDR drives the full framework (and, with randomSelection, the
// GDR-S-Learning variant): VOI-ranked groups; inside the chosen group the
// user labels di updates — ordered by committee uncertainty (active) or
// picked at random (passive) — then the learner decides the rest.
func (r *runner) runGDR(randomSelection bool) {
	gmax := 0.0
	for r.budgetLeft() && r.sess.PendingCount() > 0 {
		gs := r.sess.Groups(OrderVOI, nil)
		if len(gs) == 0 {
			return
		}
		c := gs[0]
		if c.Benefit > gmax {
			gmax = c.Benefit
		}
		// The paper sizes the per-group verification quota inversely to the
		// group's benefit: di = E × (1 − g(ci)/gmax). Taken literally, any
		// benefit ratio below ≈1 makes di exceed every group size for
		// realistic E, degenerating GDR into verify-everything; we keep the
		// inverse proportionality but scale by the group's own size, clamped
		// to [MinVerify, |ci|] (see DESIGN.md).
		di := r.sess.cfg.MinVerify
		if gmax > 0 {
			want := int(math.Ceil(float64(c.Size()) * (1 - c.Benefit/gmax)))
			if want > di {
				di = want
			}
		}
		if di > c.Size() {
			di = c.Size()
		}

		progressed := r.interactiveGroupSession(c.Key, di, randomSelection)
		progressed = r.learnerDecideGroup(c.Key) || progressed
		if !progressed {
			// Neither the user (stale group / exhausted) nor the learner
			// (not ready) could act: fall back to verifying the single top
			// update so the loop always advances.
			if live := r.sess.GroupUpdates(c.Key); len(live) > 0 && r.budgetLeft() {
				r.verify(live[0], true)
			} else {
				return
			}
		}
	}
	r.learnerFinish()
}

// interactiveGroupSession is the interactive active-learning session of
// Section 4.2: the user labels up to di updates of the group in batches of
// ns, with the (re-trained) committee reordering the remainder after each
// batch. It reports whether any feedback was collected.
func (r *runner) interactiveGroupSession(k group.Key, di int, randomSelection bool) bool {
	labeled := 0
	for labeled < di && r.budgetLeft() {
		live := r.sess.GroupUpdates(k)
		if len(live) == 0 {
			break
		}
		if randomSelection {
			r.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		} else {
			r.sortByUncertainty(live)
		}
		batch := r.sess.cfg.BatchSize
		if rem := di - labeled; batch > rem {
			batch = rem
		}
		if batch > len(live) {
			batch = len(live)
		}
		for _, u := range live[:batch] {
			if !r.budgetLeft() {
				break
			}
			if cur, ok := r.sess.Pending(u.Cell()); !ok || cur != u {
				continue
			}
			r.verify(u, true)
			labeled++
		}
	}
	return labeled > 0
}

// sortByUncertainty orders updates by decreasing committee disagreement;
// before a model is ready every update is maximally uncertain and the update
// score breaks ties (most-certain-of-the-repair-algorithm first).
func (r *runner) sortByUncertainty(live []repair.Update) {
	unc := make([]float64, len(live))
	for i, u := range live {
		unc[i] = r.sess.Uncertainty(u)
	}
	sort.SliceStable(live, func(i, j int) bool {
		if unc[i] != unc[j] {
			return unc[i] > unc[j]
		}
		if live[i].Score != live[j].Score {
			return live[i].Score > live[j].Score
		}
		return live[i].Tid < live[j].Tid
	})
}

// learnerDecideGroup lets the trained models decide every remaining update
// of the group (no budget consumed). Only confident committees act — the
// paper's user delegates only when satisfied with the predictions. It
// reports whether anything happened.
func (r *runner) learnerDecideGroup(k group.Key) bool {
	applied := r.sess.LearnerSweepGroup(k)
	r.res.LearnerDecisions += len(applied)
	return len(applied) > 0
}

// learnerFinish applies the models to everything still pending once the
// feedback budget is exhausted (how Figures 4 and 5 evaluate a budget F).
// Rejected suggestions regenerate, so a few passes are allowed.
func (r *runner) learnerFinish() {
	r.res.LearnerDecisions += len(r.sess.LearnerSweep(4))
}

// runActiveLearning is the no-grouping baseline: a single pool ordered by
// committee uncertainty; the user labels batches until the budget runs out,
// then the model decides the rest.
func (r *runner) runActiveLearning() {
	for r.budgetLeft() && r.sess.PendingCount() > 0 {
		live := r.sess.PendingUpdates()
		r.sortByUncertainty(live)
		batch := r.sess.cfg.BatchSize
		if batch > len(live) {
			batch = len(live)
		}
		any := false
		for _, u := range live[:batch] {
			if !r.budgetLeft() {
				break
			}
			if cur, ok := r.sess.Pending(u.Cell()); !ok || cur != u {
				continue
			}
			r.verify(u, true)
			any = true
		}
		if !any {
			break
		}
	}
	r.learnerFinish()
}

// runHeuristic is the automatic BatchRepair baseline [7]: one batch pass
// over the initially detected violations, applying for each the
// highest-scored suggestion, never asking the user. Like Cong et al.'s
// algorithm it resolves each detected violation once; violations that
// emerge from its own repairs are left for the next (hypothetical) batch,
// so its quality line is constant and below a guided process.
func (r *runner) runHeuristic() {
	initial := r.sess.PendingUpdates()
	sort.SliceStable(initial, func(i, j int) bool { return initial[i].Score > initial[j].Score })
	for _, u := range initial {
		if cur, ok := r.sess.Pending(u.Cell()); !ok || cur != u {
			continue // consumed by a cascading repair of an earlier update
		}
		r.sess.ApplyFeedback(u, repair.Confirm)
	}
	r.record()
}
