package core

import (
	"sort"
)

// Rule ranking is the extension the authors describe in their DBRank
// workshop paper (reference [21]): generating suggestions for *all* dirty
// tuples up front is expensive, so rules are ranked and each interactive
// session processes only the dirty tuples of the most valuable rules.
//
// A rule's value is its weighted violation mass wi · vio(D,{φi}) — the same
// ingredients as the Eq. 6 benefit, aggregated per rule instead of per
// update group.

// RankedRules returns the engine indexes of all rules ordered by descending
// weighted violation mass; rules without violations come last.
func (s *Session) RankedRules() []int {
	ris := make([]int, len(s.eng.Rules()))
	mass := make([]float64, len(ris))
	for i := range ris {
		ris[i] = i
		mass[i] = s.ranker.Weight(i) * float64(s.eng.Vio(i))
	}
	sort.SliceStable(ris, func(a, b int) bool {
		if mass[ris[a]] != mass[ris[b]] {
			return mass[ris[a]] > mass[ris[b]]
		}
		return s.eng.Rules()[ris[a]].ID < s.eng.Rules()[ris[b]].ID
	})
	return ris
}

// DirtyTuplesOf returns the dirty tuples violating at least one of the given
// rules (engine indexes), in ascending id order.
func (s *Session) DirtyTuplesOf(ris []int) []int {
	var out []int
	for _, tid := range s.eng.Dirty() {
		for _, ri := range ris {
			if s.eng.Violates(ri, tid) {
				out = append(out, tid)
				break
			}
		}
	}
	return out
}

// FocusTopRules trims the pending-update list to the dirty tuples of the n
// highest-ranked rules and returns the retained rule indexes. Suggestions
// for other tuples are regenerated on demand as the consistency manager
// revisits them, so nothing is lost — only deferred. n ≤ 0 is a no-op that
// returns the full ranking.
func (s *Session) FocusTopRules(n int) []int {
	ranked := s.RankedRules()
	if n <= 0 || n >= len(ranked) {
		return ranked
	}
	top := ranked[:n]
	keep := make(map[int]bool)
	for _, tid := range s.DirtyTuplesOf(top) {
		keep[tid] = true
	}
	for _, u := range s.index.AppendAll(nil) {
		if !keep[u.Tid] {
			s.index.Delete(u.Cell())
		}
	}
	return top
}

// RefocusAll regenerates suggestions for every dirty tuple, undoing a
// previous FocusTopRules (e.g. when the focused rules' updates are
// exhausted and the session widens its scope). Existing pending suggestions
// are kept.
func (s *Session) RefocusAll() {
	for _, tid := range s.eng.Dirty() {
		for _, nu := range s.gen.SuggestTuple(tid) {
			if _, ok := s.index.Get(nu.Cell()); !ok {
				s.index.Set(nu)
			}
		}
	}
}
