package core

import (
	"fmt"
	"sort"

	"gdr/internal/cfd"
	"gdr/internal/group"
	"gdr/internal/learn"
	"gdr/internal/relation"
	"gdr/internal/repair"
	"gdr/internal/voi"
)

// SessionState is the complete serializable state of a Session: everything
// needed to rebuild one that behaves byte-identically from the snapshot
// point on. It stores the dictionary-encoded instance (dictionaries id-for-
// id plus VID rows — never re-parsed CSV, so interned-but-unused values such
// as rejected candidates keep their ids), the rules, the feedback
// bookkeeping, the learner state and the deterministic-randomness cursors.
//
// Deliberately absent: the violation engine's indexes, the co-occurrence
// indexes, the similarity memo, the VOI benefit cache and the prediction
// cache — all are pure functions of the instance and are rebuilt (eagerly
// or lazily) by RestoreSession. The VOI rule weights are NOT such a cache:
// the paper fixes wi = |D(φi)|/|D| on the instance at session start, and
// the instance has mutated since, so they are carried explicitly.
type SessionState struct {
	// Config is the session's effective configuration (defaults applied).
	Config Config

	// Relation and Attrs describe the schema; Dicts holds each attribute's
	// interned values in id order; Rows the VID-encoded tuples; Weights the
	// per-tuple business-importance weights.
	Relation string
	Attrs    []string
	Dicts    [][]string
	Rows     [][]relation.VID
	Weights  []float64

	// Rules is the rule set in engine index order.
	Rules []*cfd.CFD
	// RuleWeights are the VOI weights wi, frozen at original session start.
	RuleWeights []float64

	// Possible is the live PossibleUpdates list, sorted by (tid, attr).
	Possible []repair.Update
	// Locked and Prevented are the consistency manager's per-cell
	// bookkeeping (Changeable flags and prevented lists).
	Locked    []repair.LockedCell
	Prevented []repair.PreventedCell

	// InitialDirty is E, the dirty-tuple count at original session start;
	// Applied and ForcedFixes are the repair activity counters.
	InitialDirty int
	Applied      int
	ForcedFixes  int

	// Shuffles is the count of Groups(OrderRandom, nil) fallback shuffles
	// consumed so far; each shuffle's RNG is derived from (Config.Seed,
	// index), so the counter is the whole randomness state.
	Shuffles uint64

	// Models holds one entry per attribute learner, sorted by attribute;
	// Hits the sliding prequential-accuracy windows, sorted by attribute.
	Models []AttrModelState
	Hits   []AttrHitWindow
}

// AttrModelState pairs an attribute with its learner's state.
type AttrModelState struct {
	Attr  string
	State learn.ModelState
}

// AttrHitWindow pairs an attribute with its recent prediction-hit window.
type AttrHitWindow struct {
	Attr   string
	Window []bool
}

// ExportState snapshots the session. The returned state shares no mutable
// storage with the session (rows, windows and bookkeeping are copied), so
// it remains stable while the session keeps repairing. It must be called
// from the goroutine that owns the session, like every other method.
func (s *Session) ExportState() *SessionState {
	st := &SessionState{
		Config:       s.cfg,
		Relation:     s.db.Schema.Relation,
		Attrs:        append([]string(nil), s.db.Schema.Attrs...),
		Dicts:        make([][]string, s.db.Schema.Arity()),
		Rows:         make([][]relation.VID, s.db.N()),
		Weights:      make([]float64, s.db.N()),
		Rules:        append([]*cfd.CFD(nil), s.eng.Rules()...),
		RuleWeights:  make([]float64, len(s.eng.Rules())),
		Possible:     s.PendingUpdates(),
		InitialDirty: s.initialDirty,
		Applied:      s.Applied,
		ForcedFixes:  s.ForcedFixes,
		Shuffles:     s.shuffles,
	}
	for ai := 0; ai < s.db.Schema.Arity(); ai++ {
		st.Dicts[ai] = s.db.Dict(ai).Vals()
	}
	for tid := 0; tid < s.db.N(); tid++ {
		st.Rows[tid] = append([]relation.VID(nil), s.db.Row(tid)...)
		st.Weights[tid] = s.db.Weight(tid)
	}
	for ri := range st.RuleWeights {
		st.RuleWeights[ri] = s.ranker.Weight(ri)
	}
	st.Locked, st.Prevented = s.gen.CellState()
	attrs := make([]string, 0, len(s.models))
	for attr := range s.models {
		attrs = append(attrs, attr)
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		st.Models = append(st.Models, AttrModelState{Attr: attr, State: s.models[attr].State()})
	}
	attrs = attrs[:0]
	for attr := range s.hits {
		attrs = append(attrs, attr)
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		st.Hits = append(st.Hits, AttrHitWindow{Attr: attr, Window: append([]bool(nil), s.hits[attr]...)})
	}
	return st
}

// RestoreSession rebuilds a session from a snapshot. The restored session
// produces byte-identical suggestions, rankings, learner decisions and
// exports from the snapshot point on: the instance is rebuilt id-for-id,
// the violation engine and every cache are re-derived from it, trained
// committees regrow from their recorded seeds, and the fallback shuffle
// stream is replayed to its recorded position. All cross-references (cell
// ids, VIDs, rule-weight count, model attributes) are validated so a
// corrupt or hand-edited snapshot fails with an error, never a panic.
func RestoreSession(st *SessionState) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil session state")
	}
	if st.Relation == "" && len(st.Attrs) == 0 {
		return nil, fmt.Errorf("core: empty session state")
	}
	cfg := st.Config.withDefaults()
	schema, err := relation.NewSchema(st.Relation, st.Attrs)
	if err != nil {
		return nil, err
	}
	if len(st.Dicts) != schema.Arity() {
		return nil, fmt.Errorf("core: %d dictionaries for arity %d", len(st.Dicts), schema.Arity())
	}
	dicts := make([]*relation.Dict, schema.Arity())
	for ai := range dicts {
		if dicts[ai], err = relation.RestoreDict(st.Dicts[ai]); err != nil {
			return nil, err
		}
	}
	db, err := relation.RestoreDB(schema, dicts, st.Rows, st.Weights)
	if err != nil {
		return nil, err
	}
	for i, r := range st.Rules {
		if r == nil {
			return nil, fmt.Errorf("core: nil rule at index %d", i)
		}
	}
	eng, err := cfd.NewEngine(db, st.Rules)
	if err != nil {
		return nil, err
	}
	if len(st.RuleWeights) != len(st.Rules) {
		return nil, fmt.Errorf("core: %d rule weights for %d rules", len(st.RuleWeights), len(st.Rules))
	}
	gen := repair.NewGenerator(eng, repair.WithWorkers(cfg.Workers))
	if err := gen.RestoreCellState(st.Locked, st.Prevented); err != nil {
		return nil, err
	}
	if st.InitialDirty < 0 || st.Applied < 0 || st.ForcedFixes < 0 {
		return nil, fmt.Errorf("core: negative session counters")
	}
	s := &Session{
		cfg:          cfg,
		db:           db,
		eng:          eng,
		gen:          gen,
		ranker:       voi.NewRanker(eng, voi.WithWeights(st.RuleWeights)),
		index:        group.NewIndex(),
		attrSigs:     make([]attrSig, db.Schema.Arity()),
		staleBuf:     make([]bool, db.Schema.Arity()),
		models:       make(map[string]*learn.Model, len(st.Models)),
		hits:         make(map[string][]bool, len(st.Hits)),
		predCache:    make(map[predKey]predVal),
		tupleVer:     make([]uint32, db.N()),
		initialDirty: st.InitialDirty,
		Applied:      st.Applied,
		ForcedFixes:  st.ForcedFixes,
	}
	for _, u := range st.Possible {
		if u.Tid < 0 || u.Tid >= db.N() {
			return nil, fmt.Errorf("core: pending update for tuple %d outside instance of %d", u.Tid, db.N())
		}
		if _, ok := schema.Index(u.Attr); !ok {
			return nil, fmt.Errorf("core: pending update for unknown attribute %q", u.Attr)
		}
		s.index.Set(u)
	}
	for _, ms := range st.Models {
		if _, ok := schema.Index(ms.Attr); !ok {
			return nil, fmt.Errorf("core: model for unknown attribute %q", ms.Attr)
		}
		if _, dup := s.models[ms.Attr]; dup {
			return nil, fmt.Errorf("core: duplicate model for attribute %q", ms.Attr)
		}
		mst := ms.State
		// The feature vector of Session.Features is the tuple's values plus
		// the suggested value; an example with any other arity would make
		// Forest.Predict panic at the first post-restore prediction.
		if len(mst.Examples) > 0 && len(mst.Examples[0].Cats) != schema.Arity()+1 {
			return nil, fmt.Errorf("core: model %q: example arity %d, want %d",
				ms.Attr, len(mst.Examples[0].Cats), schema.Arity()+1)
		}
		if cfg.Forest.Workers == 0 {
			// Mirror Session.model: a model whose fan-out was derived from
			// the session's Workers follows the restored session's setting
			// (worker count never changes the trained forest).
			mst.Cfg.Workers = cfg.Workers
		}
		m, err := learn.RestoreModel(mst)
		if err != nil {
			return nil, fmt.Errorf("core: model %q: %w", ms.Attr, err)
		}
		s.models[ms.Attr] = m
	}
	for _, hw := range st.Hits {
		if _, ok := schema.Index(hw.Attr); !ok {
			return nil, fmt.Errorf("core: hit window for unknown attribute %q", hw.Attr)
		}
		s.hits[hw.Attr] = append([]bool(nil), hw.Window...)
	}
	s.shuffles = st.Shuffles
	return s, nil
}
