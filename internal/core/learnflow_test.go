package core

import (
	"testing"

	"gdr/internal/dataset"
	"gdr/internal/learn"
	"gdr/internal/repair"
)

func TestModelAccuracyTracking(t *testing.T) {
	s := figure1Session(t)
	u := repair.Update{Tid: 1, Attr: "CT", Value: "Michigan City", Score: 0.5}

	// No assessed predictions yet: not trusted, no accuracy.
	if _, ok := s.ModelAccuracy("CT"); ok {
		t.Fatal("accuracy reported without assessed predictions")
	}
	if s.Trusted("CT") {
		t.Fatal("untrained model trusted")
	}

	// Feed consistent confirms; after minTrain the model predicts, and the
	// subsequent feedback matches its prediction, building a track record.
	for i := 0; i < 15; i++ {
		s.UserFeedback(u, repair.Confirm) // idempotent apply; still learns
	}
	acc, ok := s.ModelAccuracy("CT")
	if !ok {
		t.Fatal("accuracy should be available after 15 checked predictions")
	}
	if acc < 0.9 {
		t.Fatalf("accuracy on a constant pattern = %v", acc)
	}
	if !s.Trusted("CT") {
		t.Fatal("model with perfect track record not trusted")
	}
}

func TestLearnerDecisionSemantics(t *testing.T) {
	s := figure1Session(t)
	u, ok := s.Pending(repair.CellKey{Tid: 2, Attr: "CT"})
	if !ok {
		t.Fatal("no pending update for t2.CT")
	}
	// Non-confirm decisions are advisory: nothing changes.
	if s.LearnerDecision(u, repair.Reject) {
		t.Fatal("reject decision should not act")
	}
	if s.Generator().IsPrevented(2, "CT", u.Value) {
		t.Fatal("learner reject must not prevent the value")
	}
	if s.LearnerDecision(u, repair.Retain) {
		t.Fatal("retain decision should not act")
	}
	if s.Generator().Locked(2, "CT") {
		t.Fatal("learner retain must not lock the cell")
	}
	if _, still := s.Pending(u.Cell()); !still {
		t.Fatal("advisory decisions must leave the suggestion pending")
	}
	// Confirm applies like a user confirm.
	if !s.LearnerDecision(u, repair.Confirm) {
		t.Fatal("confirm decision should act")
	}
	if got := s.DB().Get(2, "CT"); got != u.Value {
		t.Fatalf("value not applied: %q", got)
	}
	if !s.Generator().Locked(2, "CT") {
		t.Fatal("learner confirm locks the cell")
	}
}

func TestPredictCacheConsistency(t *testing.T) {
	s := figure1Session(t)
	u := repair.Update{Tid: 3, Attr: "CT", Value: "Michigan City", Score: 0.5}
	// Train enough to predict.
	for _, tid := range []int{1, 2} {
		s.LearnFrom(repair.Update{Tid: tid, Attr: "CT", Value: "Michigan City", Score: 0.5}, repair.Confirm)
	}
	s.LearnFrom(repair.Update{Tid: 6, Attr: "CT", Value: "New Haven", Score: 0.5}, repair.Confirm)

	l1, v1, ok1 := s.Predict(u)
	l2, v2, ok2 := s.Predict(u) // cached path
	if l1 != l2 || v1 != v2 || ok1 != ok2 {
		t.Fatalf("cached prediction differs: %v/%v vs %v/%v", l1, v1, l2, v2)
	}
	// New training data invalidates the cache (same call may now differ, but
	// must at least be recomputed without error and stay in range).
	s.LearnFrom(repair.Update{Tid: 3, Attr: "CT", Value: "Michigan City", Score: 0.5}, repair.Reject)
	l3, v3, ok3 := s.Predict(u)
	if !ok3 || l3 < 0 || l3 >= learn.NumLabels {
		t.Fatalf("post-invalidation prediction: %v %v %v", l3, v3, ok3)
	}
	// Changing the tuple (via a confirm on another attribute) also
	// invalidates: the features include the whole tuple.
	s.ApplyFeedback(repair.Update{Tid: 3, Attr: "STT", Value: "IN", Score: 1}, repair.Retain)
	s.ApplyFeedback(repair.Update{Tid: 3, Attr: "SRC", Value: "H9", Score: 1}, repair.Confirm)
	if _, _, ok := s.Predict(u); !ok {
		t.Fatal("prediction should still work after tuple change")
	}
}

func TestGDRSLearningDiffersFromGDR(t *testing.T) {
	d := dataset.Hospital(dataset.Config{N: 900, Seed: 5})
	gdrRes, err := Run(StrategyGDR, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: 120, Seed: 4, RecordEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	sRes, err := Run(StrategyGDRSLearning, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: 120, Seed: 4, RecordEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Both must run; the selection policies genuinely differ, so the exact
	// feedback sequences (and almost surely the outcomes) diverge.
	if gdrRes.Verified == 0 || sRes.Verified == 0 {
		t.Fatal("runs consumed no feedback")
	}
	if gdrRes.FinalImprovement == sRes.FinalImprovement &&
		gdrRes.Applied == sRes.Applied &&
		gdrRes.LearnerDecisions == sRes.LearnerDecisions {
		t.Fatal("GDR and GDR-S-Learning produced identical runs; selection policy not applied")
	}
}

func TestActiveLearningUsesNoGroups(t *testing.T) {
	d := dataset.Hospital(dataset.Config{N: 600, Seed: 6})
	res, err := Run(StrategyActiveLearning, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: 60, Seed: 4, RecordEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified == 0 {
		t.Fatal("no feedback consumed")
	}
	if res.Verified > 60 {
		t.Fatalf("budget exceeded: %d", res.Verified)
	}
}

func TestRunUnlimitedBudgetTerminates(t *testing.T) {
	d := dataset.Hospital(dataset.Config{N: 400, Seed: 8})
	res, err := Run(StrategyGDR, d.Dirty, d.Truth, d.Rules, RunConfig{Seed: 2, RecordEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalImprovement < 80 {
		t.Fatalf("unlimited GDR improvement = %.1f", res.FinalImprovement)
	}
}

func TestHeuristicSinglePassIsConstant(t *testing.T) {
	d := dataset.Hospital(dataset.Config{N: 500, Seed: 9})
	a, err := Run(StrategyHeuristic, d.Dirty, d.Truth, d.Rules, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(StrategyHeuristic, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: 999})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalImprovement != b.FinalImprovement {
		t.Fatalf("heuristic not budget-independent: %v vs %v", a.FinalImprovement, b.FinalImprovement)
	}
}
