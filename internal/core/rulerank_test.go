package core

import (
	"testing"
)

func TestRankedRulesOrdersByViolationMass(t *testing.T) {
	s := figure1Session(t)
	ranked := s.RankedRules()
	if len(ranked) != len(s.Engine().Rules()) {
		t.Fatalf("ranked %d of %d rules", len(ranked), len(s.Engine().Rules()))
	}
	mass := func(ri int) float64 {
		return s.Ranker().Weight(ri) * float64(s.Engine().Vio(ri))
	}
	for i := 1; i < len(ranked); i++ {
		if mass(ranked[i-1]) < mass(ranked[i]) {
			t.Fatalf("rules not ordered by weighted violation mass at %d", i)
		}
	}
	// phi1.1 (3 violations, weight 4/8) must outrank phi2.2 (1 violation,
	// weight 1/8).
	pos := map[string]int{}
	for i, ri := range ranked {
		pos[s.Engine().Rules()[ri].ID] = i
	}
	if pos["phi1.1"] > pos["phi2.2"] {
		t.Fatalf("phi1.1 ranked below phi2.2: %v", pos)
	}
}

func TestFocusTopRulesTrimsPending(t *testing.T) {
	s := figure1Session(t)
	before := s.PendingCount()
	top := s.FocusTopRules(1)
	if len(top) != 1 {
		t.Fatalf("top = %v", top)
	}
	after := s.PendingCount()
	if after == 0 || after >= before {
		t.Fatalf("focus did not trim: %d -> %d", before, after)
	}
	// All remaining updates belong to tuples violating the top rule.
	keep := map[int]bool{}
	for _, tid := range s.DirtyTuplesOf(top) {
		keep[tid] = true
	}
	for _, u := range s.PendingUpdates() {
		if !keep[u.Tid] {
			t.Fatalf("update %v outside the focused subset", u)
		}
	}
	// Widening restores suggestions for all dirty tuples.
	s.RefocusAll()
	if got := s.PendingCount(); got != before {
		t.Fatalf("refocus restored %d of %d updates", got, before)
	}
}

func TestFocusTopRulesNoOp(t *testing.T) {
	s := figure1Session(t)
	before := s.PendingCount()
	ranked := s.FocusTopRules(0)
	if len(ranked) != len(s.Engine().Rules()) {
		t.Fatal("no-op focus should return the full ranking")
	}
	if s.PendingCount() != before {
		t.Fatal("no-op focus trimmed updates")
	}
}

func TestDirtyTuplesOfSubset(t *testing.T) {
	s := figure1Session(t)
	phi5 := s.Engine().RuleIndex("phi5")
	got := s.DirtyTuplesOf([]int{phi5})
	want := []int{4, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("DirtyTuplesOf(phi5) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DirtyTuplesOf(phi5) = %v, want %v", got, want)
		}
	}
}
