package core

import (
	"math/rand"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// figure1Session builds the running-example instance used across packages.
func figure1Session(t testing.TB) *Session {
	t.Helper()
	schema := relation.MustSchema("Customer", []string{"Name", "SRC", "STR", "CT", "STT", "ZIP"})
	db := relation.NewDB(schema)
	rows := []relation.Tuple{
		{"Alice", "H1", "Redwood Dr", "Michigan City", "IN", "46360"},
		{"Bob", "H2", "Oak St", "Westville", "IN", "46360"},
		{"Carol", "H2", "Pine Ave", "Westvile", "IN", "46360"},
		{"Dave", "H2", "Main St", "Michigan Cty", "IN", "46360"},
		{"Eve", "H1", "Sherden RD", "Fort Wayne", "IN", "46391"},
		{"Frank", "H1", "Sherden RD", "Fort Wayne", "IN", "46825"},
		{"Grace", "H3", "Canal Rd", "New Haven", "OH", "46774"},
		{"Heidi", "H3", "Sherden RD", "Fort Wayne", "IN", "46835"},
	}
	for _, r := range rows {
		db.MustInsert(r)
	}
	rules := cfd.MustParse(`
phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN
phi2: ZIP -> CT, STT :: 46774 || New Haven, IN
phi3: ZIP -> CT, STT :: 46825 || Fort Wayne, IN
phi4: ZIP -> CT, STT :: 46391 || Westville, IN
phi5: STR, CT -> ZIP :: _, Fort Wayne || _
`)
	s, err := NewSession(db, rules, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionInitialState(t *testing.T) {
	s := figure1Session(t)
	if s.InitialDirtyCount() != 7 {
		t.Fatalf("initial dirty = %d", s.InitialDirtyCount())
	}
	if s.PendingCount() == 0 {
		t.Fatal("no initial updates")
	}
	// Every pending update targets a dirty tuple and a non-locked cell.
	for _, u := range s.PendingUpdates() {
		if !s.Engine().IsDirty(u.Tid) {
			t.Errorf("pending update %v for clean tuple", u)
		}
	}
	// The Michigan City group must exist (t1, t2, t3 city fixes).
	found := false
	for _, g := range s.Groups(OrderVOI, nil) {
		if g.Key.Attr == "CT" && g.Key.Value == "Michigan City" && g.Size() == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("Michigan City group missing")
	}
}

// TestConsistencyManagerPaperStory reproduces Section 3's example: after the
// user confirms r1 (t5's zip becomes the partner's 46391), the pending
// update r2 for the partner is discarded, and the on-demand process derives
// r′2 = ⟨t5, CT, Westville⟩ because t5 now falls in φ4's context.
func TestConsistencyManagerPaperStory(t *testing.T) {
	s := figure1Session(t)
	// t5 (Frank) violates only phi5; its zip suggestion comes from a
	// violating partner (scenario 2).
	r1, ok := s.Pending(repair.CellKey{Tid: 5, Attr: "ZIP"})
	if !ok {
		t.Fatal("no pending zip update for t5")
	}
	if r1.Value != "46391" && r1.Value != "46835" {
		t.Fatalf("t5 zip suggestion = %v, want a partner value", r1)
	}
	// Force the paper's choice: confirm 46391.
	r1.Value = "46391"
	s.ApplyFeedback(r1, repair.Confirm)

	if got := s.DB().Get(5, "ZIP"); got != "46391" {
		t.Fatalf("t5 zip = %q after confirm", got)
	}
	// t5 now falls in φ4's context with a wrong CT, and — since the ZIP
	// (φ4's whole LHS) was just confirmed — step 3(a)i resolves r′2
	// automatically: CT is forced to the pattern value Westville. This is
	// the strong form of the paper's story (Section 3 narrates r′2 as a
	// suggestion; Appendix A.5's manager applies it directly).
	if got := s.DB().Get(5, "CT"); got != "Westville" {
		t.Fatalf("t5 CT = %q, want forced Westville", got)
	}
	if s.ForcedFixes == 0 {
		t.Fatal("expected a forced constant-rule fix")
	}
	if !s.Generator().Locked(5, "ZIP") || !s.Generator().Locked(5, "CT") {
		t.Fatal("confirmed and forced cells should be locked")
	}
}

func TestRejectRegeneratesDifferentValue(t *testing.T) {
	s := figure1Session(t)
	u, ok := s.Pending(repair.CellKey{Tid: 2, Attr: "CT"})
	if !ok {
		t.Fatal("no CT suggestion for t2")
	}
	if u.Value != "Michigan City" {
		t.Fatalf("t2 CT suggestion = %v", u)
	}
	s.ApplyFeedback(u, repair.Reject)
	if s.Generator().IsPrevented(2, "CT", "Michigan City") != true {
		t.Fatal("rejected value not prevented")
	}
	if nu, ok := s.Pending(repair.CellKey{Tid: 2, Attr: "CT"}); ok && nu.Value == "Michigan City" {
		t.Fatalf("rejected value suggested again: %v", nu)
	}
}

func TestRetainLocksAndForcesConstantFix(t *testing.T) {
	s := figure1Session(t)
	// t2 violates phi1.1 (ZIP 46360 → CT Michigan City). Retaining the ZIP
	// (it is correct) locks the entire LHS, so the RHS is forced.
	u := repair.Update{Tid: 2, Attr: "ZIP", Value: "46999", Score: 0.5}
	s.ApplyFeedback(u, repair.Retain)
	if got := s.DB().Get(2, "CT"); got != "Michigan City" {
		t.Fatalf("forced fix missing: CT = %q", got)
	}
	if s.ForcedFixes != 1 {
		t.Fatalf("ForcedFixes = %d", s.ForcedFixes)
	}
	if s.Engine().IsDirty(2) {
		t.Fatal("t2 should be clean after the forced fix")
	}
}

func TestLearnerIntegration(t *testing.T) {
	s := figure1Session(t)
	u, _ := s.Pending(repair.CellKey{Tid: 2, Attr: "CT"})
	// Before any feedback the model is not ready: Prob falls back to the
	// update score and uncertainty is maximal.
	if got := s.Prob(u); got != u.Score {
		t.Fatalf("initial Prob = %v, want score %v", got, u.Score)
	}
	if got := s.Uncertainty(u); got != 1 {
		t.Fatalf("initial uncertainty = %v", got)
	}
	// Teach the model three confirms for CT updates.
	for _, tid := range []int{1, 2, 3} {
		uu := repair.Update{Tid: tid, Attr: "CT", Value: "Michigan City", Score: 0.5}
		s.LearnFrom(uu, repair.Confirm)
	}
	label, votes, ok := s.Predict(u)
	if !ok {
		t.Fatal("model should be ready after 3 examples")
	}
	if label != 0 { // learn.Confirm
		t.Fatalf("label = %v, votes %v", label, votes)
	}
	if got := s.Prob(u); got != votes[0] {
		t.Fatalf("Prob = %v, want confirm votes %v", got, votes[0])
	}
}

// TestConsistencyInvariants drives random feedback sequences and checks
// invariant (ii): no pending update targets a locked cell, suggests a
// prevented or current value, or belongs to a clean tuple.
func TestConsistencyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		s := figure1Session(t)
		for step := 0; step < 60 && s.PendingCount() > 0; step++ {
			ups := s.PendingUpdates()
			u := ups[rng.Intn(len(ups))]
			fb := repair.Feedback(rng.Intn(3))
			s.ApplyFeedback(u, fb)

			for _, p := range s.PendingUpdates() {
				if s.Generator().Locked(p.Tid, p.Attr) {
					t.Fatalf("trial %d step %d: pending update %v on locked cell", trial, step, p)
				}
				if s.Generator().IsPrevented(p.Tid, p.Attr, p.Value) {
					t.Fatalf("trial %d step %d: pending update %v is prevented", trial, step, p)
				}
				if s.DB().Get(p.Tid, p.Attr) == p.Value {
					t.Fatalf("trial %d step %d: pending update %v suggests current value", trial, step, p)
				}
				if !s.Engine().IsDirty(p.Tid) {
					t.Fatalf("trial %d step %d: pending update %v for clean tuple", trial, step, p)
				}
			}
		}
	}
}

func TestGroupsOrders(t *testing.T) {
	s := figure1Session(t)
	voiGroups := s.Groups(OrderVOI, nil)
	if len(voiGroups) < 2 {
		t.Fatalf("got %d groups", len(voiGroups))
	}
	for i := 1; i < len(voiGroups); i++ {
		if voiGroups[i-1].Benefit < voiGroups[i].Benefit {
			t.Fatal("VOI groups not sorted by benefit")
		}
	}
	greedy := s.Groups(OrderGreedy, nil)
	for i := 1; i < len(greedy); i++ {
		if greedy[i-1].Size() < greedy[i].Size() {
			t.Fatal("greedy groups not sorted by size")
		}
	}
	// Random order with the same seed is reproducible.
	r1 := s.Groups(OrderRandom, rand.New(rand.NewSource(5)))
	r2 := s.Groups(OrderRandom, rand.New(rand.NewSource(5)))
	for i := range r1 {
		if r1[i].Key != r2[i].Key {
			t.Fatal("random order not reproducible with equal seeds")
		}
	}
}

func TestSessionInsertMonitoring(t *testing.T) {
	s := figure1Session(t)
	before := s.PendingCount()
	// A new data entry with a wrong city for zip 46774 must immediately
	// receive a suggestion (online monitoring mode).
	tid, err := s.Insert(relation.Tuple{"Ivan", "H9", "Canal Rd", "NewHaven", "IN", "46774"})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Engine().IsDirty(tid) {
		t.Fatal("inserted dirty tuple not flagged")
	}
	u, ok := s.Pending(repair.CellKey{Tid: tid, Attr: "CT"})
	if !ok || u.Value != "New Haven" {
		t.Fatalf("monitoring suggestion = %v, %v", u, ok)
	}
	if s.PendingCount() <= before {
		t.Fatal("pending count did not grow")
	}
	// A clean insert adds nothing.
	tid2, err := s.Insert(relation.Tuple{"Judy", "H9", "Maple Ln", "Michigan City", "IN", "46360"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine().IsDirty(tid2) {
		t.Fatal("clean insert flagged dirty")
	}
}
