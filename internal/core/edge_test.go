package core

import (
	"reflect"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// The facade must reject impossible inputs with errors, not panics, and
// treat legitimately empty inputs (no tuples, no rules) as valid sessions.

func TestNewSessionNilDB(t *testing.T) {
	if _, err := NewSession(nil, nil, Config{}); err == nil {
		t.Fatal("want error for nil database")
	}
}

func TestNewSessionNilRule(t *testing.T) {
	db := relation.NewDB(relation.MustSchema("R", []string{"A", "B"}))
	db.MustInsert(relation.Tuple{"x", "y"})
	rules := []*cfd.CFD{nil}
	if _, err := NewSession(db, rules, Config{}); err == nil {
		t.Fatal("want error for nil rule entry")
	}
}

func TestNewSessionEmptyDB(t *testing.T) {
	db := relation.NewDB(relation.MustSchema("R", []string{"A", "B"}))
	rules := cfd.MustParse("r: A -> B :: x || y")
	s, err := NewSession(db, rules, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.InitialDirtyCount() != 0 || s.PendingCount() != 0 {
		t.Fatalf("empty DB session: dirty=%d pending=%d", s.InitialDirtyCount(), s.PendingCount())
	}
	for _, order := range []Order{OrderVOI, OrderGreedy, OrderRandom} {
		if gs := s.Groups(order, nil); len(gs) != 0 {
			t.Fatalf("order %v: %d groups on an empty instance", order, len(gs))
		}
	}
}

func TestNewSessionZeroRules(t *testing.T) {
	db := relation.NewDB(relation.MustSchema("R", []string{"A", "B"}))
	db.MustInsert(relation.Tuple{"x", "y"})
	s, err := NewSession(db, nil, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.PendingCount() != 0 {
		t.Fatalf("zero-rule session suggested %d updates", s.PendingCount())
	}
	if gs := s.Groups(OrderVOI, nil); len(gs) != 0 {
		t.Fatalf("zero-rule session produced %d groups", len(gs))
	}
}

// TestGroupsRandomNilRNG: a nil rng is explicit, supported behavior — the
// shuffle falls back to a session-owned source seeded from Config.Seed, so
// it is deterministic per configuration rather than silently skipped.
func TestGroupsRandomNilRNG(t *testing.T) {
	build := func(seed int64) *Session {
		db := relation.NewDB(relation.MustSchema("R", []string{"CT", "ZIP"}))
		for i := 0; i < 4; i++ {
			db.MustInsert(relation.Tuple{"WrongA", "46360"})
			db.MustInsert(relation.Tuple{"WrongB", "46825"})
			db.MustInsert(relation.Tuple{"WrongC", "46391"})
		}
		rules := cfd.MustParse(`
a: ZIP -> CT :: 46360 || Michigan City
b: ZIP -> CT :: 46825 || Fort Wayne
c: ZIP -> CT :: 46391 || Westville
`)
		s, err := NewSession(db, rules, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	keys := func(s *Session) []string {
		var out []string
		for _, g := range s.Groups(OrderRandom, nil) {
			out = append(out, g.Key.String())
		}
		return out
	}
	if !reflect.DeepEqual(keys(build(5)), keys(build(5))) {
		t.Fatal("nil-rng shuffle not deterministic for equal seeds")
	}
	// Successive calls advance the fallback source: the shuffle is live, not
	// frozen. With 3 groups any two permutations can collide by chance, so
	// draw several times and require at least two distinct orders.
	s := build(5)
	first := keys(s)
	varied := false
	for i := 0; i < 8 && !varied; i++ {
		varied = !reflect.DeepEqual(first, keys(s))
	}
	if !varied {
		t.Fatalf("fallback rng did not advance: always %v", first)
	}
}

func TestRunNilInstances(t *testing.T) {
	db := relation.NewDB(relation.MustSchema("R", []string{"A", "B"}))
	db.MustInsert(relation.Tuple{"x", "y"})
	if _, err := Run(StrategyGDR, nil, db, nil, RunConfig{}); err == nil {
		t.Fatal("want error for nil dirty instance")
	}
	if _, err := Run(StrategyGDR, db, nil, nil, RunConfig{}); err == nil {
		t.Fatal("want error for nil ground truth")
	}
}

// TestRunZeroRules: a run with no rules has nothing to repair and must
// terminate immediately with a well-formed result.
func TestRunZeroRules(t *testing.T) {
	db := relation.NewDB(relation.MustSchema("R", []string{"A", "B"}))
	db.MustInsert(relation.Tuple{"x", "y"})
	res, err := Run(StrategyGDR, db, db.Clone(), nil, RunConfig{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified != 0 || res.Applied != 0 || res.InitialDirty != 0 {
		t.Fatalf("zero-rule run did work: %+v", res)
	}
}
