package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gdr/internal/dataset"
	"gdr/internal/group"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// referenceGroups is the rebuild-from-scratch ranking the incremental index
// must reproduce byte for byte: partition the flat pending list, score every
// group, full sort — exactly what Session.Groups(OrderVOI) did before the
// index existed. It uses the session's own ranker and user model, so cached
// Eq. 6 terms and committee predictions are shared with the incremental
// path (both are pure functions of session state).
func referenceGroups(s *Session) []*group.Group {
	gs := group.Partition(s.PendingUpdates())
	if s.cfg.Workers > 1 {
		probs := make(map[repair.Update]float64)
		for _, g := range gs {
			for _, u := range g.Updates {
				if _, ok := probs[u]; !ok {
					probs[u] = s.Prob(u)
				}
			}
		}
		s.Ranker().RankParallel(gs, func(u repair.Update) float64 { return probs[u] }, s.cfg.Workers)
	} else {
		s.Ranker().Rank(gs, s.Prob)
	}
	return gs
}

func diffGroups(t *testing.T, step int, got, want []*group.Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("step %d: %d groups, want %d", step, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Key != w.Key {
			t.Fatalf("step %d rank %d: key %v, want %v", step, i, g.Key, w.Key)
		}
		if g.Benefit != w.Benefit {
			t.Fatalf("step %d rank %d (%v): benefit %v, want %v", step, i, g.Key, g.Benefit, w.Benefit)
		}
		if len(g.Updates) != len(w.Updates) {
			t.Fatalf("step %d rank %d (%v): %d updates, want %d", step, i, g.Key, len(g.Updates), len(w.Updates))
		}
		for j := range w.Updates {
			if g.Updates[j] != w.Updates[j] {
				t.Fatalf("step %d rank %d (%v) update %d: %v, want %v", step, i, g.Key, j, g.Updates[j], w.Updates[j])
			}
		}
	}
}

// TestGroupIndexLockstepEquivalence drives ~500 random feedback, cascade,
// revisit and insert steps through a session and, after every step, checks
// the incrementally maintained VOI ranking against a from-scratch
// Partition+Rank — group order, memberships and benefits must match exactly
// (same pattern as TestEncodedEngineEquivalence for the violation engine).
// It runs serially and with workers=4, so `go test -race` also proves the
// partial re-rank's parallel scoring phase clean.
func TestGroupIndexLockstepEquivalence(t *testing.T) {
	const steps = 500
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d := dataset.Hospital(dataset.Config{N: 120, Seed: 11, DirtyRate: 0.3})
			s, err := NewSession(d.Dirty.Clone(), d.Rules, Config{Seed: 3, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			lastVersion := uint64(0)
			for step := 0; step < steps; step++ {
				op := rng.Intn(10)
				if s.PendingCount() == 0 {
					op = 7 // drained: insert fresh dirt so the drive sustains all steps
				}
				switch {
				case op < 7: // user feedback, learner in the loop
					ups := s.PendingUpdates()
					if len(ups) == 0 {
						break
					}
					u := ups[rng.Intn(len(ups))]
					s.UserFeedback(u, repair.Feedback(rng.Intn(3)))
				case op < 8: // online insert (cascades through revisit)
					src := rng.Intn(s.DB().N())
					tup := append(relation.Tuple(nil), s.DB().Tuple(src)...)
					ai := rng.Intn(len(tup))
					tup[ai] = tup[ai] + "x"
					if _, err := s.Insert(tup); err != nil {
						t.Fatal(err)
					}
				case op < 9: // interleave the other orders; they must not disturb the VOI cache
					s.Groups(OrderGreedy, nil)
					s.Groups(OrderRandom, rng)
				default: // learner sweep (cascaded confirms without user feedback)
					s.LearnerSweep(1)
				}

				got := s.Groups(OrderVOI, nil)
				want := referenceGroups(s)
				diffGroups(t, step, got, want)

				// The ranking version is monotone, and a steady-state re-poll
				// returns the identical ranking without advancing it.
				if v := s.RankingVersion(); v < lastVersion {
					t.Fatalf("step %d: ranking version went backwards (%d -> %d)", step, lastVersion, v)
				} else {
					lastVersion = v
				}
				again := s.Groups(OrderVOI, nil)
				diffGroups(t, step, again, want)
				if v := s.RankingVersion(); v != lastVersion {
					t.Fatalf("step %d: steady-state poll moved the version (%d -> %d)", step, lastVersion, v)
				}

				// GroupUpdates must agree with a scan of the flat pending list.
				if len(got) > 0 {
					k := got[rng.Intn(len(got))].Key
					var scan []repair.Update
					for _, u := range s.PendingUpdates() {
						if u.Attr == k.Attr && u.Value == k.Value {
							scan = append(scan, u)
						}
					}
					live := s.GroupUpdates(k)
					if len(live) != len(scan) {
						t.Fatalf("step %d: GroupUpdates(%v) has %d updates, scan %d", step, k, len(live), len(scan))
					}
					for i := range scan {
						if live[i] != scan[i] {
							t.Fatalf("step %d: GroupUpdates(%v)[%d] = %v, scan %v", step, k, i, live[i], scan[i])
						}
					}
				}
			}
			if lastVersion == 0 {
				t.Fatal("drive made no progress")
			}
		})
	}
}
