package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gdr/internal/dataset"
	"gdr/internal/learn"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// observe renders everything a serving tier exposes about a session —
// ranked groups with exact benefits, every pending update with its exact
// score, stats, model stats and the CSV export — into one string, so two
// sessions can be compared byte-for-byte. Floats print as hex to make the
// comparison bit-exact.
func observe(t *testing.T, s *Session) string {
	t.Helper()
	var b strings.Builder
	for _, g := range s.Groups(OrderVOI, nil) {
		fmt.Fprintf(&b, "group %s=%s size=%d benefit=%x\n", g.Key.Attr, g.Key.Value, g.Size(), g.Benefit)
	}
	for _, u := range s.PendingUpdates() {
		fmt.Fprintf(&b, "pending t%d %s=%s score=%x cur=%s\n", u.Tid, u.Attr, u.Value, u.Score, s.DB().Get(u.Tid, u.Attr))
	}
	fmt.Fprintf(&b, "stats %+v\n", s.Stats())
	for _, m := range s.ModelStats() {
		fmt.Fprintf(&b, "model %s ex=%d ready=%v assessed=%v acc=%x trusted=%v\n",
			m.Attr, m.Examples, m.Ready, m.Assessed, m.Accuracy, m.Trusted)
	}
	var csv bytes.Buffer
	if err := s.DB().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	b.Write(csv.Bytes())
	return b.String()
}

// driveRound plays one full interactive round — top VOI group, oracle
// verbs decided from the pre-round snapshot, a learner sweep — and reports
// whether there was anything left to do.
func driveRound(t *testing.T, s *Session, truth *relation.DB) bool {
	t.Helper()
	gs := s.Groups(OrderVOI, nil)
	if len(gs) == 0 {
		return false
	}
	ups := s.GroupUpdates(gs[0].Key)
	type decision struct {
		u  repair.Update
		fb repair.Feedback
	}
	ds := make([]decision, 0, len(ups))
	for _, u := range ups {
		switch tv := truth.Get(u.Tid, u.Attr); {
		case u.Value == tv:
			ds = append(ds, decision{u, repair.Confirm})
		case s.DB().Get(u.Tid, u.Attr) == tv:
			ds = append(ds, decision{u, repair.Retain})
		default:
			ds = append(ds, decision{u, repair.Reject})
		}
	}
	for _, d := range ds {
		if cur, live := s.Pending(d.u.Cell()); live && cur.Value == d.u.Value {
			s.UserFeedback(cur, d.fb)
		}
	}
	s.LearnerSweep(4)
	return true
}

// TestSessionSnapshotRoundTrip is the tentpole guarantee at the library
// level: a session snapshotted after K feedback rounds and restored yields
// byte-identical groups, updates, stats, model state and exports versus the
// uninterrupted session — immediately, and through every subsequent round —
// at worker counts 1 and 4. It also checks the exported state is isolated:
// driving the original session further does not disturb a snapshot taken
// earlier.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d := dataset.Hospital(dataset.Config{N: 220, Seed: 17, DirtyRate: 0.3})
			a, err := NewSession(d.Dirty.Clone(), d.Rules, Config{Seed: 5, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			const snapAfter = 5
			for i := 0; i < snapAfter; i++ {
				if !driveRound(t, a, d.Truth) {
					t.Fatalf("session exhausted after %d rounds; enlarge the workload", i)
				}
			}
			st := a.ExportState()
			atSnap := observe(t, a)

			b, err := RestoreSession(st)
			if err != nil {
				t.Fatal(err)
			}
			// The group index is derived state — snapshots carry only the flat
			// pending list — so the restored session's incremental ranking must
			// equal a from-scratch Partition+Rank of that list exactly.
			diffGroups(t, -1, b.Groups(OrderVOI, nil), referenceGroups(b))
			if got := observe(t, b); got != atSnap {
				t.Fatalf("restored session diverges at the snapshot point:\n%s", firstDiff(atSnap, got))
			}

			// Lockstep from the snapshot point: both sessions must agree on
			// every observable after every subsequent round.
			for round := 0; ; round++ {
				moreA := driveRound(t, a, d.Truth)
				moreB := driveRound(t, b, d.Truth)
				if moreA != moreB {
					t.Fatalf("round %d: one session exhausted before the other", round)
				}
				oa, ob := observe(t, a), observe(t, b)
				if oa != ob {
					t.Fatalf("round %d after restore diverges:\n%s", round, firstDiff(oa, ob))
				}
				if !moreA || round >= 12 {
					break
				}
			}

			// The snapshot must be isolated from the live session: a second
			// restore from the same state, taken after all that extra
			// driving, still lands exactly at the snapshot point.
			c, err := RestoreSession(st)
			if err != nil {
				t.Fatal(err)
			}
			if got := observe(t, c); got != atSnap {
				t.Fatal("snapshot state was disturbed by driving the original session")
			}
		})
	}
}

// TestSessionSnapshotReplaysShuffleStream: the session-owned RNG behind
// Groups(OrderRandom, nil) must resume mid-stream after a restore — the
// next shuffle order matches the uninterrupted session's.
func TestSessionSnapshotReplaysShuffleStream(t *testing.T) {
	d := dataset.Hospital(dataset.Config{N: 120, Seed: 3, DirtyRate: 0.3})
	a, err := NewSession(d.Dirty.Clone(), d.Rules, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	order := func(s *Session) string {
		var b strings.Builder
		for _, g := range s.Groups(OrderRandom, nil) {
			fmt.Fprintf(&b, "%s=%s;", g.Key.Attr, g.Key.Value)
		}
		return b.String()
	}
	for i := 0; i < 3; i++ {
		order(a) // advance the stream
	}
	b, err := RestoreSession(a.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if oa, ob := order(a), order(b); oa != ob {
			t.Fatalf("shuffle %d after restore diverges:\n a: %s\n b: %s", i, oa, ob)
		}
	}
}

// TestRestoreSessionRejectsCorruptState: cross-reference damage must come
// back as an error, never a panic.
func TestRestoreSessionRejectsCorruptState(t *testing.T) {
	d := dataset.Hospital(dataset.Config{N: 60, Seed: 9, DirtyRate: 0.3})
	s, err := NewSession(d.Dirty.Clone(), d.Rules, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, d.Truth)
	base := s.ExportState()
	corruptions := map[string]func(st *SessionState){
		"nil state":            func(st *SessionState) { *st = SessionState{} },
		"row VID out of range": func(st *SessionState) { st.Rows[0][0] = relation.VID(1 << 30) },
		"short rule weights":   func(st *SessionState) { st.RuleWeights = st.RuleWeights[:1] },
		"pending out of range": func(st *SessionState) {
			st.Possible = append(st.Possible, repair.Update{Tid: 1 << 30, Attr: st.Attrs[0]})
		},
		"unknown model attr":  func(st *SessionState) { st.Models = append(st.Models, AttrModelState{Attr: "no-such-attr"}) },
		"locked out of range": func(st *SessionState) { st.Locked = append(st.Locked, repair.LockedCell{Tid: -1}) },
		"model example arity off schema": func(st *SessionState) {
			// A model whose examples disagree with the schema's feature
			// arity would panic inside Forest.Predict post-restore.
			if len(st.Models) == 0 {
				t.Fatal("expected trained models in the driven session")
			}
			st.Models[0].State.Examples = []learn.Example{{Cats: []string{"lone"}, Label: learn.Confirm}}
			st.Models[0].State.MinTrain = 1
		},
		"negative counters": func(st *SessionState) { st.Applied = -3 },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			// Re-export per case: corruption functions may alias state.
			st := s.ExportState()
			corrupt(st)
			if _, err := RestoreSession(st); err == nil {
				t.Fatal("corrupt state restored without error")
			}
		})
	}
	if _, err := RestoreSession(base); err != nil {
		t.Fatalf("pristine state failed to restore: %v", err)
	}
}

// firstDiff renders the first line where two observations diverge.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n a: %s\n b: %s", i, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}
