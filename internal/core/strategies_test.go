package core

import (
	"testing"

	"gdr/internal/dataset"
)

func hospitalData(t testing.TB, n int) *dataset.Data {
	t.Helper()
	return dataset.Hospital(dataset.Config{N: n, Seed: 42})
}

func TestNoLearningConvergesToClean(t *testing.T) {
	d := hospitalData(t, 800)
	res, err := Run(StrategyGDRNoLearning, d.Dirty, d.Truth, d.Rules, RunConfig{RecordEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalImprovement < 90 {
		t.Fatalf("NoLearning final improvement = %.1f, want ≥ 90", res.FinalImprovement)
	}
	if res.Verified == 0 || res.Applied == 0 {
		t.Fatalf("verified=%d applied=%d", res.Verified, res.Applied)
	}
	// The trajectory must be recorded and non-decreasing in feedback count.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Verified < res.Points[i-1].Verified {
			t.Fatal("points not ordered by verified count")
		}
	}
}

func TestBudgetIsRespected(t *testing.T) {
	d := hospitalData(t, 600)
	for _, st := range []Strategy{StrategyGDRNoLearning, StrategyGreedy, StrategyRandom, StrategyGDR, StrategyGDRSLearning, StrategyActiveLearning} {
		res, err := Run(st, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: 40, RecordEvery: 10, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if res.Verified > 40 {
			t.Fatalf("%s consumed %d feedbacks with budget 40", st, res.Verified)
		}
	}
}

func TestHeuristicNeedsNoUser(t *testing.T) {
	d := hospitalData(t, 600)
	res, err := Run(StrategyHeuristic, d.Dirty, d.Truth, d.Rules, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified != 0 {
		t.Fatalf("heuristic asked the user %d times", res.Verified)
	}
	if res.Applied == 0 {
		t.Fatal("heuristic applied nothing")
	}
	if res.FinalImprovement <= 0 {
		t.Fatalf("heuristic improvement = %v", res.FinalImprovement)
	}
}

func TestGDRUsesLearnerDecisions(t *testing.T) {
	d := hospitalData(t, 800)
	res, err := Run(StrategyGDR, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: 120, RecordEvery: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.LearnerDecisions == 0 {
		t.Fatal("GDR made no learner decisions")
	}
	if res.FinalImprovement < 30 {
		t.Fatalf("GDR improvement with 120 feedbacks = %.1f", res.FinalImprovement)
	}
}

func TestGDRBeatsNoLearningAtEqualBudget(t *testing.T) {
	d := hospitalData(t, 1000)
	budget := d.Truth.N() / 20 // a small budget where learning should pay off
	gdr, err := Run(StrategyGDR, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: budget, RecordEvery: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Run(StrategyGDRNoLearning, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: budget, RecordEvery: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if gdr.FinalImprovement < nl.FinalImprovement {
		t.Fatalf("GDR (%.1f%%) below NoLearning (%.1f%%) at budget %d",
			gdr.FinalImprovement, nl.FinalImprovement, budget)
	}
}

func TestVOIBeatsRandomEarly(t *testing.T) {
	d := hospitalData(t, 1000)
	budget := 100
	voiRes, err := Run(StrategyGDRNoLearning, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: budget, RecordEvery: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rndRes, err := Run(StrategyRandom, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: budget, RecordEvery: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if voiRes.FinalImprovement <= rndRes.FinalImprovement {
		t.Fatalf("VOI (%.1f%%) not above Random (%.1f%%) after %d feedbacks",
			voiRes.FinalImprovement, rndRes.FinalImprovement, budget)
	}
}

func TestPrecisionRecallReported(t *testing.T) {
	d := hospitalData(t, 600)
	res, err := Run(StrategyGDR, d.Dirty, d.Truth, d.Rules, RunConfig{Budget: 80, Seed: 1, RecordEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0 || res.Precision > 1 || res.Recall < 0 || res.Recall > 1 {
		t.Fatalf("p/r out of range: %v/%v", res.Precision, res.Recall)
	}
}

func TestUnknownStrategy(t *testing.T) {
	d := hospitalData(t, 100)
	if _, err := Run(Strategy("nope"), d.Dirty, d.Truth, d.Rules, RunConfig{}); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	d := hospitalData(t, 300)
	before := d.Dirty.Clone()
	if _, err := Run(StrategyHeuristic, d.Dirty, d.Truth, d.Rules, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	diff, err := d.Dirty.DiffCells(before)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("Run mutated the caller's instance: %d cells", len(diff))
	}
}
