package core

import (
	"testing"

	"gdr/internal/dataset"
	"gdr/internal/par"
)

// TestWarmGroupsSteadyStateAllocs pins the steady-state poll — a VOI
// Groups call with no intervening feedback — to a small constant allocation
// budget. The incremental group index answers such a poll from its cached
// ranking (one output-slice copy plus closure headers); a regression to the
// per-call partition-rebuild path allocates proportionally to the pending
// list and fails this ceiling immediately. The CI alloc-guard step runs
// this test alongside the voi warm-score guard.
func TestWarmGroupsSteadyStateAllocs(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	d := dataset.Hospital(dataset.Config{N: 2000, Seed: 7, DirtyRate: 0.3})
	s, err := NewSession(d.Dirty.Clone(), d.Rules, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Groups(OrderVOI, nil)) == 0 { // cold rank fills the index caches
		t.Fatal("no groups to rank")
	}
	const ceiling = 8
	allocs := testing.AllocsPerRun(100, func() {
		s.Groups(OrderVOI, nil)
	})
	if allocs > ceiling {
		t.Fatalf("warm Groups(OrderVOI) allocates %.1f times per call, want <= %d", allocs, ceiling)
	}
}
