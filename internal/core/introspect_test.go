package core

import (
	"reflect"
	"testing"

	"gdr/internal/dataset"
	"gdr/internal/oracle"
	"gdr/internal/repair"
)

func TestStatsSnapshot(t *testing.T) {
	s := figure1Session(t)
	st := s.Stats()
	if st.InitialDirty != s.InitialDirtyCount() || st.Dirty != s.Engine().DirtyCount() {
		t.Fatalf("stats dirty counts diverge: %+v", st)
	}
	if st.Pending != s.PendingCount() || st.Tuples != s.DB().N() {
		t.Fatalf("stats sizes diverge: %+v", st)
	}
	if st.Applied != 0 || st.ForcedFixes != 0 {
		t.Fatalf("fresh session reports activity: %+v", st)
	}
	if st.CleanedPct != 0 {
		t.Fatalf("fresh dirty session should report 0%% cleaned, got %v", st.CleanedPct)
	}
	// Confirm one update; activity counters and the cleaned fraction move.
	u := s.PendingUpdates()[0]
	s.ApplyFeedback(u, repair.Confirm)
	st = s.Stats()
	if st.Applied == 0 {
		t.Fatalf("confirm not counted: %+v", st)
	}
	if st.CleanedPct < 0 || st.CleanedPct > 100 {
		t.Fatalf("cleaned%% out of range: %v", st.CleanedPct)
	}
}

func TestModelStatsTrackLearning(t *testing.T) {
	s := figure1Session(t)
	if got := s.ModelStats(); len(got) != 0 {
		t.Fatalf("fresh session has model stats: %v", got)
	}
	u := s.PendingUpdates()[0]
	for i := 0; i < 4; i++ {
		s.LearnFrom(u, repair.Confirm)
	}
	stats := s.ModelStats()
	if len(stats) != 1 || stats[0].Attr != u.Attr {
		t.Fatalf("model stats = %v", stats)
	}
	if stats[0].Examples != 4 || !stats[0].Ready {
		t.Fatalf("model stat does not reflect training: %+v", stats[0])
	}
	if stats[0].Assessed || stats[0].Trusted {
		t.Fatalf("unassessed model reported as assessed/trusted: %+v", stats[0])
	}
}

// TestLearnerSweepMatchesRunnerFinish drives a full GDR run and a manual
// UserFeedback+LearnerSweep loop from the same seed; the sweep refactor must
// not change what the learner decides.
func TestLearnerSweepOnlyAppliesConfidentConfirms(t *testing.T) {
	d := dataset.Hospital(dataset.Config{N: 200, Seed: 11, DirtyRate: 0.3})
	db := d.Dirty.Clone()
	s, err := NewSession(db, d.Rules, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.New(d.Truth)
	// Label a healthy batch so some committee becomes trusted.
	for i := 0; i < 120 && s.PendingCount() > 0; i++ {
		ups := s.PendingUpdates()
		u := ups[i%len(ups)]
		s.UserFeedback(u, orc.Feedback(s.DB(), u))
	}
	before := s.Applied
	applied := s.LearnerSweep(4)
	if s.Applied-before != len(applied) {
		t.Fatalf("sweep reported %d applied updates but session applied %d",
			len(applied), s.Applied-before)
	}
	for _, u := range applied {
		if _, ok := s.Pending(u.Cell()); ok {
			t.Fatalf("applied update %v still pending", u)
		}
	}
}

// sessionFingerprint drains a session with an oracle-driven verify-everything
// loop and returns the full visited-state trace plus the final instance.
func sessionFingerprint(t *testing.T, workers int) ([]string, [][]string) {
	t.Helper()
	d := dataset.Hospital(dataset.Config{N: 400, Seed: 5, DirtyRate: 0.3})
	db := d.Dirty.Clone()
	s, err := NewSession(db, d.Rules, Config{Seed: 5, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.New(d.Truth)
	var trace []string
	for steps := 0; s.PendingCount() > 0 && steps < 5000; steps++ {
		u := s.PendingUpdates()[0]
		fb := orc.Feedback(s.DB(), u)
		s.ApplyFeedback(u, fb)
		trace = append(trace, u.String()+fb.String())
	}
	rows := make([][]string, db.N())
	for tid := 0; tid < db.N(); tid++ {
		rows[tid] = db.Tuple(tid)
	}
	return trace, rows
}

// TestRevisitParallelDeterminism pins the satellite requirement: the
// parallel SuggestBatch merge inside Session.revisit must leave every
// cascade byte-identical to the serial path at any worker count.
func TestRevisitParallelDeterminism(t *testing.T) {
	t1, r1 := sessionFingerprint(t, 1)
	t4, r4 := sessionFingerprint(t, 4)
	if !reflect.DeepEqual(t1, t4) {
		t.Fatalf("feedback traces diverge between workers=1 (%d steps) and workers=4 (%d steps)",
			len(t1), len(t4))
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("final instances diverge between workers=1 and workers=4")
	}
}
