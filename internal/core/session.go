// Package core implements the GDR framework itself (Figure 2 of the paper):
// the repair session that wires the violation engine, update generation,
// grouping, VOI ranking, per-attribute learners and the consistency manager
// into the interactive loop of Procedure 1, plus runners for every strategy
// evaluated in Section 5 (GDR, GDR-S-Learning, Active-Learning,
// GDR-NoLearning, Greedy, Random and the automatic BatchRepair heuristic).
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"gdr/internal/cfd"
	"gdr/internal/group"
	"gdr/internal/learn"
	"gdr/internal/relation"
	"gdr/internal/repair"
	"gdr/internal/strsim"
	"gdr/internal/voi"
)

// Config tunes a repair session. The zero value selects the paper's
// defaults.
type Config struct {
	// Forest configures the per-attribute random forests (k = 10 by default).
	Forest learn.Config
	// MinTrain is the number of labeled examples a model needs before it
	// predicts. Default 3.
	MinTrain int
	// MinVerify clamps the per-group feedback quota di from below: the
	// paper's formula di = E·(1 − g/gmax) yields 0 for the top group, which
	// would starve the learner of training data. Default 20 (the committee
	// needs a couple of batches of labels per attribute before its confirm
	// predictions become trustworthy).
	MinVerify int
	// BatchSize is ns: how many updates the user labels per interactive
	// round before the learner is retrained and the group reordered.
	// Default 10.
	BatchSize int
	// MinDelegate is the committee vote share a prediction needs before the
	// learner may decide an update without the user. Default 0.55.
	MinDelegate float64
	// MinAccuracy models the paper's "until the user is satisfied with the
	// learner predictions": during interactive sessions the user sees the
	// model's prediction next to their own answer, and only delegates once
	// the model's recent (prequential) accuracy reaches this level. The
	// assessed items are uncertainty-sampled — the hardest cases, where
	// 3-class chance level is 1/3 — so the default is 0.4: demonstrably
	// better than guessing on the examples the committee itself flags as
	// difficult.
	MinAccuracy float64
	// Seed drives every random choice in the session.
	Seed int64
	// Workers bounds the goroutines used for the session's CPU-heavy
	// batches: VOI group scoring, repair-candidate generation and committee
	// training (unless Forest.Workers overrides it). 0 and 1 select the
	// serial paths. Results are byte-identical at any setting — same seed,
	// same figures, regardless of worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MinTrain <= 0 {
		c.MinTrain = 3
	}
	if c.MinVerify <= 0 {
		c.MinVerify = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 10
	}
	if c.MinDelegate <= 0 || c.MinDelegate > 1 {
		c.MinDelegate = 0.55
	}
	if c.MinAccuracy <= 0 || c.MinAccuracy > 1 {
		c.MinAccuracy = 0.4
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// accuracyWindow is the number of recent user-checked predictions the
// prequential accuracy is computed over, and minAssessed the minimum number
// required before a model may be trusted at all.
const (
	accuracyWindow = 25
	minAssessed    = 10
)

// Order selects how groups are ranked before the user picks one.
type Order int

const (
	// OrderVOI ranks groups by the Eq. 6 estimated benefit (GDR).
	OrderVOI Order = iota
	// OrderGreedy ranks groups by size (the Greedy baseline).
	OrderGreedy
	// OrderRandom shuffles groups (the Random baseline).
	OrderRandom
)

// Session is one guided-repair session over a database instance.
type Session struct {
	cfg    Config
	db     *relation.DB
	eng    *cfd.Engine
	gen    *repair.Generator
	ranker *voi.Ranker

	// index owns the PossibleUpdates list — at most one pending suggestion
	// per cell (newer suggestions replace older ones for the same cell) —
	// partitioned by (attr, value) and kept incrementally: the consistency
	// manager feeds it one Set/Delete per suggestion delta, and ranking
	// re-scores only groups invalidated since the last call (see
	// staleAttrs). It is derived state: snapshots persist the flat update
	// list and restore rebuilds the index from it.
	index *group.Index

	// attrSigs records, per attribute position, the scoring inputs the last
	// VOI rank observed: the version counters of every rule involving the
	// attribute and the attribute committee's generation. A mismatch means
	// every group on that attribute must be re-scored even if its membership
	// is unchanged. staleBuf is the per-rank scratch verdict, reused so the
	// steady-state poll allocates nothing here.
	attrSigs []attrSig
	staleBuf []bool

	// models holds one learner per attribute (M_Ai of Section 4.2).
	models map[string]*learn.Model

	// hits records, per attribute, whether the model's recent predictions
	// matched the user's subsequent answers (a sliding window).
	hits map[string][]bool

	// predCache memoizes committee predictions; entries are keyed on the
	// model generation and the tuple version, so they survive across the
	// many pool re-rankings of active learning and VOI scoring.
	predCache map[predKey]predVal
	tupleVer  []uint32

	// shuffles counts the Groups(OrderRandom, nil) fallback shuffles so
	// far. Each shuffle draws from a fresh RNG derived from (Config.Seed,
	// shuffles) — deterministic per session, and the counter is the entire
	// serializable randomness state (math/rand sources are not otherwise
	// serializable, and recording a whole stream would grow without bound).
	shuffles uint64

	initialDirty int

	// phaseHook, when set (see SetPhaseHook), observes the expensive engine
	// phases. It is injected, unserialized observer state: the deterministic
	// core never reads clocks itself, so stage timing lives in the closure
	// the serving tier supplies.
	phaseHook PhaseHook

	// Applied counts cell changes written to the database (user confirms,
	// learner confirms and forced constant-rule fixes).
	Applied int
	// ForcedFixes counts automatic constant-rule repairs (step 3(a)i of the
	// consistency manager).
	ForcedFixes int
}

// NewSession builds a session over db (which it mutates as repairs are
// applied) and generates the initial PossibleUpdates list. A nil database
// or a nil rule entry is reported as an error, not a panic; an empty
// instance or an empty rule set yields a valid session with no suggestions.
func NewSession(db *relation.DB, rules []*cfd.CFD, cfg Config) (*Session, error) {
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	for i, r := range rules {
		if r == nil {
			return nil, fmt.Errorf("core: nil rule at index %d", i)
		}
	}
	cfg = cfg.withDefaults()
	eng, err := cfd.NewEngine(db, rules)
	if err != nil {
		return nil, err
	}
	gen := repair.NewGenerator(eng, repair.WithWorkers(cfg.Workers))
	s := &Session{
		cfg:          cfg,
		db:           db,
		eng:          eng,
		gen:          gen,
		ranker:       voi.NewRanker(eng),
		index:        group.NewIndex(),
		attrSigs:     make([]attrSig, db.Schema.Arity()),
		staleBuf:     make([]bool, db.Schema.Arity()),
		models:       make(map[string]*learn.Model),
		hits:         make(map[string][]bool),
		predCache:    make(map[predKey]predVal),
		tupleVer:     make([]uint32, db.N()),
		initialDirty: eng.DirtyCount(),
	}
	for _, u := range gen.SuggestAll() {
		s.index.Set(u)
	}
	return s, nil
}

// PhaseHook observes named engine phases (PhaseSuggest, PhaseRerank,
// PhaseRetrain). It is called when a phase begins and returns the function
// to call when it ends (nil to skip this occurrence). Hooks must not mutate
// session state — they exist so the serving tier can attribute latency
// without the deterministic core reading clocks.
type PhaseHook func(phase string) (done func())

// Engine phase names passed to a PhaseHook.
const (
	// PhaseSuggest is one SuggestBatch regeneration of pending updates for
	// tuples the consistency manager revisited.
	PhaseSuggest = "suggest"
	// PhaseRerank is the incremental VOI re-rank behind Groups(OrderVOI).
	PhaseRerank = "rerank"
	// PhaseRetrain is one lazy committee retrain inside Predict.
	PhaseRetrain = "retrain"
)

// SetPhaseHook installs the phase observer (nil disables). The hook is not
// part of the session's serialized state; a restored session starts with
// none.
func (s *Session) SetPhaseHook(h PhaseHook) { s.phaseHook = h }

// phase begins a named phase, returning the end function (nil when no hook
// is installed or the hook declines).
func (s *Session) phase(name string) func() {
	if s.phaseHook == nil {
		return nil
	}
	return s.phaseHook(name)
}

// DB returns the instance under repair.
func (s *Session) DB() *relation.DB { return s.db }

// Engine returns the violation engine.
func (s *Session) Engine() *cfd.Engine { return s.eng }

// Generator returns the update generator.
func (s *Session) Generator() *repair.Generator { return s.gen }

// Ranker returns the VOI ranker.
func (s *Session) Ranker() *voi.Ranker { return s.ranker }

// InitialDirtyCount returns E, the number of dirty tuples at session start.
func (s *Session) InitialDirtyCount() int { return s.initialDirty }

// PendingCount returns the number of suggested updates awaiting a decision.
func (s *Session) PendingCount() int { return s.index.Len() }

// Pending returns the live suggestion for a cell, if any.
func (s *Session) Pending(c repair.CellKey) (repair.Update, bool) {
	return s.index.Get(c)
}

// PendingUpdates returns all live suggestions in deterministic order.
func (s *Session) PendingUpdates() []repair.Update {
	out := s.index.AppendAll(make([]repair.Update, 0, s.index.Len()))
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// GroupUpdates returns the live suggestions belonging to a group key, in
// ascending tuple order — an O(group) index lookup, not a pending scan. The
// slice is the caller's to reorder.
func (s *Session) GroupUpdates(k group.Key) []repair.Update {
	return s.index.Updates(k)
}

// RankingVersion returns the group index's monotone ranking version: it
// advances whenever the pending partition mutates or a re-rank changes a
// cached benefit, so equal versions imply an identical VOI (and size)
// ordering. The serving tier uses it as the /groups ETag.
func (s *Session) RankingVersion() uint64 { return s.index.Version() }

// Groups ranks the pending update groups: by VOI benefit (step 4 of
// Procedure 1), by size, or randomly. rng is only used for OrderRandom;
// passing rng == nil there is explicit, supported behavior — the session
// falls back to its own generator seeded from Config.Seed, so the shuffle
// is deterministic per session rather than silently skipped.
//
// The VOI ranking is incremental: the session's group index keeps the
// partition and the sorted order across calls, and only groups invalidated
// since the last call — membership deltas from feedback and cascades, rule
// version moves, committee retrains — are re-scored and re-inserted. The
// result is byte-identical to a from-scratch Partition+Rank at any worker
// count; a steady-state poll costs O(changed). The returned VOI groups are
// cached snapshots that own their memory: reordering one's Updates in place
// cannot corrupt the index, but later calls may return the same snapshot,
// so callers wanting a private ordering should use GroupUpdates (always a
// fresh copy).
func (s *Session) Groups(order Order, rng *rand.Rand) []*group.Group {
	switch order {
	case OrderVOI:
		done := s.phase(PhaseRerank)
		s.refreshStaleAttrs()
		gs, _ := s.index.Rank(s.staleKey, s.scoreGroups)
		s.recordAttrSigs()
		if done != nil {
			done()
		}
		return gs
	case OrderGreedy:
		gs := s.index.Partition()
		group.SortBySize(gs)
		return gs
	default: // OrderRandom
		gs := s.index.Partition()
		if rng == nil {
			rng = rand.New(rand.NewSource(s.cfg.Seed + int64(s.shuffles*0x9E3779B97F4A7C15)))
			s.shuffles++
		}
		rng.Shuffle(len(gs), func(i, j int) { gs[i], gs[j] = gs[j], gs[i] })
		return gs
	}
}

// attrSig is the per-attribute scoring-input signature of the last VOI rank.
type attrSig struct {
	seen     bool
	modelGen int64
	vers     []uint64 // versions of RulesInvolvingAt(ai), engine order
}

// modelGen returns the attribute committee's generation without creating a
// model: an absent model and a fresh empty one predict identically (not
// ready → p̃j falls back to the update score), so both read as generation 0.
func (s *Session) modelGen(attr string) int64 {
	if m, ok := s.models[attr]; ok {
		return m.Gen()
	}
	return 0
}

// refreshStaleAttrs decides, per attribute, whether groups on it must be
// re-scored: true when any rule involving the attribute changed version
// (the engine bumps counters on every Apply/Insert touching the rule) or
// the attribute's committee trained on new feedback since the last rank.
// The verdicts land in staleBuf (reused across calls).
func (s *Session) refreshStaleAttrs() {
	for ai, attr := range s.db.Schema.Attrs {
		sig := &s.attrSigs[ai]
		if !sig.seen {
			s.staleBuf[ai] = true
			continue
		}
		stale := sig.modelGen != s.modelGen(attr)
		if !stale {
			for i, ri := range s.eng.RulesInvolvingAt(ai) {
				if sig.vers[i] != s.eng.Version(ri) {
					stale = true
					break
				}
			}
		}
		s.staleBuf[ai] = stale
	}
}

// recordAttrSigs snapshots the post-rank scoring inputs for every attribute.
func (s *Session) recordAttrSigs() {
	for ai, attr := range s.db.Schema.Attrs {
		sig := &s.attrSigs[ai]
		rules := s.eng.RulesInvolvingAt(ai)
		if sig.vers == nil {
			sig.vers = make([]uint64, len(rules))
		}
		for i, ri := range rules {
			sig.vers[i] = s.eng.Version(ri)
		}
		sig.modelGen = s.modelGen(attr)
		sig.seen = true
	}
}

// staleKey adapts the per-attribute staleness verdicts to group keys.
func (s *Session) staleKey(k group.Key) bool {
	return s.staleBuf[s.db.Schema.MustIndex(k.Attr)]
}

// scoreGroups computes Eq. 6 benefits for the dirty groups the index hands
// over (key-ordered). With Config.Workers > 1 the committee probabilities
// p̃j are warmed serially first — committee (re)training, model creation and
// the prediction memo are single-goroutine — after which scoring is
// read-only and fans out over the worker pool; the benefits are identical
// at any worker count.
func (s *Session) scoreGroups(gs []*group.Group) {
	if s.cfg.Workers > 1 && len(gs) > 1 {
		for _, g := range gs {
			for _, u := range g.Updates {
				s.Prob(u)
			}
		}
		s.ranker.ScoreGroups(gs, s.probFrozen, s.cfg.Workers)
		return
	}
	s.ranker.ScoreGroups(gs, s.Prob, 1)
}

// probFrozen is Session.Prob for the read-only parallel scoring phase: it
// serves p̃j from the prediction memo the serial warm-up just filled,
// writing nothing. If the memo entry was lost to a capacity reset mid-warm,
// the prediction is recomputed without memoizing — safe concurrently, since
// the warm-up already (re)trained every committee the dirty groups touch,
// leaving Model.Predict a pure read.
func (s *Session) probFrozen(u repair.Update) float64 {
	m, ok := s.models[u.Attr]
	if !ok {
		return u.Score
	}
	key := predKey{cell: u.Cell(), value: u.Value}
	if v, hit := s.predCache[key]; hit && v.modelGen == m.Gen() && v.tupleVer == s.tupleVer[u.Tid] {
		if !v.ok {
			return u.Score
		}
		return v.votes[learn.Confirm]
	}
	cats, sim := s.Features(u)
	_, votes, ready := m.Predict(cats, sim)
	if !ready {
		return u.Score
	}
	return votes[learn.Confirm]
}

// model returns (creating if needed) the learner for an attribute.
func (s *Session) model(attr string) *learn.Model {
	m, ok := s.models[attr]
	if !ok {
		cfg := s.cfg.Forest
		cfg.Seed = s.cfg.Seed*1315423911 + int64(len(s.models)+1)
		if cfg.Workers == 0 {
			cfg.Workers = s.cfg.Workers
		}
		m = learn.NewModel(cfg, s.cfg.MinTrain)
		s.models[attr] = m
	}
	return m
}

// Features builds the learner input for an update per the paper's data
// representation: the original tuple's attribute values and the suggested
// value as categorical features, plus R(t[Ai], v) as the numeric
// relationship feature. It must be called before the update is applied.
func (s *Session) Features(u repair.Update) (cats []string, sim float64) {
	t := s.db.Tuple(u.Tid)
	cats = make([]string, 0, len(t)+1)
	cats = append(cats, t...)
	cats = append(cats, u.Value)
	return cats, strsim.Similarity(s.db.Get(u.Tid, u.Attr), u.Value)
}

// LearnFrom adds a user feedback as a training example to the attribute's
// model. Learner-made decisions must not be fed back (no self-training).
func (s *Session) LearnFrom(u repair.Update, fb repair.Feedback) {
	cats, sim := s.Features(u)
	s.model(u.Attr).Add(learn.Example{Cats: cats, Sim: sim, Label: feedbackToLabel(fb)})
}

// UserFeedback records one user answer end to end: the model's current
// prediction is scored against the answer (the user inherently checks the
// learner during the session), the feedback becomes a training example
// (step 6 of Procedure 1), and the decision is applied through the
// consistency manager (step 7).
func (s *Session) UserFeedback(u repair.Update, fb repair.Feedback) {
	if label, _, ok := s.Predict(u); ok {
		w := append(s.hits[u.Attr], label == feedbackToLabel(fb))
		if len(w) > accuracyWindow {
			w = w[len(w)-accuracyWindow:]
		}
		s.hits[u.Attr] = w
	}
	s.LearnFrom(u, fb)
	s.ApplyFeedback(u, fb)
}

// ModelAccuracy returns the prequential accuracy of an attribute's model
// over the recent user-checked predictions; ok is false until enough
// predictions have been checked.
func (s *Session) ModelAccuracy(attr string) (acc float64, ok bool) {
	w := s.hits[attr]
	if len(w) < minAssessed {
		return 0, false
	}
	good := 0
	for _, h := range w {
		if h {
			good++
		}
	}
	return float64(good) / float64(len(w)), true
}

// Trusted reports whether the user would currently delegate decisions on
// this attribute to the learner (recent accuracy at or above MinAccuracy).
func (s *Session) Trusted(attr string) bool {
	acc, ok := s.ModelAccuracy(attr)
	return ok && acc >= s.cfg.MinAccuracy
}

type predKey struct {
	cell  repair.CellKey
	value string
}

type predVal struct {
	label    learn.Label
	votes    learn.Votes
	ok       bool
	modelGen int64
	tupleVer uint32
}

// maxPredCache bounds the prediction cache; it is reset when full.
const maxPredCache = 1 << 18

// Predict consults the attribute's model for an update. ok is false while
// the model lacks training data. Results are memoized until the attribute's
// model retrains or the tuple changes.
func (s *Session) Predict(u repair.Update) (learn.Label, learn.Votes, bool) {
	m := s.model(u.Attr)
	key := predKey{cell: u.Cell(), value: u.Value}
	ver := s.tupleVer[u.Tid]
	if v, hit := s.predCache[key]; hit && v.modelGen == m.Gen() && v.tupleVer == ver {
		return v.label, v.votes, v.ok
	}
	cats, sim := s.Features(u)
	var label learn.Label
	var votes learn.Votes
	var ok bool
	if m.NeedsRetrain() {
		// The retrain is the expensive part of this Predict; the phase span
		// covers the whole call so the committee growth is attributed, not
		// the cheap vote.
		done := s.phase(PhaseRetrain)
		label, votes, ok = m.Predict(cats, sim)
		if done != nil {
			done()
		}
	} else {
		label, votes, ok = m.Predict(cats, sim)
	}
	if len(s.predCache) >= maxPredCache {
		s.predCache = make(map[predKey]predVal)
	}
	s.predCache[key] = predVal{label: label, votes: votes, ok: ok, modelGen: m.Gen(), tupleVer: ver}
	return label, votes, ok
}

// Uncertainty returns the committee disagreement for an update; updates the
// model cannot judge yet are maximally uncertain (1).
func (s *Session) Uncertainty(u repair.Update) float64 {
	_, votes, ok := s.Predict(u)
	if !ok {
		return 1
	}
	return votes.Uncertainty()
}

// Prob is the user model p̃j of Section 4.1: the learner's confirm
// probability once trained, the repair algorithm's score sj before that.
func (s *Session) Prob(u repair.Update) float64 {
	_, votes, ok := s.Predict(u)
	if !ok {
		return u.Score
	}
	return votes[learn.Confirm]
}

// ModelFor exposes the per-attribute model (creating it if necessary);
// examples and readiness are observable for tests and tooling.
func (s *Session) ModelFor(attr string) *learn.Model { return s.model(attr) }

func feedbackToLabel(fb repair.Feedback) learn.Label {
	switch fb {
	case repair.Confirm:
		return learn.Confirm
	case repair.Reject:
		return learn.Reject
	default:
		return learn.Retain
	}
}

func labelToFeedback(l learn.Label) repair.Feedback {
	switch l {
	case learn.Confirm:
		return repair.Confirm
	case learn.Reject:
		return repair.Reject
	default:
		return repair.Retain
	}
}
