package core

import (
	"sort"

	"gdr/internal/group"
	"gdr/internal/repair"
)

// Stats is a point-in-time snapshot of a session's observable state — the
// introspection surface a serving layer exposes without holding a ground
// truth: suggestion backlog, violation counts and repair activity.
type Stats struct {
	// Pending is the number of suggested updates awaiting a decision.
	Pending int
	// Dirty is the current number of tuples violating at least one rule.
	Dirty int
	// InitialDirty is E, the dirty-tuple count at session start.
	InitialDirty int
	// Tuples is the instance size.
	Tuples int
	// Applied counts cell changes written so far (user confirms, learner
	// confirms and forced constant-rule fixes).
	Applied int
	// ForcedFixes counts the automatic constant-rule repairs among Applied.
	ForcedFixes int
	// CleanedPct is the quality-so-far proxy available without a ground
	// truth: the percentage of the initially dirty tuples that no longer
	// violate any rule, 100·(1 − Dirty/InitialDirty), clamped to [0, 100].
	// (The Eq. 3 improvement needs Dopt and is only computable in simulated
	// runs; see metrics.Quality.)
	CleanedPct float64
}

// Stats returns the current session snapshot.
func (s *Session) Stats() Stats {
	st := Stats{
		Pending:      s.index.Len(),
		Dirty:        s.eng.DirtyCount(),
		InitialDirty: s.initialDirty,
		Tuples:       s.db.N(),
		Applied:      s.Applied,
		ForcedFixes:  s.ForcedFixes,
	}
	if st.InitialDirty > 0 {
		st.CleanedPct = 100 * (1 - float64(st.Dirty)/float64(st.InitialDirty))
		if st.CleanedPct < 0 {
			st.CleanedPct = 0
		}
		if st.CleanedPct > 100 {
			st.CleanedPct = 100
		}
	} else {
		st.CleanedPct = 100
	}
	return st
}

// ModelStat describes one per-attribute learner: training volume, readiness,
// and the prequential accuracy backing the user's delegation decision.
type ModelStat struct {
	// Attr is the attribute the model labels.
	Attr string
	// Examples is the number of training examples collected.
	Examples int
	// Ready reports whether the model has enough examples to predict.
	Ready bool
	// Assessed reports whether enough predictions were user-checked for
	// Accuracy to be meaningful.
	Assessed bool
	// Accuracy is the recent prediction accuracy (valid when Assessed).
	Accuracy float64
	// Trusted reports whether the user would currently delegate decisions
	// on this attribute to the model.
	Trusted bool
}

// ModelStats returns one entry per attribute model the session has created,
// ordered by attribute name.
func (s *Session) ModelStats() []ModelStat {
	out := make([]ModelStat, 0, len(s.models))
	for attr, m := range s.models {
		st := ModelStat{Attr: attr, Examples: m.Len(), Ready: m.Ready()}
		st.Accuracy, st.Assessed = s.ModelAccuracy(attr)
		st.Trusted = s.Trusted(attr)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}

// ConfidentDecision returns the learner's decision for an update when the
// user currently trusts the attribute's model and the committee's majority
// share reaches the delegation threshold. ok is false otherwise — the
// update stays with the user.
func (s *Session) ConfidentDecision(u repair.Update) (repair.Feedback, bool) {
	if !s.Trusted(u.Attr) {
		return 0, false
	}
	label, votes, ok := s.Predict(u)
	if !ok || votes[label] < s.cfg.MinDelegate {
		return 0, false
	}
	return labelToFeedback(label), true
}

// LearnerSweepGroup lets the trained models decide every remaining update of
// one group (Section 4.2's hand-off after the di verifications): confident
// confirms are applied through the consistency manager; rejects and retains
// are advisory and leave the suggestion pending. It returns the applied
// updates in group order.
func (s *Session) LearnerSweepGroup(k group.Key) []repair.Update {
	var applied []repair.Update
	for _, u := range s.GroupUpdates(k) {
		if cur, ok := s.Pending(u.Cell()); !ok || cur != u {
			continue
		}
		if fb, ok := s.ConfidentDecision(u); ok {
			if s.LearnerDecision(u, fb) {
				applied = append(applied, u)
			}
		}
	}
	return applied
}

// LearnerSweep applies the models to everything still pending — how a
// session finishes once the user's feedback budget is exhausted. Rejected
// suggestions regenerate, so up to passes full passes run; the sweep stops
// early when a pass decides nothing. It returns the applied updates in
// decision order.
func (s *Session) LearnerSweep(passes int) []repair.Update {
	var applied []repair.Update
	for pass := 0; pass < passes; pass++ {
		decided := false
		for _, u := range s.PendingUpdates() {
			if cur, ok := s.Pending(u.Cell()); !ok || cur != u {
				continue
			}
			if fb, ok := s.ConfidentDecision(u); ok {
				if s.LearnerDecision(u, fb) {
					applied = append(applied, u)
					decided = true
				}
			}
		}
		if !decided {
			break
		}
	}
	return applied
}
