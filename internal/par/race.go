//go:build race

package par

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-count assertions skip under it: race instrumentation adds
// bookkeeping allocations that say nothing about the production hot path.
const RaceEnabled = true
