// Package par is the tiny fan-out primitive behind every parallel batch in
// the library: the experiment harness's figure cells, VOI group scoring and
// batch repair-candidate generation. Work items are indexed, results land in
// caller-owned slots, and errors are reported by lowest index, so a ForEach
// over independent items is deterministic at any worker count.
package par

import (
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: anything below 1 means serial.
func Workers(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), fanning the calls out over at
// most workers goroutines. All items run even when some fail; the returned
// error is the failure with the lowest index, so the outcome does not depend
// on goroutine scheduling. workers <= 1 (or n <= 1) runs serially on the
// calling goroutine with no synchronization at all.
//
// fn must be safe for concurrent invocation when workers > 1; writes to
// distinct index-addressed slots need no further locking (ForEach
// establishes the necessary happens-before edges on return).
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
