package par

import (
	"hash/maphash"
	"sync"
)

// stripes is the lock-striping factor of Cache; it only needs to
// comfortably exceed typical worker counts.
const stripes = 64

// Cache is a bounded, lock-striped memo map safe for concurrent use. It
// backs the library's read-mostly hot-path caches (similarity scores, VOI
// benefit entries): entries are cheap to recompute, so when a stripe
// reaches its share of the capacity it is simply reset. Values must be
// immutable once stored — Get returns them without copying.
type Cache[K comparable, V any] struct {
	seed      maphash.Seed
	stripeCap int
	shards    [stripes]cacheShard[K, V]
}

type cacheShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V // gdr:guarded-by mu
}

// NewCache builds a cache holding at most roughly capacity entries.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	c := &Cache[K, V]{seed: maphash.MakeSeed(), stripeCap: capacity / stripes}
	if c.stripeCap < 1 {
		c.stripeCap = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[K]V)
	}
	return c
}

func (c *Cache[K, V]) shard(k K) *cacheShard[K, V] {
	return &c.shards[maphash.Comparable(c.seed, k)%stripes]
}

// Get returns the cached value for k, if present.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	return v, ok
}

// Put stores v under k, resetting the stripe first when it is full.
func (c *Cache[K, V]) Put(k K, v V) {
	sh := c.shard(k)
	sh.mu.Lock()
	if len(sh.m) >= c.stripeCap {
		sh.m = make(map[K]V)
	}
	sh.m[k] = v
	sh.mu.Unlock()
}
