package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	for in, want := range map[int]int{-3: 1, 0: 1, 1: 1, 7: 7} {
		if got := Workers(in); got != want {
			t.Errorf("Workers(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 257
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Indexes 3 and 9 fail; the reported error must always be index 3's,
	// regardless of worker count or scheduling.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 12, func(i int) error {
			if i == 3 || i == 9 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
}

func TestCacheGetPut(t *testing.T) {
	c := NewCache[[2]string, float64](1 << 10)
	if _, ok := c.Get([2]string{"a", "b"}); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put([2]string{"a", "b"}, 0.5)
	if v, ok := c.Get([2]string{"a", "b"}); !ok || v != 0.5 {
		t.Fatalf("get = (%v, %v), want (0.5, true)", v, ok)
	}
	// Overwrite is allowed.
	c.Put([2]string{"a", "b"}, 0.75)
	if v, _ := c.Get([2]string{"a", "b"}); v != 0.75 {
		t.Fatalf("overwrite lost: %v", v)
	}
}

func TestCacheBoundAndConcurrency(t *testing.T) {
	c := NewCache[int, int](64) // tiny: one entry per stripe
	err := ForEach(8, 10_000, func(i int) error {
		c.Put(i, i)
		if v, ok := c.Get(i); ok && v != i {
			t.Errorf("key %d holds %d", i, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	if total > stripes { // stripeCap is 1: at most one live entry per stripe
		t.Fatalf("cache grew past its bound: %d entries", total)
	}
}

func TestForEachRunsEverythingDespiteErrors(t *testing.T) {
	var ran atomic.Int32
	_ = ForEach(3, 20, func(i int) error {
		ran.Add(1)
		if i%2 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d of 20 items", got)
	}
}
