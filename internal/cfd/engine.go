package cfd

import (
	"fmt"
	"slices"
	"sort"

	"gdr/internal/relation"
)

// Pattern sentinels. Real VIDs are dense indexes into an attribute
// dictionary, so values this large can never collide with one.
const (
	// wildVID marks a wildcard position in a pre-resolved pattern.
	wildVID = ^relation.VID(0)
	// FreshVID stands for a hypothetical value absent from the attribute's
	// dictionary: it matches no pattern constant and equals no stored value.
	// WhatIfVID and WouldViolateVID accept it so callers can score updates
	// whose value has never been seen without interning (interning would
	// mutate the dictionary, which is not allowed during read-only scoring).
	FreshVID = ^relation.VID(0) - 1
)

// Engine maintains, incrementally under cell updates, the violation state of
// a database instance with respect to a set Σ of normal-form CFDs:
//
//   - vio(D,{φ}) of Definition 1 (constant rules: one per violating tuple;
//     variable rules: pairwise counting as in Cong et al. [7]),
//   - |D ⊨ φ|, the number of tuples satisfying φ,
//   - |D(φ)|, the number of tuples in the rule's context (matching tp[X]),
//   - the DirtyTuples set {t : ∃φ, t ⊭ φ}, and
//   - per-rule version counters so downstream components (the VOI ranker)
//     can cache per-update benefit computations.
//
// All state is dictionary-encoded: pattern constants are resolved to VIDs at
// construction, tuples are matched by comparing uint32s, and variable-rule
// buckets are keyed by the fixed-width byte encoding of the tuple's LHS ids.
//
// All database mutations during a repair session must go through
// Engine.Apply so the indexes stay consistent.
type Engine struct {
	db     *relation.DB
	rules  []*CFD
	states []*ruleState
	byAttr [][]int // attribute position -> indexes into states
	byID   map[string]int
	dirty  map[int]struct{}
}

type ruleState struct {
	rule    *CFD
	isConst bool // rule.Constant(), cached: the tableau is a map probe
	lhsIdx  []int
	lhsPat  []relation.VID // wildVID for wildcard positions
	rhsIdx  int
	rhsPat  relation.VID // only meaningful for constant rules
	version uint64

	// ctx is |D(φ)|: the number of tuples matching tp[X].
	ctx int

	// Constant-rule state.
	constViol map[int]struct{}

	// Variable-rule state.
	buckets    map[string]*bucket
	vioTotal   int // Σ_t vio(t,{φ})
	violTuples int // number of tuples violating φ
}

// bucket groups, for a variable rule, the context tuples sharing one LHS
// value combination. Within a bucket, every tuple violates the rule iff the
// bucket holds at least two distinct RHS values.
type bucket struct {
	total int
	sumsq int // Σ_v count(v)^2, so bucket vio = total^2 − sumsq
	byVal map[relation.VID]int
	tids  map[int]struct{}
}

func (b *bucket) vio() int { return b.total*b.total - b.sumsq }

func (b *bucket) violTuples() int {
	if len(b.byVal) >= 2 {
		return b.total
	}
	return 0
}

// NewEngine validates the rules against the database schema, interns every
// pattern constant into the instance's dictionaries, and builds the
// violation indexes with a full scan.
func NewEngine(db *relation.DB, rules []*CFD) (*Engine, error) {
	e := &Engine{db: db, rules: rules, dirty: make(map[int]struct{}), byID: make(map[string]int, len(rules))}
	e.byAttr = make([][]int, db.Schema.Arity())
	for si, r := range rules {
		if err := r.Validate(db.Schema); err != nil {
			return nil, err
		}
		if _, dup := e.byID[r.ID]; dup {
			return nil, fmt.Errorf("cfd: duplicate rule id %q", r.ID)
		}
		e.byID[r.ID] = si
		st := &ruleState{rule: r, isConst: r.Constant(), rhsIdx: db.Schema.MustIndex(r.RHS)}
		for _, a := range r.LHS {
			ai := db.Schema.MustIndex(a)
			st.lhsIdx = append(st.lhsIdx, ai)
			if p := r.TP[a]; p == Wildcard {
				st.lhsPat = append(st.lhsPat, wildVID)
			} else {
				st.lhsPat = append(st.lhsPat, db.Intern(ai, p))
			}
			e.byAttr[ai] = append(e.byAttr[ai], si)
		}
		e.byAttr[st.rhsIdx] = append(e.byAttr[st.rhsIdx], si)
		if r.Constant() {
			st.rhsPat = db.Intern(st.rhsIdx, r.TP[r.RHS])
			st.constViol = make(map[int]struct{})
		} else {
			st.buckets = make(map[string]*bucket)
		}
		e.states = append(e.states, st)
	}
	e.Rebuild()
	return e, nil
}

// DB returns the instance the engine watches.
func (e *Engine) DB() *relation.DB { return e.db }

// Rules returns the rule set Σ in engine order.
func (e *Engine) Rules() []*CFD { return e.rules }

// RuleIndex returns the engine index of the rule with the given id, or -1.
func (e *Engine) RuleIndex(id string) int {
	if si, ok := e.byID[id]; ok {
		return si
	}
	return -1
}

// ConstantRHSVID returns the interned id of a constant rule's RHS pattern
// value; the update generator uses it for scenario-1 candidates. It must not
// be called for variable rules.
func (e *Engine) ConstantRHSVID(ri int) relation.VID { return e.states[ri].rhsPat }

// LHSPatternVID returns the interned id of rule ri's pattern constant for
// attribute position ai, and whether that position carries a constant (false
// for wildcards and attributes outside the rule's LHS).
func (e *Engine) LHSPatternVID(ri, ai int) (relation.VID, bool) {
	st := e.states[ri]
	for i, li := range st.lhsIdx {
		if li == ai && st.lhsPat[i] != wildVID {
			return st.lhsPat[i], true
		}
	}
	return 0, false
}

// Rebuild recomputes all indexes from scratch. It is used at construction
// and by tests cross-checking incremental maintenance.
func (e *Engine) Rebuild() {
	e.dirty = make(map[int]struct{})
	for _, st := range e.states {
		st.version++
		st.ctx = 0
		if st.isConst {
			st.constViol = make(map[int]struct{})
		} else {
			st.buckets = make(map[string]*bucket)
			st.vioTotal = 0
			st.violTuples = 0
		}
	}
	for tid := 0; tid < e.db.N(); tid++ {
		for _, st := range e.states {
			e.addTuple(st, tid)
		}
	}
	for tid := 0; tid < e.db.N(); tid++ {
		if e.violatesAny(tid) {
			e.dirty[tid] = struct{}{}
		}
	}
}

// matchLHS tests t[X] ≼ tp[X] by comparing interned ids.
func (st *ruleState) matchLHS(row []relation.VID) bool {
	for i, ai := range st.lhsIdx {
		if p := st.lhsPat[i]; p != wildVID && row[ai] != p {
			return false
		}
	}
	return true
}

// key appends the bucket key for a variable rule — the fixed-width byte
// encoding of the row's LHS ids — to buf. Callers pass a stack-backed scratch
// buffer and probe buckets with string(key), which the compiler keeps
// allocation-free for map lookups.
func (st *ruleState) key(buf []byte, row []relation.VID) []byte {
	for _, ai := range st.lhsIdx {
		buf = relation.AppendVID(buf, row[ai])
	}
	return buf
}

// bucketOf returns the variable-rule bucket the row belongs to, or nil.
func (st *ruleState) bucketOf(row []relation.VID) *bucket {
	var kb [relation.KeyBufSize]byte
	return st.buckets[string(st.key(kb[:0], row))]
}

func (e *Engine) addTuple(st *ruleState, tid int) {
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return
	}
	st.ctx++
	if st.isConst {
		if row[st.rhsIdx] != st.rhsPat {
			st.constViol[tid] = struct{}{}
		}
		return
	}
	var kb [relation.KeyBufSize]byte
	k := st.key(kb[:0], row)
	b := st.buckets[string(k)]
	if b == nil {
		b = &bucket{byVal: make(map[relation.VID]int), tids: make(map[int]struct{})}
		st.buckets[string(k)] = b
	}
	st.vioTotal -= b.vio()
	st.violTuples -= b.violTuples()
	v := row[st.rhsIdx]
	c := b.byVal[v]
	b.sumsq += 2*c + 1
	b.byVal[v] = c + 1
	b.total++
	b.tids[tid] = struct{}{}
	st.vioTotal += b.vio()
	st.violTuples += b.violTuples()
}

func (e *Engine) removeTuple(st *ruleState, tid int) {
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return
	}
	st.ctx--
	if st.isConst {
		delete(st.constViol, tid)
		return
	}
	var kb [relation.KeyBufSize]byte
	k := st.key(kb[:0], row)
	b := st.buckets[string(k)]
	if b == nil {
		return
	}
	st.vioTotal -= b.vio()
	st.violTuples -= b.violTuples()
	v := row[st.rhsIdx]
	c := b.byVal[v]
	b.sumsq += -2*c + 1
	if c == 1 {
		delete(b.byVal, v)
	} else {
		b.byVal[v] = c - 1
	}
	b.total--
	delete(b.tids, tid)
	if b.total == 0 {
		delete(st.buckets, string(k))
	} else {
		st.vioTotal += b.vio()
		st.violTuples += b.violTuples()
	}
}

// Apply sets cell (tid, attr) to value and incrementally maintains all rule
// indexes and the dirty set. It returns the ids of every tuple whose dirty
// status changed, always including tid, which the consistency manager uses
// to revisit pending updates.
//
// Co-bucket members of a variable rule violate it iff their bucket holds two
// or more distinct RHS values, so their status can only change when a bucket
// crosses that uniform↔mixed boundary; Apply re-evaluates members only on
// such transitions, keeping the common case O(rules involving attr).
func (e *Engine) Apply(tid int, attr, value string) []int {
	ai := e.db.Schema.MustIndex(attr)
	return e.ApplyVID(tid, ai, e.db.Intern(ai, value))
}

// ApplyVID is Apply for an already-interned value id.
func (e *Engine) ApplyVID(tid, ai int, v relation.VID) []int {
	old := e.db.VIDAt(tid, ai)
	if old == v {
		return []int{tid}
	}
	recheck := map[int]struct{}{tid: {}}
	type watch struct {
		st    *ruleState
		key   string
		mixed bool
	}
	var watches []watch
	note := func(st *ruleState, key string) {
		if b := st.buckets[key]; b != nil {
			watches = append(watches, watch{st, key, len(b.byVal) >= 2})
		} else {
			watches = append(watches, watch{st, key, false})
		}
	}
	var kb [relation.KeyBufSize]byte
	for _, si := range e.byAttr[ai] {
		st := e.states[si]
		st.version++
		if st.isConst {
			continue
		}
		if row := e.db.Row(tid); st.matchLHS(row) {
			note(st, string(st.key(kb[:0], row)))
		}
	}
	for _, si := range e.byAttr[ai] {
		e.removeTuple(e.states[si], tid)
	}
	e.db.SetVIDAt(tid, ai, v)
	// Record the target buckets' mixedness before re-inserting the tuple so
	// a uniform→mixed transition caused by the insertion is visible below.
	for _, si := range e.byAttr[ai] {
		st := e.states[si]
		if row := e.db.Row(tid); !st.isConst && st.matchLHS(row) {
			note(st, string(st.key(kb[:0], row)))
		}
	}
	for _, si := range e.byAttr[ai] {
		e.addTuple(e.states[si], tid)
	}
	for _, w := range watches {
		b := w.st.buckets[w.key]
		mixedNow := b != nil && len(b.byVal) >= 2
		if mixedNow == w.mixed {
			continue
		}
		if b != nil {
			for m := range b.tids {
				recheck[m] = struct{}{}
			}
		}
	}
	var out []int
	for m := range recheck {
		wasDirty := false
		if _, ok := e.dirty[m]; ok {
			wasDirty = true
		}
		isDirty := e.violatesAny(m)
		if isDirty {
			e.dirty[m] = struct{}{}
		} else {
			delete(e.dirty, m)
		}
		if isDirty != wasDirty || m == tid {
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

// Insert appends a new tuple to the database and indexes it, supporting the
// paper's online data-entry monitoring mode (Section 3): GDR watches newly
// added tuples and immediately derives suggestions for them. It returns the
// new tuple's id and the ids of all tuples whose dirty status changed
// (including the new tuple when it is dirty).
func (e *Engine) Insert(t relation.Tuple) (tid int, affected []int, err error) {
	tid, err = e.db.Insert(t)
	if err != nil {
		return 0, nil, err
	}
	recheck := map[int]struct{}{tid: {}}
	row := e.db.Row(tid)
	type watch struct {
		st    *ruleState
		key   string
		mixed bool
	}
	var watches []watch
	var kb [relation.KeyBufSize]byte
	for _, st := range e.states {
		st.version++
		if st.isConst || !st.matchLHS(row) {
			continue
		}
		key := string(st.key(kb[:0], row))
		mixed := false
		if b := st.buckets[key]; b != nil {
			mixed = len(b.byVal) >= 2
		}
		watches = append(watches, watch{st, key, mixed})
	}
	for _, st := range e.states {
		e.addTuple(st, tid)
	}
	for _, w := range watches {
		b := w.st.buckets[w.key]
		if b == nil || (len(b.byVal) >= 2) == w.mixed {
			continue
		}
		for m := range b.tids {
			recheck[m] = struct{}{}
		}
	}
	for m := range recheck {
		_, wasDirty := e.dirty[m]
		isDirty := e.violatesAny(m)
		if isDirty {
			e.dirty[m] = struct{}{}
		} else {
			delete(e.dirty, m)
		}
		if isDirty != wasDirty || m == tid {
			affected = append(affected, m)
		}
	}
	sort.Ints(affected)
	return tid, affected, nil
}

// violatesAny reports whether tuple tid violates at least one rule.
func (e *Engine) violatesAny(tid int) bool {
	for si := range e.states {
		if e.violates(e.states[si], tid) {
			return true
		}
	}
	return false
}

func (e *Engine) violates(st *ruleState, tid int) bool {
	if st.isConst {
		_, ok := st.constViol[tid]
		return ok
	}
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return false
	}
	b := st.bucketOf(row)
	return b != nil && len(b.byVal) >= 2
}

// Violates reports whether tuple tid violates rule ri (engine index).
func (e *Engine) Violates(ri, tid int) bool { return e.violates(e.states[ri], tid) }

// VioRuleList returns the engine indexes of the rules tuple tid violates —
// the t.vioRuleList of Appendix A.
func (e *Engine) VioRuleList(tid int) []int {
	var out []int
	for si := range e.states {
		if e.violates(e.states[si], tid) {
			out = append(out, si)
		}
	}
	return out
}

// TupleVio returns vio(t,{φ}) per Definition 1: 1 for a violated constant
// rule; for a variable rule, the number of tuples violating φ together with t.
func (e *Engine) TupleVio(ri, tid int) int {
	st := e.states[ri]
	if st.isConst {
		if _, ok := st.constViol[tid]; ok {
			return 1
		}
		return 0
	}
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return 0
	}
	b := st.bucketOf(row)
	if b == nil {
		return 0
	}
	return b.total - b.byVal[row[st.rhsIdx]]
}

// Vio returns vio(D,{φ}) for rule ri.
func (e *Engine) Vio(ri int) int {
	st := e.states[ri]
	if st.isConst {
		return len(st.constViol)
	}
	return st.vioTotal
}

// VioTotal returns vio(D,Σ), the total violations across all rules.
func (e *Engine) VioTotal() int {
	total := 0
	for ri := range e.states {
		total += e.Vio(ri)
	}
	return total
}

// Sat returns |D ⊨ φ| for rule ri: the number of *context* tuples satisfying
// the rule. Tuples outside the context are not counted — this matches the
// paper's Section 4.1 worked example, where fixing one of four violating
// tuples yields a denominator |D^r ⊨ φ| of 1, not N−3.
func (e *Engine) Sat(ri int) int {
	st := e.states[ri]
	if st.isConst {
		return st.ctx - len(st.constViol)
	}
	return st.ctx - st.violTuples
}

// Context returns |D(φ)|, the number of tuples matching the rule's LHS
// pattern; the paper uses it for the rule weights wi = |D(φi)|/|D|.
func (e *Engine) Context(ri int) int { return e.states[ri].ctx }

// Version returns a counter that changes whenever rule ri's state changes;
// downstream caches key on it.
func (e *Engine) Version(ri int) uint64 { return e.states[ri].version }

// RulesInvolving returns the engine indexes of rules mentioning attr.
func (e *Engine) RulesInvolving(attr string) []int {
	ai, ok := e.db.Schema.Index(attr)
	if !ok {
		return nil
	}
	return e.byAttr[ai]
}

// RulesInvolvingAt returns the engine indexes of rules mentioning the
// attribute at position ai.
func (e *Engine) RulesInvolvingAt(ai int) []int { return e.byAttr[ai] }

// IsDirty reports whether tuple tid currently violates any rule.
func (e *Engine) IsDirty(tid int) bool {
	_, ok := e.dirty[tid]
	return ok
}

// DirtyCount returns |DirtyTuples|.
func (e *Engine) DirtyCount() int { return len(e.dirty) }

// Dirty returns the sorted DirtyTuples list.
func (e *Engine) Dirty() []int {
	out := make([]int, 0, len(e.dirty))
	for tid := range e.dirty {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// ViolatingPartners returns, for a variable rule ri, the ids of the tuples
// that violate the rule together with tid (same bucket, different RHS value).
// It returns nil for constant rules or non-violating tuples. The update
// generator uses it for scenario 2 (take the value of a partner t′).
func (e *Engine) ViolatingPartners(ri, tid int) []int {
	st := e.states[ri]
	if st.isConst {
		return nil
	}
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return nil
	}
	b := st.bucketOf(row)
	if b == nil || len(b.byVal) < 2 {
		return nil
	}
	mine := row[st.rhsIdx]
	var out []int
	for m := range b.tids {
		if e.db.VIDAt(m, st.rhsIdx) != mine {
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

// AppendPartnerRHSVIDs appends, for a variable rule ri, the distinct RHS
// value ids held by tid's violating partners (same bucket, different RHS
// value) to dst and returns it. It is the value-level counterpart of
// ViolatingPartners for scenario 2 of the update generator, which needs the
// candidate values, not the partner tuples: reading the bucket's value
// histogram is O(distinct values) instead of O(bucket size · log) for
// materializing and sorting the partner tuple list. The appended values are
// sorted, so the result is independent of map iteration order.
func (e *Engine) AppendPartnerRHSVIDs(dst []relation.VID, ri, tid int) []relation.VID {
	st := e.states[ri]
	if st.isConst {
		return dst
	}
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return dst
	}
	b := st.bucketOf(row)
	if b == nil || len(b.byVal) < 2 {
		return dst
	}
	mine := row[st.rhsIdx]
	start := len(dst)
	for v := range b.byVal {
		if v != mine {
			dst = append(dst, v)
		}
	}
	slices.Sort(dst[start:])
	return dst
}

// BucketMembers returns the ids of all context tuples agreeing with tid on
// the rule's LHS (including tid itself), for variable rule ri.
func (e *Engine) BucketMembers(ri, tid int) []int {
	st := e.states[ri]
	if st.isConst {
		return nil
	}
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return nil
	}
	b := st.bucketOf(row)
	if b == nil {
		return nil
	}
	out := make([]int, 0, len(b.tids))
	for m := range b.tids {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// InBucketMajority reports, for a variable rule ri, whether tuple tid's RHS
// value is the strict majority in its bucket. Minimal-change repair
// semantics (refs [2,7] of the paper) attribute a variable-CFD conflict to
// the minority side: majority members are not suspects, so the update
// generator does not derive LHS repairs for them. Constant rules always
// return false (single-tuple violations are genuinely suspect).
func (e *Engine) InBucketMajority(ri, tid int) bool {
	st := e.states[ri]
	if st.isConst {
		return false
	}
	row := e.db.Row(tid)
	if !st.matchLHS(row) {
		return false
	}
	b := st.bucketOf(row)
	if b == nil {
		return false
	}
	return 2*b.byVal[row[st.rhsIdx]] > b.total
}

// lookupVID resolves a hypothetical value to an id without interning;
// unknown values become FreshVID (they match nothing and equal nothing).
func (e *Engine) lookupVID(ai int, value string) relation.VID {
	if v, ok := e.db.LookupVID(ai, value); ok {
		return v
	}
	return FreshVID
}

// WouldViolate reports whether tuple tid would still violate rule ri after
// hypothetically setting attr to value. The update generator uses it to keep
// only LHS repair candidates that actually resolve the violation they were
// derived from (Appendix A.2: an LHS change resolves φ by making
// t[X] ⋠ tp[X], or by moving t to agreeing company for variable rules).
func (e *Engine) WouldViolate(ri, tid int, attr, value string) bool {
	ai := e.db.Schema.MustIndex(attr)
	return e.WouldViolateVID(ri, tid, ai, e.lookupVID(ai, value))
}

// WouldViolateVID is WouldViolate for an id-resolved value (FreshVID for
// values absent from the dictionary). It performs no allocation and no
// string comparison.
func (e *Engine) WouldViolateVID(ri, tid, ai int, v relation.VID) bool {
	st := e.states[ri]
	row := e.db.Row(tid)
	get := func(k int) relation.VID {
		if k == ai {
			return v
		}
		return row[k]
	}
	for i, li := range st.lhsIdx {
		if p := st.lhsPat[i]; p != wildVID && get(li) != p {
			return false // out of context: vacuously satisfied
		}
	}
	rhs := get(st.rhsIdx)
	if st.isConst {
		return rhs != st.rhsPat
	}
	var kb [relation.KeyBufSize]byte
	key := kb[:0]
	for _, li := range st.lhsIdx {
		key = relation.AppendVID(key, get(li))
	}
	b := st.buckets[string(key)]
	if b == nil {
		return false
	}
	// Exclude tid's own current contribution when it already sits in that
	// bucket (possible when only the RHS or a non-key attribute changed).
	var ob [relation.KeyBufSize]byte
	sameBucket := st.matchLHS(row) && string(st.key(ob[:0], row)) == string(key)
	for val, c := range b.byVal {
		if val == rhs {
			continue
		}
		if sameBucket && val == row[st.rhsIdx] && c == 1 {
			continue
		}
		if c > 0 {
			return true
		}
	}
	return false
}

// RuleDelta is the hypothetical post-update state of one rule, produced by
// WhatIf. Vio and Sat are vio(D^r,{φ}) and |D^r ⊨ φ| for the database D^r
// that would result from applying the update.
type RuleDelta struct {
	Rule int // engine rule index
	Vio  int
	Sat  int
}

// WhatIf computes, without mutating any state, the violation and
// satisfaction counts each affected rule would have after setting cell
// (tid, attr) to value. Rules not mentioning attr are unaffected and
// omitted. This powers the Eq. 6 benefit estimation: the numerator
// vio(D,{φi}) − vio(D^rj,{φi}) and the denominator |D^rj ⊨ φi|.
func (e *Engine) WhatIf(tid int, attr, value string) []RuleDelta {
	ai := e.db.Schema.MustIndex(attr)
	return e.WhatIfVID(tid, ai, e.lookupVID(ai, value))
}

// WhatIfVID is WhatIf for an id-resolved value (FreshVID for values absent
// from the dictionary). It is safe for concurrent use with other read-only
// engine calls; all scratch state lives on the stack.
func (e *Engine) WhatIfVID(tid, ai int, v relation.VID) []RuleDelta {
	old := e.db.VIDAt(tid, ai)
	out := make([]RuleDelta, 0, len(e.byAttr[ai]))
	for _, si := range e.byAttr[ai] {
		st := e.states[si]
		if old == v {
			out = append(out, RuleDelta{Rule: si, Vio: e.Vio(si), Sat: e.Sat(si)})
			continue
		}
		if st.isConst {
			out = append(out, e.whatIfConstant(si, st, tid, ai, v))
		} else {
			out = append(out, e.whatIfVariable(si, st, tid, ai, v))
		}
	}
	return out
}

func (e *Engine) whatIfConstant(si int, st *ruleState, tid, ai int, v relation.VID) RuleDelta {
	row := e.db.Row(tid)
	_, violBefore := st.constViol[tid]
	matchBefore := st.matchLHS(row)
	matchAfter := true
	for i, li := range st.lhsIdx {
		val := row[li]
		if li == ai {
			val = v
		}
		if p := st.lhsPat[i]; p != wildVID && val != p {
			matchAfter = false
			break
		}
	}
	rhsAfter := row[st.rhsIdx]
	if st.rhsIdx == ai {
		rhsAfter = v
	}
	violAfter := matchAfter && rhsAfter != st.rhsPat
	vioAfterTotal := len(st.constViol) + b2i(violAfter) - b2i(violBefore)
	ctxAfter := st.ctx + b2i(matchAfter) - b2i(matchBefore)
	return RuleDelta{Rule: si, Vio: vioAfterTotal, Sat: ctxAfter - vioAfterTotal}
}

func (e *Engine) whatIfVariable(si int, st *ruleState, tid, ai int, v relation.VID) RuleDelta {
	row := e.db.Row(tid)
	vio := st.vioTotal
	violT := st.violTuples

	// Phase 1: hypothetically remove tid from its current bucket.
	oldInCtx := st.matchLHS(row)
	var okb [relation.KeyBufSize]byte
	var oldKey []byte
	// Stats of the old bucket after removal, needed if the new bucket is the
	// same one.
	var oldAfter struct {
		present      bool
		total, sumsq int
		distinct     int
		cntByVal     map[relation.VID]int
	}
	if oldInCtx {
		oldKey = st.key(okb[:0], row)
		b := st.buckets[string(oldKey)]
		val := row[st.rhsIdx]
		c := b.byVal[val]
		vio -= b.vio()
		violT -= b.violTuples()
		total := b.total - 1
		sumsq := b.sumsq - 2*c + 1
		distinct := len(b.byVal)
		if c == 1 {
			distinct--
		}
		if total > 0 {
			vio += total*total - sumsq
			if distinct >= 2 {
				violT += total
			}
		}
		oldAfter.present = total > 0
		oldAfter.total, oldAfter.sumsq, oldAfter.distinct = total, sumsq, distinct
		oldAfter.cntByVal = b.byVal
	}

	// Phase 2: hypothetically add tid with its new values.
	var nkb [relation.KeyBufSize]byte
	newKey := nkb[:0]
	inCtxAfter := true
	for i, li := range st.lhsIdx {
		val := row[li]
		if li == ai {
			val = v
		}
		newKey = relation.AppendVID(newKey, val)
		if p := st.lhsPat[i]; p != wildVID && val != p {
			inCtxAfter = false
		}
	}
	if inCtxAfter {
		rhsAfter := row[st.rhsIdx]
		if st.rhsIdx == ai {
			rhsAfter = v
		}
		var total, sumsq, distinct, c int
		if oldInCtx && string(newKey) == string(oldKey) {
			// Only possible when the edited attribute is the RHS (an LHS
			// edit always changes the key), so rhsAfter differs from the
			// value removed in phase 1 and its count is unaffected.
			total, sumsq, distinct = oldAfter.total, oldAfter.sumsq, oldAfter.distinct
			c = oldAfter.cntByVal[rhsAfter]
			if total > 0 {
				vio -= total*total - sumsq
				if distinct >= 2 {
					violT -= total
				}
			}
		} else if b := st.buckets[string(newKey)]; b != nil {
			total, sumsq, distinct = b.total, b.sumsq, len(b.byVal)
			c = b.byVal[rhsAfter]
			vio -= b.vio()
			violT -= b.violTuples()
		}
		total++
		sumsq += 2*c + 1
		if c == 0 {
			distinct++
		}
		vio += total*total - sumsq
		if distinct >= 2 {
			violT += total
		}
	}
	ctxAfter := st.ctx - b2i(oldInCtx) + b2i(inCtxAfter)
	return RuleDelta{Rule: si, Vio: vio, Sat: ctxAfter - violT}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
