package cfd

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gdr/internal/relation"
)

// figure1 builds an instance in the spirit of Figure 1 of the paper: the
// Customer relation, the rules φ1–φ5, and tuples exhibiting the violations
// the running example discusses.
func figure1(t testing.TB) (*relation.DB, []*CFD) {
	schema := relation.MustSchema("Customer", []string{"Name", "SRC", "STR", "CT", "STT", "ZIP"})
	db := relation.NewDB(schema)
	rows := []relation.Tuple{
		{"Alice", "H1", "Redwood Dr", "Michigan City", "IN", "46360"}, // t0 clean
		{"Bob", "H2", "Oak St", "Westville", "IN", "46360"},           // t1 violates phi1.1
		{"Carol", "H2", "Pine Ave", "Westvile", "IN", "46360"},        // t2 violates phi1.1
		{"Dave", "H2", "Main St", "Michigan Cty", "IN", "46360"},      // t3 violates phi1.1
		{"Eve", "H1", "Sherden RD", "Fort Wayne", "IN", "46391"},      // t4 violates phi4.1 and phi5
		{"Frank", "H1", "Sherden RD", "Fort Wayne", "IN", "46825"},    // t5 violates phi5
		{"Grace", "H3", "Canal Rd", "New Haven", "OH", "46774"},       // t6 violates phi2.2
		{"Heidi", "H3", "Sherden RD", "Fort Wayne", "IN", "46835"},    // t7 violates phi5
	}
	for _, r := range rows {
		db.MustInsert(r)
	}
	rules := MustParse(`
phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN
phi2: ZIP -> CT, STT :: 46774 || New Haven, IN
phi3: ZIP -> CT, STT :: 46825 || Fort Wayne, IN
phi4: ZIP -> CT, STT :: 46391 || Westville, IN
phi5: STR, CT -> ZIP :: _, Fort Wayne || _
`)
	return db, rules
}

func TestEngineFigure1Counts(t *testing.T) {
	db, rules := figure1(t)
	e, err := NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}

	// Sat is context-scoped: |D ⊨ φ| counts only tuples matching tp[X].
	want := map[string]struct{ vio, sat, ctx int }{
		"phi1.1": {3, 1, 4}, // t1,t2,t3 have wrong CT for ZIP 46360
		"phi1.2": {0, 4, 4},
		"phi2.1": {0, 1, 1},
		"phi2.2": {1, 0, 1}, // t6 STT=OH
		"phi3.1": {0, 1, 1},
		"phi3.2": {0, 1, 1},
		"phi4.1": {1, 0, 1}, // t4 CT=Fort Wayne
		"phi4.2": {0, 1, 1},
		// t4,t5,t7 share (Sherden RD, Fort Wayne) with three distinct zips:
		// pairwise violations = 3*2 = 6, all three tuples violate.
		"phi5": {6, 0, 3},
	}
	for id, w := range want {
		ri := e.RuleIndex(id)
		if ri < 0 {
			t.Fatalf("rule %s not found", id)
		}
		if got := e.Vio(ri); got != w.vio {
			t.Errorf("%s: Vio = %d, want %d", id, got, w.vio)
		}
		if got := e.Sat(ri); got != w.sat {
			t.Errorf("%s: Sat = %d, want %d", id, got, w.sat)
		}
		if got := e.Context(ri); got != w.ctx {
			t.Errorf("%s: Context = %d, want %d", id, got, w.ctx)
		}
	}
	if got := e.VioTotal(); got != 11 {
		t.Errorf("VioTotal = %d, want 11", got)
	}
	if got := e.Dirty(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5, 6, 7}) {
		t.Errorf("Dirty = %v", got)
	}
}

func TestEngineVioRuleListAndTupleVio(t *testing.T) {
	db, rules := figure1(t)
	e, err := NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(ris []int) []string {
		out := make([]string, len(ris))
		for i, ri := range ris {
			out[i] = e.Rules()[ri].ID
		}
		return out
	}
	if got := ids(e.VioRuleList(4)); !reflect.DeepEqual(got, []string{"phi4.1", "phi5"}) {
		t.Errorf("vioRuleList(t4) = %v", got)
	}
	if got := ids(e.VioRuleList(0)); len(got) != 0 {
		t.Errorf("vioRuleList(t0) = %v, want empty", got)
	}
	phi5 := e.RuleIndex("phi5")
	if got := e.TupleVio(phi5, 4); got != 2 {
		t.Errorf("TupleVio(phi5, t4) = %d, want 2", got)
	}
	if got := e.TupleVio(e.RuleIndex("phi4.1"), 4); got != 1 {
		t.Errorf("TupleVio(phi4.1, t4) = %d, want 1", got)
	}
	if got := e.TupleVio(phi5, 0); got != 0 {
		t.Errorf("TupleVio(phi5, t0) = %d, want 0", got)
	}
	if got := e.ViolatingPartners(phi5, 4); !reflect.DeepEqual(got, []int{5, 7}) {
		t.Errorf("ViolatingPartners(phi5, t4) = %v", got)
	}
	if got := e.BucketMembers(phi5, 4); !reflect.DeepEqual(got, []int{4, 5, 7}) {
		t.Errorf("BucketMembers(phi5, t4) = %v", got)
	}
}

func TestEngineApplyCascade(t *testing.T) {
	db, rules := figure1(t)
	e, err := NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	phi5 := e.RuleIndex("phi5")

	// Repair t4's zip: leaves phi4.1 context, satisfies phi3, still in the
	// phi5 bucket which keeps two distinct zips (46825 x2, 46835). The
	// bucket stays mixed, so only t4 itself is reported.
	affected := e.Apply(4, "ZIP", "46825")
	if !reflect.DeepEqual(affected, []int{4}) {
		t.Fatalf("affected = %v", affected)
	}
	if e.Vio(e.RuleIndex("phi4.1")) != 0 {
		t.Error("phi4.1 should be satisfied after zip fix")
	}
	if got := e.Vio(phi5); got != 4 {
		t.Errorf("phi5 vio = %d, want 4 (2 pairs x 2 directions)", got)
	}
	if !e.IsDirty(4) || !e.IsDirty(5) || !e.IsDirty(7) {
		t.Error("t4, t5, t7 should still be dirty via phi5")
	}

	// Repair t7's zip: the bucket becomes uniform, all three go clean.
	affected = e.Apply(7, "ZIP", "46825")
	if !reflect.DeepEqual(affected, []int{4, 5, 7}) {
		t.Fatalf("affected = %v", affected)
	}
	if e.Vio(phi5) != 0 {
		t.Errorf("phi5 vio = %d, want 0", e.Vio(phi5))
	}
	for _, tid := range []int{4, 5, 7} {
		if e.IsDirty(tid) {
			t.Errorf("t%d should be clean", tid)
		}
	}
	if got := e.DirtyCount(); got != 4 {
		t.Errorf("DirtyCount = %d, want 4 (t1,t2,t3,t6)", got)
	}

	// Moving a tuple out of a variable rule's context via an LHS change.
	e.Apply(4, "CT", "Westville") // no longer matches CT=Fort Wayne pattern
	if got := e.Context(phi5); got != 2 {
		t.Errorf("phi5 context = %d, want 2", got)
	}
	// 46825 now disagrees with phi4? t4 has ZIP 46825 so phi4 does not
	// apply; but phi3.1 does: CT=Westville violates it.
	if !e.IsDirty(4) {
		t.Error("t4 should violate phi3.1 after CT change")
	}
}

func TestEngineApplyNoChange(t *testing.T) {
	db, rules := figure1(t)
	e, _ := NewEngine(db, rules)
	before := e.VioTotal()
	aff := e.Apply(0, "CT", "Michigan City")
	if !reflect.DeepEqual(aff, []int{0}) {
		t.Errorf("affected = %v", aff)
	}
	if e.VioTotal() != before {
		t.Error("no-op apply changed counters")
	}
}

func TestEngineVersionBumps(t *testing.T) {
	db, rules := figure1(t)
	e, _ := NewEngine(db, rules)
	phi11 := e.RuleIndex("phi1.1")
	phi5 := e.RuleIndex("phi5")
	v11, v5 := e.Version(phi11), e.Version(phi5)
	e.Apply(1, "CT", "Michigan City")
	if e.Version(phi11) == v11 {
		t.Error("phi1.1 version should change after CT edit")
	}
	if e.Version(phi5) == v5 {
		t.Error("phi5 version should change after CT edit (CT in its LHS)")
	}
	vz := e.Version(e.RuleIndex("phi2.1"))
	e.Apply(1, "Name", "Robert")
	if e.Version(e.RuleIndex("phi2.1")) != vz {
		t.Error("rule version changed for unrelated attribute")
	}
}

func TestRulesInvolving(t *testing.T) {
	db, rules := figure1(t)
	e, _ := NewEngine(db, rules)
	if got := e.RulesInvolving("Name"); len(got) != 0 {
		t.Errorf("RulesInvolving(Name) = %v", got)
	}
	// ZIP appears in all 8 constant rules (LHS) and phi5 (RHS).
	if got := e.RulesInvolving("ZIP"); len(got) != 9 {
		t.Errorf("RulesInvolving(ZIP) = %d rules, want 9", len(got))
	}
	if got := e.RulesInvolving("NoSuchAttr"); got != nil {
		t.Errorf("RulesInvolving(NoSuchAttr) = %v", got)
	}
}

func TestNewEngineRejectsBadRules(t *testing.T) {
	db, _ := figure1(t)
	bad := MustParse("r: Missing -> CT :: _ || _")
	if _, err := NewEngine(db, bad); err == nil {
		t.Fatal("want error for rule over unknown attribute")
	}
	dup := MustParse("same: ZIP -> CT :: _ || _\nsame: ZIP -> STT :: _ || _")
	dup[1].ID = dup[0].ID
	if _, err := NewEngine(db, dup); err == nil {
		t.Fatal("want error for duplicate rule ids")
	}
}

// randomInstance builds a random instance + rule set for property testing.
func randomInstance(r *rand.Rand, n int) (*relation.DB, []*CFD) {
	schema := relation.MustSchema("R", []string{"A", "B", "C", "D"})
	db := relation.NewDB(schema)
	vals := []string{"x", "y", "z", "w"}
	pick := func() string { return vals[r.Intn(len(vals))] }
	for i := 0; i < n; i++ {
		db.MustInsert(relation.Tuple{pick(), pick(), pick(), pick()})
	}
	rules := []*CFD{
		MustNew("c1", []string{"A"}, "B", map[string]string{"A": "x", "B": "y"}),
		MustNew("c2", []string{"A", "C"}, "D", map[string]string{"A": "y", "C": "z", "D": "w"}),
		MustNew("v1", []string{"A"}, "C", map[string]string{"A": Wildcard, "C": Wildcard}),
		MustNew("v2", []string{"B", "D"}, "A", map[string]string{"B": "y", "D": Wildcard, "A": Wildcard}),
	}
	return db, rules
}

// recount verifies every engine counter against a freshly built engine.
func recount(t *testing.T, e *Engine, step int) {
	t.Helper()
	fresh, err := NewEngine(e.DB().Clone(), e.Rules())
	if err != nil {
		t.Fatal(err)
	}
	for ri := range e.Rules() {
		if e.Vio(ri) != fresh.Vio(ri) {
			t.Fatalf("step %d rule %s: incremental Vio %d != recount %d", step, e.Rules()[ri].ID, e.Vio(ri), fresh.Vio(ri))
		}
		if e.Sat(ri) != fresh.Sat(ri) {
			t.Fatalf("step %d rule %s: incremental Sat %d != recount %d", step, e.Rules()[ri].ID, e.Sat(ri), fresh.Sat(ri))
		}
		if e.Context(ri) != fresh.Context(ri) {
			t.Fatalf("step %d rule %s: incremental Context %d != recount %d", step, e.Rules()[ri].ID, e.Context(ri), fresh.Context(ri))
		}
	}
	if !reflect.DeepEqual(e.Dirty(), fresh.Dirty()) {
		t.Fatalf("step %d: dirty set %v != recount %v", step, e.Dirty(), fresh.Dirty())
	}
}

func TestEngineIncrementalMatchesRecount(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		db, rules := randomInstance(r, 30)
		e, err := NewEngine(db, rules)
		if err != nil {
			t.Fatal(err)
		}
		attrs := db.Schema.Attrs
		vals := []string{"x", "y", "z", "w"}
		for step := 0; step < 40; step++ {
			tid := r.Intn(db.N())
			attr := attrs[r.Intn(len(attrs))]
			e.Apply(tid, attr, vals[r.Intn(len(vals))])
			if step%8 == 0 {
				recount(t, e, step)
			}
		}
		recount(t, e, 40)
	}
}

func TestWhatIfMatchesApply(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		db, rules := randomInstance(r, 25)
		e, err := NewEngine(db, rules)
		if err != nil {
			t.Fatal(err)
		}
		attrs := db.Schema.Attrs
		vals := []string{"x", "y", "z", "w"}
		for step := 0; step < 60; step++ {
			tid := r.Intn(db.N())
			attr := attrs[r.Intn(len(attrs))]
			val := vals[r.Intn(len(vals))]

			predicted := e.WhatIf(tid, attr, val)

			clone := db.Clone()
			clone.Set(tid, attr, val)
			fresh, err := NewEngine(clone, rules)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range predicted {
				if got := fresh.Vio(d.Rule); got != d.Vio {
					t.Fatalf("trial %d step %d: WhatIf(%d,%s,%s) rule %s Vio=%d, actual %d",
						trial, step, tid, attr, val, rules[d.Rule].ID, d.Vio, got)
				}
				if got := fresh.Sat(d.Rule); got != d.Sat {
					t.Fatalf("trial %d step %d: WhatIf(%d,%s,%s) rule %s Sat=%d, actual %d",
						trial, step, tid, attr, val, rules[d.Rule].ID, d.Sat, got)
				}
			}
			// WhatIf must not have mutated anything.
			recount(t, e, step)
			// Occasionally actually apply to move to a new state.
			if step%3 == 0 {
				e.Apply(tid, attr, val)
			}
		}
	}
}

func TestWhatIfCoversInvolvedRulesOnly(t *testing.T) {
	db, rules := figure1(t)
	e, _ := NewEngine(db, rules)
	deltas := e.WhatIf(1, "CT", "Michigan City")
	want := len(e.RulesInvolving("CT"))
	if len(deltas) != want {
		t.Fatalf("WhatIf returned %d deltas, want %d", len(deltas), want)
	}
	for _, d := range deltas {
		if !rules[d.Rule].Involves("CT") {
			t.Errorf("delta for rule %s which does not involve CT", rules[d.Rule].ID)
		}
	}
}

func BenchmarkEngineBuild(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	db, rules := randomInstance(r, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEngine(db.Clone(), rules); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineApply(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	db, rules := randomInstance(r, 5000)
	e, err := NewEngine(db, rules)
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"x", "y", "z", "w"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(i%db.N(), "C", vals[i%len(vals)])
	}
}

func BenchmarkEngineWhatIf(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	db, rules := randomInstance(r, 5000)
	e, err := NewEngine(db, rules)
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"x", "y", "z", "w"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.WhatIf(i%db.N(), "C", vals[i%len(vals)])
	}
}

func ExampleEngine() {
	schema := relation.MustSchema("Customer", []string{"CT", "ZIP"})
	db := relation.NewDB(schema)
	db.MustInsert(relation.Tuple{"Westville", "46360"})
	db.MustInsert(relation.Tuple{"Michigan City", "46360"})
	rules := MustParse("phi: ZIP -> CT :: 46360 || Michigan City")
	e, _ := NewEngine(db, rules)
	fmt.Println("dirty:", e.Dirty(), "vio:", e.Vio(0))
	e.Apply(0, "CT", "Michigan City")
	fmt.Println("dirty:", e.Dirty(), "vio:", e.Vio(0))
	// Output:
	// dirty: [0] vio: 1
	// dirty: [] vio: 0
}

func TestEngineInsert(t *testing.T) {
	db, rules := figure1(t)
	e, err := NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	// A clean insert: consistent Michigan City tuple.
	tid, affected, err := e.Insert(relation.Tuple{"Ivan", "H1", "Redwood Dr", "Michigan City", "IN", "46360"})
	if err != nil {
		t.Fatal(err)
	}
	if tid != 8 || e.IsDirty(tid) {
		t.Fatalf("clean insert: tid=%d dirty=%v", tid, e.IsDirty(tid))
	}
	if !reflect.DeepEqual(affected, []int{8}) {
		t.Fatalf("affected = %v", affected)
	}
	recount(t, e, -1)

	// A dirty insert violating phi1.1 (wrong city for 46360).
	tid, _, err = e.Insert(relation.Tuple{"Judy", "H2", "Oak St", "Gary", "IN", "46360"})
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsDirty(tid) {
		t.Fatal("dirty insert not flagged")
	}
	recount(t, e, -2)

	// An insert that makes an existing clean tuple dirty: a new zip for
	// t0's street+city bucket under phi5? t0 is not Fort Wayne, so instead
	// extend the Sherden RD bucket with a fourth distinct zip.
	before := e.Vio(e.RuleIndex("phi5"))
	_, affected, err = e.Insert(relation.Tuple{"Kim", "H1", "Sherden RD", "Fort Wayne", "IN", "46000"})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Vio(e.RuleIndex("phi5")); got <= before {
		t.Fatalf("phi5 vio %d not increased from %d", got, before)
	}
	recount(t, e, -3)
	_ = affected

	// Arity errors are reported.
	if _, _, err := e.Insert(relation.Tuple{"too", "short"}); err == nil {
		t.Fatal("want arity error")
	}
}

func TestWouldViolateMatchesApply(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 12; trial++ {
		db, rules := randomInstance(r, 25)
		e, err := NewEngine(db, rules)
		if err != nil {
			t.Fatal(err)
		}
		attrs := db.Schema.Attrs
		vals := []string{"x", "y", "z", "w"}
		for step := 0; step < 60; step++ {
			tid := r.Intn(db.N())
			attr := attrs[r.Intn(len(attrs))]
			val := vals[r.Intn(len(vals))]
			for ri := range rules {
				if !rules[ri].Involves(attr) {
					continue
				}
				predicted := e.WouldViolate(ri, tid, attr, val)
				clone := db.Clone()
				clone.Set(tid, attr, val)
				fresh, err := NewEngine(clone, rules)
				if err != nil {
					t.Fatal(err)
				}
				if got := fresh.Violates(ri, tid); got != predicted {
					t.Fatalf("trial %d step %d: WouldViolate(%s, t%d, %s=%s) = %v, actual %v",
						trial, step, rules[ri].ID, tid, attr, val, predicted, got)
				}
			}
			if step%3 == 0 {
				e.Apply(tid, attr, val)
			}
		}
	}
}

func TestInBucketMajority(t *testing.T) {
	db, rules := figure1(t)
	e, _ := NewEngine(db, rules)
	phi5 := e.RuleIndex("phi5")
	// The Sherden RD bucket holds three distinct zips: nobody is a strict
	// majority.
	for _, tid := range []int{4, 5, 7} {
		if e.InBucketMajority(phi5, tid) {
			t.Errorf("t%d should not be a bucket majority (3-way split)", tid)
		}
	}
	// Make two of them agree: now those two are the majority, the third not.
	e.Apply(4, "ZIP", "46825")
	if !e.InBucketMajority(phi5, 4) || !e.InBucketMajority(phi5, 5) {
		t.Error("agreeing pair should be the strict majority")
	}
	if e.InBucketMajority(phi5, 7) {
		t.Error("odd one out should not be a majority")
	}
	// Constant rules never report a majority.
	if e.InBucketMajority(e.RuleIndex("phi1.1"), 1) {
		t.Error("constant rule should report no majority")
	}
	// Out-of-context tuples are not majorities either.
	if e.InBucketMajority(phi5, 0) {
		t.Error("out-of-context tuple reported as majority")
	}
}

func BenchmarkEngineInsert(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	db, rules := randomInstance(r, 1000)
	e, err := NewEngine(db, rules)
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"x", "y", "z", "w"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Insert(relation.Tuple{vals[i%4], vals[(i+1)%4], vals[(i+2)%4], vals[(i+3)%4]}); err != nil {
			b.Fatal(err)
		}
	}
}
