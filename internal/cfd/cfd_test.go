package cfd

import (
	"strings"
	"testing"

	"gdr/internal/relation"
)

func TestParseLineConstant(t *testing.T) {
	cs, err := ParseLine("phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("normalization produced %d rules, want 2", len(cs))
	}
	c := cs[0]
	if c.ID != "phi1.1" || c.RHS != "CT" || !c.Constant() {
		t.Fatalf("first rule = %v", c)
	}
	if c.TP["ZIP"] != "46360" || c.TP["CT"] != "Michigan City" {
		t.Fatalf("pattern = %v", c.TP)
	}
	c2 := cs[1]
	if c2.ID != "phi1.2" || c2.RHS != "STT" || c2.TP["STT"] != "IN" {
		t.Fatalf("second rule = %v", c2)
	}
}

func TestParseLineVariable(t *testing.T) {
	cs, err := ParseLine("phi5: STR, CT -> ZIP :: _, Fort Wayne || _")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("got %d rules", len(cs))
	}
	c := cs[0]
	if c.Constant() {
		t.Fatal("phi5 should be variable")
	}
	if c.TP["STR"] != Wildcard || c.TP["CT"] != "Fort Wayne" || c.TP["ZIP"] != Wildcard {
		t.Fatalf("pattern = %v", c.TP)
	}
	if c.ID != "phi5" {
		t.Fatalf("id = %q", c.ID)
	}
}

func TestParseLineUnnamed(t *testing.T) {
	cs, err := ParseLine("A -> B :: _ || _")
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].ID != "A->B" {
		t.Fatalf("auto id = %q", cs[0].ID)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"no arrow here :: x || y",
		"A -> B : x || y",
		"A -> B :: x | y",
		"A, B -> C :: onlyone || z",
		"A -> :: x ||",
		"A -> A :: _ || _",
		"A, A -> B :: _, _ || _",
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) should fail", line)
		}
	}
}

func TestParseMultiline(t *testing.T) {
	text := `
# rules for the running example
phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN

phi5: STR, CT -> ZIP :: _, Fort Wayne || _
`
	cs, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("got %d rules, want 3", len(cs))
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, line := range []string{
		"phi4.1: ZIP -> CT :: 46391 || Westville",
		"phi5: STR, CT -> ZIP :: _, Fort Wayne || _",
	} {
		cs, err := ParseLine(line)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseLine(cs[0].String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", cs[0].String(), err)
		}
		if back[0].String() != cs[0].String() {
			t.Errorf("round trip: %q vs %q", back[0].String(), cs[0].String())
		}
	}
}

func TestInvolvesAndAttrs(t *testing.T) {
	c := MustNew("r", []string{"A", "B"}, "C", map[string]string{"A": "_", "B": "x", "C": "_"})
	for _, a := range []string{"A", "B", "C"} {
		if !c.Involves(a) {
			t.Errorf("Involves(%s) = false", a)
		}
	}
	if c.Involves("D") {
		t.Error("Involves(D) = true")
	}
	attrs := c.Attrs()
	if len(attrs) != 3 || attrs[2] != "C" {
		t.Errorf("Attrs = %v", attrs)
	}
}

func TestValidateAgainstSchema(t *testing.T) {
	s := relation.MustSchema("R", []string{"A", "B"})
	good := MustNew("r1", []string{"A"}, "B", map[string]string{"A": "_", "B": "_"})
	if err := good.Validate(s); err != nil {
		t.Fatal(err)
	}
	bad := MustNew("r2", []string{"A"}, "C", map[string]string{"A": "_", "C": "_"})
	if err := bad.Validate(s); err == nil {
		t.Fatal("want schema validation error")
	}
}

func TestMatchLHS(t *testing.T) {
	s := relation.MustSchema("R", []string{"STR", "CT", "ZIP"})
	c := MustParse("STR, CT -> ZIP :: _, Fort Wayne || _")[0]
	if !c.MatchLHS(s, relation.Tuple{"Sherden RD", "Fort Wayne", "46825"}) {
		t.Error("tuple in context should match")
	}
	if c.MatchLHS(s, relation.Tuple{"Sherden RD", "Westville", "46825"}) {
		t.Error("tuple outside context should not match")
	}
}
