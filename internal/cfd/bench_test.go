package cfd_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// benchEngine builds a mid-sized synthetic instance with both variable and
// constant rules, mirroring the shape of the paper's workloads: a few
// attributes, skewed value distributions, and rules whose contexts cover most
// of the instance.
func benchEngine(b *testing.B, n int) *cfd.Engine {
	b.Helper()
	schema := relation.MustSchema("Bench", []string{"Street", "City", "State", "Zip"})
	db := relation.NewDB(schema)
	rng := rand.New(rand.NewSource(42))
	cities := []string{"Michigan City", "Westville", "Fort Wayne", "Gary", "Portage"}
	zips := []string{"46360", "46391", "46825", "46402", "46368"}
	for i := 0; i < n; i++ {
		ci := rng.Intn(len(cities))
		zi := ci
		if rng.Intn(10) == 0 { // dirty: zip disagrees with city
			zi = rng.Intn(len(zips))
		}
		db.MustInsert(relation.Tuple{
			fmt.Sprintf("%d Oak St", rng.Intn(200)),
			cities[ci],
			"IN",
			zips[zi],
		})
	}
	rules := cfd.MustParse(`
phi1: Zip -> City :: _ || _
phi2: City -> Zip :: _ || _
phi3: Zip -> City :: 46360 || Michigan City
phi4: Zip -> State :: 46391 || IN
`)
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkWhatIf measures the Eq. 6 hypothetical evaluation — the hot call
// of VOI benefit scoring — across a spread of tuples and candidate values.
func BenchmarkWhatIf(b *testing.B) {
	e := benchEngine(b, 5000)
	db := e.DB()
	n := db.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := i % n
		deltas := e.WhatIf(tid, "City", "Michigan City")
		if len(deltas) == 0 {
			b.Fatal("no deltas")
		}
	}
}

// BenchmarkWhatIfRHS isolates the variable-rule RHS edit path (same bucket,
// different value), the common case when scoring scenario-2 candidates.
func BenchmarkWhatIfRHS(b *testing.B) {
	e := benchEngine(b, 5000)
	db := e.DB()
	n := db.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := i % n
		deltas := e.WhatIf(tid, "Zip", "46360")
		if len(deltas) == 0 {
			b.Fatal("no deltas")
		}
	}
}

// BenchmarkApply measures incremental index maintenance under cell edits
// (each iteration toggles a cell between two values).
func BenchmarkApply(b *testing.B) {
	e := benchEngine(b, 5000)
	db := e.DB()
	n := db.N()
	vals := [2]string{"Michigan City", "Westville"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// (i + i/n) alternates per tuple across passes, so every call is a
		// real value change, not the old == value fast path.
		e.Apply(i%n, "City", vals[(i+i/n)%2])
	}
}
