// Package cfd implements Conditional Functional Dependencies — the
// data-quality rule language Σ used by GDR — together with an incremental
// violation engine that maintains, per rule, the violation count vio(D,{φ})
// of Definition 1, the satisfaction count |D ⊨ φ|, the rule context |D(φ)|
// and the global DirtyTuples set, all updated in O(1)-ish time per cell edit.
package cfd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gdr/internal/relation"
)

// Wildcard is the pattern entry '−' of the paper: the attribute may take any
// value (a "variable" position in the tableau).
const Wildcard = "_"

// CFD is a conditional functional dependency in normal form: a single RHS
// attribute and a single pattern tuple, φ : (LHS → RHS, tp). Multi-RHS rules
// are normalized by Parse / Normalize into several CFDs.
type CFD struct {
	// ID names the rule (e.g. "phi1"); used in diagnostics and reports.
	ID string
	// LHS lists the determinant attributes X.
	LHS []string
	// RHS is the single dependent attribute A.
	RHS string
	// TP maps every attribute in LHS ∪ {RHS} to its pattern value: a
	// constant from the attribute's domain, or Wildcard.
	TP map[string]string
}

// New builds a normal-form CFD and validates its shape (every LHS attribute
// and the RHS must have a pattern entry; RHS must not appear in LHS).
func New(id string, lhs []string, rhs string, tp map[string]string) (*CFD, error) {
	c := &CFD{ID: id, LHS: append([]string(nil), lhs...), RHS: rhs, TP: make(map[string]string, len(tp))}
	for k, v := range tp {
		c.TP[k] = v
	}
	if len(c.LHS) == 0 {
		return nil, fmt.Errorf("cfd %s: empty LHS", id)
	}
	seen := make(map[string]bool, len(lhs))
	for _, a := range c.LHS {
		if seen[a] {
			return nil, fmt.Errorf("cfd %s: duplicate LHS attribute %q", id, a)
		}
		seen[a] = true
		if _, ok := c.TP[a]; !ok {
			return nil, fmt.Errorf("cfd %s: missing pattern for LHS attribute %q", id, a)
		}
	}
	if seen[rhs] {
		return nil, fmt.Errorf("cfd %s: RHS %q also appears in LHS", id, rhs)
	}
	if _, ok := c.TP[rhs]; !ok {
		return nil, fmt.Errorf("cfd %s: missing pattern for RHS attribute %q", id, rhs)
	}
	if len(c.TP) != len(lhs)+1 {
		return nil, fmt.Errorf("cfd %s: pattern mentions attributes outside LHS ∪ RHS", id)
	}
	return c, nil
}

// MustNew is New for statically known-good rules; it panics on error.
func MustNew(id string, lhs []string, rhs string, tp map[string]string) *CFD {
	c, err := New(id, lhs, rhs, tp)
	if err != nil {
		panic(err)
	}
	return c
}

// Constant reports whether φ is a constant CFD (tp[RHS] ≠ '−'). Constant
// rules are violated by single tuples; variable rules, like plain FDs, are
// violated by pairs of tuples.
func (c *CFD) Constant() bool { return c.TP[c.RHS] != Wildcard }

// Attrs returns LHS ∪ {RHS} in declaration order.
func (c *CFD) Attrs() []string {
	out := make([]string, 0, len(c.LHS)+1)
	out = append(out, c.LHS...)
	return append(out, c.RHS)
}

// Involves reports whether attr appears in the rule.
func (c *CFD) Involves(attr string) bool {
	if attr == c.RHS {
		return true
	}
	for _, a := range c.LHS {
		if a == attr {
			return true
		}
	}
	return false
}

// MatchValue reports whether value matches the pattern entry p
// (the ≼ operator of the paper restricted to one position).
func MatchValue(value, p string) bool { return p == Wildcard || value == p }

// MatchLHS reports whether tuple t matches the LHS pattern, t[X] ≼ tp[X].
func (c *CFD) MatchLHS(s *relation.Schema, t relation.Tuple) bool {
	for _, a := range c.LHS {
		if !MatchValue(t[s.MustIndex(a)], c.TP[a]) {
			return false
		}
	}
	return true
}

// String renders the rule in the parseable text format, e.g.
//
//	phi1: ZIP -> CT :: 46360 || Michigan City
func (c *CFD) String() string {
	lhsPat := make([]string, len(c.LHS))
	for i, a := range c.LHS {
		lhsPat[i] = c.TP[a]
	}
	return fmt.Sprintf("%s: %s -> %s :: %s || %s",
		c.ID, strings.Join(c.LHS, ", "), c.RHS, strings.Join(lhsPat, ", "), c.TP[c.RHS])
}

// Validate checks that every attribute the rule mentions exists in the schema.
func (c *CFD) Validate(s *relation.Schema) error {
	for _, a := range c.Attrs() {
		if _, ok := s.Index(a); !ok {
			return fmt.Errorf("cfd %s: attribute %q not in schema %q", c.ID, a, s.Relation)
		}
	}
	return nil
}

// Normalize splits a rule with a multi-attribute RHS into normal-form CFDs,
// one per RHS attribute, following Section 1.2 of the paper. rhs and rhsPat
// are positionally aligned.
func Normalize(id string, lhs []string, lhsPat []string, rhs []string, rhsPat []string) ([]*CFD, error) {
	if len(lhs) != len(lhsPat) {
		return nil, fmt.Errorf("cfd %s: %d LHS attributes but %d LHS pattern values", id, len(lhs), len(lhsPat))
	}
	if len(rhs) != len(rhsPat) {
		return nil, fmt.Errorf("cfd %s: %d RHS attributes but %d RHS pattern values", id, len(rhs), len(rhsPat))
	}
	if len(rhs) == 0 {
		return nil, fmt.Errorf("cfd %s: empty RHS", id)
	}
	var out []*CFD
	for i, a := range rhs {
		tp := make(map[string]string, len(lhs)+1)
		for j, l := range lhs {
			tp[l] = lhsPat[j]
		}
		tp[a] = rhsPat[i]
		cid := id
		if len(rhs) > 1 {
			cid = fmt.Sprintf("%s.%d", id, i+1)
		}
		c, err := New(cid, lhs, a, tp)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ParseLine parses one rule in the text format
//
//	[name:] A1, A2 -> B1, B2 :: p1, p2 || q1, q2
//
// where pattern value "_" is the wildcard. A multi-attribute RHS is split
// into normal-form CFDs. Whitespace around separators is ignored.
func ParseLine(line string) ([]*CFD, error) {
	orig := line
	name := ""
	if i := strings.Index(line, ":"); i >= 0 && !strings.Contains(line[:i], "->") {
		name = strings.TrimSpace(line[:i])
		line = line[i+1:]
	}
	arrow := strings.Index(line, "->")
	if arrow < 0 {
		return nil, fmt.Errorf("cfd: missing '->' in rule %q", orig)
	}
	sep := strings.Index(line, "::")
	if sep < arrow {
		return nil, fmt.Errorf("cfd: missing '::' pattern separator in rule %q", orig)
	}
	lhs := splitList(line[:arrow])
	rhs := splitList(line[arrow+2 : sep])
	pat := line[sep+2:]
	bar := strings.Index(pat, "||")
	if bar < 0 {
		return nil, fmt.Errorf("cfd: missing '||' between LHS and RHS patterns in rule %q", orig)
	}
	lhsPat := splitList(pat[:bar])
	rhsPat := splitList(pat[bar+2:])
	if name == "" {
		name = fmt.Sprintf("%s->%s", strings.Join(lhs, ","), strings.Join(rhs, ","))
	}
	return Normalize(name, lhs, lhsPat, rhs, rhsPat)
}

// Parse reads rules from r, one per line. Blank lines and lines starting
// with '#' are skipped.
func Parse(r io.Reader) ([]*CFD, error) {
	var out []*CFD
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cs, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, cs...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MustParse parses rules from a string and panics on error; intended for
// tests and examples with literal rule sets.
func MustParse(text string) []*CFD {
	cs, err := Parse(strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	return cs
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
