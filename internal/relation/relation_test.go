package relation

import (
	"bytes"
	"strings"
	"testing"
)

func custSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("Customer", []string{"Name", "SRC", "STR", "CT", "STT", "ZIP"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDuplicateAttr(t *testing.T) {
	if _, err := NewSchema("R", []string{"A", "B", "A"}); err == nil {
		t.Fatal("want error for duplicate attribute")
	}
}

func TestSchemaIndex(t *testing.T) {
	s := custSchema(t)
	if i, ok := s.Index("CT"); !ok || i != 3 {
		t.Fatalf("Index(CT) = %d,%v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Fatal("Index(Nope) should not exist")
	}
	if s.Arity() != 6 {
		t.Fatalf("Arity = %d", s.Arity())
	}
}

func TestMustIndexPanics(t *testing.T) {
	s := custSchema(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex should panic for unknown attribute")
		}
	}()
	s.MustIndex("missing")
}

func TestInsertGetSet(t *testing.T) {
	db := NewDB(custSchema(t))
	id, err := db.Insert(Tuple{"Jim", "H1", "Redwood", "Westville", "IN", "46360"})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || db.N() != 1 {
		t.Fatalf("id=%d n=%d", id, db.N())
	}
	if got := db.Get(0, "CT"); got != "Westville" {
		t.Fatalf("Get CT = %q", got)
	}
	db.Set(0, "CT", "Michigan City")
	if got := db.Get(0, "CT"); got != "Michigan City" {
		t.Fatalf("after Set, CT = %q", got)
	}
	if _, err := db.Insert(Tuple{"too", "short"}); err == nil {
		t.Fatal("want arity error")
	}
}

func TestWeights(t *testing.T) {
	db := NewDB(custSchema(t))
	db.MustInsert(Tuple{"a", "b", "c", "d", "e", "f"})
	if db.Weight(0) != 1 {
		t.Fatalf("default weight = %v", db.Weight(0))
	}
	db.SetWeight(0, 2.5)
	if db.Weight(0) != 2.5 {
		t.Fatalf("weight = %v", db.Weight(0))
	}
}

func TestDomainTracksSets(t *testing.T) {
	db := NewDB(custSchema(t))
	db.MustInsert(Tuple{"a", "H1", "s", "Westville", "IN", "46391"})
	db.MustInsert(Tuple{"b", "H2", "s", "Westville", "IN", "46360"})
	db.MustInsert(Tuple{"c", "H2", "s", "Fort Wayne", "IN", "46825"})

	dom := db.Domain("CT")
	if len(dom) != 2 || dom[0] != "Fort Wayne" || dom[1] != "Westville" {
		t.Fatalf("Domain(CT) = %v", dom)
	}
	if got := db.ValueCount("CT", "Westville"); got != 2 {
		t.Fatalf("ValueCount = %d", got)
	}
	db.Set(0, "CT", "Fort Wayne")
	if got := db.ValueCount("CT", "Westville"); got != 1 {
		t.Fatalf("ValueCount after Set = %d", got)
	}
	if got := len(db.Domain("SRC")); got != 2 {
		t.Fatalf("Domain(SRC) size = %d", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	db := NewDB(custSchema(t))
	db.MustInsert(Tuple{"a", "H1", "s", "Westville", "IN", "46391"})
	cp := db.Clone()
	cp.Set(0, "CT", "Fort Wayne")
	if db.Get(0, "CT") != "Westville" {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDiffCells(t *testing.T) {
	db := NewDB(custSchema(t))
	db.MustInsert(Tuple{"a", "H1", "s", "Westville", "IN", "46391"})
	other := db.Clone()
	other.Set(0, "ZIP", "46360")
	diff, err := db.DiffCells(other)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 1 || diff[0] != [2]int{0, 5} {
		t.Fatalf("diff = %v", diff)
	}
	small := NewDB(custSchema(t))
	if _, err := db.DiffCells(small); err == nil {
		t.Fatal("want error comparing different sizes")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDB(custSchema(t))
	db.MustInsert(Tuple{"a, with comma", "H1", "s", "Westville", "IN", "46391"})
	db.MustInsert(Tuple{`quote "q"`, "H2", "s", "Fort Wayne", "IN", "46825"})

	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "Customer")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 {
		t.Fatalf("N = %d", back.N())
	}
	if back.Get(0, "Name") != "a, with comma" || back.Get(1, "Name") != `quote "q"` {
		t.Fatalf("round trip mangled values: %q %q", back.Get(0, "Name"), back.Get(1, "Name"))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "R"); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n"), "R"); err == nil {
		t.Fatal("want error on short record")
	}
	if _, err := ReadCSV(strings.NewReader("A,B,A\n"), "R"); err == nil {
		t.Fatal("want error on duplicate header")
	}
}
