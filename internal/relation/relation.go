// Package relation implements the in-memory relational substrate GDR repairs:
// schemas, tuples, a mutable cell-addressed database instance, per-attribute
// value domains and tuple weights (Definition 1 of the paper allows scaling a
// tuple's violations by a business-importance weight).
//
// The paper stored records in MySQL and kept all repair state application
// side; here the whole instance lives in memory so the violation engine in
// package cfd can maintain incremental indexes over it.
package relation

import (
	"fmt"
	"sort"
)

// Schema describes a relation: its name and ordered attribute list.
type Schema struct {
	Relation string
	Attrs    []string
	pos      map[string]int
}

// NewSchema builds a schema for the named relation over the given attributes.
// Attribute names must be unique.
func NewSchema(relationName string, attrs []string) (*Schema, error) {
	s := &Schema{Relation: relationName, Attrs: append([]string(nil), attrs...), pos: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.pos[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q in schema %q", a, relationName)
		}
		s.pos[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known-good schemas; it panics on error.
func MustSchema(relationName string, attrs []string) *Schema {
	s, err := NewSchema(relationName, attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of attr in the schema and whether it exists.
func (s *Schema) Index(attr string) (int, bool) {
	i, ok := s.pos[attr]
	return i, ok
}

// MustIndex returns the position of attr, panicking if the attribute is not
// part of the schema. It is intended for internal call sites that have
// already validated rule/schema compatibility.
func (s *Schema) MustIndex(attr string) int {
	i, ok := s.pos[attr]
	if !ok {
		panic(fmt.Sprintf("relation: attribute %q not in schema %q", attr, s.Relation))
	}
	return i
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// Tuple is a row of attribute values, positionally aligned with the schema.
type Tuple []string

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	return append(Tuple(nil), t...)
}

// DB is a mutable database instance of a single relation. Tuples are
// addressed by dense integer ids (their insertion order).
//
// DB is not safe for concurrent mutation; GDR sessions own their instance.
type DB struct {
	Schema *Schema

	tuples  []Tuple
	weights []float64

	domains    []map[string]int // per attribute: value -> count
	domainsUp  bool
	domainList [][]string // cached sorted distinct values
}

// NewDB returns an empty instance over the schema.
func NewDB(s *Schema) *DB {
	return &DB{Schema: s}
}

// Insert appends a tuple and returns its id. The tuple is copied; it must
// have exactly Schema.Arity() values.
func (db *DB) Insert(t Tuple) (int, error) {
	if len(t) != db.Schema.Arity() {
		return 0, fmt.Errorf("relation: tuple arity %d does not match schema %q arity %d", len(t), db.Schema.Relation, db.Schema.Arity())
	}
	db.tuples = append(db.tuples, t.Clone())
	db.weights = append(db.weights, 1)
	db.domainsUp = false
	return len(db.tuples) - 1, nil
}

// MustInsert is Insert for known-good tuples; it panics on arity mismatch.
func (db *DB) MustInsert(t Tuple) int {
	id, err := db.Insert(t)
	if err != nil {
		panic(err)
	}
	return id
}

// N returns the number of tuples.
func (db *DB) N() int { return len(db.tuples) }

// Tuple returns the tuple with the given id. The returned slice is the live
// storage; callers must not mutate it directly (use Set).
func (db *DB) Tuple(tid int) Tuple { return db.tuples[tid] }

// Get returns the value of attr in tuple tid.
func (db *DB) Get(tid int, attr string) string {
	return db.tuples[tid][db.Schema.MustIndex(attr)]
}

// GetAt returns the value at attribute position ai in tuple tid.
func (db *DB) GetAt(tid, ai int) string { return db.tuples[tid][ai] }

// Set updates one cell. It invalidates the domain cache; violation indexes
// are maintained by the cfd.Engine wrapper, which is the only component that
// should mutate a database under repair.
func (db *DB) Set(tid int, attr, value string) {
	db.tuples[tid][db.Schema.MustIndex(attr)] = value
	db.domainsUp = false
}

// SetAt updates one cell by attribute position.
func (db *DB) SetAt(tid, ai int, value string) {
	db.tuples[tid][ai] = value
	db.domainsUp = false
}

// Weight returns the business-importance weight of a tuple (default 1).
func (db *DB) Weight(tid int) float64 { return db.weights[tid] }

// SetWeight sets the business-importance weight of a tuple.
func (db *DB) SetWeight(tid int, w float64) { db.weights[tid] = w }

// Clone deep-copies the instance (tuples and weights; caches are rebuilt
// lazily).
func (db *DB) Clone() *DB {
	out := NewDB(db.Schema)
	out.tuples = make([]Tuple, len(db.tuples))
	for i, t := range db.tuples {
		out.tuples[i] = t.Clone()
	}
	out.weights = append([]float64(nil), db.weights...)
	return out
}

func (db *DB) refreshDomains() {
	if db.domainsUp {
		return
	}
	n := db.Schema.Arity()
	db.domains = make([]map[string]int, n)
	db.domainList = make([][]string, n)
	for ai := 0; ai < n; ai++ {
		db.domains[ai] = make(map[string]int)
	}
	for _, t := range db.tuples {
		for ai, v := range t {
			db.domains[ai][v]++
		}
	}
	for ai := 0; ai < n; ai++ {
		vals := make([]string, 0, len(db.domains[ai]))
		for v := range db.domains[ai] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		db.domainList[ai] = vals
	}
	db.domainsUp = true
}

// Domain returns the sorted distinct values currently stored under attr.
// The returned slice must not be mutated.
func (db *DB) Domain(attr string) []string {
	db.refreshDomains()
	return db.domainList[db.Schema.MustIndex(attr)]
}

// ValueCount returns how many tuples currently hold value under attr.
func (db *DB) ValueCount(attr, value string) int {
	db.refreshDomains()
	return db.domains[db.Schema.MustIndex(attr)][value]
}

// DiffCells returns the list of cells (tid, attribute index) on which db and
// other disagree. Both instances must share a schema and size; it is used to
// measure repair precision/recall against a ground-truth instance.
func (db *DB) DiffCells(other *DB) ([][2]int, error) {
	if db.Schema.Arity() != other.Schema.Arity() || db.N() != other.N() {
		return nil, fmt.Errorf("relation: instances not comparable (%dx%d vs %dx%d)",
			db.N(), db.Schema.Arity(), other.N(), other.Schema.Arity())
	}
	var out [][2]int
	for tid := range db.tuples {
		for ai := range db.tuples[tid] {
			if db.tuples[tid][ai] != other.tuples[tid][ai] {
				out = append(out, [2]int{tid, ai})
			}
		}
	}
	return out, nil
}
