// Package relation implements the in-memory relational substrate GDR repairs:
// schemas, tuples, a mutable cell-addressed database instance, per-attribute
// value domains and tuple weights (Definition 1 of the paper allows scaling a
// tuple's violations by a business-importance weight).
//
// Storage is dictionary-encoded: each attribute owns a Dict interning its
// distinct values, and tuples are stored as rows of fixed-width value ids
// (VID). The violation engine, update generator and VOI ranker operate on
// VIDs directly — string hashing and comparison in their hot paths become
// word operations — while the string-facing API (Get/Set/Tuple/Domain) stays
// unchanged for loaders, CLIs and examples.
//
// The paper stored records in MySQL and kept all repair state application
// side; here the whole instance lives in memory so the violation engine in
// package cfd can maintain incremental indexes over it.
package relation

import (
	"fmt"
	"sort"
)

// Schema describes a relation: its name and ordered attribute list.
type Schema struct {
	Relation string
	Attrs    []string
	pos      map[string]int
}

// NewSchema builds a schema for the named relation over the given attributes.
// Attribute names must be unique.
func NewSchema(relationName string, attrs []string) (*Schema, error) {
	s := &Schema{Relation: relationName, Attrs: append([]string(nil), attrs...), pos: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.pos[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q in schema %q", a, relationName)
		}
		s.pos[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known-good schemas; it panics on error.
func MustSchema(relationName string, attrs []string) *Schema {
	s, err := NewSchema(relationName, attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of attr in the schema and whether it exists.
func (s *Schema) Index(attr string) (int, bool) {
	i, ok := s.pos[attr]
	return i, ok
}

// MustIndex returns the position of attr, panicking if the attribute is not
// part of the schema. It is intended for internal call sites that have
// already validated rule/schema compatibility.
func (s *Schema) MustIndex(attr string) int {
	i, ok := s.pos[attr]
	if !ok {
		panic(fmt.Sprintf("relation: attribute %q not in schema %q", attr, s.Relation))
	}
	return i
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// Tuple is a row of attribute values, positionally aligned with the schema.
type Tuple []string

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	return append(Tuple(nil), t...)
}

// VID is an interned value id: the dense index of a value in its attribute's
// dictionary. Ids are assigned in first-appearance order and never reused or
// remapped, so a VID obtained once stays valid for the instance's lifetime.
type VID uint32

// AppendVID appends v's fixed-width (4-byte little-endian) encoding to buf
// and returns it. It is the one encoding used for every composite VID key in
// the library — violation-engine bucket keys, co-occurrence index keys — so
// the layout lives in a single place.
func AppendVID(buf []byte, v VID) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// KeyBufSize is the recommended size for stack scratch buffers composite VID
// keys are built in: 4 bytes per attribute, so keys over up to 16 attributes
// stay allocation-free (longer keys spill to the heap, still correct).
const KeyBufSize = 64

// Dict interns the distinct values of one attribute. Values are only ever
// appended; interning the same string twice returns the same id.
type Dict struct {
	vals []string
	ids  map[string]VID
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]VID)}
}

// ID interns v, assigning the next dense id on first appearance.
func (d *Dict) ID(v string) VID {
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := VID(len(d.vals))
	d.vals = append(d.vals, v)
	d.ids[v] = id
	return id
}

// Lookup returns v's id without interning it.
func (d *Dict) Lookup(v string) (VID, bool) {
	id, ok := d.ids[v]
	return id, ok
}

// Val returns the string a VID stands for.
func (d *Dict) Val(id VID) string { return d.vals[id] }

// Len returns the number of interned values.
func (d *Dict) Len() int { return len(d.vals) }

func (d *Dict) clone() *Dict {
	out := &Dict{vals: append([]string(nil), d.vals...), ids: make(map[string]VID, len(d.ids))}
	for v, id := range d.ids {
		out.ids[v] = id
	}
	return out
}

// DB is a mutable database instance of a single relation. Tuples are
// addressed by dense integer ids (their insertion order) and stored as
// dictionary-encoded VID rows. Per-attribute value counts are maintained
// incrementally on every Insert/Set, so domain statistics never require a
// full rescan.
//
// DB is not safe for concurrent mutation; GDR sessions own their instance.
type DB struct {
	Schema *Schema

	rows    [][]VID
	weights []float64

	dicts  []*Dict
	counts [][]int // per attribute, indexed by VID: tuples currently holding the value

	domainList [][]string // cached sorted distinct values (count > 0)
	domainUp   []bool     // per-attribute validity of domainList
}

// NewDB returns an empty instance over the schema.
func NewDB(s *Schema) *DB {
	n := s.Arity()
	db := &DB{
		Schema:     s,
		dicts:      make([]*Dict, n),
		counts:     make([][]int, n),
		domainList: make([][]string, n),
		domainUp:   make([]bool, n),
	}
	for ai := 0; ai < n; ai++ {
		db.dicts[ai] = NewDict()
	}
	return db
}

// Insert appends a tuple and returns its id. The tuple values are interned;
// it must have exactly Schema.Arity() values.
func (db *DB) Insert(t Tuple) (int, error) {
	if len(t) != db.Schema.Arity() {
		return 0, fmt.Errorf("relation: tuple arity %d does not match schema %q arity %d", len(t), db.Schema.Relation, db.Schema.Arity())
	}
	row := make([]VID, len(t))
	for ai, v := range t {
		row[ai] = db.Intern(ai, v)
		db.bumpCount(ai, row[ai], 1)
	}
	db.rows = append(db.rows, row)
	db.weights = append(db.weights, 1)
	return len(db.rows) - 1, nil
}

// MustInsert is Insert for known-good tuples; it panics on arity mismatch.
func (db *DB) MustInsert(t Tuple) int {
	id, err := db.Insert(t)
	if err != nil {
		panic(err)
	}
	return id
}

// N returns the number of tuples.
func (db *DB) N() int { return len(db.rows) }

// Row returns tuple tid's dictionary-encoded row. The returned slice is the
// live storage; callers must not mutate it directly (use Set/SetVIDAt).
func (db *DB) Row(tid int) []VID { return db.rows[tid] }

// Tuple materializes tuple tid as strings. The returned slice is a fresh
// copy owned by the caller.
func (db *DB) Tuple(tid int) Tuple {
	row := db.rows[tid]
	out := make(Tuple, len(row))
	for ai, v := range row {
		out[ai] = db.dicts[ai].vals[v]
	}
	return out
}

// Get returns the value of attr in tuple tid.
func (db *DB) Get(tid int, attr string) string {
	ai := db.Schema.MustIndex(attr)
	return db.dicts[ai].vals[db.rows[tid][ai]]
}

// GetAt returns the value at attribute position ai in tuple tid.
func (db *DB) GetAt(tid, ai int) string { return db.dicts[ai].vals[db.rows[tid][ai]] }

// VIDAt returns the interned id at attribute position ai in tuple tid.
func (db *DB) VIDAt(tid, ai int) VID { return db.rows[tid][ai] }

// Dict returns the dictionary of attribute position ai. Callers may intern
// into it (via DB.Intern) but must not assume ids beyond Len() exist.
func (db *DB) Dict(ai int) *Dict { return db.dicts[ai] }

// Intern returns the id of val under attribute position ai, adding it to the
// dictionary if new. Interning alone does not make the value part of the
// domain: Domain/ValueCount only report values some tuple currently holds.
func (db *DB) Intern(ai int, val string) VID {
	d := db.dicts[ai]
	if id, ok := d.ids[val]; ok {
		return id
	}
	id := d.ID(val)
	db.counts[ai] = append(db.counts[ai], 0)
	return id
}

// LookupVID returns the id of val under attribute position ai without
// interning it.
func (db *DB) LookupVID(ai int, val string) (VID, bool) {
	return db.dicts[ai].Lookup(val)
}

// syncCounts grows the count slice of attribute ai to cover every id in its
// dictionary — ids can outpace counts when a caller interned through the
// Dict directly instead of DB.Intern.
func (db *DB) syncCounts(ai int) {
	if n := db.dicts[ai].Len(); len(db.counts[ai]) < n {
		db.counts[ai] = append(db.counts[ai], make([]int, n-len(db.counts[ai]))...)
	}
}

// bumpCount adjusts the count of one value and invalidates the sorted domain
// cache only when the distinct-value set actually changed (a count crossing
// zero), keeping Set/SetAt free of O(N·arity) domain rebuilds.
func (db *DB) bumpCount(ai int, v VID, delta int) {
	if int(v) >= len(db.counts[ai]) {
		db.syncCounts(ai)
	}
	counts := db.counts[ai]
	was := counts[v]
	counts[v] = was + delta
	if (was == 0) != (counts[v] == 0) {
		db.domainUp[ai] = false
	}
}

// Set updates one cell. Violation indexes are maintained by the cfd.Engine
// wrapper, which is the only component that should mutate a database under
// repair; domain counts are maintained here, incrementally.
func (db *DB) Set(tid int, attr, value string) {
	ai := db.Schema.MustIndex(attr)
	db.SetVIDAt(tid, ai, db.Intern(ai, value))
}

// SetAt updates one cell by attribute position.
func (db *DB) SetAt(tid, ai int, value string) {
	db.SetVIDAt(tid, ai, db.Intern(ai, value))
}

// SetVIDAt updates one cell to an already-interned value id. It panics on an
// id outside the attribute's dictionary — notably the engine's sentinel ids
// (FreshVID), which are only meaningful to hypothetical, read-only calls and
// would poison the stored row.
func (db *DB) SetVIDAt(tid, ai int, v VID) {
	if int(v) >= db.dicts[ai].Len() {
		panic(fmt.Sprintf("relation: VID %d not in dictionary of %q (len %d); intern values before storing them",
			v, db.Schema.Attrs[ai], db.dicts[ai].Len()))
	}
	old := db.rows[tid][ai]
	if old == v {
		return
	}
	db.rows[tid][ai] = v
	db.bumpCount(ai, old, -1)
	db.bumpCount(ai, v, 1)
}

// Weight returns the business-importance weight of a tuple (default 1).
func (db *DB) Weight(tid int) float64 { return db.weights[tid] }

// SetWeight sets the business-importance weight of a tuple.
func (db *DB) SetWeight(tid int, w float64) { db.weights[tid] = w }

// Clone deep-copies the instance: rows, weights, dictionaries and counts.
// VIDs remain valid across the copy (dictionaries are cloned id-for-id), so
// encoded state derived from one instance can be compared against its clone.
func (db *DB) Clone() *DB {
	out := NewDB(db.Schema)
	out.rows = make([][]VID, len(db.rows))
	for i, r := range db.rows {
		out.rows[i] = append([]VID(nil), r...)
	}
	out.weights = append([]float64(nil), db.weights...)
	for ai := range db.dicts {
		out.dicts[ai] = db.dicts[ai].clone()
		out.counts[ai] = append([]int(nil), db.counts[ai]...)
	}
	return out
}

// Domain returns the sorted distinct values currently stored under attr.
// The returned slice must not be mutated.
func (db *DB) Domain(attr string) []string {
	ai := db.Schema.MustIndex(attr)
	if !db.domainUp[ai] {
		d := db.dicts[ai]
		counts := db.counts[ai]
		vals := make([]string, 0, len(counts))
		for v, c := range counts {
			if c > 0 {
				vals = append(vals, d.vals[v])
			}
		}
		sort.Strings(vals)
		db.domainList[ai] = vals
		db.domainUp[ai] = true
	}
	return db.domainList[ai]
}

// ValueCount returns how many tuples currently hold value under attr.
func (db *DB) ValueCount(attr, value string) int {
	ai := db.Schema.MustIndex(attr)
	id, ok := db.dicts[ai].Lookup(value)
	if !ok {
		return 0
	}
	return db.CountVID(ai, id)
}

// CountVID returns how many tuples currently hold the value with id v under
// attribute position ai.
func (db *DB) CountVID(ai int, v VID) int {
	if int(v) >= len(db.counts[ai]) {
		return 0
	}
	return db.counts[ai][v]
}

// DiffCells returns the list of cells (tid, attribute index) on which db and
// other disagree. Both instances must share a schema and size; it is used to
// measure repair precision/recall against a ground-truth instance. The two
// instances may have independent dictionaries, so cells are compared by
// value, not by id.
func (db *DB) DiffCells(other *DB) ([][2]int, error) {
	if db.Schema.Arity() != other.Schema.Arity() || db.N() != other.N() {
		return nil, fmt.Errorf("relation: instances not comparable (%dx%d vs %dx%d)",
			db.N(), db.Schema.Arity(), other.N(), other.Schema.Arity())
	}
	var out [][2]int
	for tid := range db.rows {
		for ai := range db.rows[tid] {
			if db.dicts[ai].vals[db.rows[tid][ai]] != other.dicts[ai].vals[other.rows[tid][ai]] {
				out = append(out, [2]int{tid, ai})
			}
		}
	}
	return out, nil
}
