package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV loads a relation from CSV. The first record is the header and
// becomes the schema attribute list; relationName names the relation.
func ReadCSV(r io.Reader, relationName string) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	schema, err := NewSchema(relationName, header)
	if err != nil {
		return nil, err
	}
	db := NewDB(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != schema.Arity() {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), schema.Arity())
		}
		if _, err := db.Insert(rec); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// ReadCSVFile is ReadCSV over a file path; the relation is named after the path.
func ReadCSVFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, path)
}

// WriteCSV writes the instance as CSV with a header row.
func (db *DB) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(db.Schema.Attrs); err != nil {
		return err
	}
	for tid := 0; tid < db.N(); tid++ {
		if err := cw.Write(db.Tuple(tid)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the instance to the given path.
func (db *DB) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
