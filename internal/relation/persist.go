package relation

import "fmt"

// Vals returns the dictionary's values in id order (index i is the string
// VID(i) stands for). The returned slice is a fresh copy owned by the
// caller, so a snapshot taken here stays stable while interning continues.
func (d *Dict) Vals() []string {
	return append([]string(nil), d.vals...)
}

// RestoreDict rebuilds a dictionary from a value list previously obtained
// with Vals. Ids are reassigned positionally — vals[i] gets VID(i) — so a
// restored dictionary resolves every id exactly like the one it was
// snapshotted from. Duplicate values are rejected: they cannot occur in a
// dictionary (ID interns), so their presence means the input is corrupt.
func RestoreDict(vals []string) (*Dict, error) {
	d := &Dict{vals: append([]string(nil), vals...), ids: make(map[string]VID, len(vals))}
	for i, v := range vals {
		if _, dup := d.ids[v]; dup {
			return nil, fmt.Errorf("relation: duplicate dictionary value %q at id %d", v, i)
		}
		d.ids[v] = VID(i)
	}
	return d, nil
}

// RestoreDB rebuilds an instance from snapshotted parts: per-attribute
// dictionaries (id-for-id, so every stored VID keeps its meaning), the
// dictionary-encoded rows, and the tuple weights (nil means all 1). The
// per-attribute value counts and domain caches are derived, not stored —
// they are recomputed here. Every row VID is validated against its
// dictionary so a corrupt snapshot surfaces as an error, never as an
// out-of-range panic later.
func RestoreDB(s *Schema, dicts []*Dict, rows [][]VID, weights []float64) (*DB, error) {
	n := s.Arity()
	if len(dicts) != n {
		return nil, fmt.Errorf("relation: %d dictionaries for schema %q arity %d", len(dicts), s.Relation, n)
	}
	if weights != nil && len(weights) != len(rows) {
		return nil, fmt.Errorf("relation: %d weights for %d rows", len(weights), len(rows))
	}
	db := &DB{
		Schema:     s,
		rows:       make([][]VID, len(rows)),
		weights:    make([]float64, len(rows)),
		dicts:      make([]*Dict, n),
		counts:     make([][]int, n),
		domainList: make([][]string, n),
		domainUp:   make([]bool, n),
	}
	for ai := 0; ai < n; ai++ {
		if dicts[ai] == nil {
			return nil, fmt.Errorf("relation: nil dictionary for attribute %q", s.Attrs[ai])
		}
		db.dicts[ai] = dicts[ai]
		db.counts[ai] = make([]int, dicts[ai].Len())
	}
	for tid, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("relation: row %d arity %d, want %d", tid, len(row), n)
		}
		r := append([]VID(nil), row...)
		for ai, v := range r {
			if int(v) >= db.dicts[ai].Len() {
				return nil, fmt.Errorf("relation: row %d attribute %q: VID %d outside dictionary (len %d)",
					tid, s.Attrs[ai], v, db.dicts[ai].Len())
			}
			db.counts[ai][v]++
		}
		db.rows[tid] = r
		if weights != nil {
			db.weights[tid] = weights[tid]
		} else {
			db.weights[tid] = 1
		}
	}
	return db, nil
}
