// Package group implements GDR's update grouping (Section 3 of the paper):
// suggested updates that set the same attribute to the same value are
// presented together, so the user can batch-inspect contextually related
// repairs (e.g. "all tuples whose CT should become 'Michigan City'") and the
// learner receives correlated training examples.
package group

import (
	"fmt"
	"sort"

	"gdr/internal/repair"
)

// Key identifies a group: the attribute being repaired and the suggested
// value shared by every update in the group.
type Key struct {
	Attr  string
	Value string
}

func (k Key) String() string { return fmt.Sprintf("%s := %q", k.Attr, k.Value) }

// Group is a set of suggested updates sharing a Key, plus the VOI benefit
// score E[g(c)] the ranker assigns to it.
type Group struct {
	Key     Key
	Updates []repair.Update
	Benefit float64
}

// Size returns the number of updates in the group.
func (g *Group) Size() int { return len(g.Updates) }

// Partition groups updates by (attribute, suggested value). The result is
// deterministic: groups are ordered by key and updates within a group by
// tuple id.
func Partition(ups []repair.Update) []*Group {
	byKey := make(map[Key]*Group)
	for _, u := range ups {
		k := Key{Attr: u.Attr, Value: u.Value}
		g := byKey[k]
		if g == nil {
			g = &Group{Key: k}
			byKey[k] = g
		}
		g.Updates = append(g.Updates, u)
	}
	out := make([]*Group, 0, len(byKey))
	for _, g := range byKey {
		sort.Slice(g.Updates, func(i, j int) bool {
			if g.Updates[i].Tid != g.Updates[j].Tid {
				return g.Updates[i].Tid < g.Updates[j].Tid
			}
			return g.Updates[i].Attr < g.Updates[j].Attr
		})
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].Key, out[j].Key) })
	return out
}

// SortByBenefit orders groups by descending benefit, breaking ties by size
// (larger first) and then key, so ranking is deterministic.
func SortByBenefit(gs []*Group) {
	sort.SliceStable(gs, func(i, j int) bool {
		if gs[i].Benefit != gs[j].Benefit {
			return gs[i].Benefit > gs[j].Benefit
		}
		if gs[i].Size() != gs[j].Size() {
			return gs[i].Size() > gs[j].Size()
		}
		return less(gs[i].Key, gs[j].Key)
	})
}

// SortBySize orders groups by descending size (the Greedy baseline of
// Section 5.1), breaking ties by key.
func SortBySize(gs []*Group) {
	sort.SliceStable(gs, func(i, j int) bool {
		if gs[i].Size() != gs[j].Size() {
			return gs[i].Size() > gs[j].Size()
		}
		return less(gs[i].Key, gs[j].Key)
	})
}

func less(a, b Key) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return a.Value < b.Value
}
