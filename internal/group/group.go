// Package group implements GDR's update grouping (Section 3 of the paper):
// suggested updates that set the same attribute to the same value are
// presented together, so the user can batch-inspect contextually related
// repairs (e.g. "all tuples whose CT should become 'Michigan City'") and the
// learner receives correlated training examples.
package group

import (
	"fmt"
	"sort"

	"gdr/internal/repair"
)

// Key identifies a group: the attribute being repaired and the suggested
// value shared by every update in the group.
type Key struct {
	Attr  string
	Value string
}

func (k Key) String() string { return fmt.Sprintf("%s := %q", k.Attr, k.Value) }

// Group is a set of suggested updates sharing a Key, plus the VOI benefit
// score E[g(c)] the ranker assigns to it.
type Group struct {
	Key     Key
	Updates []repair.Update
	Benefit float64
}

// Size returns the number of updates in the group.
func (g *Group) Size() int { return len(g.Updates) }

// Partition groups updates by (attribute, suggested value). The result is
// deterministic: groups are ordered by key and updates within a group by
// tuple id.
func Partition(ups []repair.Update) []*Group {
	byKey := make(map[Key]*Group)
	for _, u := range ups {
		k := Key{Attr: u.Attr, Value: u.Value}
		g := byKey[k]
		if g == nil {
			g = &Group{Key: k}
			byKey[k] = g
		}
		g.Updates = append(g.Updates, u)
	}
	out := make([]*Group, 0, len(byKey))
	for _, g := range byKey {
		sort.Slice(g.Updates, func(i, j int) bool {
			if g.Updates[i].Tid != g.Updates[j].Tid {
				return g.Updates[i].Tid < g.Updates[j].Tid
			}
			return g.Updates[i].Attr < g.Updates[j].Attr
		})
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].Key, out[j].Key) })
	return out
}

// RankLess is the VOI ranking comparator: descending benefit, ties broken by
// size (larger first) and then key. Keys are unique across a partition, so
// this is a strict total order — the ranking of a group set is unique, which
// is what lets the incremental Index repair it with a partial re-sort.
func RankLess(a, b *Group) bool {
	if a.Benefit != b.Benefit {
		return a.Benefit > b.Benefit
	}
	if a.Size() != b.Size() {
		return a.Size() > b.Size()
	}
	return less(a.Key, b.Key)
}

// SortByBenefit orders groups by RankLess, so ranking is deterministic.
func SortByBenefit(gs []*Group) {
	sort.SliceStable(gs, func(i, j int) bool { return RankLess(gs[i], gs[j]) })
}

// MergeByBenefit merges two RankLess-ordered slices into one. Because
// RankLess is a strict total order, merging the clean remainder of a
// previous ranking with freshly re-sorted dirty groups reproduces exactly
// the order a full sort of the union would produce.
func MergeByBenefit(a, b []*Group) []*Group {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]*Group, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if RankLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// SortBySize orders groups by descending size (the Greedy baseline of
// Section 5.1), breaking ties by key.
func SortBySize(gs []*Group) {
	sort.SliceStable(gs, func(i, j int) bool {
		if gs[i].Size() != gs[j].Size() {
			return gs[i].Size() > gs[j].Size()
		}
		return less(gs[i].Key, gs[j].Key)
	})
}

func less(a, b Key) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return a.Value < b.Value
}
