package group

import (
	"math/rand"
	"testing"

	"gdr/internal/repair"
)

func ups() []repair.Update {
	return []repair.Update{
		{Tid: 3, Attr: "CT", Value: "Michigan City", Score: 0.5},
		{Tid: 1, Attr: "CT", Value: "Michigan City", Score: 0.9},
		{Tid: 2, Attr: "ZIP", Value: "46825", Score: 0.4},
		{Tid: 2, Attr: "CT", Value: "Michigan City", Score: 0.6},
		{Tid: 5, Attr: "ZIP", Value: "46825", Score: 0.4},
		{Tid: 9, Attr: "ZIP", Value: "46391", Score: 0.7},
	}
}

func TestPartition(t *testing.T) {
	gs := Partition(ups())
	if len(gs) != 3 {
		t.Fatalf("got %d groups, want 3", len(gs))
	}
	// Deterministic order: by attr then value.
	if gs[0].Key != (Key{"CT", "Michigan City"}) ||
		gs[1].Key != (Key{"ZIP", "46391"}) ||
		gs[2].Key != (Key{"ZIP", "46825"}) {
		t.Fatalf("group order: %v %v %v", gs[0].Key, gs[1].Key, gs[2].Key)
	}
	ct := gs[0]
	if ct.Size() != 3 {
		t.Fatalf("CT group size = %d", ct.Size())
	}
	// Updates sorted by tid.
	if ct.Updates[0].Tid != 1 || ct.Updates[1].Tid != 2 || ct.Updates[2].Tid != 3 {
		t.Fatalf("CT group update order: %v", ct.Updates)
	}
}

func TestPartitionIsAPartition(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	attrs := []string{"A", "B", "C"}
	vals := []string{"x", "y", "z"}
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(50)
		in := make([]repair.Update, n)
		for i := range in {
			in[i] = repair.Update{Tid: r.Intn(20), Attr: attrs[r.Intn(3)], Value: vals[r.Intn(3)]}
		}
		gs := Partition(in)
		total := 0
		for _, g := range gs {
			total += g.Size()
			for _, u := range g.Updates {
				if u.Attr != g.Key.Attr || u.Value != g.Key.Value {
					t.Fatalf("update %v in group %v", u, g.Key)
				}
			}
		}
		if total != n {
			t.Fatalf("groups cover %d updates, want %d", total, n)
		}
	}
}

func TestSortByBenefit(t *testing.T) {
	gs := Partition(ups())
	gs[0].Benefit = 0.1
	gs[1].Benefit = 2.0
	gs[2].Benefit = 0.1
	SortByBenefit(gs)
	if gs[0].Key != (Key{"ZIP", "46391"}) {
		t.Fatalf("top group = %v", gs[0].Key)
	}
	// Tie at 0.1: larger group first (CT has 3 updates, ZIP/46825 has 2).
	if gs[1].Key != (Key{"CT", "Michigan City"}) {
		t.Fatalf("second group = %v", gs[1].Key)
	}
}

func TestSortBySize(t *testing.T) {
	gs := Partition(ups())
	SortBySize(gs)
	if gs[0].Key != (Key{"CT", "Michigan City"}) || gs[0].Size() != 3 {
		t.Fatalf("largest group = %v (%d)", gs[0].Key, gs[0].Size())
	}
	// Size tie between the two singleton/two-element ZIP groups resolved by key.
	if gs[1].Key != (Key{"ZIP", "46825"}) {
		t.Fatalf("second group = %v", gs[1].Key)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Attr: "CT", Value: "Michigan City"}
	if k.String() != `CT := "Michigan City"` {
		t.Fatalf("Key.String = %q", k.String())
	}
}
