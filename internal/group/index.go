package group

import (
	"sort"

	"gdr/internal/repair"
)

// Index is the persistent, incrementally maintained partition of a session's
// pending updates. It replaces the rebuild-per-call pattern
// (Partition(PendingUpdates()) + Rank) with a structure that absorbs the
// deltas the consistency manager produces — one Set or Delete per suggestion
// added, replaced or retired — and repairs the VOI ranking with a partial
// re-sort, so a steady-state poll costs O(changed) instead of
// O(pending × rules).
//
// Three invariants drive the design:
//
//   - Snapshots own their memory. Every *Group handed out by Rank carries
//     its own copy of the membership (made when the group was last
//     re-scored, i.e. within the O(changed) budget), and the index never
//     mutates a snapshot after handing it out. Callers iterating a
//     previously returned ranking therefore see a frozen view, exactly as
//     if it had been built from scratch at call time, and no caller can
//     corrupt the index's sorted membership through a returned slice.
//   - Benefits are cached per group and only recomputed for dirty groups: a
//     group is dirty when its membership changed (Set/Delete touched it) or
//     when the caller's staleness predicate says its attribute's scoring
//     inputs (rule versions, committee generation) moved. Clean groups keep
//     their cached float benefit, which — benefits being pure functions of
//     unchanged state — is bit-identical to what a recompute would produce.
//   - The ranking comparator (benefit desc, size desc, key) is a strict
//     total order (keys are unique), so merging the surviving ranked prefix
//     with the re-sorted dirty groups reproduces exactly the order a full
//     sort would yield.
//
// Version is a monotone counter covering everything a /groups response can
// observe: it bumps on every effective membership mutation and whenever a
// re-rank changes a cached benefit, so equal versions imply byte-identical
// VOI and size orderings (the converse need not hold).
//
// Index is not safe for concurrent use; like the session owning it, it is
// single-writer by design.
type Index struct {
	byKey  map[Key]*igroup
	byCell map[repair.CellKey]*igroup
	keys   []*igroup // key-ordered, the Partition order

	ranked     []*Group // last VOI ranking (immutable snapshots)
	haveRanked bool
	removed    bool // a group was destroyed since the last Rank
	version    uint64
}

// igroup is one live group plus its ranking cache. ups is index-private:
// snapshots copy it, so membership mutations may edit it in place.
type igroup struct {
	key    Key
	ups    []repair.Update // ascending Tid
	snap   *Group          // latest scored snapshot (carries cached benefit)
	scored bool            // snap's benefit matches current membership
}

// find returns the position of tid in the (tid-sorted) membership, and
// whether it is present.
func (g *igroup) find(tid int) (int, bool) {
	i := sort.Search(len(g.ups), func(i int) bool { return g.ups[i].Tid >= tid })
	return i, i < len(g.ups) && g.ups[i].Tid == tid
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byKey:  make(map[Key]*igroup),
		byCell: make(map[repair.CellKey]*igroup),
	}
}

// Len returns the number of pending updates across all groups.
func (ix *Index) Len() int { return len(ix.byCell) }

// GroupCount returns the number of non-empty groups.
func (ix *Index) GroupCount() int { return len(ix.byKey) }

// Version returns the monotone ranking version (see the type comment).
func (ix *Index) Version() uint64 { return ix.version }

// Get returns the live update for a cell, if any.
func (ix *Index) Get(c repair.CellKey) (repair.Update, bool) {
	ig := ix.byCell[c]
	if ig == nil {
		return repair.Update{}, false
	}
	if i, ok := ig.find(c.Tid); ok {
		return ig.ups[i], true
	}
	return repair.Update{}, false
}

// Set adds or replaces the pending update for u's cell. A no-op Set (the
// identical update is already live) changes nothing and does not bump the
// version.
func (ix *Index) Set(u repair.Update) {
	cell := u.Cell()
	k := Key{Attr: u.Attr, Value: u.Value}
	if ig := ix.byCell[cell]; ig != nil {
		if ig.key == k {
			i, ok := ig.find(u.Tid)
			if !ok {
				panic("group: index cell points at group without the tuple")
			}
			if ig.ups[i] == u {
				return
			}
			ig.ups[i] = u
			ig.scored = false
			ix.version++
			return
		}
		ix.removeFrom(ig, u.Tid)
	}
	ig := ix.byKey[k]
	if ig == nil {
		ig = &igroup{key: k}
		ix.byKey[k] = ig
		i := sort.Search(len(ix.keys), func(i int) bool { return !less(ix.keys[i].key, k) })
		ix.keys = append(ix.keys, nil)
		copy(ix.keys[i+1:], ix.keys[i:])
		ix.keys[i] = ig
	}
	i, ok := ig.find(u.Tid)
	if ok {
		panic("group: two pending updates for one cell in a group")
	}
	ig.ups = append(ig.ups, repair.Update{})
	copy(ig.ups[i+1:], ig.ups[i:])
	ig.ups[i] = u
	ig.scored = false
	ix.byCell[cell] = ig
	ix.version++
}

// Delete retires the pending update for a cell, returning it. Deleting an
// absent cell is a no-op.
func (ix *Index) Delete(c repair.CellKey) (repair.Update, bool) {
	ig := ix.byCell[c]
	if ig == nil {
		return repair.Update{}, false
	}
	i, ok := ig.find(c.Tid)
	if !ok {
		panic("group: index cell points at group without the tuple")
	}
	u := ig.ups[i]
	delete(ix.byCell, c)
	ix.removeFrom(ig, c.Tid)
	ix.version++
	return u, true
}

// removeFrom drops tid's update from a group, destroying the group when it
// empties. The byCell entry is the caller's responsibility.
func (ix *Index) removeFrom(ig *igroup, tid int) {
	i, ok := ig.find(tid)
	if !ok {
		panic("group: removing a tuple the group does not hold")
	}
	if len(ig.ups) == 1 {
		delete(ix.byKey, ig.key)
		j := sort.Search(len(ix.keys), func(j int) bool { return !less(ix.keys[j].key, ig.key) })
		copy(ix.keys[j:], ix.keys[j+1:])
		ix.keys = ix.keys[:len(ix.keys)-1]
		ix.removed = true
		return
	}
	copy(ig.ups[i:], ig.ups[i+1:])
	ig.ups = ig.ups[:len(ig.ups)-1]
	ig.scored = false
}

// Updates returns a copy of one group's live updates in ascending tuple
// order, or nil for an unknown key. The copy is the caller's to reorder —
// in-group active learning sorts it by committee uncertainty.
func (ix *Index) Updates(k Key) []repair.Update {
	ig := ix.byKey[k]
	if ig == nil {
		return nil
	}
	return append([]repair.Update(nil), ig.ups...)
}

// AppendAll appends every live update to dst, grouped by key order (callers
// needing the global (tid, attr) order sort afterwards).
func (ix *Index) AppendAll(dst []repair.Update) []repair.Update {
	for _, ig := range ix.keys {
		dst = append(dst, ig.ups...)
	}
	return dst
}

// Partition materializes the current groups in key order with zero
// benefits — byte-identical to Partition(pending) on the live set. Each
// returned group owns a fresh updates slice, so the greedy and random
// orderings hand out fully caller-owned data like the rebuild path did.
func (ix *Index) Partition() []*Group {
	out := make([]*Group, len(ix.keys))
	for i, ig := range ix.keys {
		out[i] = &Group{Key: ig.key, Updates: append([]repair.Update(nil), ig.ups...)}
	}
	return out
}

// Rank produces the VOI ordering and the post-rank ranking version.
//
// stale reports whether a group's scoring inputs moved even though its
// membership did not (the session derives this from the engine's rule
// version counters and the committee generations). score computes benefits
// for the given key-ordered groups, writing Benefit into each; it sees only
// the dirty groups. Clean groups keep their cached benefit and their
// relative order; the re-scored ones are merged back in with the shared
// total-order comparator, which reproduces the full-sort order exactly.
//
// The returned slice is the caller's. The *Group snapshots are cached and
// handed out again by later calls while clean, so a caller that reorders a
// snapshot's Updates in place only perturbs its own (and later callers')
// view of that group — never the index's membership, which snapshots do not
// alias.
func (ix *Index) Rank(stale func(Key) bool, score func([]*Group)) ([]*Group, uint64) {
	var cands []*Group
	var cigs []*igroup
	for _, ig := range ix.keys {
		if !ix.haveRanked || !ig.scored || stale(ig.key) {
			cands = append(cands, &Group{Key: ig.key, Updates: append([]repair.Update(nil), ig.ups...)})
			cigs = append(cigs, ig)
		}
	}
	if len(cands) == 0 && !ix.removed && ix.haveRanked {
		// Steady state: nothing to re-score, nothing removed — the cached
		// ranking is the answer.
		out := make([]*Group, len(ix.ranked))
		copy(out, ix.ranked)
		return out, ix.version
	}
	score(cands)
	changed := ix.removed
	fresh := cands[:0]
	for i, g := range cands {
		ig := cigs[i]
		if ig.scored && ig.snap != nil && ig.snap.Benefit == g.Benefit {
			continue // attribute was stale but the benefit survived: keep the old snapshot
		}
		ig.snap = g
		ig.scored = true
		fresh = append(fresh, g)
		changed = true
	}
	var clean []*Group
	for _, g := range ix.ranked {
		if ig := ix.byKey[g.Key]; ig != nil && ig.snap == g {
			clean = append(clean, g)
		}
	}
	SortByBenefit(fresh)
	ix.ranked = MergeByBenefit(clean, fresh)
	ix.haveRanked = true
	ix.removed = false
	if changed {
		ix.version++
	}
	out := make([]*Group, len(ix.ranked))
	copy(out, ix.ranked)
	return out, ix.version
}
