package strsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-3 }

func TestJaroKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"same", "same", 1},
		// Classic record-linkage test pairs.
		{"MARTHA", "MARHTA", 0.9444},
		{"DIXON", "DICKSONX", 0.7667},
		{"JELLYFISH", "SMELLYFISH", 0.8962},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); !near(got, c.want) {
			t.Errorf("Jaro(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.9611},
		{"DIXON", "DICKSONX", 0.8133},
		{"same", "same", 1},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !near(got, c.want) {
			t.Errorf("JaroWinkler(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	symmetric := func(x, y uint32) bool {
		rr := rand.New(rand.NewSource(int64(x)<<20 ^ int64(y)))
		a, b := randWord(rr), randWord(rr)
		return near(Jaro(a, b), Jaro(b, a))
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	bounded := func(x, y uint32) bool {
		rr := rand.New(rand.NewSource(int64(x)*17 + int64(y)))
		a, b := randWord(rr), randWord(rr)
		j := Jaro(a, b)
		jw := JaroWinkler(a, b)
		return j >= 0 && j <= 1 && jw >= j-1e-12 && jw <= 1+1e-12
	}
	if err := quick.Check(bounded, cfg); err != nil {
		t.Errorf("bounds (and JW ≥ J): %v", err)
	}
	identity := func(x uint32) bool {
		rr := rand.New(rand.NewSource(int64(x)))
		a := randWord(rr)
		return Jaro(a, a) == 1 && JaroWinkler(a, a) == 1
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("St. Mary Medical Center", "St Mary Medical Centre")
	}
}
