// Package strsim provides the string distance and similarity functions GDR
// uses to score candidate updates (the update evaluation function of Eq. 7 in
// the paper) and to compute the relationship feature R(t[A], v) consumed by
// the learning component.
//
// All functions operate on UTF-8 strings at rune granularity and are safe for
// concurrent use.
package strsim

import "unicode/utf8"

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions and substitutions needed to transform
// a into b.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra := []rune(a)
	rb := []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the inner loop over the shorter string so the scratch row stays
	// small for the common short-attribute-value case.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	row := make([]int, len(rb)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		prev := row[0] // row[i-1][j-1]
		row[0] = i
		for j := 1; j <= len(rb); j++ {
			cur := row[j] // row[i-1][j]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			row[j] = min3(row[j]+1, row[j-1]+1, prev+cost)
			prev = cur
		}
	}
	return row[len(rb)]
}

// Similarity implements the update evaluation function of Eq. 7:
//
//	sim(v, v') = 1 - dist(v, v') / max(|v|, |v'|)
//
// It returns a value in [0, 1]; 1 means the strings are equal, 0 means they
// share no structure at all. Two empty strings are defined to be identical.
func Similarity(v, vp string) float64 {
	if v == vp {
		return 1
	}
	la := utf8.RuneCountInString(v)
	lb := utf8.RuneCountInString(vp)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(v, vp))/float64(m)
}

// QGramJaccard returns the Jaccard coefficient between the q-gram multisets
// of a and b (treated as sets). It is an alternative domain similarity
// function; GDR accepts any such function in place of Eq. 7.
func QGramJaccard(a, b string, q int) float64 {
	if q <= 0 {
		q = 2
	}
	if a == b {
		return 1
	}
	ga := qgrams(a, q)
	gb := qgrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

func qgrams(s string, q int) map[string]bool {
	rs := []rune(s)
	out := make(map[string]bool)
	if len(rs) < q {
		if len(rs) > 0 {
			out[string(rs)] = true
		}
		return out
	}
	for i := 0; i+q <= len(rs); i++ {
		out[string(rs[i:i+q])] = true
	}
	return out
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
