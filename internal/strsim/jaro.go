package strsim

// Jaro returns the Jaro similarity between a and b in [0, 1]: the average of
// the matched-character fractions and the transposition-adjusted agreement.
// It is a classic evaluation function for short identifying strings (names,
// street lines) and can replace Eq. 7's edit similarity via the generator's
// WithSimilarity option.
func Jaro(a, b string) float64 {
	ra := []rune(a)
	rb := []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, len(ra))
	matchedB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix
// (up to 4 runes), with the standard scaling factor p = 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	if j == 0 {
		return 0
	}
	ra := []rune(a)
	rb := []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
