package strsim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Westville", "Michigan City", 13},
		{"FT Wayne", "Fort Wayne", 3}, // case-sensitive: T != t

		{"46391", "46825", 3},
		{"gumbo", "gambol", 2},
		{"日本語", "日本", 1},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarityKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abc", "abc", 1},
		{"abcd", "", 0},
		{"FT Wayne", "Fort Wayne", 0.7},
	}
	for _, c := range cases {
		if got := Similarity(c.a, c.b); !close(got, c.want) {
			t.Errorf("Similarity(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func close(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func randWord(r *rand.Rand) string {
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + r.Intn(6)))
	}
	return b.String()
}

func TestLevenshteinProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 400, Rand: r, Values: nil}

	symmetric := func(x, y uint32) bool {
		rr := rand.New(rand.NewSource(int64(x)<<16 ^ int64(y)))
		a, b := randWord(rr), randWord(rr)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}

	triangle := func(x, y, z uint32) bool {
		rr := rand.New(rand.NewSource(int64(x) ^ int64(y)<<8 ^ int64(z)<<16))
		a, b, c := randWord(rr), randWord(rr), randWord(rr)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}

	identity := func(x uint32) bool {
		rr := rand.New(rand.NewSource(int64(x)))
		a := randWord(rr)
		return Levenshtein(a, a) == 0 && Similarity(a, a) == 1
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}

	bounded := func(x, y uint32) bool {
		rr := rand.New(rand.NewSource(int64(x)*31 + int64(y)))
		a, b := randWord(rr), randWord(rr)
		s := Similarity(a, b)
		d := Levenshtein(a, b)
		maxLen := len([]rune(a))
		if l := len([]rune(b)); l > maxLen {
			maxLen = l
		}
		return s >= 0 && s <= 1 && d >= 0 && d <= maxLen
	}
	if err := quick.Check(bounded, cfg); err != nil {
		t.Errorf("bounds: %v", err)
	}
}

func TestQGramJaccard(t *testing.T) {
	if got := QGramJaccard("abc", "abc", 2); got != 1 {
		t.Errorf("identical strings: got %v", got)
	}
	if got := QGramJaccard("", "", 2); got != 1 {
		t.Errorf("empty strings: got %v", got)
	}
	if got := QGramJaccard("abcd", "wxyz", 2); got != 0 {
		t.Errorf("disjoint strings: got %v", got)
	}
	if got := QGramJaccard("night", "nacht", 0); got <= 0 || got >= 1 {
		t.Errorf("partial overlap with default q: got %v", got)
	}
	// q larger than both strings falls back to whole-string grams.
	if got := QGramJaccard("ab", "ab", 5); got != 1 {
		t.Errorf("short strings: got %v", got)
	}
}

func TestQGramJaccardSymmetry(t *testing.T) {
	f := func(x, y uint32) bool {
		rr := rand.New(rand.NewSource(int64(x) + int64(y)<<20))
		a, b := randWord(rr), randWord(rr)
		return QGramJaccard(a, b, 2) == QGramJaccard(b, a, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("Michigan City", "Fort Wayne")
	}
}

func BenchmarkSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Similarity("StreetAddress 123", "Street Adress 132")
	}
}
