// Package oracle simulates the domain expert of the paper's experiments
// (Section 5, "User interaction simulation"): feedback on suggested updates
// is answered from a ground-truth instance. It also implements the optional
// "user suggests a new value v′" interaction, which GDR treats as a confirm
// of ⟨t, A, v′, 1⟩.
package oracle

import (
	"fmt"

	"gdr/internal/relation"
	"gdr/internal/repair"
)

// Oracle answers feedback queries from a ground-truth database.
type Oracle struct {
	truth *relation.DB

	// Asked counts feedback queries, i.e. the user effort spent.
	Asked int
}

// New builds an oracle over the ground truth. The truth instance must be
// positionally aligned with the database under repair (same tuple ids).
func New(truth *relation.DB) *Oracle { return &Oracle{truth: truth} }

// Truth returns the ground-truth instance.
func (o *Oracle) Truth() *relation.DB { return o.truth }

// Feedback answers one suggested update exactly as the simulated user of the
// paper: confirm when the suggested value is the true one, retain when the
// database's current value is already true, reject otherwise.
func (o *Oracle) Feedback(current *relation.DB, u repair.Update) repair.Feedback {
	o.Asked++
	want := o.truth.Get(u.Tid, u.Attr)
	switch {
	case u.Value == want:
		return repair.Confirm
	case current.Get(u.Tid, u.Attr) == want:
		return repair.Retain
	default:
		return repair.Reject
	}
}

// Correct returns the ground-truth value for a cell, modeling the user
// volunteering the right value v′.
func (o *Oracle) Correct(tid int, attr string) string { return o.truth.Get(tid, attr) }

// IsCorrect reports whether the cell currently holds its true value.
func (o *Oracle) IsCorrect(current *relation.DB, tid int, attr string) bool {
	return current.Get(tid, attr) == o.truth.Get(tid, attr)
}

// Validate checks that the truth instance is comparable with db.
func (o *Oracle) Validate(db *relation.DB) error {
	if db.N() != o.truth.N() || db.Schema.Arity() != o.truth.Schema.Arity() {
		return fmt.Errorf("oracle: ground truth %dx%d not aligned with instance %dx%d",
			o.truth.N(), o.truth.Schema.Arity(), db.N(), db.Schema.Arity())
	}
	return nil
}
