package oracle

import (
	"testing"

	"gdr/internal/relation"
	"gdr/internal/repair"
)

func pair(t *testing.T) (*relation.DB, *relation.DB) {
	t.Helper()
	s := relation.MustSchema("R", []string{"CT", "ZIP"})
	truth := relation.NewDB(s)
	truth.MustInsert(relation.Tuple{"Michigan City", "46360"})
	truth.MustInsert(relation.Tuple{"Westville", "46391"})
	dirty := truth.Clone()
	dirty.Set(0, "CT", "Westvile") // wrong
	return dirty, truth
}

func TestFeedbackAnswers(t *testing.T) {
	dirty, truth := pair(t)
	o := New(truth)
	if err := o.Validate(dirty); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u    repair.Update
		want repair.Feedback
	}{
		{repair.Update{Tid: 0, Attr: "CT", Value: "Michigan City"}, repair.Confirm},
		{repair.Update{Tid: 0, Attr: "CT", Value: "Fort Wayne"}, repair.Reject},
		{repair.Update{Tid: 1, Attr: "CT", Value: "Fort Wayne"}, repair.Retain},
		{repair.Update{Tid: 0, Attr: "ZIP", Value: "99999"}, repair.Retain},
	}
	for _, c := range cases {
		if got := o.Feedback(dirty, c.u); got != c.want {
			t.Errorf("Feedback(%v) = %v, want %v", c.u, got, c.want)
		}
	}
	if o.Asked != len(cases) {
		t.Errorf("Asked = %d, want %d", o.Asked, len(cases))
	}
}

func TestCorrectAndIsCorrect(t *testing.T) {
	dirty, truth := pair(t)
	o := New(truth)
	if got := o.Correct(0, "CT"); got != "Michigan City" {
		t.Fatalf("Correct = %q", got)
	}
	if o.IsCorrect(dirty, 0, "CT") {
		t.Fatal("dirty cell reported correct")
	}
	if !o.IsCorrect(dirty, 1, "CT") {
		t.Fatal("clean cell reported incorrect")
	}
}

func TestValidateMismatch(t *testing.T) {
	_, truth := pair(t)
	o := New(truth)
	small := relation.NewDB(truth.Schema)
	if err := o.Validate(small); err == nil {
		t.Fatal("want error for size mismatch")
	}
}
