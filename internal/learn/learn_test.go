package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 5e-3 }

func TestUncertaintyPaperExamples(t *testing.T) {
	// Section 4.2 example with a k=5 committee:
	// r1 votes {confirm:3, reject:1, retain:1} -> 0.86
	// r2 votes {confirm:1, reject:4, retain:0} -> 0.45
	r1 := Votes{3.0 / 5, 1.0 / 5, 1.0 / 5}
	if got := r1.Uncertainty(); !almost(got, 0.86) {
		t.Errorf("r1 uncertainty = %v, want ≈0.86", got)
	}
	// Exact value is 0.4555; the paper truncates it to 0.45.
	r2 := Votes{1.0 / 5, 4.0 / 5, 0}
	if got := r2.Uncertainty(); !almost(got, 0.4555) {
		t.Errorf("r2 uncertainty = %v, want ≈0.4555", got)
	}
	if r1.Top() != Confirm || r2.Top() != Reject {
		t.Errorf("majorities: %v %v", r1.Top(), r2.Top())
	}
	if r1.Uncertainty() <= r2.Uncertainty() {
		t.Error("r1 should be more uncertain than r2 and ordered first")
	}
}

func TestUncertaintyBounds(t *testing.T) {
	pure := Votes{1, 0, 0}
	if got := pure.Uncertainty(); got != 0 {
		t.Errorf("pure committee uncertainty = %v", got)
	}
	uniform := Votes{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if got := uniform.Uncertainty(); !almost(got, 1) {
		t.Errorf("uniform committee uncertainty = %v, want 1", got)
	}
	f := func(a, b, c uint8) bool {
		s := float64(a) + float64(b) + float64(c)
		if s == 0 {
			return true
		}
		v := Votes{float64(a) / s, float64(b) / s, float64(c) / s}
		u := v.Uncertainty()
		return u >= 0 && u <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLabelString(t *testing.T) {
	if Confirm.String() != "confirm" || Reject.String() != "reject" || Retain.String() != "retain" {
		t.Fatal("label strings")
	}
	if Label(9).String() != "unknown" {
		t.Fatal("unknown label string")
	}
}

// synthExamples builds a learnable pattern mirroring the paper's motivation:
// when the source is "H2" the city attribute is wrong (confirm the update),
// otherwise the current value is right (retain).
func synthExamples(n int, rng *rand.Rand) []Example {
	srcs := []string{"H1", "H2", "H3"}
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		src := srcs[rng.Intn(3)]
		label := Retain
		if src == "H2" {
			label = Confirm
		}
		out = append(out, Example{
			Cats:  []string{src, "city" + string(rune('a'+rng.Intn(5))), "Michigan City"},
			Sim:   rng.Float64(),
			Label: label,
		})
	}
	return out
}

func TestForestLearnsCorrelatedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := synthExamples(200, rng)
	f := Train(train, Config{K: 10, Seed: 1})
	if f.K() != 10 {
		t.Fatalf("K = %d", f.K())
	}
	correct := 0
	test := synthExamples(100, rng)
	for _, ex := range test {
		got, _ := f.Predict(ex.Cats, ex.Sim)
		if got == ex.Label {
			correct++
		}
	}
	if correct < 95 {
		t.Fatalf("forest accuracy %d/100 on a deterministic pattern", correct)
	}
}

func TestForestLearnsNumericFeature(t *testing.T) {
	// Label depends only on the similarity feature: high sim => confirm.
	rng := rand.New(rand.NewSource(4))
	var train []Example
	for i := 0; i < 200; i++ {
		s := rng.Float64()
		l := Reject
		if s > 0.5 {
			l = Confirm
		}
		train = append(train, Example{Cats: []string{"x"}, Sim: s, Label: l})
	}
	f := Train(train, Config{K: 10, Seed: 2})
	correct := 0
	for i := 0; i < 100; i++ {
		s := rng.Float64()
		want := Reject
		if s > 0.5 {
			want = Confirm
		}
		if got, _ := f.Predict([]string{"x"}, s); got == want {
			correct++
		}
	}
	if correct < 90 {
		t.Fatalf("numeric-split accuracy %d/100", correct)
	}
}

func TestForestVotesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := Train(synthExamples(60, rng), Config{K: 7, Seed: 9})
	for i := 0; i < 50; i++ {
		ex := synthExamples(1, rng)[0]
		label, v := f.Predict(ex.Cats, ex.Sim)
		sum := v[0] + v[1] + v[2]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("votes %v sum to %v", v, sum)
		}
		if label != v.Top() {
			t.Fatalf("label %v != top vote %v", label, v.Top())
		}
		if label < 0 || label >= NumLabels {
			t.Fatalf("label out of range: %v", label)
		}
	}
}

func TestForestUnseenCategoryFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := Train(synthExamples(100, rng), Config{K: 5, Seed: 3})
	// An unseen source value must still produce a valid prediction.
	label, v := f.Predict([]string{"H99", "nowhere", "Michigan City"}, 0.4)
	if label < 0 || label >= NumLabels {
		t.Fatalf("label = %v", label)
	}
	if s := v[0] + v[1] + v[2]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("votes sum %v", s)
	}
}

func TestTrainEmptyAndDeterminism(t *testing.T) {
	if Train(nil, Config{}) != nil {
		t.Fatal("training with no examples should return nil")
	}
	rng := rand.New(rand.NewSource(7))
	exs := synthExamples(80, rng)
	f1 := Train(exs, Config{K: 10, Seed: 42})
	f2 := Train(exs, Config{K: 10, Seed: 42})
	for i := 0; i < 40; i++ {
		ex := synthExamples(1, rng)[0]
		l1, v1 := f1.Predict(ex.Cats, ex.Sim)
		l2, v2 := f2.Predict(ex.Cats, ex.Sim)
		if l1 != l2 || v1 != v2 {
			t.Fatalf("same seed, different forests: %v/%v vs %v/%v", l1, v1, l2, v2)
		}
	}
}

func TestSingleClassTraining(t *testing.T) {
	exs := []Example{
		{Cats: []string{"a"}, Sim: 0.1, Label: Retain},
		{Cats: []string{"b"}, Sim: 0.9, Label: Retain},
	}
	f := Train(exs, Config{K: 3, Seed: 1})
	label, v := f.Predict([]string{"c"}, 0.5)
	if label != Retain || v[Retain] != 1 {
		t.Fatalf("single-class forest predicted %v %v", label, v)
	}
	if v.Uncertainty() != 0 {
		t.Fatalf("pure committee uncertainty = %v", v.Uncertainty())
	}
}

func TestModelLifecycle(t *testing.T) {
	m := NewModel(Config{K: 5, Seed: 8}, 3)
	if m.Ready() {
		t.Fatal("empty model should not be ready")
	}
	if _, _, ok := m.Predict([]string{"H2", "x", "y"}, 0.5); ok {
		t.Fatal("not-ready model must refuse to predict")
	}
	rng := rand.New(rand.NewSource(9))
	for _, ex := range synthExamples(2, rng) {
		m.Add(ex)
	}
	if m.Ready() {
		t.Fatal("2 examples < minTrain 3")
	}
	for _, ex := range synthExamples(50, rng) {
		m.Add(ex)
	}
	if !m.Ready() || m.Len() != 52 {
		t.Fatalf("ready=%v len=%d", m.Ready(), m.Len())
	}
	label, votes, ok := m.Predict([]string{"H2", "cityx", "Michigan City"}, 0.3)
	if !ok {
		t.Fatal("ready model should predict")
	}
	if label != Confirm {
		t.Fatalf("H2 pattern should predict confirm, got %v (votes %v)", label, votes)
	}
	// Adding an example marks the model stale; prediction still works.
	m.Add(synthExamples(1, rng)[0])
	if _, _, ok := m.Predict([]string{"H1", "citya", "Michigan City"}, 0.3); !ok {
		t.Fatal("retrained model should predict")
	}
}

func TestModelAddCopiesFeatures(t *testing.T) {
	m := NewModel(Config{}, 1)
	cats := []string{"H1", "a"}
	m.Add(Example{Cats: cats, Sim: 0, Label: Retain})
	cats[0] = "mutated"
	if m.examples[0].Cats[0] != "H1" {
		t.Fatal("Add must copy the feature slice")
	}
}

func TestPredictArityMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := Train(synthExamples(10, rng), Config{K: 2, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on arity mismatch")
		}
	}()
	f.Predict([]string{"only-one"}, 0.5)
}

func BenchmarkForestTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	exs := synthExamples(500, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(exs, Config{K: 10, Seed: int64(i)})
	}
}

func BenchmarkForestPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	f := Train(synthExamples(500, rng), Config{K: 10, Seed: 1})
	ex := synthExamples(1, rng)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(ex.Cats, ex.Sim)
	}
}
