package learn

import (
	"math/rand"
	"testing"
)

// TestTrainParallelDeterminism verifies that the committee trained over a
// worker pool is identical to the serial one: each tree draws from its own
// Seed-derived RNG, so the forest must not depend on the worker count or on
// goroutine scheduling.
func TestTrainParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	exs := synthExamples(120, rng)
	serial := Train(exs, Config{K: 12, Seed: 42, Workers: 1})
	for _, workers := range []int{2, 4, 9, 32} {
		parallel := Train(exs, Config{K: 12, Seed: 42, Workers: workers})
		for i := 0; i < 60; i++ {
			ex := synthExamples(1, rng)[0]
			l1, v1 := serial.Predict(ex.Cats, ex.Sim)
			l2, v2 := parallel.Predict(ex.Cats, ex.Sim)
			if l1 != l2 || v1 != v2 {
				t.Fatalf("workers=%d diverged from serial: %v/%v vs %v/%v", workers, l2, v2, l1, v1)
			}
		}
	}
}

// TestTrainWorkersExceedingTrees trains with more workers than trees.
func TestTrainWorkersExceedingTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	exs := synthExamples(60, rng)
	f := Train(exs, Config{K: 3, Seed: 9, Workers: 16})
	if f.K() != 3 {
		t.Fatalf("committee size = %d, want 3", f.K())
	}
	for _, tree := range f.trees {
		if tree == nil {
			t.Fatal("parallel training left a nil tree")
		}
	}
}
