package learn

import "fmt"

// ModelState is the serializable state of one per-attribute learner. The
// committee's trees are deliberately NOT part of it: Train is a pure
// function of (Config.Seed, the example list, the retrain counter), so a
// restored model regrows the byte-identical forest on demand. Snapshots
// stay small and independent of the tree representation, which can evolve
// without a snapshot format bump.
type ModelState struct {
	// Cfg is the forest configuration the model was created with, including
	// the derived per-attribute Seed.
	Cfg Config
	// MinTrain is the readiness threshold (see NewModel).
	MinTrain int
	// Examples is the accumulated training set, in feedback order.
	Examples []Example
	// Retrains counts how many times the committee has been regrown; the
	// training seed is derived from it.
	Retrains int64
	// Trained reports whether a forest was grown for the current training
	// set (false while the model is stale or has never predicted).
	Trained bool
}

// State snapshots the model. Examples are shared, not copied: the model
// only ever appends to its training set and never mutates recorded
// examples, so the returned state stays valid while the model keeps
// learning.
func (m *Model) State() ModelState {
	return ModelState{
		Cfg:      m.cfg,
		MinTrain: m.minTrain,
		Examples: m.examples[:len(m.examples):len(m.examples)],
		Retrains: m.retrains,
		Trained:  !m.stale && m.forest != nil,
	}
}

// RestoreModel rebuilds a model from a snapshot. If the snapshot recorded a
// trained committee, the forest is regrown here with the same derived seed,
// so the restored model's predictions are byte-identical to the original's
// from this point on. The example list is validated (consistent categorical
// arity, known labels) so a corrupt snapshot errors instead of panicking
// inside later Train/Predict calls.
func RestoreModel(st ModelState) (*Model, error) {
	for i, ex := range st.Examples {
		if ex.Label < 0 || ex.Label >= NumLabels {
			return nil, fmt.Errorf("learn: example %d: label %d out of range", i, ex.Label)
		}
		if len(ex.Cats) != len(st.Examples[0].Cats) {
			return nil, fmt.Errorf("learn: example %d: categorical arity %d, want %d",
				i, len(ex.Cats), len(st.Examples[0].Cats))
		}
	}
	if st.Trained && len(st.Examples) == 0 {
		return nil, fmt.Errorf("learn: snapshot claims a trained committee with no examples")
	}
	if st.Retrains < 0 {
		return nil, fmt.Errorf("learn: negative retrain count %d", st.Retrains)
	}
	m := NewModel(st.Cfg, st.MinTrain)
	m.examples = append([]Example(nil), st.Examples...)
	m.retrains = st.Retrains
	if st.Trained {
		m.train()
	}
	return m, nil
}
