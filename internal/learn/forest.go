package learn

import (
	"math"
	"math/rand"

	"gdr/internal/par"
)

// Config controls forest training. The zero value is usable: it is filled
// with the paper's defaults (k = 10 trees, bootstrap fraction 0.7 so that
// N′ < N, M′ = ⌈√M⌉ features per split).
type Config struct {
	// K is the committee size (number of trees). Default 10.
	K int
	// MaxDepth bounds tree depth. Default 12.
	MaxDepth int
	// MinLeaf is the minimum number of samples required to split. Default 1.
	MinLeaf int
	// SampleFrac is N′/N for bootstrap sampling (with replacement). Default 0.7.
	SampleFrac float64
	// Mtry is the number of features considered per split; 0 means ⌈√M⌉.
	Mtry int
	// Unbalanced disables the class-balanced bootstrap. By default each
	// tree's sample draws equally from every label present: active-learning
	// feedback is heavily skewed toward reject/retain (uncertain updates
	// are disproportionately the wrong ones), and an unbalanced committee
	// grows too shy to confirm anything.
	Unbalanced bool
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds the goroutines used to grow the committee's trees.
	// The k trees are independent — each draws its bootstrap sample and
	// split subsamples from its own Seed-derived RNG — so the trained
	// forest is identical at any worker count. Values below 2 train
	// serially.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.SampleFrac <= 0 || c.SampleFrac > 1 {
		c.SampleFrac = 0.7
	}
	return c
}

// Votes is the committee's vote distribution over the three labels; entries
// sum to 1 for a trained forest.
type Votes [NumLabels]float64

// Top returns the majority label (ties break toward the smaller label index,
// i.e. confirm before reject before retain).
func (v Votes) Top() Label {
	best := Confirm
	for l := Label(1); l < NumLabels; l++ {
		if v[l] > v[best] {
			best = l
		}
	}
	return best
}

// Uncertainty quantifies committee disagreement as the entropy of the vote
// fractions with logarithm base 3 (the paper's example: votes {3,1,1}/5 give
// 0.86 and {1,4,0}/5 give 0.45). It ranges over [0, 1].
func (v Votes) Uncertainty() float64 {
	h := 0.0
	for _, p := range v {
		if p <= 0 {
			continue
		}
		h -= p * math.Log(p) / math.Log(NumLabels)
	}
	return h
}

// Forest is a trained random-forest committee.
type Forest struct {
	trees []*node
	nCats int
}

// Train grows a random forest over the examples. All examples must share the
// same categorical arity. Training with no examples returns nil.
func Train(examples []Example, cfg Config) *Forest {
	if len(examples) == 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	nCats := len(examples[0].Cats)
	mtry := cfg.Mtry
	if mtry <= 0 {
		mtry = int(math.Ceil(math.Sqrt(float64(nCats + 1))))
	}
	tc := treeConfig{maxDepth: cfg.MaxDepth, minLeaf: cfg.MinLeaf, mtry: mtry, nCats: nCats}
	nSample := int(math.Ceil(cfg.SampleFrac * float64(len(examples))))
	if nSample < 1 {
		nSample = 1
	}
	var byLabel [NumLabels][]int
	for i, ex := range examples {
		byLabel[ex.Label] = append(byLabel[ex.Label], i)
	}
	var classes [][]int
	for _, idxs := range byLabel {
		if len(idxs) > 0 {
			classes = append(classes, idxs)
		}
	}
	// Derive one seed per tree up front from the configured seed: each tree's
	// bootstrap and split draws come from its own RNG, so the committee is
	// reproducible for a given Seed regardless of Workers or the order the
	// trees finish growing in.
	seedRNG := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, cfg.K)
	for k := range seeds {
		seeds[k] = seedRNG.Int63()
	}
	f := &Forest{nCats: nCats, trees: make([]*node, cfg.K)}
	par.ForEach(par.Workers(cfg.Workers), cfg.K, func(k int) error {
		rng := rand.New(rand.NewSource(seeds[k]))
		idx := make([]int, nSample)
		if cfg.Unbalanced || len(classes) < 2 {
			for i := range idx {
				idx[i] = rng.Intn(len(examples))
			}
		} else {
			for i := range idx {
				class := classes[i%len(classes)]
				idx[i] = class[rng.Intn(len(class))]
			}
		}
		f.trees[k] = buildTree(examples, idx, tc, rng, 0)
		return nil
	})
	return f
}

// Predict classifies a feature vector: each committee member votes and the
// majority label wins. It panics if cats does not match the training arity.
func (f *Forest) Predict(cats []string, sim float64) (Label, Votes) {
	if len(cats) != f.nCats {
		panic("learn: feature arity mismatch")
	}
	var v Votes
	for _, t := range f.trees {
		v[t.classify(cats, sim)] += 1
	}
	for i := range v {
		v[i] /= float64(len(f.trees))
	}
	return v.Top(), v
}

// K returns the committee size.
func (f *Forest) K() int { return len(f.trees) }

// Model is the per-attribute learner M_Ai of Section 4.2: it accumulates
// training examples from user feedback and retrains its forest lazily.
type Model struct {
	cfg      Config
	minTrain int
	examples []Example
	forest   *Forest
	stale    bool
	retrains int64
}

// NewModel creates an empty model; minTrain is the minimum number of labeled
// examples before the model makes predictions (values < 1 default to 3).
func NewModel(cfg Config, minTrain int) *Model {
	if minTrain < 1 {
		minTrain = 3
	}
	return &Model{cfg: cfg, minTrain: minTrain, stale: true}
}

// Add appends a training example (the user's feedback on one update).
func (m *Model) Add(ex Example) {
	ex.Cats = append([]string(nil), ex.Cats...)
	m.examples = append(m.examples, ex)
	m.stale = true
}

// Len returns the number of accumulated training examples.
func (m *Model) Len() int { return len(m.examples) }

// Gen returns a counter that changes whenever the model's training set
// (and therefore its predictions) may have changed; caches key on it.
func (m *Model) Gen() int64 { return int64(len(m.examples)) }

// Ready reports whether the model has enough feedback to predict.
func (m *Model) Ready() bool { return len(m.examples) >= m.minTrain }

// NeedsRetrain reports whether the next Predict will grow a fresh forest —
// the committee-retrain event observability layers want to time without
// reaching into the lazy-training internals.
func (m *Model) NeedsRetrain() bool {
	return m.Ready() && (m.stale || m.forest == nil)
}

// Predict classifies a feature vector, retraining first if new examples
// arrived. ok is false while the model is not Ready; callers should treat
// such updates as maximally uncertain.
func (m *Model) Predict(cats []string, sim float64) (label Label, votes Votes, ok bool) {
	if !m.Ready() {
		return Confirm, Votes{}, false
	}
	if m.stale || m.forest == nil {
		m.retrains++
		m.train()
	}
	label, votes = m.forest.Predict(cats, sim)
	return label, votes, true
}

// train grows the forest for the current training set and retrain count.
// The seed varies across retrains (deterministically) so the committee is
// re-drawn as the training set evolves; because it is a pure function of
// (Config.Seed, len(examples), retrains), a model restored from a snapshot
// retrains to the byte-identical committee (see RestoreModel).
func (m *Model) train() {
	cfg := m.cfg
	cfg.Seed = cfg.Seed*31 + int64(len(m.examples)) + m.retrains
	m.forest = Train(m.examples, cfg)
	m.stale = false
}
