// Package learn is GDR's machine-learning substrate (Section 4.2 of the
// paper): a from-scratch random forest — an ensemble of decision trees acting
// as a committee of classifiers — used to predict user feedback
// (confirm / reject / retain) for suggested updates, plus the
// committee-entropy uncertainty score that drives active-learning ordering.
//
// The paper used WEKA's RandomForest with k = 10 trees; this package
// re-implements the same scheme on the stdlib: bootstrap samples of size
// N′ < N per tree and a random subsample of M′ < M features considered at
// each split (M′ = ⌈√M⌉), with information-gain split selection.
//
// Feature vectors mirror the paper's data representation for a suggested
// update r = ⟨t, Ai, v, s⟩: the original attribute values t[A1..An] and the
// suggested value v are categorical features, and the relationship function
// R(t[Ai], v) (a string similarity) is a numeric feature.
package learn

import (
	"math"
	"math/rand"
	"sort"
)

// Label is the class predicted for a suggested update; it mirrors the
// expected user feedback.
type Label int

// The three feedback classes of Section 4.2.
const (
	Confirm Label = iota
	Reject
	Retain
)

// NumLabels is the size of the label alphabet.
const NumLabels = 3

func (l Label) String() string {
	switch l {
	case Confirm:
		return "confirm"
	case Reject:
		return "reject"
	case Retain:
		return "retain"
	default:
		return "unknown"
	}
}

// Example is one training instance ⟨t[A1],…,t[An], v, R(t[Ai],v), F⟩.
type Example struct {
	// Cats holds the categorical features: the original tuple's attribute
	// values followed by the suggested value. Its length must be identical
	// across all examples given to one model.
	Cats []string
	// Sim is the numeric relationship feature R(t[Ai], v).
	Sim float64
	// Label is the observed user feedback.
	Label Label
}

// node is one decision-tree node. A leaf predicts its majority label;
// internal nodes split on either a categorical feature (children by value)
// or the numeric similarity feature (threshold).
type node struct {
	majority Label

	leaf bool

	// Categorical split: catFeat >= 0 and children indexed by value.
	catFeat  int
	children map[string]*node

	// Numeric split: catFeat == -1; Sim <= thresh goes left.
	thresh float64
	left   *node
	right  *node
}

// treeConfig bundles the per-tree growth limits.
type treeConfig struct {
	maxDepth int
	minLeaf  int
	mtry     int
	nCats    int // number of categorical features; the numeric feature has index nCats
}

func countLabels(exs []Example, idx []int) [NumLabels]int {
	var c [NumLabels]int
	for _, i := range idx {
		c[exs[i].Label]++
	}
	return c
}

func majorityOf(c [NumLabels]int) Label {
	best := Confirm
	for l := Label(1); l < NumLabels; l++ {
		if c[l] > c[best] {
			best = l
		}
	}
	return best
}

// entropy returns the Shannon entropy (nats) of a label distribution.
func entropy(c [NumLabels]int, n int) float64 {
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, k := range c {
		if k == 0 {
			continue
		}
		p := float64(k) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// buildTree grows one decision tree over exs[idx] with random feature
// subsampling at each split.
func buildTree(exs []Example, idx []int, cfg treeConfig, rng *rand.Rand, depth int) *node {
	counts := countLabels(exs, idx)
	n := &node{majority: majorityOf(counts), catFeat: -1}
	total := len(idx)
	if total == 0 {
		n.leaf = true
		return n
	}
	pure := false
	for _, k := range counts {
		if k == total {
			pure = true
		}
	}
	if pure || depth >= cfg.maxDepth || total < 2*cfg.minLeaf {
		n.leaf = true
		return n
	}

	parentH := entropy(counts, total)
	nFeats := cfg.nCats + 1
	feats := rng.Perm(nFeats)
	if len(feats) > cfg.mtry {
		feats = feats[:cfg.mtry]
	}

	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0
	var bestParts map[string][]int
	var bestLeft, bestRight []int

	for _, f := range feats {
		if f < cfg.nCats {
			parts := make(map[string][]int)
			for _, i := range idx {
				v := exs[i].Cats[f]
				parts[v] = append(parts[v], i)
			}
			if len(parts) < 2 {
				continue
			}
			childH := 0.0
			for _, part := range parts {
				childH += float64(len(part)) / float64(total) * entropy(countLabels(exs, part), len(part))
			}
			if gain := parentH - childH; gain > bestGain+1e-12 {
				bestGain, bestFeat, bestParts = gain, f, parts
			}
			continue
		}
		// Numeric feature: try quantile thresholds over distinct sims.
		sims := make([]float64, 0, total)
		for _, i := range idx {
			sims = append(sims, exs[i].Sim)
		}
		sort.Float64s(sims)
		for _, th := range thresholds(sims) {
			var lc, rc [NumLabels]int
			ln, rn := 0, 0
			for _, i := range idx {
				if exs[i].Sim <= th {
					lc[exs[i].Label]++
					ln++
				} else {
					rc[exs[i].Label]++
					rn++
				}
			}
			if ln == 0 || rn == 0 {
				continue
			}
			childH := float64(ln)/float64(total)*entropy(lc, ln) + float64(rn)/float64(total)*entropy(rc, rn)
			if gain := parentH - childH; gain > bestGain+1e-12 {
				bestGain, bestFeat, bestThresh = gain, f, th
				bestParts = nil
			}
		}
	}

	if bestFeat < 0 || bestGain <= 1e-12 {
		n.leaf = true
		return n
	}
	if bestParts != nil {
		n.catFeat = bestFeat
		n.children = make(map[string]*node, len(bestParts))
		// Recurse over children in sorted key order so the shared RNG is
		// consumed identically across runs: training stays deterministic.
		keys := make([]string, 0, len(bestParts))
		for v := range bestParts {
			keys = append(keys, v)
		}
		sort.Strings(keys)
		for _, v := range keys {
			n.children[v] = buildTree(exs, bestParts[v], cfg, rng, depth+1)
		}
		return n
	}
	// Numeric split.
	n.thresh = bestThresh
	for _, i := range idx {
		if exs[i].Sim <= bestThresh {
			bestLeft = append(bestLeft, i)
		} else {
			bestRight = append(bestRight, i)
		}
	}
	n.left = buildTree(exs, bestLeft, cfg, rng, depth+1)
	n.right = buildTree(exs, bestRight, cfg, rng, depth+1)
	return n
}

// thresholds picks up to 8 candidate split points (midpoints between
// adjacent distinct values) from a sorted slice.
func thresholds(sorted []float64) []float64 {
	var uniq []float64
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	var mids []float64
	for i := 1; i < len(uniq); i++ {
		mids = append(mids, (uniq[i-1]+uniq[i])/2)
	}
	if len(mids) <= 8 {
		return mids
	}
	out := make([]float64, 0, 8)
	for i := 0; i < 8; i++ {
		out = append(out, mids[i*len(mids)/8])
	}
	return out
}

// classify walks the tree; unseen categorical values fall back to the
// current node's majority label.
func (n *node) classify(cats []string, sim float64) Label {
	for !n.leaf {
		if n.catFeat >= 0 {
			child, ok := n.children[cats[n.catFeat]]
			if !ok {
				return n.majority
			}
			n = child
			continue
		}
		if sim <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.majority
}
