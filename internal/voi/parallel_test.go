package voi

import (
	"fmt"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/group"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// buildRankFixture assembles an instance with enough groups to make the
// fan-out meaningful: several zip rules, each violated by a handful of
// tuples, with updates generated the way a session would.
func buildRankFixture(t *testing.T) (*cfd.Engine, []*group.Group) {
	t.Helper()
	schema := relation.MustSchema("R", []string{"CT", "ZIP"})
	db := relation.NewDB(schema)
	zips := []struct{ zip, city string }{
		{"46360", "Michigan City"}, {"46825", "Fort Wayne"},
		{"46391", "Westville"}, {"46514", "Elkhart"},
	}
	rulesText := ""
	for i, z := range zips {
		rulesText += fmt.Sprintf("r%d: ZIP -> CT :: %s || %s\n", i, z.zip, z.city)
		for j := 0; j < 6; j++ {
			city := z.city
			if j%2 == 0 {
				city = z.city + "X" // dirty variant
			}
			db.MustInsert(relation.Tuple{city, z.zip})
		}
	}
	eng, err := cfd.NewEngine(db, cfd.MustParse(rulesText))
	if err != nil {
		t.Fatal(err)
	}
	gs := group.Partition(repair.NewGenerator(eng).SuggestAll())
	if len(gs) < len(zips) {
		t.Fatalf("fixture produced only %d groups", len(gs))
	}
	return eng, gs
}

func TestRankParallelMatchesSerial(t *testing.T) {
	engS, gsS := buildRankFixture(t)
	engP, gsP := buildRankFixture(t)
	NewRanker(engS).Rank(gsS, ScoreProb)
	NewRanker(engP).RankParallel(gsP, ScoreProb, 8)
	if len(gsS) != len(gsP) {
		t.Fatalf("group counts differ: %d vs %d", len(gsS), len(gsP))
	}
	for i := range gsS {
		if gsS[i].Key != gsP[i].Key || gsS[i].Benefit != gsP[i].Benefit {
			t.Errorf("group %d: serial (%v, %v) vs parallel (%v, %v)",
				i, gsS[i].Key, gsS[i].Benefit, gsP[i].Key, gsP[i].Benefit)
		}
	}
}

// TestRankParallelConcurrentCache hammers the sharded benefit cache from
// many goroutines over repeated rankings (meaningful under -race).
func TestRankParallelConcurrentCache(t *testing.T) {
	eng, gs := buildRankFixture(t)
	r := NewRanker(eng)
	for pass := 0; pass < 10; pass++ {
		r.RankParallel(gs, ScoreProb, 8)
	}
	serialEng, serialGs := buildRankFixture(t)
	NewRanker(serialEng).Rank(serialGs, ScoreProb)
	for i := range gs {
		if gs[i].Benefit != serialGs[i].Benefit {
			t.Fatalf("cached parallel benefit diverged at group %d", i)
		}
	}
}
