package voi

import (
	"math"
	"math/rand"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/group"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// workedExample reproduces the Section 4.1 example: eight tuples, the rules
// φ1–φ5 with weights {4/8, 1/8, 2/8, 1/8, 3/8} (arising from their context
// sizes), and a group of three updates setting CT to "Michigan City" with
// p̃ = {0.9, 0.6, 0.6}. The paper computes E[g(c)] = 1.05.
func workedExample(t testing.TB) (*cfd.Engine, *group.Group, Prob) {
	t.Helper()
	schema := relation.MustSchema("Customer", []string{"Name", "STR", "CT", "STT", "ZIP"})
	db := relation.NewDB(schema)
	rows := []relation.Tuple{
		// Four tuples in φ1's context (ZIP 46360), all with a wrong CT so
		// vio(D,{φ1.1}) = 4 like the example's "4−3" numerator implies.
		{"t1", "Oak St", "Westville", "IN", "46360"},
		{"t2", "Pine Ave", "Westvile", "IN", "46360"},
		{"t3", "Main St", "Michigan Cty", "IN", "46360"},
		{"t4", "Elm St", "Mich City", "IN", "46360"},
		// One tuple for φ2's context, two for φ3's, one for φ4's; the three
		// CT="Fort Wayne" tuples form φ5's context (all clean for φ5).
		{"t5", "Canal Rd", "New Haven", "IN", "46774"},
		{"t6", "Sherden RD", "Fort Wayne", "IN", "46825"},
		{"t7", "Harris Rd", "Fort Wayne", "IN", "46825"},
		{"t8", "Lima Rd", "Fort Wayne", "IN", "46391"},
	}
	for _, r := range rows {
		db.MustInsert(r)
	}
	rules := cfd.MustParse(`
phi1: ZIP -> CT :: 46360 || Michigan City
phi2: ZIP -> CT :: 46774 || New Haven
phi3: ZIP -> CT :: 46825 || Fort Wayne
phi4: ZIP -> CT :: 46391 || Fort Wayne
phi5: STR, CT -> ZIP :: _, Fort Wayne || _
`)
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	g := &group.Group{
		Key: group.Key{Attr: "CT", Value: "Michigan City"},
		Updates: []repair.Update{
			{Tid: 0, Attr: "CT", Value: "Michigan City", Score: 0.9},
			{Tid: 1, Attr: "CT", Value: "Michigan City", Score: 0.6},
			{Tid: 2, Attr: "CT", Value: "Michigan City", Score: 0.6},
		},
	}
	return e, g, ScoreProb
}

func TestWeightsMatchPaperExample(t *testing.T) {
	e, _, _ := workedExample(t)
	r := NewRanker(e)
	want := map[string]float64{
		"phi1": 4.0 / 8, "phi2": 1.0 / 8, "phi3": 2.0 / 8, "phi4": 1.0 / 8, "phi5": 3.0 / 8,
	}
	for id, w := range want {
		ri := e.RuleIndex(id)
		if ri < 0 {
			t.Fatalf("rule %s missing", id)
		}
		if got := r.Weight(ri); !almost(got, w) {
			t.Errorf("weight(%s) = %v, want %v", id, got, w)
		}
	}
}

func TestGroupBenefitWorkedExample(t *testing.T) {
	e, g, prob := workedExample(t)
	r := NewRanker(e)
	got := r.GroupBenefit(g, prob)
	// 4/8 × (0.9·(4−3)/1 + 0.6·(4−3)/1 + 0.6·(4−3)/1) = 1.05
	if !almost(got, 1.05) {
		t.Fatalf("E[g(c)] = %v, want 1.05", got)
	}
}

func TestEq6EqualsLossDifference(t *testing.T) {
	// Eq. 6 was derived as E[L(D|c)] − Σ_j [p̃j·E[L(D^rj)] + (1−p̃j)·E[L(D^r̄j)]];
	// both sides are implemented independently, so check the identity.
	e, g, prob := workedExample(t)
	r := NewRanker(e)
	lhs := r.GroupBenefit(g, prob)
	rhs := r.ExpectedLossGiven(g, prob) - r.ExpectedLossAfter(g, prob)
	if !almost(lhs, rhs) {
		t.Fatalf("Eq.6 = %v but loss difference = %v", lhs, rhs)
	}
}

func TestRankOrdersByBenefit(t *testing.T) {
	e, g, prob := workedExample(t)
	r := NewRanker(e)
	// A second, low-benefit group: repairing t8's street to a random value
	// fixes nothing (t8 violates phi4 via CT, not STR).
	weak := &group.Group{
		Key: group.Key{Attr: "STR", Value: "Nowhere Rd"},
		Updates: []repair.Update{
			{Tid: 7, Attr: "STR", Value: "Nowhere Rd", Score: 0.9},
		},
	}
	gs := []*group.Group{weak, g}
	r.Rank(gs, prob)
	if gs[0] != g {
		t.Fatalf("top group = %v, want the Michigan City group", gs[0].Key)
	}
	if gs[0].Benefit <= gs[1].Benefit {
		t.Fatalf("benefits not ordered: %v vs %v", gs[0].Benefit, gs[1].Benefit)
	}
}

func TestRawBenefitCacheInvalidation(t *testing.T) {
	e, g, _ := workedExample(t)
	r := NewRanker(e)
	u := g.Updates[0]
	before := r.RawBenefit(u)
	// Cached value is returned when nothing changed.
	if again := r.RawBenefit(u); !almost(before, again) {
		t.Fatalf("cache changed a stable value: %v vs %v", before, again)
	}
	// Fix one of the other violating tuples: vio(D,{φ1}) drops to 3 and the
	// satisfied count rises, so the benefit of u must change.
	e.Apply(3, "CT", "Michigan City")
	after := r.RawBenefit(u)
	fresh := NewRanker(e, WithWeights(weightsOf(r, e)))
	if want := fresh.RawBenefit(u); !almost(after, want) {
		t.Fatalf("stale cache: %v, fresh ranker says %v", after, want)
	}
	if almost(before, after) {
		t.Fatalf("benefit should have changed after repair (%v)", before)
	}
}

func weightsOf(r *Ranker, e *cfd.Engine) []float64 {
	w := make([]float64, len(e.Rules()))
	for i := range w {
		w[i] = r.Weight(i)
	}
	return w
}

func TestNegativeBenefitForHarmfulUpdate(t *testing.T) {
	e, _, _ := workedExample(t)
	r := NewRanker(e)
	// Corrupting a clean Fort Wayne tuple's CT pushes it out of φ3's
	// satisfied set; the benefit must be negative.
	u := repair.Update{Tid: 5, Attr: "CT", Value: "Garbage", Score: 1}
	if got := r.RawBenefit(u); got >= 0 {
		t.Fatalf("harmful update benefit = %v, want < 0", got)
	}
}

func TestSingletonGroupEqualsRawTimesProb(t *testing.T) {
	e, g, _ := workedExample(t)
	r := NewRanker(e)
	u := g.Updates[1]
	single := &group.Group{Key: g.Key, Updates: []repair.Update{u}}
	got := r.GroupBenefit(single, func(repair.Update) float64 { return 0.25 })
	if want := 0.25 * r.RawBenefit(u); !almost(got, want) {
		t.Fatalf("singleton benefit = %v, want %v", got, want)
	}
}

func TestIdentityOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	schema := relation.MustSchema("R", []string{"A", "B", "C"})
	vals := []string{"x", "y", "z", "w"}
	for trial := 0; trial < 20; trial++ {
		db := relation.NewDB(schema)
		for i := 0; i < 30; i++ {
			db.MustInsert(relation.Tuple{vals[r.Intn(4)], vals[r.Intn(4)], vals[r.Intn(4)]})
		}
		rules := []*cfd.CFD{
			cfd.MustNew("c", []string{"A"}, "B", map[string]string{"A": "x", "B": "y"}),
			cfd.MustNew("v", []string{"B"}, "C", map[string]string{"B": cfd.Wildcard, "C": cfd.Wildcard}),
		}
		e, err := cfd.NewEngine(db, rules)
		if err != nil {
			t.Fatal(err)
		}
		rk := NewRanker(e)
		var us []repair.Update
		for i := 0; i < 5; i++ {
			us = append(us, repair.Update{
				Tid: r.Intn(db.N()), Attr: schema.Attrs[r.Intn(3)],
				Value: vals[r.Intn(4)], Score: r.Float64(),
			})
		}
		g := &group.Group{Updates: us}
		lhs := rk.GroupBenefit(g, ScoreProb)
		rhs := rk.ExpectedLossGiven(g, ScoreProb) - rk.ExpectedLossAfter(g, ScoreProb)
		if !almost(lhs, rhs) {
			t.Fatalf("trial %d: Eq.6 %v != loss difference %v", trial, lhs, rhs)
		}
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func BenchmarkGroupBenefit(b *testing.B) {
	e, g, prob := workedExample(b)
	r := NewRanker(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.GroupBenefit(g, prob)
	}
}
