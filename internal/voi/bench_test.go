package voi_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/group"
	"gdr/internal/relation"
	"gdr/internal/repair"
	"gdr/internal/voi"
)

// benchSetup builds the engine and the initial update groups over a
// mid-sized dirty instance; it is shared with the alloc-guard test.
func benchSetup(b testing.TB, n int) (*cfd.Engine, []*group.Group) {
	b.Helper()
	schema := relation.MustSchema("Bench", []string{"Street", "City", "State", "Zip"})
	db := relation.NewDB(schema)
	rng := rand.New(rand.NewSource(42))
	cities := []string{"Michigan City", "Westville", "Fort Wayne", "Gary", "Portage"}
	zips := []string{"46360", "46391", "46825", "46402", "46368"}
	for i := 0; i < n; i++ {
		ci := rng.Intn(len(cities))
		zi := ci
		if rng.Intn(10) == 0 {
			zi = rng.Intn(len(zips))
		}
		db.MustInsert(relation.Tuple{
			fmt.Sprintf("%d Oak St", rng.Intn(200)),
			cities[ci],
			"IN",
			zips[zi],
		})
	}
	rules := cfd.MustParse(`
phi1: Zip -> City :: _ || _
phi2: City -> Zip :: _ || _
phi3: Zip -> City :: 46360 || Michigan City
`)
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		b.Fatal(err)
	}
	g := repair.NewGenerator(e)
	ups := g.SuggestAll()
	if len(ups) == 0 {
		b.Fatal("no suggestions")
	}
	return e, group.Partition(ups)
}

// BenchmarkRank measures Eq. 6 group ranking over the initial update pool.
// After the first iteration the benefit cache is warm, so the steady-state
// figure reflects the cached scoring path plus the sort.
func BenchmarkRank(b *testing.B) {
	eng, gs := benchSetup(b, 5000)
	r := voi.NewRanker(eng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Rank(gs, voi.ScoreProb)
	}
}

// BenchmarkRawBenefitWarm measures the fully cached per-update scoring path —
// the inner loop of every group re-ranking between feedback rounds. This is
// the path the CI alloc guard pins to zero allocations.
func BenchmarkRawBenefitWarm(b *testing.B) {
	eng, gs := benchSetup(b, 5000)
	r := voi.NewRanker(eng)
	var ups []repair.Update
	for _, g := range gs {
		ups = append(ups, g.Updates...)
	}
	for _, u := range ups { // warm the cache
		r.RawBenefit(u)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RawBenefit(ups[i%len(ups)])
	}
}

// BenchmarkRankCold measures one full cold ranking pass: a fresh ranker
// scores every pending update once (all WhatIf deltas recomputed), as happens
// at session start and after large cascading repairs.
func BenchmarkRankCold(b *testing.B) {
	eng, gs := benchSetup(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := voi.NewRanker(eng)
		fresh.Rank(gs, voi.ScoreProb)
	}
}
