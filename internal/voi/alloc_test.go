package voi_test

import (
	"testing"

	"gdr/internal/par"
	"gdr/internal/repair"
	"gdr/internal/voi"
)

// TestWarmScorePathZeroAlloc pins the steady-state scoring path — RawBenefit
// with a warm, version-fresh cache — to zero allocations per call. This is
// the inner loop of every group re-ranking between feedback rounds; the CI
// bench-smoke step runs this test so string churn can't silently creep back
// into it.
func TestWarmScorePathZeroAlloc(t *testing.T) {
	if par.RaceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	eng, gs := benchSetup(t, 2000)
	r := voi.NewRanker(eng)
	var ups []repair.Update
	for _, g := range gs {
		ups = append(ups, g.Updates...)
	}
	if len(ups) == 0 {
		t.Fatal("no updates to score")
	}
	for _, u := range ups { // warm the cache
		r.RawBenefit(u)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.RawBenefit(ups[i%len(ups)])
		i++
	})
	if allocs > 0 {
		t.Fatalf("warm RawBenefit allocates %.1f times per call, want 0", allocs)
	}
}
