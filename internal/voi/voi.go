// Package voi implements GDR's value-of-information ranking (Section 4.1 of
// the paper). Groups of suggested updates are scored by the estimated data
// quality gain of acquiring user feedback on them:
//
//	E[g(c)] = Σ_{φi∈Σ} wi · Σ_{rj∈c} p̃j · (vio(D,{φi}) − vio(D^rj,{φi})) / |D^rj ⊨ φi|   (Eq. 6)
//
// where p̃j is the learner's (or, before any feedback, the repairing
// algorithm's) probability that rj is correct, vio is the violation count of
// Definition 1, and |D^rj ⊨ φi| counts context tuples satisfying φi after
// hypothetically applying rj. The hypothetical counts come from the
// violation engine's WhatIf, so no database copy is ever made; per-update
// terms are cached and invalidated by rule version counters.
package voi

import (
	"gdr/internal/cfd"
	"gdr/internal/group"
	"gdr/internal/par"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// Prob supplies p̃j for an update: the probability that the update is
// correct. GDR uses the update's evaluation score before any feedback exists
// and the learned model's confirm probability afterwards.
type Prob func(repair.Update) float64

// ScoreProb is the paper's initial user model: p̃j = sj, the update
// evaluation score assigned by the repairing algorithm.
func ScoreProb(u repair.Update) float64 { return u.Score }

// Ranker scores update groups with Eq. 6. Its benefit cache is lock-striped
// (par.Cache), so RawBenefit and GroupBenefit may be called from multiple
// goroutines as long as the engine is not mutated concurrently (scoring is
// read-only).
type Ranker struct {
	eng     *cfd.Engine
	db      *relation.DB
	weights []float64

	cache *par.Cache[cacheKey, *cacheEntry]
}

// cacheKey addresses one hypothetical update by integers only — tuple id,
// attribute position and the suggested value's interned id — so cache
// probes hash three words instead of two strings.
type cacheKey struct {
	tid int
	ai  int32
	vid relation.VID
}

type cacheEntry struct {
	raw      float64
	rules    []int
	versions []uint64
}

// maxCacheEntries bounds the benefit cache (entries are tiny, but sessions
// can generate many distinct updates).
const maxCacheEntries = 1 << 17

// Option configures a Ranker.
type Option func(*Ranker)

// WithWeights overrides the rule weights wi (indexed like Engine.Rules).
func WithWeights(w []float64) Option {
	return func(r *Ranker) { r.weights = append([]float64(nil), w...) }
}

// NewRanker builds a ranker over the engine. Unless overridden, rule weights
// follow the paper's experimental choice wi = |D(φi)|/|D|, computed on the
// instance at construction time.
func NewRanker(eng *cfd.Engine, opts ...Option) *Ranker {
	r := &Ranker{eng: eng, db: eng.DB(), cache: par.NewCache[cacheKey, *cacheEntry](maxCacheEntries)}
	for _, o := range opts {
		o(r)
	}
	if r.weights == nil {
		n := eng.DB().N()
		r.weights = make([]float64, len(eng.Rules()))
		for ri := range eng.Rules() {
			if n > 0 {
				r.weights[ri] = float64(eng.Context(ri)) / float64(n)
			}
		}
	}
	return r
}

// Weight returns wi for rule ri.
func (r *Ranker) Weight(ri int) float64 { return r.weights[ri] }

// RawBenefit computes the probability-free part of Eq. 6 for one update:
//
//	Σ_{φi} wi · (vio(D,{φi}) − vio(D^rj,{φi})) / |D^rj ⊨ φi|
//
// Only rules involving the update's attribute can contribute. A zero
// satisfaction count after the update is guarded to 1, as the paper's
// quotient is undefined there (no tuple would satisfy the rule either way).
func (r *Ranker) RawBenefit(u repair.Update) float64 {
	ai := r.db.Schema.MustIndex(u.Attr)
	vid, known := r.db.LookupVID(ai, u.Value)
	if !known {
		// The suggested value has never been seen by this instance (possible
		// only for caller-synthesized updates — the generator only proposes
		// interned values). Score it without caching: interning here would
		// mutate the dictionary under concurrent read-only scoring, and
		// FreshVID cannot serve as a cache key (distinct unseen values would
		// collide).
		return r.rawFromDeltas(r.eng.WhatIfVID(u.Tid, ai, cfd.FreshVID))
	}
	key := cacheKey{tid: u.Tid, ai: int32(ai), vid: vid}
	if e, ok := r.cache.Get(key); ok && r.fresh(e) {
		return e.raw
	}
	involved := r.eng.RulesInvolvingAt(ai)
	deltas := r.eng.WhatIfVID(u.Tid, ai, vid)
	entry := &cacheEntry{rules: involved, versions: make([]uint64, len(involved))}
	for i, ri := range involved {
		entry.versions[i] = r.eng.Version(ri)
	}
	entry.raw = r.rawFromDeltas(deltas)
	r.cache.Put(key, entry)
	return entry.raw
}

// rawFromDeltas folds WhatIf deltas into the Eq. 6 probability-free sum.
func (r *Ranker) rawFromDeltas(deltas []cfd.RuleDelta) float64 {
	raw := 0.0
	for _, d := range deltas {
		sat := d.Sat
		if sat < 1 {
			sat = 1
		}
		raw += r.weights[d.Rule] * float64(r.eng.Vio(d.Rule)-d.Vio) / float64(sat)
	}
	return raw
}

func (r *Ranker) fresh(e *cacheEntry) bool {
	for i, ri := range e.rules {
		if r.eng.Version(ri) != e.versions[i] {
			return false
		}
	}
	return true
}

// GroupBenefit computes E[g(c)] of Eq. 6 for a group, using prob for p̃j.
func (r *Ranker) GroupBenefit(g *group.Group, prob Prob) float64 {
	total := 0.0
	for _, u := range g.Updates {
		total += prob(u) * r.RawBenefit(u)
	}
	return total
}

// Rank assigns each group its benefit and sorts groups by descending
// benefit (deterministic tie-breaks), implementing step 4 of Procedure 1.
func (r *Ranker) Rank(gs []*group.Group, prob Prob) {
	r.RankParallel(gs, prob, 1)
}

// RankParallel is Rank with the per-group benefit computations fanned out
// over at most workers goroutines.
func (r *Ranker) RankParallel(gs []*group.Group, prob Prob, workers int) {
	r.ScoreGroups(gs, prob, workers)
	group.SortByBenefit(gs)
}

// ScoreGroups computes Eq. 6 benefits for the given groups without sorting
// them — the re-score half of ranking, which the incremental group index
// applies to dirty groups only. Scoring is read-only against the engine and
// the benefit cache is sharded, so the only requirement for workers > 1 is
// that prob be safe for concurrent calls (a warmed memo, or a pure function
// like ScoreProb). Each group's sum is accumulated in update order, so the
// resulting benefits — and therefore any ranking built from them — are
// bit-identical to the serial path at any worker count.
func (r *Ranker) ScoreGroups(gs []*group.Group, prob Prob, workers int) {
	par.ForEach(par.Workers(workers), len(gs), func(i int) error {
		gs[i].Benefit = r.GroupBenefit(gs[i], prob)
		return nil
	})
}

// ExpectedLossGiven computes E[L(D|c)] of Eq. 5: the expected quality loss
// of the current database given that group c is suggested. It is exposed for
// completeness and for testing the algebraic identity that yields Eq. 6.
func (r *Ranker) ExpectedLossGiven(g *group.Group, prob Prob) float64 {
	total := 0.0
	for _, u := range g.Updates {
		p := prob(u)
		deltas := r.eng.WhatIf(u.Tid, u.Attr, u.Value)
		for _, d := range deltas {
			vio := float64(r.eng.Vio(d.Rule))
			satYes := d.Sat
			if satYes < 1 {
				satYes = 1
			}
			satNo := r.eng.Sat(d.Rule) // D^r̄j is D itself: rejecting changes nothing
			if satNo < 1 {
				satNo = 1
			}
			total += r.weights[d.Rule] * (p*vio/float64(satYes) + (1-p)*vio/float64(satNo))
		}
	}
	return total
}

// ExpectedLossAfter computes Σ_j [ p̃j·E[L(D^rj)] + (1−p̃j)·E[L(D^r̄j)] ]
// restricted, like Eq. 6's derivation, to the rules each update involves.
func (r *Ranker) ExpectedLossAfter(g *group.Group, prob Prob) float64 {
	total := 0.0
	for _, u := range g.Updates {
		p := prob(u)
		deltas := r.eng.WhatIf(u.Tid, u.Attr, u.Value)
		for _, d := range deltas {
			satYes := d.Sat
			if satYes < 1 {
				satYes = 1
			}
			satNo := r.eng.Sat(d.Rule)
			if satNo < 1 {
				satNo = 1
			}
			total += r.weights[d.Rule] * (p*float64(d.Vio)/float64(satYes) +
				(1-p)*float64(r.eng.Vio(d.Rule))/float64(satNo))
		}
	}
	return total
}
