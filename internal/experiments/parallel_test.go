package experiments

import (
	"strings"
	"testing"
)

// renderFigure regenerates one figure at the given worker count and returns
// its rendered text table.
func renderFigure(t *testing.T, id int, workers int) string {
	t.Helper()
	cfg := Config{N: 500, Seed: 11, Workers: workers, BudgetFractions: []float64{0.2, 0.6, 1.0}}
	d, err := Dataset(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fig Figure
	switch id {
	case 3:
		fig, err = Figure3(d, cfg)
	case 4:
		fig, err = Figure4(d, cfg)
	case 5:
		fig, err = Figure5(d, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestFiguresDeterministicAcrossWorkerCounts is the harness's core
// guarantee: the same seed produces byte-identical figures whether the
// cells run serially or on an 8-worker pool (with the sessions' internal
// VOI scoring and candidate generation parallelized too).
func TestFiguresDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, id := range []int{3, 4, 5} {
		serial := renderFigure(t, id, 1)
		parallel := renderFigure(t, id, 8)
		if serial != parallel {
			t.Errorf("figure %d differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", id, serial, parallel)
		}
	}
}

// TestWorkerBudgetSplit checks the knob plumbing: the harness pool is
// divided between concurrent cells and their sessions (never multiplied),
// and an explicit Session.Workers always wins.
func TestWorkerBudgetSplit(t *testing.T) {
	cases := []struct {
		workers, explicit, cells, want int
	}{
		{workers: 8, cells: 1, want: 8},              // lone run gets the whole budget
		{workers: 8, cells: 4, want: 2},              // split across concurrent cells
		{workers: 8, cells: 45, want: 1},             // cells saturate: serial sessions
		{workers: 1, cells: 3, want: 1},              // serial harness, serial sessions
		{workers: 8, cells: 4, explicit: 5, want: 5}, // explicit override
	}
	for _, c := range cases {
		cfg := Config{Workers: c.workers}
		cfg.Session.Workers = c.explicit
		cfg = cfg.withDefaults()
		if got := sessionConfig(cfg, min(c.cells, cfg.Workers)).Workers; got != c.want {
			t.Errorf("workers=%d cells=%d explicit=%d: session workers = %d, want %d",
				c.workers, c.cells, c.explicit, got, c.want)
		}
	}
	if cfg := (Config{}).withDefaults(); cfg.Workers != 1 {
		t.Fatalf("zero value not serial: %d", cfg.Workers)
	}
}
