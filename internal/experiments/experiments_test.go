package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func smallCfg() Config {
	return Config{
		N:               700,
		Seed:            42,
		BudgetFractions: []float64{0.1, 0.3, 0.6},
	}
}

func TestDatasetSelection(t *testing.T) {
	cfg := smallCfg()
	d1, err := Dataset(1, cfg)
	if err != nil || d1.Name != "hospital" {
		t.Fatalf("dataset 1: %v %v", d1, err)
	}
	d2, err := Dataset(2, cfg)
	if err != nil || d2.Name != "census" {
		t.Fatalf("dataset 2: %v %v", d2, err)
	}
	if _, err := Dataset(3, cfg); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestFigure3Shapes(t *testing.T) {
	cfg := smallCfg()
	d, err := Dataset(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure3(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("got %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 21 {
			t.Fatalf("series %s has %d points, want 21", s.Name, len(s.Points))
		}
		// Trajectories are non-decreasing (confirms only ever reduce loss;
		// retained/rejected feedback leaves it unchanged).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y-1e-9 {
				t.Fatalf("series %s not monotone at %v", s.Name, s.Points[i])
			}
		}
		// Full verification converges to (near-)perfect quality.
		final := s.Points[len(s.Points)-1].Y
		if final < 90 {
			t.Fatalf("series %s final improvement %.1f, want ≥ 90", s.Name, final)
		}
	}
	// The headline claim: VOI ranking dominates Random in the first half of
	// the feedback range (area under curve).
	voi, rnd := fig.Series[0], fig.Series[2]
	var aVOI, aRnd float64
	for i := 0; i <= 10; i++ {
		aVOI += voi.Points[i].Y
		aRnd += rnd.Points[i].Y
	}
	if aVOI <= aRnd {
		t.Fatalf("VOI early area %.1f not above Random %.1f", aVOI, aRnd)
	}
}

func TestFigure4Shapes(t *testing.T) {
	cfg := smallCfg()
	d, err := Dataset(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure4(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("got %d series", len(fig.Series))
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
		if len(s.Points) != len(cfg.BudgetFractions) {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
	}
	// The heuristic line is constant.
	h := byName["Heuristic"]
	for _, p := range h.Points {
		if p.Y != h.Points[0].Y {
			t.Fatal("heuristic series not constant")
		}
	}
	// GDR at the largest budget beats the automatic heuristic.
	gdr := byName["GDR"]
	if gdr.Points[len(gdr.Points)-1].Y <= h.Points[0].Y {
		t.Fatalf("GDR (%.1f) does not beat Heuristic (%.1f) at full budget",
			gdr.Points[len(gdr.Points)-1].Y, h.Points[0].Y)
	}
}

func TestFigure5Shapes(t *testing.T) {
	cfg := smallCfg()
	d, err := Dataset(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure5(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || fig.Series[0].Name != "Precision" || fig.Series[1].Name != "Recall" {
		t.Fatalf("series: %v", fig.Series)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("%s out of range: %v", s.Name, p)
			}
		}
	}
	// Recall grows with effort.
	rec := fig.Series[1].Points
	if rec[len(rec)-1].Y <= rec[0].Y {
		t.Fatalf("recall does not grow with effort: %v .. %v", rec[0], rec[len(rec)-1])
	}
}

func TestRender(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "A", Points: []Point{{0, 1}, {10, 2}}},
			{Name: "B", Points: []Point{{0, 3}, {10, 4}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "A", "B", "1.00", "4.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
