// Package experiments regenerates the paper's evaluation (Section 5 and
// Appendix B.1): Figure 3 (VOI ranking vs Greedy vs Random), Figure 4
// (GDR and its ablations vs the automatic heuristic) and Figure 5
// (precision/recall vs user effort), on both experimental datasets. Each
// figure is returned as labeled series and can be rendered as an aligned
// text table whose rows mirror the paper's plotted curves.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync/atomic"

	"gdr/internal/core"
	"gdr/internal/dataset"
	"gdr/internal/par"
)

// Point is one (x, y) sample of a curve.
type Point struct {
	X float64
	Y float64
}

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure bundles the reproduced series of one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Config parameterizes a reproduction run.
type Config struct {
	// N is the dataset size (default 20000, the paper's scale).
	N int
	// Seed drives data generation and all strategy randomness.
	Seed int64
	// DirtyRate is the perturbed-tuple fraction (default 0.3).
	DirtyRate float64
	// BudgetFractions are the feedback budgets of Figures 4 and 5, as
	// fractions of the initial dirty-tuple count E.
	// Default {0.05, 0.1, 0.2, ..., 1.0}.
	BudgetFractions []float64
	// Workers sizes the harness's worker pool: each figure's independent
	// (dataset × budget × strategy) cells run as parallel simulated-user
	// runs. Unless Session.Workers is set explicitly, the budget is split
	// between the two levels — cells take priority and each session gets
	// the leftover share for its internal VOI scoring and candidate
	// generation, so the total runnable goroutines stay near Workers
	// instead of Workers². 0 and 1 select the serial path. Figures are
	// byte-identical at any setting: every cell owns a clone of the dirty
	// instance and a per-cell seeded RNG, and results are assembled in cell
	// order, never completion order.
	Workers int
	// Session tunes the underlying GDR sessions.
	Session core.Config
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.DirtyRate <= 0 {
		c.DirtyRate = 0.3
	}
	if len(c.BudgetFractions) == 0 {
		c.BudgetFractions = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	c.Workers = par.Workers(c.Workers)
	return c
}

// sessionConfig resolves the per-session worker share when concurrent
// cells divide the harness pool: an explicit Session.Workers always wins;
// otherwise each of the concurrent cells gets an equal slice of the knob
// (at least 1, i.e. serial sessions once cells alone saturate the pool).
func sessionConfig(cfg Config, concurrentCells int) core.Config {
	sc := cfg.Session
	if sc.Workers == 0 {
		if concurrentCells < 1 {
			concurrentCells = 1
		}
		sc.Workers = par.Workers(cfg.Workers / concurrentCells)
	}
	return sc
}

// Dataset materializes the paper's Dataset 1 (hospital) or 2 (census).
func Dataset(id int, cfg Config) (*dataset.Data, error) {
	cfg = cfg.withDefaults()
	dc := dataset.Config{N: cfg.N, Seed: cfg.Seed, DirtyRate: cfg.DirtyRate}
	switch id {
	case 1:
		return dataset.Hospital(dc), nil
	case 2:
		return dataset.Census(dc), nil
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %d (want 1 or 2)", id)
	}
}

// cell is one independent unit of figure work: a complete simulated-user
// run of one strategy at one feedback budget. Cells only read the shared
// dataset (each run repairs its own clone) and each owns a freshly seeded
// RNG, so a figure's cells can execute in any order and in parallel.
type cell struct {
	st          core.Strategy
	budget      int // 0 = run to convergence
	recordEvery int
}

// runCells executes one core.Run per cell on the harness's worker pool and
// returns the results indexed like cells — completion order never leaks
// into the output, which keeps figures byte-identical at any worker count.
// Once any cell fails, not-yet-started cells are skipped: the figure is
// doomed anyway, and at paper scale each cell is a multi-second run.
func runCells(d *dataset.Data, cfg Config, cells []cell) ([]*core.Result, error) {
	out := make([]*core.Result, len(cells))
	sess := sessionConfig(cfg, min(len(cells), cfg.Workers))
	var failed atomic.Bool
	err := par.ForEach(cfg.Workers, len(cells), func(i int) error {
		if failed.Load() {
			return nil
		}
		res, err := core.Run(cells[i].st, d.Dirty, d.Truth, d.Rules, core.RunConfig{
			Session:     sess,
			Budget:      cells[i].budget,
			RecordEvery: cells[i].recordEvery,
			Seed:        cfg.Seed + 1,
		})
		if err != nil {
			failed.Store(true)
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure3 reproduces Figure 3: the quality trajectory of the learning-free
// ranking strategies (GDR-NoLearning, Greedy, Random) as user feedback
// accumulates. Feedback is reported, as in the paper, as a percentage of
// each approach's own total verified updates; every strategy runs to
// convergence. The three strategy runs are independent cells on the
// harness's worker pool.
func Figure3(d *dataset.Data, cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "fig3",
		Title:  fmt.Sprintf("Figure 3 (%s): VOI-based ranking vs naive strategies", d.Name),
		XLabel: "feedback (% of updates verified by the approach)",
		YLabel: "% quality improvement",
	}
	strategies := []core.Strategy{core.StrategyGDRNoLearning, core.StrategyGreedy, core.StrategyRandom}
	cells := make([]cell, len(strategies))
	for i, st := range strategies {
		cells[i] = cell{st: st, recordEvery: recordStep(cfg.N)}
	}
	results, err := runCells(d, cfg, cells)
	if err != nil {
		return Figure{}, err
	}
	for i, res := range results {
		fig.Series = append(fig.Series, normalizeTrajectory(string(strategies[i]), res))
	}
	return fig, nil
}

// Figure4 reproduces Figure 4: final quality improvement per feedback
// budget (as % of the initial dirty count E) for GDR, GDR-S-Learning,
// Active-Learning and GDR-NoLearning, plus the constant Automatic-Heuristic
// line. Each budget point is an independent run from the initial instance.
func Figure4(d *dataset.Data, cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "fig4",
		Title:  fmt.Sprintf("Figure 4 (%s): overall evaluation of GDR", d.Name),
		XLabel: "feedback (% of initial dirty tuples E)",
		YLabel: "% quality improvement",
	}
	e, err := initialDirty(d, cfg)
	if err != nil {
		return Figure{}, err
	}
	strategies := []core.Strategy{
		core.StrategyGDR, core.StrategyGDRSLearning,
		core.StrategyActiveLearning, core.StrategyGDRNoLearning,
	}
	// One cell per (strategy, budget) pair plus the single heuristic run;
	// only the final improvement of each run matters.
	var cells []cell
	for _, st := range strategies {
		for _, frac := range cfg.BudgetFractions {
			budget := int(math.Ceil(frac * float64(e)))
			cells = append(cells, cell{st: st, budget: budget, recordEvery: 1 << 30})
		}
	}
	cells = append(cells, cell{st: core.StrategyHeuristic, recordEvery: 1 << 30})
	results, err := runCells(d, cfg, cells)
	if err != nil {
		return Figure{}, err
	}
	for si, st := range strategies {
		s := Series{Name: string(st)}
		for fi, frac := range cfg.BudgetFractions {
			res := results[si*len(cfg.BudgetFractions)+fi]
			s.Points = append(s.Points, Point{X: 100 * frac, Y: res.FinalImprovement})
		}
		fig.Series = append(fig.Series, s)
	}
	heur := results[len(results)-1]
	hs := Series{Name: string(core.StrategyHeuristic)}
	for _, frac := range cfg.BudgetFractions {
		hs.Points = append(hs.Points, Point{X: 100 * frac, Y: heur.FinalImprovement})
	}
	fig.Series = append(fig.Series, hs)
	return fig, nil
}

// Figure5 reproduces Figure 5: repair precision and recall of GDR as the
// affordable user effort F grows (reported as % of the initial dirty count).
func Figure5(d *dataset.Data, cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	fig := Figure{
		ID:     "fig5",
		Title:  fmt.Sprintf("Figure 5 (%s): accuracy vs user effort", d.Name),
		XLabel: "feedback (% of initial dirty tuples E)",
		YLabel: "precision / recall",
	}
	e, err := initialDirty(d, cfg)
	if err != nil {
		return Figure{}, err
	}
	cells := make([]cell, len(cfg.BudgetFractions))
	for i, frac := range cfg.BudgetFractions {
		cells[i] = cell{st: core.StrategyGDR, budget: int(math.Ceil(frac * float64(e))), recordEvery: 1 << 30}
	}
	results, err := runCells(d, cfg, cells)
	if err != nil {
		return Figure{}, err
	}
	prec := Series{Name: "Precision"}
	rec := Series{Name: "Recall"}
	for i, frac := range cfg.BudgetFractions {
		prec.Points = append(prec.Points, Point{X: 100 * frac, Y: results[i].Precision})
		rec.Points = append(rec.Points, Point{X: 100 * frac, Y: results[i].Recall})
	}
	fig.Series = append(fig.Series, prec, rec)
	return fig, nil
}

// initialDirty counts E on a throwaway session (cheap relative to runs).
// It runs alone, so it gets the whole worker budget.
func initialDirty(d *dataset.Data, cfg Config) (int, error) {
	res, err := core.Run(core.StrategyGDRNoLearning, d.Dirty, d.Truth, d.Rules, core.RunConfig{
		Session: sessionConfig(cfg, 1), Budget: 1, RecordEvery: 1 << 30,
	})
	if err != nil {
		return 0, err
	}
	return res.InitialDirty, nil
}

// normalizeTrajectory converts a run's (verified, improvement) samples to
// the paper's Figure 3 x-axis: percent of the approach's total feedback,
// resampled on a fixed 0..100 grid with step interpolation.
func normalizeTrajectory(name string, res *core.Result) Series {
	s := Series{Name: name}
	total := res.Verified
	if total == 0 {
		s.Points = append(s.Points, Point{X: 0, Y: res.FinalImprovement})
		return s
	}
	for x := 0; x <= 100; x += 5 {
		cut := float64(x) / 100 * float64(total)
		y := 0.0
		for _, p := range res.Points {
			if float64(p.Verified) <= cut {
				y = p.Improvement
			} else {
				break
			}
		}
		s.Points = append(s.Points, Point{X: float64(x), Y: y})
	}
	return s
}

// recordStep samples trajectories densely enough for the normalized grid
// without recording every single feedback on large instances.
func recordStep(n int) int {
	step := n / 2000
	if step < 1 {
		step = 1
	}
	return step
}

// Render writes the figure as an aligned text table: one row per x value,
// one column per series — the same rows the paper plots.
func (f Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "x = %s, y = %s\n\n", f.XLabel, f.YLabel)

	// Collect the union of x values in order of first appearance.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	header := []string{"x"}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(w, strings.Join(pad(header), "  "))
	for _, x := range xs {
		row := []string{fmt.Sprintf("%.0f", x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.2f", p.Y)
				}
			}
			row = append(row, cell)
		}
		fmt.Fprintln(w, strings.Join(pad(row), "  "))
	}
	fmt.Fprintln(w)
	return nil
}

// pad right-pads cells to a common width per column position.
func pad(cells []string) []string {
	const width = 16
	out := make([]string, len(cells))
	for i, c := range cells {
		if len(c) < width {
			c = c + strings.Repeat(" ", width-len(c))
		}
		out[i] = c
	}
	return out
}
