package repair

import (
	"fmt"
	"sort"

	"gdr/internal/relation"
)

// LockedCell identifies a confirmed-correct cell by tuple id and attribute
// position (Changeable = false in the paper's bookkeeping).
type LockedCell struct {
	Tid int
	Pos int
}

// PreventedCell carries one cell's prevented list: the interned ids of the
// values the user has confirmed wrong for it. The ids are only meaningful
// against the dictionaries of the instance they were snapshotted with.
type PreventedCell struct {
	Tid    int
	Pos    int
	Values []relation.VID
}

// CellState snapshots the generator's per-cell feedback bookkeeping — the
// locked set and the prevented lists — in deterministic (tid, attribute
// position) order, values ascending. Everything else the generator holds
// (similarity memo, co-occurrence indexes) is a cache over the instance and
// is rebuilt lazily after a restore.
func (g *Generator) CellState() (locked []LockedCell, prevented []PreventedCell) {
	for c := range g.locked {
		locked = append(locked, LockedCell{Tid: c.tid, Pos: c.ai})
	}
	sort.Slice(locked, func(i, j int) bool {
		if locked[i].Tid != locked[j].Tid {
			return locked[i].Tid < locked[j].Tid
		}
		return locked[i].Pos < locked[j].Pos
	})
	for c, vals := range g.prevented {
		if len(vals) == 0 {
			continue
		}
		pc := PreventedCell{Tid: c.tid, Pos: c.ai, Values: make([]relation.VID, 0, len(vals))}
		for v := range vals {
			pc.Values = append(pc.Values, v)
		}
		sort.Slice(pc.Values, func(i, j int) bool { return pc.Values[i] < pc.Values[j] })
		prevented = append(prevented, pc)
	}
	sort.Slice(prevented, func(i, j int) bool {
		if prevented[i].Tid != prevented[j].Tid {
			return prevented[i].Tid < prevented[j].Tid
		}
		return prevented[i].Pos < prevented[j].Pos
	})
	return locked, prevented
}

// RestoreCellState installs snapshotted feedback bookkeeping into a fresh
// generator. Cells and value ids are validated against the instance, so a
// snapshot that disagrees with its own rows/dictionaries errors cleanly.
func (g *Generator) RestoreCellState(locked []LockedCell, prevented []PreventedCell) error {
	checkCell := func(tid, ai int) error {
		if tid < 0 || tid >= g.db.N() {
			return fmt.Errorf("repair: cell tuple id %d outside instance of %d tuples", tid, g.db.N())
		}
		if ai < 0 || ai >= g.db.Schema.Arity() {
			return fmt.Errorf("repair: cell attribute position %d outside schema arity %d", ai, g.db.Schema.Arity())
		}
		return nil
	}
	for _, c := range locked {
		if err := checkCell(c.Tid, c.Pos); err != nil {
			return err
		}
		g.locked[cellPos{c.Tid, c.Pos}] = true
	}
	for _, c := range prevented {
		if err := checkCell(c.Tid, c.Pos); err != nil {
			return err
		}
		m := g.prevented[cellPos{c.Tid, c.Pos}]
		if m == nil {
			m = make(map[relation.VID]bool, len(c.Values))
			g.prevented[cellPos{c.Tid, c.Pos}] = m
		}
		for _, v := range c.Values {
			if int(v) >= g.db.Dict(c.Pos).Len() {
				return fmt.Errorf("repair: prevented VID %d outside dictionary of attribute %d (len %d)",
					v, c.Pos, g.db.Dict(c.Pos).Len())
			}
			m[v] = true
		}
	}
	return nil
}
