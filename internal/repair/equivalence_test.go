package repair_test

import (
	"math/rand"
	"reflect"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// TestEncodedEngineEquivalence drives ~500 random Apply/Insert/Suggest steps
// through the incrementally maintained VID engine and generator, and after
// every mutation cross-checks the full observable state against a ground
// truth rebuilt from scratch over a clone of the instance: dirty sets,
// per-rule vio/sat/context counts, and the complete suggestion batch must be
// identical. This is the safety net for the dictionary-encoded storage
// layer: any divergence between incremental VID maintenance and a fresh
// string-loaded Rebuild is a bug.
func TestEncodedEngineEquivalence(t *testing.T) {
	schema := relation.MustSchema("Eq", []string{"A", "B", "C", "D"})
	rules := cfd.MustParse(`
phi1: A -> B :: _ || _
phi2: B, C -> D :: _, _ || _
phi3: A -> C :: a1 || c0
phi4: C -> D :: c1 || d2
`)
	vals := func(attr string, k int) string { return attr + string(rune('0'+k)) }
	rng := rand.New(rand.NewSource(99))
	randTuple := func() relation.Tuple {
		return relation.Tuple{
			vals("a", rng.Intn(4)),
			vals("b", rng.Intn(4)),
			vals("c", rng.Intn(4)),
			vals("d", rng.Intn(4)),
		}
	}

	db := relation.NewDB(schema)
	for i := 0; i < 60; i++ {
		db.MustInsert(randTuple())
	}
	eng, err := cfd.NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	gen := repair.NewGenerator(eng)

	// History of prevented/locked bookkeeping, replayed onto every fresh
	// reference generator so suggestion state matches.
	type prevention struct {
		tid   int
		attr  string
		value string
	}
	type lock struct {
		tid  int
		attr string
	}
	var preventions []prevention
	var locks []lock

	check := func(step int) {
		t.Helper()
		ref := db.Clone()
		refEng, err := cfd.NewEngine(ref, rules)
		if err != nil {
			t.Fatalf("step %d: rebuilding reference engine: %v", step, err)
		}
		if got, want := eng.DirtyCount(), refEng.DirtyCount(); got != want {
			t.Fatalf("step %d: dirty count %d, rebuild says %d", step, got, want)
		}
		if got, want := eng.Dirty(), refEng.Dirty(); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: dirty set %v, rebuild says %v", step, got, want)
		}
		for ri := range rules {
			if got, want := eng.Vio(ri), refEng.Vio(ri); got != want {
				t.Fatalf("step %d: rule %d vio %d, rebuild says %d", step, ri, got, want)
			}
			if got, want := eng.Sat(ri), refEng.Sat(ri); got != want {
				t.Fatalf("step %d: rule %d sat %d, rebuild says %d", step, ri, got, want)
			}
			if got, want := eng.Context(ri), refEng.Context(ri); got != want {
				t.Fatalf("step %d: rule %d context %d, rebuild says %d", step, ri, got, want)
			}
		}
		refGen := repair.NewGenerator(refEng)
		for _, p := range preventions {
			refGen.Prevent(p.tid, p.attr, p.value)
		}
		for _, l := range locks {
			refGen.Lock(l.tid, l.attr)
		}
		got := gen.SuggestBatch(eng.Dirty())
		want := refGen.SuggestBatch(refEng.Dirty())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: suggestions diverged\nincremental: %v\nrebuilt:     %v", step, got, want)
		}
	}

	check(-1)
	attrs := schema.Attrs
	for step := 0; step < 500; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // random cell edit through the generator
			tid := rng.Intn(db.N())
			attr := attrs[rng.Intn(len(attrs))]
			val := vals(string([]rune(attr)[0]+('a'-'A')), rng.Intn(4))
			gen.Apply(tid, attr, val)
			check(step)
		case op < 6: // online insert
			if _, _, err := gen.Insert(randTuple()); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			check(step)
		case op < 7: // user rejects a pending suggestion
			tid := rng.Intn(db.N())
			attr := attrs[rng.Intn(len(attrs))]
			if u, ok := gen.Suggest(tid, attr); ok {
				gen.Prevent(u.Tid, u.Attr, u.Value)
				preventions = append(preventions, prevention{u.Tid, u.Attr, u.Value})
				check(step)
			}
		case op < 8: // user retains a cell
			tid := rng.Intn(db.N())
			attr := attrs[rng.Intn(len(attrs))]
			gen.Lock(tid, attr)
			locks = append(locks, lock{tid, attr})
			check(step)
		default: // read-only suggestion probes between mutations
			tid := rng.Intn(db.N())
			gen.SuggestTuple(tid)
		}
	}
	check(500)
}

// TestWhatIfVIDFreshValue checks the FreshVID path: scoring a hypothetical
// value the dictionary has never seen must match applying that value to a
// clone and rebuilding from scratch.
func TestWhatIfVIDFreshValue(t *testing.T) {
	schema := relation.MustSchema("Fresh", []string{"City", "Zip"})
	rules := cfd.MustParse(`phi: Zip -> City :: _ || _`)
	db := relation.NewDB(schema)
	db.MustInsert(relation.Tuple{"Westville", "46360"})
	db.MustInsert(relation.Tuple{"Michigan City", "46360"})
	db.MustInsert(relation.Tuple{"Michigan City", "46360"})
	eng, err := cfd.NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < db.N(); tid++ {
		for _, attr := range schema.Attrs {
			value := "never-seen-before"
			deltas := eng.WhatIf(tid, attr, value)
			clone := db.Clone()
			clone.Set(tid, attr, value)
			refEng, err := cfd.NewEngine(clone, rules)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range deltas {
				if got, want := d.Vio, refEng.Vio(d.Rule); got != want {
					t.Fatalf("t%d.%s: WhatIf vio %d, rebuild says %d", tid, attr, got, want)
				}
				if got, want := d.Sat, refEng.Sat(d.Rule); got != want {
					t.Fatalf("t%d.%s: WhatIf sat %d, rebuild says %d", tid, attr, got, want)
				}
			}
		}
	}
}
