package repair

import (
	"math/rand"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// figure1 mirrors the running-example fixture used across packages.
func figure1(t testing.TB) *cfd.Engine {
	t.Helper()
	schema := relation.MustSchema("Customer", []string{"Name", "SRC", "STR", "CT", "STT", "ZIP"})
	db := relation.NewDB(schema)
	rows := []relation.Tuple{
		{"Alice", "H1", "Redwood Dr", "Michigan City", "IN", "46360"},
		{"Bob", "H2", "Oak St", "Westville", "IN", "46360"},
		{"Carol", "H2", "Pine Ave", "Westvile", "IN", "46360"},
		{"Dave", "H2", "Main St", "Michigan Cty", "IN", "46360"},
		{"Eve", "H1", "Sherden RD", "Fort Wayne", "IN", "46391"},
		{"Frank", "H1", "Sherden RD", "Fort Wayne", "IN", "46825"},
		{"Grace", "H3", "Canal Rd", "New Haven", "OH", "46774"},
		{"Heidi", "H3", "Sherden RD", "Fort Wayne", "IN", "46835"},
	}
	for _, r := range rows {
		db.MustInsert(r)
	}
	rules := cfd.MustParse(`
phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN
phi2: ZIP -> CT, STT :: 46774 || New Haven, IN
phi3: ZIP -> CT, STT :: 46825 || Fort Wayne, IN
phi4: ZIP -> CT, STT :: 46391 || Westville, IN
phi5: STR, CT -> ZIP :: _, Fort Wayne || _
`)
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSuggestScenario1ConstantRHS(t *testing.T) {
	g := NewGenerator(figure1(t))
	// t3 has ZIP 46360 and CT "Michigan Cty": phi1.1 forces "Michigan City".
	u, ok := g.Suggest(3, "CT")
	if !ok {
		t.Fatal("no suggestion for t3.CT")
	}
	if u.Value != "Michigan City" {
		t.Fatalf("suggested %q, want Michigan City", u.Value)
	}
	// "Michigan Cty" -> "Michigan City" is one insertion over 13 runes.
	if want := 1.0 - 1.0/13.0; !almost(u.Score, want) {
		t.Fatalf("score = %v, want %v", u.Score, want)
	}
}

func TestSuggestScenario2VariableRHS(t *testing.T) {
	e := figure1(t)
	g := NewGenerator(e)
	// Lock out the competing scenario-3 candidates by making the constant
	// 46360 prevented so the partner values can be observed.
	g.Prevent(4, "ZIP", "46360")
	u, ok := g.Suggest(4, "ZIP")
	if !ok {
		t.Fatal("no suggestion for t4.ZIP")
	}
	// Partners hold 46825 and 46835 (both sim 0.4); constants 46774 ties at
	// 0.4 too but partner values 46825/46835 have their own ranks; the
	// scenario-1/2 rank beats scenario-3, and lexicographic order breaks the
	// remaining tie.
	if u.Value != "46825" {
		t.Fatalf("suggested %q, want 46825", u.Value)
	}
}

func TestSuggestScenario3LHSNeedsEvidence(t *testing.T) {
	g := NewGenerator(figure1(t))
	// t1 (Westville, 46360) violates phi1.1. For the ZIP attribute (in the
	// rule's LHS) there is no evidence anywhere that Westville pairs with a
	// different zip, so no ZIP repair may be invented; the CT repair from
	// scenario 1 is the only suggestion.
	if u, ok := g.Suggest(1, "ZIP"); ok {
		t.Fatalf("evidence-free ZIP suggestion %v", u)
	}
	if u, ok := g.Suggest(1, "CT"); !ok || u.Value != "Michigan City" {
		t.Fatalf("CT suggestion = %v, %v", u, ok)
	}
}

func TestSuggestScenario3CoOccurrence(t *testing.T) {
	// With enough Westville/46391 tuples in the database, the co-occurrence
	// index supplies the LHS repair: t's zip should be 46391.
	schema := relation.MustSchema("Customer", []string{"CT", "STT", "ZIP"})
	db := relation.NewDB(schema)
	db.MustInsert(relation.Tuple{"Westville", "IN", "46360"}) // dirty: zip belongs to Michigan City
	for i := 0; i < 4; i++ {
		db.MustInsert(relation.Tuple{"Westville", "IN", "46391"})
	}
	rules := cfd.MustParse(`
phi1: ZIP -> CT :: 46360 || Michigan City
phi4: ZIP -> CT :: 46391 || Westville
`)
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(e)
	u, ok := g.Suggest(0, "ZIP")
	if !ok {
		t.Fatal("no ZIP suggestion despite co-occurrence evidence")
	}
	if u.Value != "46391" {
		t.Fatalf("suggested %q, want 46391", u.Value)
	}
	if !almost(u.Score, 0.6) {
		t.Fatalf("score = %v, want 0.6", u.Score)
	}
}

func TestScenario3ResolutionFilter(t *testing.T) {
	// An LHS candidate that would leave the tuple violating the same rule
	// must be dropped: here every co-occurring street keeps the tuple in a
	// mixed bucket (the bucket's zips disagree with the tuple's own zip).
	schema := relation.MustSchema("R", []string{"STR", "CT", "ZIP"})
	db := relation.NewDB(schema)
	for i := 0; i < 4; i++ {
		db.MustInsert(relation.Tuple{"Oak St", "Fort Wayne", "46825"})
	}
	for i := 0; i < 4; i++ {
		db.MustInsert(relation.Tuple{"Lima Rd", "Fort Wayne", "46825"})
	}
	// The outlier shares Oak St but carries a different zip.
	db.MustInsert(relation.Tuple{"Oak St", "Fort Wayne", "46999"})
	rules := cfd.MustParse("phi5: STR, CT -> ZIP :: _, Fort Wayne || _")
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(e)
	// Moving the outlier to "Lima Rd" would still conflict (Lima Rd's zips
	// are 46825 ≠ 46999), so no street suggestion for the outlier.
	if u, ok := g.Suggest(8, "STR"); ok {
		t.Fatalf("non-resolving street suggestion %v", u)
	}
	// Its zip, however, is repairable from the violating partners.
	if u, ok := g.Suggest(8, "ZIP"); !ok || u.Value != "46825" {
		t.Fatalf("zip suggestion = %v, %v", u, ok)
	}
}

func TestSuggestRespectsPreventedAndLock(t *testing.T) {
	g := NewGenerator(figure1(t))
	u, ok := g.Suggest(1, "CT")
	if !ok || u.Value != "Michigan City" {
		t.Fatalf("baseline suggestion = %v, %v", u, ok)
	}
	g.Prevent(1, "CT", "Michigan City")
	if g.IsPrevented(1, "CT", "Michigan City") != true {
		t.Fatal("IsPrevented should be true")
	}
	// t1 violates only phi1.1 and CT is its RHS; with the constant
	// prevented there is nothing left to suggest.
	if u2, ok2 := g.Suggest(1, "CT"); ok2 {
		t.Fatalf("suggestion after prevent = %v", u2)
	}
	g.Lock(2, "CT")
	if !g.Locked(2, "CT") {
		t.Fatal("Locked should be true")
	}
	if _, ok := g.Suggest(2, "CT"); ok {
		t.Fatal("locked cell should yield no suggestion")
	}
}

func TestSuggestCleanTupleHasNoUpdates(t *testing.T) {
	g := NewGenerator(figure1(t))
	if ups := g.SuggestTuple(0); len(ups) != 0 {
		t.Fatalf("clean tuple got suggestions: %v", ups)
	}
}

func TestSuggestAllCoversDirtyTuples(t *testing.T) {
	e := figure1(t)
	g := NewGenerator(e)
	ups := g.SuggestAll()
	if len(ups) == 0 {
		t.Fatal("no updates generated")
	}
	byTid := map[int]bool{}
	for _, u := range ups {
		byTid[u.Tid] = true
		if !e.IsDirty(u.Tid) {
			t.Errorf("update %v for clean tuple", u)
		}
		if u.Value == e.DB().Get(u.Tid, u.Attr) {
			t.Errorf("update %v suggests the current value", u)
		}
		if u.Score < 0 || u.Score > 1 {
			t.Errorf("update %v score out of range", u)
		}
	}
	for _, tid := range e.Dirty() {
		if !byTid[tid] {
			t.Errorf("dirty tuple t%d received no updates", tid)
		}
	}
}

func TestApplyKeepsDomainsInSync(t *testing.T) {
	e := figure1(t)
	g := NewGenerator(e)
	if got := g.DomainCount("CT", "Westville"); got != 1 {
		t.Fatalf("initial count = %d", got)
	}
	g.Apply(1, "CT", "Michigan City")
	if got := g.DomainCount("CT", "Westville"); got != 0 {
		t.Fatalf("count after apply = %d", got)
	}
	if got := g.DomainCount("CT", "Michigan City"); got != 2 {
		t.Fatalf("Michigan City count = %d", got)
	}
	// The engine must have been driven too.
	if e.DB().Get(1, "CT") != "Michigan City" {
		t.Fatal("Apply did not reach the database")
	}
}

func TestSuggestInvariantsRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	schema := relation.MustSchema("R", []string{"A", "B", "C"})
	vals := []string{"p", "q", "r", "s"}
	for trial := 0; trial < 10; trial++ {
		db := relation.NewDB(schema)
		for i := 0; i < 40; i++ {
			db.MustInsert(relation.Tuple{vals[r.Intn(4)], vals[r.Intn(4)], vals[r.Intn(4)]})
		}
		rules := []*cfd.CFD{
			cfd.MustNew("k1", []string{"A"}, "B", map[string]string{"A": "p", "B": "q"}),
			cfd.MustNew("k2", []string{"A"}, "C", map[string]string{"A": cfd.Wildcard, "C": cfd.Wildcard}),
		}
		e, err := cfd.NewEngine(db, rules)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGenerator(e)
		for step := 0; step < 50; step++ {
			tid := r.Intn(db.N())
			attr := schema.Attrs[r.Intn(3)]
			switch r.Intn(4) {
			case 0:
				g.Prevent(tid, attr, vals[r.Intn(4)])
			case 1:
				g.Lock(tid, attr)
			default:
				u, ok := g.Suggest(tid, attr)
				if !ok {
					continue
				}
				if g.Locked(tid, attr) {
					t.Fatal("suggestion for locked cell")
				}
				if u.Value == db.Get(tid, attr) {
					t.Fatalf("suggestion equals current value: %v", u)
				}
				if g.IsPrevented(tid, attr, u.Value) {
					t.Fatalf("suggestion is prevented: %v", u)
				}
				if u.Score < 0 || u.Score > 1 {
					t.Fatalf("score out of range: %v", u)
				}
				if r.Intn(2) == 0 {
					g.Apply(u.Tid, u.Attr, u.Value)
				}
			}
		}
	}
}

func TestFeedbackString(t *testing.T) {
	if Confirm.String() != "confirm" || Reject.String() != "reject" || Retain.String() != "retain" {
		t.Fatal("Feedback.String mismatch")
	}
	if Feedback(42).String() != "Feedback(42)" {
		t.Fatal("unknown feedback should fall back to numeric form")
	}
}

func TestScenario3RequiresCoOccurrenceSupport(t *testing.T) {
	// Rule: A=ctx → B=clean-b. A tuple in context with a wrong B can escape
	// by changing A, but only to a value with enough co-occurrence support.
	schema := relation.MustSchema("R", []string{"A", "B"})
	rules := []*cfd.CFD{
		cfd.MustNew("k", []string{"A"}, "B", map[string]string{"A": "ctx", "B": "clean-b"}),
	}
	// Unsupported: the other tuples sharing B="shared" all carry distinct A
	// values (count 1 each), so nothing qualifies.
	db := relation.NewDB(schema)
	db.MustInsert(relation.Tuple{"ctx", "shared"}) // the violator
	for i := 0; i < 6; i++ {
		db.MustInsert(relation.Tuple{"ok" + string(rune('a'+i)), "shared"})
	}
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(e)
	if u, ok := g.Suggest(0, "A"); ok {
		t.Fatalf("unsupported singleton candidates should be filtered, got %v", u)
	}
	// Supported: many tuples pair B="shared" with A="okay".
	db2 := relation.NewDB(schema)
	db2.MustInsert(relation.Tuple{"ctx", "shared"})
	for i := 0; i < 6; i++ {
		db2.MustInsert(relation.Tuple{"okay", "shared"})
	}
	e2, err := cfd.NewEngine(db2, rules)
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGenerator(e2)
	u, ok := g2.Suggest(0, "A")
	if !ok || u.Value != "okay" {
		t.Fatalf("supported candidate not suggested: %v %v", u, ok)
	}
}

func almost(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func BenchmarkSuggestAll(b *testing.B) {
	e := figure1(b)
	g := NewGenerator(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SuggestAll()
	}
}
