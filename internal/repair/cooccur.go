package repair

import (
	"sort"
	"strings"

	"gdr/internal/relation"
)

// cooccur is a co-occurrence index supporting scenario 3 of Algorithm 1:
// for a violated rule φ = (X → A) and a target attribute B ∈ X, candidate
// repair values for t[B] are the B-values of tuples agreeing with t on the
// remaining rule attributes (X ∪ A) − {B} — "the tuples identified by the
// pattern t[X ∪ A − {B}]" in the paper's words.
//
// Indexes are keyed by their attribute signature and shared across rules
// (all per-zip constant rules Zip → City share one {City}→Zip index, etc.),
// built lazily on first use and maintained incrementally on every Apply.
// Keys and values are dictionary-encoded: a key is the fixed-width byte
// encoding of the key attributes' VIDs, and buckets count VIDs, so probing
// an index hashes a handful of bytes instead of joined strings.
type cooccur struct {
	target int   // attribute position whose values are collected
	others []int // key attribute positions, sorted
	m      map[string]map[relation.VID]int
}

func (c *cooccur) keyOf(buf []byte, vals func(ai int) relation.VID) []byte {
	for _, ai := range c.others {
		buf = relation.AppendVID(buf, vals(ai))
	}
	return buf
}

func (c *cooccur) add(key string, val relation.VID) {
	bucket := c.m[key]
	if bucket == nil {
		bucket = make(map[relation.VID]int)
		c.m[key] = bucket
	}
	bucket[val]++
}

func (c *cooccur) remove(key string, val relation.VID) {
	bucket := c.m[key]
	if bucket == nil {
		return
	}
	if n := bucket[val]; n <= 1 {
		delete(bucket, val)
		if len(bucket) == 0 {
			delete(c.m, key)
		}
	} else {
		bucket[val] = n - 1
	}
}

func sigOf(target int, others []int) string {
	parts := make([]string, 0, len(others)+1)
	for _, o := range others {
		parts = append(parts, itoa(o))
	}
	return itoa(target) + "|" + strings.Join(parts, ",")
}

func itoa(i int) string {
	// small positive ints only; avoids strconv import noise in the hot path
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// ensureIndex returns (building if needed) the co-occurrence index for the
// given target and key attributes. Indexes stay lazily built — sessions pay
// only for the signatures scenario 3 actually demands — and lookups from
// concurrent Suggest calls share a read lock, so the steady-state hot path
// never contends; only a first-use build (or a serial-phase mutation)
// takes the write lock. An index is only published once fully built, and
// established indexes are never mutated during (read-only) batches.
func (g *Generator) ensureIndex(target int, others []int) *cooccur {
	sorted := append([]int(nil), others...)
	sort.Ints(sorted)
	sig := sigOf(target, sorted)
	g.indexMu.RLock()
	idx, ok := g.indexes[sig]
	g.indexMu.RUnlock()
	if ok {
		return idx
	}
	g.indexMu.Lock()
	defer g.indexMu.Unlock()
	if idx, ok := g.indexes[sig]; ok {
		return idx // another goroutine built it between the locks
	}
	idx = &cooccur{target: target, others: sorted, m: make(map[string]map[relation.VID]int)}
	for tid := 0; tid < g.db.N(); tid++ {
		row := g.db.Row(tid)
		var kb [relation.KeyBufSize]byte
		idx.add(string(idx.keyOf(kb[:0], func(ai int) relation.VID { return row[ai] })), row[idx.target])
	}
	g.indexes[sig] = idx
	return idx
}

// updateIndexes maintains every built co-occurrence index after the cell
// (tid, ai) changed from oldV to newV; the rest of the tuple is unchanged.
func (g *Generator) updateIndexes(tid, ai int, oldV, newV relation.VID) {
	row := g.db.Row(tid) // already holds the new value at ai
	g.indexMu.Lock()
	defer g.indexMu.Unlock()
	for _, idx := range g.indexes {
		inOthers := false
		for _, o := range idx.others {
			if o == ai {
				inOthers = true
				break
			}
		}
		var kb, kb2 [relation.KeyBufSize]byte
		switch {
		case idx.target == ai:
			key := string(idx.keyOf(kb[:0], func(k int) relation.VID { return row[k] }))
			idx.remove(key, oldV)
			idx.add(key, newV)
		case inOthers:
			oldKey := string(idx.keyOf(kb[:0], func(k int) relation.VID {
				if k == ai {
					return oldV
				}
				return row[k]
			}))
			newKey := string(idx.keyOf(kb2[:0], func(k int) relation.VID { return row[k] }))
			idx.remove(oldKey, row[idx.target])
			idx.add(newKey, row[idx.target])
		}
	}
}

// minCoCount is the minimum support a co-occurring value needs to become a
// scenario-3 candidate. In dirty data a value co-occurring once or twice
// with the tuple's pattern is overwhelmingly an error itself (e.g. a typo
// variant of the correct value, which similarity scoring would otherwise
// love); genuine values co-occur broadly.
const minCoCount = 3

// coCandidates returns the candidate value ids for attribute target among
// the tuples agreeing with tuple tid on the others attributes, in
// deterministic order (most frequent first, then lexicographic value).
func (g *Generator) coCandidates(tid, target int, others []int) []relation.VID {
	idx := g.ensureIndex(target, others)
	row := g.db.Row(tid)
	var kb [relation.KeyBufSize]byte
	bucket := idx.m[string(idx.keyOf(kb[:0], func(ai int) relation.VID { return row[ai] }))]
	if len(bucket) == 0 {
		return nil
	}
	type vc struct {
		v relation.VID
		c int
	}
	all := make([]vc, 0, len(bucket))
	for v, c := range bucket {
		if c < minCoCount {
			continue
		}
		all = append(all, vc{v, c})
	}
	d := g.db.Dict(target)
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return d.Val(all[i].v) < d.Val(all[j].v)
	})
	out := make([]relation.VID, len(all))
	for i, x := range all {
		out[i] = x.v
	}
	return out
}
