// Package repair implements GDR's candidate-update generation (Appendix A of
// the paper): the on-demand UpdateAttributeTuple procedure with its three
// resolution scenarios, the update evaluation function (Eq. 7), and the
// per-cell bookkeeping the consistency manager relies on — prevented value
// lists and changeable flags.
package repair

import (
	"fmt"
	"sync"

	"gdr/internal/cfd"
	"gdr/internal/par"
	"gdr/internal/relation"
	"gdr/internal/strsim"
)

// Feedback is a user (or learner) decision about a suggested update.
type Feedback int

const (
	// Confirm: the suggested value is correct; apply it and stop generating
	// updates for this cell.
	Confirm Feedback = iota
	// Reject: the suggested value is wrong; add it to the prevented list and
	// look for a different suggestion.
	Reject
	// Retain: the cell's current value is already correct; stop generating
	// updates for it.
	Retain
)

func (f Feedback) String() string {
	switch f {
	case Confirm:
		return "confirm"
	case Reject:
		return "reject"
	case Retain:
		return "retain"
	default:
		return fmt.Sprintf("Feedback(%d)", int(f))
	}
}

// Update is a suggested repair r = ⟨t, A, v, s⟩: set attribute Attr of tuple
// Tid to Value; Score is the update evaluation function's certainty in [0,1].
type Update struct {
	Tid   int
	Attr  string
	Value string
	Score float64
}

// Cell returns the cell the update targets.
func (u Update) Cell() CellKey { return CellKey{Tid: u.Tid, Attr: u.Attr} }

func (u Update) String() string {
	return fmt.Sprintf("⟨t%d, %s, %q, %.2f⟩", u.Tid, u.Attr, u.Value, u.Score)
}

// CellKey identifies one database cell.
type CellKey struct {
	Tid  int
	Attr string
}

// cellPos identifies one cell by tuple id and attribute position — the
// integer-keyed form used by the generator's internal maps.
type cellPos struct {
	tid int
	ai  int
}

// Similarity scores how close a suggested value is to the current one;
// Eq. 7's normalized edit-distance similarity is the default.
type Similarity func(current, suggested string) float64

// simKey keys the similarity memo: attribute position plus the interned ids
// of the current and suggested values. Hashing three integers replaces
// hashing two strings on every candidate evaluation.
type simKey struct {
	ai   int32
	a, b relation.VID
}

// Generator produces candidate updates for dirty cells. All cell mutations
// during a session must go through Generator.Apply so the co-occurrence
// indexes stay current (domain statistics live in the relation layer and
// maintain themselves). Mutations are single-goroutine, but suggestion
// generation is read-only against the instance and may be batched across
// workers (see SuggestAll); the two internal caches it touches — the
// similarity memo and the lazily built co-occurrence indexes — are
// lock-striped and mutex-guarded respectively, so concurrent Suggest calls
// are safe as long as no Apply/Insert runs at the same time.
type Generator struct {
	eng     *cfd.Engine
	db      *relation.DB
	sim     Similarity
	workers int

	prevented map[cellPos]map[relation.VID]bool
	locked    map[cellPos]bool

	// simMemo caches similarity scores; candidate values recur constantly
	// across Suggest calls (rule constants, frequent domain values). It is
	// lock-striped so concurrent batch generation does not serialize on one
	// lock, and integer-keyed so probing it never hashes a string.
	simMemo *par.Cache[simKey, float64]

	// indexes holds the lazily built co-occurrence indexes backing
	// scenario 3, keyed by attribute signature; indexMu guards the map and
	// makes first-use builds safe under concurrent Suggest calls (readers
	// share the lock, so steady-state lookups don't contend).
	indexMu sync.RWMutex
	indexes map[string]*cooccur // gdr:guarded-by indexMu
}

// maxSimMemo bounds the similarity cache.
const maxSimMemo = 1 << 20

func (g *Generator) simCached(ai int, a, b relation.VID) float64 {
	k := simKey{ai: int32(ai), a: a, b: b}
	if s, ok := g.simMemo.Get(k); ok {
		return s
	}
	d := g.db.Dict(ai)
	s := g.sim(d.Val(a), d.Val(b))
	g.simMemo.Put(k, s)
	return s
}

// Option configures a Generator.
type Option func(*Generator)

// WithSimilarity replaces the Eq. 7 evaluation function.
func WithSimilarity(s Similarity) Option { return func(g *Generator) { g.sim = s } }

// WithWorkers sets the fan-out of batch suggestion generation (SuggestAll
// and SuggestBatch). Values below 2 select the serial path. Results are
// identical at any setting.
func WithWorkers(n int) Option { return func(g *Generator) { g.workers = par.Workers(n) } }

// NewGenerator builds a generator over the engine's database.
func NewGenerator(eng *cfd.Engine, opts ...Option) *Generator {
	g := &Generator{
		eng:       eng,
		db:        eng.DB(),
		sim:       strsim.Similarity,
		workers:   1,
		prevented: make(map[cellPos]map[relation.VID]bool),
		locked:    make(map[cellPos]bool),
		simMemo:   par.NewCache[simKey, float64](maxSimMemo),
		indexes:   make(map[string]*cooccur),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Engine returns the violation engine the generator works against.
func (g *Generator) Engine() *cfd.Engine { return g.eng }

// Apply routes a confirmed cell update through the violation engine and
// keeps the generator's co-occurrence indexes in sync. It returns the tuples
// whose dirty status may have changed.
func (g *Generator) Apply(tid int, attr, value string) []int {
	ai := g.db.Schema.MustIndex(attr)
	old := g.db.VIDAt(tid, ai)
	affected := g.eng.Apply(tid, attr, value)
	if now := g.db.VIDAt(tid, ai); now != old {
		g.updateIndexes(tid, ai, old, now)
	}
	return affected
}

// Insert routes a newly entered tuple through the violation engine and
// keeps the co-occurrence indexes in sync. It returns the new tuple id and
// the affected tuples.
func (g *Generator) Insert(t relation.Tuple) (tid int, affected []int, err error) {
	tid, affected, err = g.eng.Insert(t)
	if err != nil {
		return 0, nil, err
	}
	row := g.db.Row(tid)
	g.indexMu.Lock()
	for _, idx := range g.indexes {
		var kb [relation.KeyBufSize]byte
		idx.add(string(idx.keyOf(kb[:0], func(ai int) relation.VID { return row[ai] })), row[idx.target])
	}
	g.indexMu.Unlock()
	return tid, affected, nil
}

// DomainCount returns how many tuples currently hold value under attr; the
// relation layer maintains the statistic incrementally.
func (g *Generator) DomainCount(attr, value string) int {
	return g.db.ValueCount(attr, value)
}

// Prevent records that value was confirmed wrong for the cell
// (⟨t,B⟩.preventedList of Appendix A).
func (g *Generator) Prevent(tid int, attr, value string) {
	ai := g.db.Schema.MustIndex(attr)
	k := cellPos{tid, ai}
	m := g.prevented[k]
	if m == nil {
		m = make(map[relation.VID]bool)
		g.prevented[k] = m
	}
	m[g.db.Intern(ai, value)] = true
}

// IsPrevented reports whether value was confirmed wrong for the cell.
func (g *Generator) IsPrevented(tid int, attr, value string) bool {
	ai := g.db.Schema.MustIndex(attr)
	v, ok := g.db.LookupVID(ai, value)
	if !ok {
		return false
	}
	return g.prevented[cellPos{tid, ai}][v]
}

// Lock marks the cell as confirmed correct (⟨t,B⟩.Changeable = false): no
// further updates will be suggested for it.
func (g *Generator) Lock(tid int, attr string) {
	g.locked[cellPos{tid, g.db.Schema.MustIndex(attr)}] = true
}

// Locked reports whether the cell is locked.
func (g *Generator) Locked(tid int, attr string) bool {
	return g.locked[cellPos{tid, g.db.Schema.MustIndex(attr)}]
}

// candidate is an internal scored suggestion, value dictionary-encoded.
type candidate struct {
	value relation.VID
	score float64
	// rank breaks score ties deterministically: lower is better.
	rank int
}

// better orders candidates: higher score, then lower rank, then — only on a
// full tie — the lexicographically smaller value string, so the chosen
// suggestion is independent of candidate enumeration order and identical to
// the string-era generator's.
func better(d *relation.Dict, a, b candidate) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return d.Val(a.value) < d.Val(b.value)
}

// Suggest implements UpdateAttributeTuple(t, B) (Algorithm 1): it finds the
// best update value for cell (tid, attr) across the three scenarios and
// returns it with its Eq. 7 score. ok is false when the cell is locked, the
// tuple violates no rule involving the attribute, or every candidate is
// prevented.
func (g *Generator) Suggest(tid int, attr string) (u Update, ok bool) {
	return g.suggest(tid, attr, g.eng.VioRuleList(tid))
}

func (g *Generator) suggest(tid int, attr string, vio []int) (u Update, ok bool) {
	ai := g.db.Schema.MustIndex(attr)
	if g.locked[cellPos{tid, ai}] {
		return Update{}, false
	}
	cur := g.db.VIDAt(tid, ai)
	dict := g.db.Dict(ai)
	prevented := g.prevented[cellPos{tid, ai}]
	best := candidate{score: -1}
	consider := func(v relation.VID, rank int) {
		if v == cur || prevented[v] {
			return
		}
		c := candidate{value: v, score: g.simCached(ai, cur, v), rank: rank}
		if best.score < 0 || better(dict, c, best) {
			best = c
		}
	}

	lhsOf := vio[:0:0] // violated rules with attr in their LHS
	for _, ri := range vio {
		rule := g.eng.Rules()[ri]
		switch {
		case rule.RHS == attr && rule.Constant():
			// Scenario 1: enforce the constant RHS pattern value.
			consider(g.eng.ConstantRHSVID(ri), 0)
		case rule.RHS == attr:
			// Scenario 2: take the RHS value of a violating partner t′ —
			// but only when the tuple is a plausible culprit. Tuples whose
			// value holds a strict bucket majority are not suspects
			// (minimal-change repair changes the minority side); in an even
			// split, both sides are suggested, as in the paper's t5/t8
			// example.
			if g.eng.InBucketMajority(ri, tid) {
				continue
			}
			var pvb [16]relation.VID
			for _, v := range g.eng.AppendPartnerRHSVIDs(pvb[:0], ri, tid) {
				consider(v, 1)
			}
		default:
			// Candidate LHS repairs are only derived when the tuple is a
			// plausible culprit: for a variable rule, tuples agreeing with
			// their bucket's strict majority are not suspects (the conflict
			// is attributable to the minority side — minimal-change repair).
			if rule.Involves(attr) && !g.eng.InBucketMajority(ri, tid) {
				lhsOf = append(lhsOf, ri)
			}
		}
	}
	if len(lhsOf) > 0 {
		// Scenario 3: semantically related values for an LHS attribute —
		// first constants from the violated rules' tableaux, then the values
		// of attr among the tuples identified by the pattern t[X ∪ A − {B}]
		// (co-occurrence). A candidate is only eligible if it resolves the
		// violation it was derived from (Appendix A.2: the change must make
		// t[X] ⋠ tp[X], or move t into agreeing company).
		for _, ri := range lhsOf {
			rule := g.eng.Rules()[ri]
			if pv, hasPat := g.eng.LHSPatternVID(ri, ai); hasPat && !g.eng.WouldViolateVID(ri, tid, ai, pv) {
				consider(pv, 2)
			}
			others := make([]int, 0, len(rule.LHS))
			for _, a := range rule.Attrs() {
				if a != attr {
					others = append(others, g.db.Schema.MustIndex(a))
				}
			}
			for _, v := range g.coCandidates(tid, ai, others) {
				if !g.eng.WouldViolateVID(ri, tid, ai, v) {
					consider(v, 3)
				}
			}
		}
	}
	if best.score < 0 {
		return Update{}, false
	}
	return Update{Tid: tid, Attr: attr, Value: dict.Val(best.value), Score: best.score}, true
}

// SuggestTuple runs Suggest for every attribute of a tuple and returns the
// resulting updates; the initial pass of Procedure 1 step 1 calls this for
// every dirty tuple. The tuple's violated-rule list is computed once and
// shared across attributes.
func (g *Generator) SuggestTuple(tid int) []Update {
	vio := g.eng.VioRuleList(tid)
	if len(vio) == 0 {
		return nil
	}
	var out []Update
	for _, attr := range g.db.Schema.Attrs {
		if u, ok := g.suggest(tid, attr, vio); ok {
			out = append(out, u)
		}
	}
	return out
}

// SuggestAll generates the initial PossibleUpdates list over all dirty
// tuples, fanning the per-tuple work out over the generator's configured
// workers (WithWorkers); the result is identical at any worker count.
func (g *Generator) SuggestAll() []Update {
	return g.SuggestBatch(g.eng.Dirty())
}

// SuggestBatch runs SuggestTuple for every given tuple concurrently and
// returns the concatenated suggestions in input order — byte-identical to
// calling SuggestTuple serially. Suggestion generation only reads the
// instance, so the batch must not overlap with Apply/Insert calls.
func (g *Generator) SuggestBatch(tids []int) []Update {
	if g.workers <= 1 || len(tids) < 2 {
		var out []Update
		for _, tid := range tids {
			out = append(out, g.SuggestTuple(tid)...)
		}
		return out
	}
	per := make([][]Update, len(tids))
	par.ForEach(g.workers, len(tids), func(i int) error {
		per[i] = g.SuggestTuple(tids[i])
		return nil
	})
	var out []Update
	for _, ups := range per {
		out = append(out, ups...)
	}
	return out
}
