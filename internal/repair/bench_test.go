package repair_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
	"gdr/internal/repair"
)

// benchGen builds a generator over a mid-sized dirty instance (10% of tuples
// hold a zip/city mismatch) with variable and constant rules.
func benchGen(b *testing.B, n int) *repair.Generator {
	b.Helper()
	schema := relation.MustSchema("Bench", []string{"Street", "City", "State", "Zip"})
	db := relation.NewDB(schema)
	rng := rand.New(rand.NewSource(42))
	cities := []string{"Michigan City", "Westville", "Fort Wayne", "Gary", "Portage"}
	zips := []string{"46360", "46391", "46825", "46402", "46368"}
	for i := 0; i < n; i++ {
		ci := rng.Intn(len(cities))
		zi := ci
		if rng.Intn(10) == 0 {
			zi = rng.Intn(len(zips))
		}
		db.MustInsert(relation.Tuple{
			fmt.Sprintf("%d Oak St", rng.Intn(200)),
			cities[ci],
			"IN",
			zips[zi],
		})
	}
	rules := cfd.MustParse(`
phi1: Zip -> City :: _ || _
phi2: City -> Zip :: _ || _
phi3: Zip -> City :: 46360 || Michigan City
`)
	e, err := cfd.NewEngine(db, rules)
	if err != nil {
		b.Fatal(err)
	}
	return repair.NewGenerator(e)
}

// BenchmarkSuggestBatch measures Appendix A candidate generation over the
// whole dirty set — the initial PossibleUpdates pass of Procedure 1.
func BenchmarkSuggestBatch(b *testing.B) {
	g := benchGen(b, 5000)
	dirty := g.Engine().Dirty()
	if len(dirty) == 0 {
		b.Fatal("no dirty tuples")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ups := g.SuggestBatch(dirty); len(ups) == 0 {
			b.Fatal("no suggestions")
		}
	}
}

// BenchmarkSuggestTuple measures single-tuple suggestion generation, the
// consistency manager's revisit path after each applied repair.
func BenchmarkSuggestTuple(b *testing.B) {
	g := benchGen(b, 5000)
	dirty := g.Engine().Dirty()
	if len(dirty) == 0 {
		b.Fatal("no dirty tuples")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SuggestTuple(dirty[i%len(dirty)])
	}
}
