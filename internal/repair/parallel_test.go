package repair

import (
	"fmt"
	"reflect"
	"testing"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// dirtyFixture builds an instance where many tuples violate a mix of
// constant and variable rules, so batch generation exercises all three
// suggestion scenarios (including the co-occurrence indexes).
func dirtyFixture(t *testing.T) *cfd.Engine {
	t.Helper()
	schema := relation.MustSchema("R", []string{"CT", "STT", "ZIP"})
	db := relation.NewDB(schema)
	for i := 0; i < 40; i++ {
		city, zip := "Michigan City", "46360"
		if i%2 == 1 {
			city, zip = "Fort Wayne", "46825"
		}
		switch i % 5 {
		case 2:
			city = city + "X" // typo: violates the constant rule
		case 3:
			zip = fmt.Sprintf("%05d", 10000+i) // odd zip: variable-rule minority
		}
		db.MustInsert(relation.Tuple{city, "IN", zip})
	}
	eng, err := cfd.NewEngine(db, cfd.MustParse(`
c1: ZIP -> CT :: 46360 || Michigan City
c2: ZIP -> CT :: 46825 || Fort Wayne
v1: CT -> ZIP :: _ || _
`))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSuggestBatchMatchesSerial(t *testing.T) {
	engS := dirtyFixture(t)
	engP := dirtyFixture(t)
	serial := NewGenerator(engS).SuggestAll()
	parallel := NewGenerator(engP, WithWorkers(8)).SuggestAll()
	if len(serial) == 0 {
		t.Fatal("fixture produced no suggestions")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel batch differs from serial:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestSuggestBatchConcurrentCaches re-runs a parallel batch repeatedly so
// the sharded similarity memo and the lazily built co-occurrence indexes
// are hit from many goroutines (meaningful under -race).
func TestSuggestBatchConcurrentCaches(t *testing.T) {
	eng := dirtyFixture(t)
	g := NewGenerator(eng, WithWorkers(8))
	first := g.SuggestAll()
	for i := 0; i < 5; i++ {
		if again := g.SuggestAll(); !reflect.DeepEqual(first, again) {
			t.Fatalf("batch %d differs from first run", i)
		}
	}
}

func TestSuggestBatchAfterApplyStaysConsistent(t *testing.T) {
	engS := dirtyFixture(t)
	engP := dirtyFixture(t)
	gs := NewGenerator(engS)
	gp := NewGenerator(engP, WithWorkers(4))
	// Interleave a serial mutation between read-only batches, as a session
	// does: batches must reflect the new instance identically.
	for _, g := range []*Generator{gs, gp} {
		g.SuggestAll()
		g.Apply(2, "CT", "Michigan City")
	}
	if !reflect.DeepEqual(gs.SuggestAll(), gp.SuggestAll()) {
		t.Fatal("post-Apply batches diverged between serial and parallel generators")
	}
}
