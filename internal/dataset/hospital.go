package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// zipEntry is one line of the Indiana-style zip directory; adjacency in the
// slice models geographic adjacency for "boundary zip" confusions.
type zipEntry struct {
	zip, city, state string
}

var zipDirectory = []zipEntry{
	{"46360", "Michigan City", "IN"},
	{"46391", "Westville", "IN"},
	{"46601", "South Bend", "IN"},
	{"46544", "Mishawaka", "IN"},
	{"46514", "Elkhart", "IN"},
	{"46774", "New Haven", "IN"},
	{"46825", "Fort Wayne", "IN"},
	{"46835", "Fort Wayne", "IN"},
	{"46902", "Kokomo", "IN"},
	{"46952", "Marion", "IN"},
	{"47906", "West Lafayette", "IN"},
	{"47901", "Lafayette", "IN"},
	{"46032", "Carmel", "IN"},
	{"46038", "Fishers", "IN"},
	{"46060", "Noblesville", "IN"},
	{"46201", "Indianapolis", "IN"},
	{"46220", "Indianapolis", "IN"},
	{"46140", "Greenfield", "IN"},
	{"46112", "Brownsburg", "IN"},
	{"47401", "Bloomington", "IN"},
	{"47714", "Evansville", "IN"},
	{"47130", "Jeffersonville", "IN"},
	{"46307", "Crown Point", "IN"},
	{"46320", "Hammond", "IN"},
	{"46402", "Gary", "IN"},
	{"46368", "Portage", "IN"},
	{"46383", "Valparaiso", "IN"},
	{"47302", "Muncie", "IN"},
}

var hospitalStems = []string{
	"St. Mary Medical Center", "Mercy General Hospital", "Parkview Regional",
	"Community Health Pavilion", "Sacred Heart Hospital", "Union Memorial",
	"Good Samaritan Hospital", "Riverview Medical", "Lakeshore Clinic",
	"St. Vincent Hospital", "Methodist Medical Center", "Franciscan Health",
}

var streetStems = []string{
	"Sherden RD", "Canal Rd", "Oak St", "Pine Ave", "Main St", "Elm St",
	"Harris Rd", "Lima Rd", "Redwood Dr", "Maple Ln", "Jefferson Blvd",
	"Washington Ave", "2nd St", "State Rd 2", "Ridge Rd", "Lincoln Hwy",
}

var complaints = []string{
	"chest pain", "abdominal pain", "fever", "headache", "fracture",
	"laceration", "shortness of breath", "dizziness", "back pain",
	"allergic reaction", "burn", "cough", "nausea", "sprain", "rash",
	"eye injury", "dehydration", "palpitations", "seizure", "fall",
}

var classifications = []string{
	"respiratory", "gastrointestinal", "trauma", "neurological",
	"cardiac", "dermatological",
}

// hospital is one of the 74 sources whose records are integrated; patients
// of a hospital live in its zip area.
type hospital struct {
	name string
	zip  zipEntry
}

// hospitals builds the 74-hospital directory deterministically.
func hospitals() []hospital {
	const numHospitals = 74
	out := make([]hospital, 0, numHospitals)
	for i := 0; i < numHospitals; i++ {
		z := zipDirectory[i%len(zipDirectory)]
		stem := hospitalStems[i%len(hospitalStems)]
		name := fmt.Sprintf("%s %s %d", stem, z.city, i+1)
		out = append(out, hospital{name: name, zip: z})
	}
	return out
}

// streetsOf returns the street names used by patients of one zip area.
// Streets are deliberately coarse (block-level, shared by several patients)
// so the variable rule StreetAddress, City → Zip has small, meaningful
// buckets; the per-zip block number keeps streets unique across zips, so
// the ground truth satisfies the rule even where two zips share a city.
func streetsOf(zi int) []string {
	out := make([]string, 0, 6)
	for k := 0; k < 6; k++ {
		out = append(out, fmt.Sprintf("%d %s", 100*(zi+1), streetStems[(zi*5+k*3)%len(streetStems)]))
	}
	return out
}

// HospitalSchema is the attribute set of Dataset 1 (the paper's selected
// patient attributes plus Source, the data-entry operator whose recurrent
// mistakes the intro's example motivates).
func HospitalSchema() *relation.Schema {
	return relation.MustSchema("Visits", []string{
		"PatientID", "Age", "Sex", "Classification", "Complaint",
		"HospitalName", "StreetAddress", "City", "Zip", "State",
		"VisitDate", "Source",
	})
}

// strcityCities lists the cities carrying a φ5-style variable rule
// (StreetAddress, City → Zip within that city). The paper's φ5 binds a
// single city (Fort Wayne); a handful here keeps the rule contexts — and so
// the rule weights wi = |D(φi)|/|D| — Figure-1-shaped.
var strcityCities = []string{
	"Fort Wayne", "Michigan City", "South Bend", "Indianapolis", "Westville", "New Haven",
}

// HospitalRules returns Σ for Dataset 1: one constant CFD Zip → City, State
// per directory zip and per-city variable CFDs StreetAddress, City → Zip —
// the Figure 1 rule shapes — plus one constant CFD HospitalName → City per
// hospital (a hospital's visits carry its city). The last family is what
// makes blindly chosen repairs risky, the paper's core motivation: "fixing"
// the city of a tuple whose zip is actually wrong resolves the zip rule but
// violates the hospital rule.
func HospitalRules() []*cfd.CFD {
	var b strings.Builder
	for i, z := range zipDirectory {
		fmt.Fprintf(&b, "zip%d: Zip -> City, State :: %s || %s, %s\n", i+1, z.zip, z.city, z.state)
	}
	for i, c := range strcityCities {
		fmt.Fprintf(&b, "strcity%d: StreetAddress, City -> Zip :: _, %s || _\n", i+1, c)
	}
	for i, h := range hospitals() {
		fmt.Fprintf(&b, "hosp%d: HospitalName -> City :: %s || %s\n", i+1, h.name, h.zip.city)
	}
	return cfd.MustParse(b.String())
}

// Hospital generates Dataset 1: n emergency-room visit records over 74
// hospitals with zipf-skewed popularity (so update group sizes vary widely),
// perturbed with source-correlated recurrent errors.
func Hospital(cfg Config) *Data {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := HospitalSchema()
	truth := relation.NewDB(schema)
	hs := hospitals()

	// Zipf-ish hospital popularity: weight 1/rank^0.9. The skew makes
	// correction-group sizes vary widely, the Dataset 1 property the paper
	// credits for Greedy/Random underperforming VOI.
	weights := make([]float64, len(hs))
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 0.9)
	}
	zipIdx := make(map[string]int, len(zipDirectory))
	for i, z := range zipDirectory {
		zipIdx[z.zip] = i
	}
	sources := []string{"S1", "S2", "S3", "S4", "S5", "S6"}

	for i := 0; i < cfg.N; i++ {
		h := hs[weightedPick(rng, weights)]
		streets := streetsOf(zipIdx[h.zip.zip])
		sex := "M"
		if rng.Intn(2) == 0 {
			sex = "F"
		}
		t := relation.Tuple{
			fmt.Sprintf("P%06d", i+1),
			fmt.Sprintf("%d", 1+rng.Intn(99)),
			sex,
			classifications[rng.Intn(len(classifications))],
			complaints[rng.Intn(len(complaints))],
			h.name,
			streets[rng.Intn(len(streets))],
			h.zip.city,
			h.zip.zip,
			h.zip.state,
			fmt.Sprintf("2010-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
			sources[rng.Intn(len(sources))],
		}
		truth.MustInsert(t)
	}

	dirty := truth.Clone()
	perturbHospital(rng, dirty, cfg.DirtyRate)
	return &Data{Name: "hospital", Truth: truth, Dirty: dirty, Rules: HospitalRules()}
}

// perturbHospital injects the paper's correlated recurrent mistakes: which
// attribute a dirty tuple corrupts — and how — depends on its Source, so a
// learner can associate (Source, values) with the right feedback. The
// boundary-zip confusion of the paper's Dataset 1 discussion is modeled by
// swapping a zip with an adjacent directory entry's.
func perturbHospital(rng *rand.Rand, db *relation.DB, rate float64) {
	cityIdx := db.Schema.MustIndex("City")
	zipIdx := db.Schema.MustIndex("Zip")
	streetIdx := db.Schema.MustIndex("StreetAddress")
	stateIdx := db.Schema.MustIndex("State")
	srcIdx := db.Schema.MustIndex("Source")

	zipAt := make(map[string]int, len(zipDirectory))
	cities := make([]string, len(zipDirectory))
	for i, z := range zipDirectory {
		zipAt[z.zip] = i
		cities[i] = z.city
	}
	neighborZip := func(zip string) string {
		i, ok := zipAt[zip]
		if !ok {
			return zip
		}
		j := (i + 1) % len(zipDirectory)
		if rng.Intn(2) == 0 {
			j = (i + len(zipDirectory) - 1) % len(zipDirectory)
		}
		return zipDirectory[j].zip
	}

	for tid := 0; tid < db.N(); tid++ {
		if rng.Float64() >= rate {
			continue
		}
		switch db.GetAt(tid, srcIdx) {
		case "S1": // sloppy typist: city typos, zip correct
			db.SetAt(tid, cityIdx, typo(rng, db.GetAt(tid, cityIdx)))
		case "S2": // wrong-city picker: swaps city for another, zip correct
			db.SetAt(tid, cityIdx, swapValue(rng, cities, db.GetAt(tid, cityIdx)))
		case "S3": // boundary confusion: adjacent zip, city correct
			db.SetAt(tid, zipIdx, neighborZip(db.GetAt(tid, zipIdx)))
		case "S4": // street typos
			db.SetAt(tid, streetIdx, typo(rng, db.GetAt(tid, streetIdx)))
		case "S5": // state mangling
			alts := []string{"Ind", "IN.", "IND", "Indiana"}
			db.SetAt(tid, stateIdx, alts[rng.Intn(len(alts))])
		default: // S6: no recurrent pattern — random attribute, random damage
			switch rng.Intn(3) {
			case 0:
				db.SetAt(tid, cityIdx, typo(rng, db.GetAt(tid, cityIdx)))
			case 1:
				db.SetAt(tid, zipIdx, neighborZip(db.GetAt(tid, zipIdx)))
			default:
				db.SetAt(tid, streetIdx, typo(rng, db.GetAt(tid, streetIdx)))
			}
		}
	}
}
