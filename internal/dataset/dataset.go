// Package dataset generates the two experimental workloads of the paper's
// Section 5 / Appendix B. The originals — emergency-room visits integrated
// from 74 hospitals (Dataset 1) and the UCI adult census file (Dataset 2) —
// are respectively proprietary and unavailable offline, so this package
// synthesizes substitutes that preserve the properties the paper's analysis
// leans on:
//
//   - Dataset 1: correlated, recurrent errors (specific data-entry sources
//     systematically corrupt specific attributes) and widely varying update
//     group sizes;
//   - Dataset 2: uncorrelated random errors and near-uniform group sizes,
//     with quality rules discovered from the dirty data at 5% support.
//
// Both generators are deterministic given a seed.
package dataset

import (
	"math/rand"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// Data bundles one experimental workload: a ground-truth instance, its
// perturbed (dirty) copy, and the data-quality rules Σ.
type Data struct {
	Name  string
	Truth *relation.DB
	Dirty *relation.DB
	Rules []*cfd.CFD
}

// Config controls generation.
type Config struct {
	// N is the number of records (default 20000, the paper's scale).
	N int
	// Seed drives all random choices.
	Seed int64
	// DirtyRate is the fraction of perturbed tuples (default 0.3, as in the
	// paper's "30% of the tuples are dirty").
	DirtyRate float64
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.DirtyRate <= 0 || c.DirtyRate > 1 {
		c.DirtyRate = 0.3
	}
	return c
}

// typo applies one random character-level edit: substitution, deletion,
// transposition or duplication. It never returns the input unchanged.
func typo(rng *rand.Rand, s string) string {
	rs := []rune(s)
	if len(rs) == 0 {
		return "x"
	}
	for {
		out := make([]rune, len(rs))
		copy(out, rs)
		i := rng.Intn(len(out))
		switch rng.Intn(4) {
		case 0: // substitute
			out[i] = rune('a' + rng.Intn(26))
		case 1: // delete
			out = append(out[:i], out[i+1:]...)
		case 2: // transpose
			if len(out) >= 2 {
				j := i
				if j == len(out)-1 {
					j--
				}
				out[j], out[j+1] = out[j+1], out[j]
			}
		default: // duplicate
			out = append(out[:i+1], out[i:]...)
		}
		if string(out) != s {
			return string(out)
		}
	}
}

// swapValue picks a domain value different from cur.
func swapValue(rng *rand.Rand, domain []string, cur string) string {
	if len(domain) < 2 {
		return typo(rng, cur)
	}
	for {
		v := domain[rng.Intn(len(domain))]
		if v != cur {
			return v
		}
	}
}

// weightedPick selects an index according to (unnormalized) weights.
func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
