package dataset

import (
	"math/rand"

	"gdr/internal/discovery"
	"gdr/internal/relation"
)

// Census value vocabularies, mirroring the UCI adult attributes the paper
// selected for Dataset 2.
var (
	censusEducation = []string{
		"Preschool", "7th-8th", "9th", "10th", "11th", "HS-grad",
		"Some-college", "Assoc-voc", "Assoc-acdm", "Bachelors", "Masters",
		"Doctorate",
	}
	censusEducationW = []float64{
		0.06, 0.05, 0.04, 0.04, 0.05, 0.20,
		0.18, 0.04, 0.04, 0.15, 0.08,
		0.07,
	}
	censusWorkclass = []string{
		"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
		"Local-gov", "State-gov", "Without-pay", "Never-worked",
	}
	censusWorkclassW = []float64{0.55, 0.08, 0.04, 0.05, 0.08, 0.06, 0.07, 0.07}

	censusOccupation = []string{
		"Tech-support", "Craft-repair", "Other-service", "Sales",
		"Exec-managerial", "Prof-specialty", "Handlers-cleaners",
		"Machine-op-inspct", "Adm-clerical", "Farming-fishing",
		"Transport-moving", "Priv-house-serv", "Protective-serv",
		"Armed-Forces",
	}
	censusMarital = []string{
		"Married-civ-spouse", "Divorced", "Never-married", "Separated",
		"Widowed", "Married-spouse-absent",
	}
	censusRelationship = []string{
		"Husband", "Wife", "Own-child", "Not-in-family", "Unmarried",
		"Other-relative",
	}
	censusRelationshipW = []float64{0.28, 0.14, 0.16, 0.26, 0.10, 0.06}

	censusRace = []string{
		"White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other",
	}
	censusRaceW = []float64{0.78, 0.10, 0.06, 0.03, 0.03}

	censusCountry = []string{
		"United-States", "Mexico", "Philippines", "Germany", "Canada",
		"India", "England", "Cuba", "China", "Jamaica",
	}
	censusCountryW = []float64{0.70, 0.08, 0.04, 0.03, 0.03, 0.03, 0.03, 0.02, 0.02, 0.02}

	censusHours = []string{"10", "20", "25", "30", "35", "40", "45", "50", "60", "80"}
)

// CensusSchema is the ten-attribute schema of Dataset 2.
func CensusSchema() *relation.Schema {
	return relation.MustSchema("Adult", []string{
		"education", "hours_per_week", "income", "marital_status",
		"native_country", "occupation", "race", "relationship", "sex",
		"workclass",
	})
}

// Census generates Dataset 2: census-style records whose clean version
// embeds deterministic constant associations (Husband → Male,
// Wife → Married-civ-spouse, Preschool → ≤50K, …) so that CFD discovery at
// 5% support recovers a rule set, then perturbs tuples with *uncorrelated*
// random errors — the property the paper credits for the learner's weaker
// showing on this dataset. Discovery runs on the dirty instance, exactly as
// in Appendix B.
func Census(cfg Config) *Data {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := CensusSchema()
	truth := relation.NewDB(schema)

	for i := 0; i < cfg.N; i++ {
		rel := censusRelationship[weightedPick(rng, censusRelationshipW)]
		edu := censusEducation[weightedPick(rng, censusEducationW)]
		work := censusWorkclass[weightedPick(rng, censusWorkclassW)]
		occ := censusOccupation[rng.Intn(len(censusOccupation))]

		// Deterministic associations the generator guarantees (and keeps
		// mutually consistent):
		//   Husband → sex=Male, marital=Married-civ-spouse
		//   Wife → sex=Female, marital=Married-civ-spouse
		//   Own-child → marital=Never-married
		//   Priv-house-serv → sex=Female
		//   Preschool → income=<=50K ; Doctorate → income=>50K
		//   Never-worked / Without-pay → income=<=50K
		if edu == "Doctorate" {
			for work == "Never-worked" || work == "Without-pay" {
				work = censusWorkclass[weightedPick(rng, censusWorkclassW)]
			}
		}
		var sex, marital string
		switch rel {
		case "Husband":
			sex, marital = "Male", "Married-civ-spouse"
			for occ == "Priv-house-serv" {
				occ = censusOccupation[rng.Intn(len(censusOccupation))]
			}
		case "Wife":
			sex, marital = "Female", "Married-civ-spouse"
		case "Own-child":
			marital = "Never-married"
			if occ == "Priv-house-serv" {
				sex = "Female"
			} else if rng.Intn(2) == 0 {
				sex = "Male"
			} else {
				sex = "Female"
			}
		default:
			marital = censusMarital[1+rng.Intn(len(censusMarital)-1)]
			if occ == "Priv-house-serv" {
				sex = "Female"
			} else if rng.Intn(2) == 0 {
				sex = "Male"
			} else {
				sex = "Female"
			}
		}
		income := "<=50K"
		switch {
		case edu == "Preschool" || work == "Never-worked" || work == "Without-pay":
			income = "<=50K"
		case edu == "Doctorate":
			income = ">50K"
		case rng.Float64() < 0.3:
			income = ">50K"
		}
		truth.MustInsert(relation.Tuple{
			edu,
			censusHours[rng.Intn(len(censusHours))],
			income,
			marital,
			censusCountry[weightedPick(rng, censusCountryW)],
			occ,
			censusRace[weightedPick(rng, censusRaceW)],
			rel,
			sex,
			work,
		})
	}

	dirty := truth.Clone()
	perturbCensus(rng, dirty, cfg.DirtyRate)

	rules := discovery.ConstantCFDs(dirty, discovery.Options{
		MinSupport:    0.05,
		MinConfidence: 0.85,
		MaxLHS:        1,
	})
	return &Data{Name: "census", Truth: truth, Dirty: dirty, Rules: rules}
}

// perturbCensus injects uncorrelated random errors: random tuples, random
// attributes, and a coin flip between a character typo and a domain swap.
func perturbCensus(rng *rand.Rand, db *relation.DB, rate float64) {
	arity := db.Schema.Arity()
	domains := make([][]string, arity)
	for ai, a := range db.Schema.Attrs {
		domains[ai] = append([]string(nil), db.Domain(a)...)
	}
	for tid := 0; tid < db.N(); tid++ {
		if rng.Float64() >= rate {
			continue
		}
		nAttrs := 1 + rng.Intn(2)
		for k := 0; k < nAttrs; k++ {
			ai := rng.Intn(arity)
			cur := db.GetAt(tid, ai)
			if rng.Intn(2) == 0 {
				db.SetAt(tid, ai, typo(rng, cur))
			} else {
				db.SetAt(tid, ai, swapValue(rng, domains[ai], cur))
			}
		}
	}
}
