package dataset

import (
	"math/rand"
	"testing"

	"gdr/internal/cfd"
)

func TestTypoAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := []string{"Michigan City", "a", "", "46360", "Fort Wayne"}
	for _, in := range inputs {
		for i := 0; i < 50; i++ {
			if out := typo(rng, in); out == in {
				t.Fatalf("typo(%q) returned the input", in)
			}
		}
	}
}

func TestSwapValue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dom := []string{"a", "b", "c"}
	for i := 0; i < 50; i++ {
		if v := swapValue(rng, dom, "a"); v == "a" {
			t.Fatal("swapValue returned the current value")
		}
	}
	// Degenerate domain falls back to a typo.
	if v := swapValue(rng, []string{"only"}, "only"); v == "only" {
		t.Fatal("degenerate domain returned input")
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := []float64{8, 1, 1}
	counts := make([]int, 3)
	for i := 0; i < 5000; i++ {
		counts[weightedPick(rng, w)]++
	}
	if counts[0] < 3500 {
		t.Fatalf("heavy item picked only %d/5000 times", counts[0])
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatal("light items never picked")
	}
}

func TestHospitalGeneration(t *testing.T) {
	d := Hospital(Config{N: 2000, Seed: 7})
	if d.Truth.N() != 2000 || d.Dirty.N() != 2000 {
		t.Fatalf("sizes: %d/%d", d.Truth.N(), d.Dirty.N())
	}
	// The ground truth must satisfy every rule.
	te, err := cfd.NewEngine(d.Truth.Clone(), d.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if got := te.DirtyCount(); got != 0 {
		t.Fatalf("ground truth has %d dirty tuples", got)
	}
	// The dirty copy must have violations, roughly matching the dirty rate.
	de, err := cfd.NewEngine(d.Dirty.Clone(), d.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if got := de.DirtyCount(); got < 200 {
		t.Fatalf("dirty instance has only %d dirty tuples", got)
	}
	// Roughly 30% of tuples differ from the truth.
	diff, err := d.Dirty.DiffCells(d.Truth)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(diff)) / 2000
	if frac < 0.2 || frac > 0.45 {
		t.Fatalf("perturbed cell fraction per tuple = %v, want ≈0.3", frac)
	}
}

func TestHospitalDeterminism(t *testing.T) {
	a := Hospital(Config{N: 300, Seed: 11})
	b := Hospital(Config{N: 300, Seed: 11})
	da, _ := a.Dirty.DiffCells(b.Dirty)
	if len(da) != 0 {
		t.Fatalf("same seed produced %d differing cells", len(da))
	}
	c := Hospital(Config{N: 300, Seed: 12})
	dc, _ := a.Dirty.DiffCells(c.Dirty)
	if len(dc) == 0 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestHospitalErrorCorrelation(t *testing.T) {
	d := Hospital(Config{N: 4000, Seed: 13})
	// S2 corrupts City but never Zip; S3 corrupts Zip but never City.
	badCityS2, badZipS2, badCityS3, badZipS3 := 0, 0, 0, 0
	for tid := 0; tid < d.Dirty.N(); tid++ {
		src := d.Dirty.Get(tid, "Source")
		cityWrong := d.Dirty.Get(tid, "City") != d.Truth.Get(tid, "City")
		zipWrong := d.Dirty.Get(tid, "Zip") != d.Truth.Get(tid, "Zip")
		switch src {
		case "S2":
			if cityWrong {
				badCityS2++
			}
			if zipWrong {
				badZipS2++
			}
		case "S3":
			if cityWrong {
				badCityS3++
			}
			if zipWrong {
				badZipS3++
			}
		}
	}
	if badCityS2 == 0 || badZipS3 == 0 {
		t.Fatal("expected recurrent errors for S2 city and S3 zip")
	}
	if badZipS2 != 0 || badCityS3 != 0 {
		t.Fatalf("correlation broken: S2 zip errors %d, S3 city errors %d", badZipS2, badCityS3)
	}
}

func TestHospitalRulesParse(t *testing.T) {
	rules := HospitalRules()
	// 28 zips x 2 normalized rules + per-city variable rules + 74 hospital rules.
	if len(rules) != len(zipDirectory)*2+len(strcityCities)+74 {
		t.Fatalf("got %d rules", len(rules))
	}
	variable := 0
	for _, r := range rules {
		if !r.Constant() {
			variable++
		}
	}
	if variable != len(strcityCities) {
		t.Fatalf("got %d variable rules, want %d", variable, len(strcityCities))
	}
}

func TestCensusGeneration(t *testing.T) {
	d := Census(Config{N: 3000, Seed: 21})
	if d.Truth.N() != 3000 {
		t.Fatalf("truth size %d", d.Truth.N())
	}
	if len(d.Rules) == 0 {
		t.Fatal("discovery found no rules")
	}
	// The embedded associations must hold exactly on the truth.
	for tid := 0; tid < d.Truth.N(); tid++ {
		rel := d.Truth.Get(tid, "relationship")
		sex := d.Truth.Get(tid, "sex")
		if rel == "Husband" && sex != "Male" {
			t.Fatalf("t%d: Husband with sex %q", tid, sex)
		}
		if rel == "Wife" && sex != "Female" {
			t.Fatalf("t%d: Wife with sex %q", tid, sex)
		}
		if d.Truth.Get(tid, "education") == "Preschool" && d.Truth.Get(tid, "income") != "<=50K" {
			t.Fatalf("t%d: Preschool with high income", tid)
		}
		if d.Truth.Get(tid, "education") == "Doctorate" && d.Truth.Get(tid, "income") != ">50K" {
			t.Fatalf("t%d: Doctorate with low income", tid)
		}
	}
	// Discovery must recover the Husband → Male association in some form.
	found := false
	for _, r := range d.Rules {
		if len(r.LHS) == 1 && r.LHS[0] == "relationship" && r.TP["relationship"] == "Husband" &&
			r.RHS == "sex" && r.TP["sex"] == "Male" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Husband→Male not discovered; rules: %v", d.Rules)
	}
	// The dirty copy must violate the discovered rules.
	de, err := cfd.NewEngine(d.Dirty.Clone(), d.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if de.DirtyCount() == 0 {
		t.Fatal("dirty census instance has no violations")
	}
}

func TestCensusDeterminism(t *testing.T) {
	a := Census(Config{N: 400, Seed: 5})
	b := Census(Config{N: 400, Seed: 5})
	diff, _ := a.Dirty.DiffCells(b.Dirty)
	if len(diff) != 0 {
		t.Fatalf("same seed produced %d differing cells", len(diff))
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.Rules), len(b.Rules))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.N != 20000 || c.DirtyRate != 0.3 {
		t.Fatalf("defaults: %+v", c)
	}
}
