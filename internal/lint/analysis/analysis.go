// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// that the gdrlint analyzers are written against. This repository builds in
// containers without module-proxy access, so the real x/tools framework
// cannot be imported; this package keeps analyzer code source-compatible
// with it (an analyzer here is a literal *analysis.Analyzer whose Run takes
// a *Pass), so migrating to the upstream framework later is an import-path
// change, not a rewrite. Facts, Requires and ResultOf are intentionally
// absent: every gdrlint analyzer is self-contained within one package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one self-contained static check.
type Analyzer struct {
	// Name identifies the analyzer in findings, -only selections, and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by `gdrlint -list`: the
	// rule, and the invariant it defends.
	Doc string

	// Run applies the check to one package. It reports problems through
	// pass.Report / pass.Reportf; the result value is unused (kept for
	// x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files are the package's parsed sources (comments included), sorted by
	// filename.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's expression facts for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one problem found by an analyzer.
type Diagnostic struct {
	// Pos anchors the problem in p.Fset.
	Pos token.Pos

	// Message states the problem and, ideally, the fix.
	Message string
}
