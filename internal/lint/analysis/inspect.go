package analysis

import (
	"go/ast"
	"go/types"
)

// WithStack walks every node of every file in preorder, passing the chain
// of ancestors from the file down to (and including) the visited node.
// Returning false skips the node's children. The stack slice is reused
// between calls; callers must not retain it.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Children are skipped, so Inspect never sends the closing
				// nil for this node; pop it here.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// PathBase returns the last slash-separated element of an import path:
// "gdr/internal/core" → "core". The gdrlint analyzers scope themselves by
// this convention so their testdata fixtures (package path "core") and the
// real tree (package path "gdr/internal/core") trigger the same rules.
func PathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// RootIdent returns the identifier at the base of a selector/index/deref
// chain: for `a.b.c[i].d` it returns `a`. It returns nil when the chain
// bottoms out in something other than an identifier (a call result, a
// composite literal, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Callee resolves the *types.Func a call invokes (package function or
// method), or nil for builtins, conversions, function-typed variables and
// anything else that is not a declared function.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// EnclosingFunc returns the innermost function declaration or literal in
// stack that strictly encloses the node at the top of the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// FuncBody returns the body of a *ast.FuncDecl or *ast.FuncLit.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// IsParamOf reports whether obj is declared as a parameter (or named
// result) of any function declaration or literal in stack.
func IsParamOf(info *types.Info, stack []ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	check := func(ft *ast.FuncType, recv *ast.FieldList) bool {
		lists := []*ast.FieldList{ft.Params, ft.Results, recv}
		for _, fl := range lists {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if info.Defs[name] == obj {
						return true
					}
				}
			}
		}
		return false
	}
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if check(fn.Type, fn.Recv) {
				return true
			}
		case *ast.FuncLit:
			if check(fn.Type, nil) {
				return true
			}
		}
	}
	return false
}
