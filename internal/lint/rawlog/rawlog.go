// Package rawlog implements the gdrlint analyzer that keeps raw
// stdout/stderr logging out of the library packages. The daemon's logs are
// structured (log/slog with trace_id/tenant/session fields); a stray
// log.Printf or fmt.Println in a library package bypasses the configured
// handler entirely — wrong stream, wrong format, invisible to -log-level —
// and in a JSON-logs deployment corrupts the stream a collector is parsing.
// Only package main (the binaries under cmd/ and the examples) may talk to
// the terminal directly; everything else must take an injected *slog.Logger
// (or a Logf callback) and leave rendering to the caller.
package rawlog

import (
	"go/ast"
	"go/types"
	"strings"

	"gdr/internal/lint/analysis"
)

// forbiddenLog is the set of log package functions that write through the
// process-global default logger. Methods on an explicit *log.Logger are
// allowed — constructing one is a deliberate sink choice.
var forbiddenLog = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// forbiddenFmt is the set of fmt functions that write to implicit stdout.
// The Fprint* family is fine: an explicit io.Writer is not ambient output.
var forbiddenFmt = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// Analyzer is the rawlog check.
var Analyzer = &analysis.Analyzer{
	Name: "rawlog",
	Doc: "forbid log.Print*/Fatal*/Panic* and fmt.Print* outside package main: " +
		"library and serving code must log through an injected *slog.Logger " +
		"(or Logf callback) so output honors the daemon's format, level and " +
		"sink configuration",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Package).Filename, "_test.go") {
			continue // tests may print; the check guards production output
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (log.Logger.Printf on an injected logger) are fine
			}
			switch fn.Pkg().Path() {
			case "log":
				if forbiddenLog[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to log.%s in package %s: raw default-logger output bypasses the daemon's structured logging; take a *slog.Logger (or Logf callback) instead",
						fn.Name(), pass.Pkg.Name())
				}
			case "fmt":
				if forbiddenFmt[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to fmt.%s in package %s: writing to ambient stdout from a library corrupts structured log streams; return the value or write to an explicit io.Writer",
						fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
