// Command mainpkg is a rawlog fixture: package main owns the terminal, so
// raw log and fmt output is allowed here.
package main

import (
	"fmt"
	"log"
)

func main() {
	fmt.Println("usage: mainpkg [flags]")
	fmt.Printf("pid %d\n", 1)
	log.Printf("starting up")
	log.Println("ready")
}
