// Package a is a rawlog fixture: a library package, so raw stdout/stderr
// logging must flag while explicit-sink and pure-formatting calls stay clean.
package a

import (
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
)

// Bad logs through ambient process-global sinks.
func Bad(err error) {
	log.Printf("boom: %v", err)  // want `call to log\.Printf in package a: raw default-logger output bypasses the daemon's structured logging`
	log.Println("done")          // want `call to log\.Println in package a`
	log.Print("hi")              // want `call to log\.Print in package a`
	fmt.Println("progress", err) // want `call to fmt\.Println in package a: writing to ambient stdout from a library corrupts structured log streams`
	fmt.Printf("%v\n", err)      // want `call to fmt\.Printf in package a`
	fmt.Print("x")               // want `call to fmt\.Print in package a`
}

// Fatal exits through the default logger, which also hides the daemon's
// drain path — doubly forbidden in a library.
func Fatal(err error) {
	log.Fatalf("fatal: %v", err) // want `call to log\.Fatalf in package a`
	log.Fatal(err)               // want `call to log\.Fatal in package a`
	log.Panicln(err)             // want `call to log\.Panicln in package a`
}

// Good renders through explicit sinks and injected loggers.
func Good(w io.Writer, logger *slog.Logger, custom *log.Logger, err error) string {
	fmt.Fprintf(w, "boom: %v\n", err)       // explicit writer: fine
	fmt.Fprintln(os.Stderr, "boot warning") // still explicit, caller's choice
	logger.Warn("boom", "err", err)         // the sanctioned path
	custom.Printf("boom: %v", err)          // method on an injected *log.Logger
	return fmt.Sprintf("boom: %v", err)     // pure formatting, no output
}
