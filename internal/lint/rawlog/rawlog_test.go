package rawlog_test

import (
	"testing"

	"gdr/internal/lint/analysistest"
	"gdr/internal/lint/rawlog"
)

func TestRawlog(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rawlog.Analyzer, "a", "mainpkg")
}
