package guardedby_test

import (
	"testing"

	"gdr/internal/lint/analysistest"
	"gdr/internal/lint/guardedby"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "a")
}
