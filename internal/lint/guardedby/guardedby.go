// Package guardedby implements the gdrlint analyzer behind the
// `// gdr:guarded-by <mutex>` field annotation: a struct field so annotated
// may only be read or written while the named sibling mutex is held in the
// accessing function. The striped caches under the worker pools and the
// server store's session maps rely on exactly this discipline; the
// annotation turns the convention into a checked contract.
//
// The analyzer tracks lock state with a lexical mini-interpreter over the
// enclosing function body: Lock/RLock on `<base>.<mutex>` sets the state,
// Unlock/RUnlock clears it, `defer ...Unlock()` leaves it held, and an
// early-return branch that unlocks does not poison the code after it (the
// classic `if bad { mu.Unlock(); return }` shape). Three escapes are
// recognized, in keeping with the codebase's conventions:
//
//   - functions whose name ends in "Locked" assert that their caller holds
//     the lock (e.g. setLiveLocked);
//   - composite-literal construction is not an access — builders initialize
//     guarded fields before the value is published;
//   - a nested function literal is its own context: holding the lock when a
//     closure is *created* does not license accesses inside it, and a
//     closure that locks for itself is fine wherever it runs.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"gdr/internal/lint/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `// gdr:guarded-by <mutex>` must only be accessed " +
		"with that sibling mutex held in the enclosing function (or from a " +
		"function whose name ends in \"Locked\")",
	Run: run,
}

// annotationRE extracts the mutex name from a field comment.
var annotationRE = regexp.MustCompile(`gdr:guarded-by\s+([A-Za-z_][A-Za-z0-9_]*)`)

func run(pass *analysis.Pass) (any, error) {
	guarded := collectAnnotations(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		mutex, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		enclosing := analysis.EnclosingFunc(stack)
		if enclosing == nil {
			return true // package-level initializer: construction, not access
		}
		if fd, ok := enclosing.(*ast.FuncDecl); ok && strings.HasSuffix(fd.Name.Name, "Locked") {
			return true
		}
		key := types.ExprString(sel.X) + "." + mutex
		if heldAt(analysis.FuncBody(enclosing), key, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is annotated gdr:guarded-by %s but accessed without it held; hold %s across the access or move it into a function named *Locked",
			selection.Obj().Name(), mutex, key)
		return true
	})
	return nil, nil
}

// collectAnnotations maps each annotated field object to its mutex name,
// reporting annotations that name a non-existent sibling.
func collectAnnotations(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mutex := annotationOf(field)
				if mutex == "" {
					continue
				}
				if !siblings[mutex] {
					pass.Reportf(field.Pos(),
						"gdr:guarded-by names unknown sibling field %q", mutex)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = mutex
					}
				}
			}
			return true
		})
	}
	return guarded
}

// annotationOf returns the mutex named by a field's gdr:guarded-by comment,
// looking at both the doc comment above the field and the trailing comment.
func annotationOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := annotationRE.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// heldAt reports whether the lock named key is held when control reaches
// position at, walking body's statements in order and interpreting
// Lock/Unlock events. The walk never descends into nested function
// literals: they execute in their own context.
func heldAt(body *ast.BlockStmt, key string, at token.Pos) bool {
	if body == nil {
		return false
	}
	held, found := walkStmts(body.List, key, at, false)
	return found && held
}

// walkStmts threads lock state through a statement list. It returns
// (held, found): once the statement containing `at` is reached, held is the
// state at that point and found is true.
func walkStmts(stmts []ast.Stmt, key string, at token.Pos, held bool) (bool, bool) {
	for _, st := range stmts {
		if st.Pos() <= at && at < st.End() {
			return atPoint(st, key, at, held)
		}
		held = applyStmt(st, key, held)
	}
	return held, false
}

// atPoint descends into the statement containing the access to resolve the
// lock state at the access itself.
func atPoint(st ast.Stmt, key string, at token.Pos, held bool) (bool, bool) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return walkStmts(s.List, key, at, held)
	case *ast.IfStmt:
		if s.Init != nil && within(s.Init, at) {
			return atPoint(s.Init, key, at, held)
		}
		if s.Init != nil {
			held = applyStmt(s.Init, key, held)
		}
		if within(s.Body, at) {
			return walkStmts(s.Body.List, key, at, held)
		}
		if s.Else != nil && within(s.Else, at) {
			return atPoint(s.Else, key, at, held)
		}
		return held, true // in Init/Cond
	case *ast.ForStmt:
		if s.Init != nil && within(s.Init, at) {
			return atPoint(s.Init, key, at, held)
		}
		if s.Init != nil {
			held = applyStmt(s.Init, key, held)
		}
		if within(s.Body, at) {
			return walkStmts(s.Body.List, key, at, held)
		}
		if s.Post != nil && within(s.Post, at) {
			return atPoint(s.Post, key, at, held)
		}
		return held, true
	case *ast.RangeStmt:
		if within(s.Body, at) {
			return walkStmts(s.Body.List, key, at, held)
		}
		return held, true
	case *ast.SwitchStmt:
		if s.Init != nil {
			if within(s.Init, at) {
				return atPoint(s.Init, key, at, held)
			}
			held = applyStmt(s.Init, key, held)
		}
		return caseBodies(s.Body, key, at, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			if within(s.Init, at) {
				return atPoint(s.Init, key, at, held)
			}
			held = applyStmt(s.Init, key, held)
		}
		return caseBodies(s.Body, key, at, held)
	case *ast.SelectStmt:
		return caseBodies(s.Body, key, at, held)
	case *ast.LabeledStmt:
		return atPoint(s.Stmt, key, at, held)
	default:
		// A flat statement (assignment, return, expression, send, defer):
		// the access happens with the state accumulated so far.
		return held, true
	}
}

// caseBodies resolves an access inside a switch/select clause.
func caseBodies(body *ast.BlockStmt, key string, at token.Pos, held bool) (bool, bool) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			if within(c, at) {
				return walkStmts(c.Body, key, at, held)
			}
		case *ast.CommClause:
			if within(c, at) {
				return walkStmts(c.Body, key, at, held)
			}
		}
	}
	return held, true
}

func within(n ast.Node, at token.Pos) bool {
	return n.Pos() <= at && at < n.End()
}

// applyStmt returns the lock state after executing st, given state held
// before it. Branches that terminate (return/panic/break/...) do not
// contribute to the fall-through state; surviving branches are merged
// conservatively (held only if held on every surviving path).
func applyStmt(st ast.Stmt, key string, held bool) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if kind := lockEvent(s.X, key); kind != 0 {
			return kind > 0
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() runs at function exit; state here is unchanged.
	case *ast.BlockStmt:
		return applyBlock(s.List, key, held)
	case *ast.LabeledStmt:
		return applyStmt(s.Stmt, key, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = applyStmt(s.Init, key, held)
		}
		after := held
		if !terminates(s.Body.List) {
			after = after && applyBlock(s.Body.List, key, held)
		}
		if s.Else != nil {
			elseHeld := held
			elseTerm := false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = terminates(e.List)
				elseHeld = applyBlock(e.List, key, held)
			case *ast.IfStmt:
				elseHeld = applyStmt(e, key, held)
			}
			if !elseTerm {
				after = after && elseHeld
			}
		}
		return after
	case *ast.ForStmt:
		if s.Init != nil {
			held = applyStmt(s.Init, key, held)
		}
		// The loop may run zero times; require the lock state to survive
		// both skipping and executing the body.
		return held && applyBlock(s.Body.List, key, held)
	case *ast.RangeStmt:
		return held && applyBlock(s.Body.List, key, held)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				held = applyStmt(sw.Init, key, held)
			}
			body = sw.Body
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				held = applyStmt(sw.Init, key, held)
			}
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		after := held
		for _, clause := range body.List {
			var stmts []ast.Stmt
			switch c := clause.(type) {
			case *ast.CaseClause:
				stmts = c.Body
			case *ast.CommClause:
				stmts = c.Body
			}
			if !terminates(stmts) {
				after = after && applyBlock(stmts, key, held)
			}
		}
		return after
	}
	return held
}

func applyBlock(stmts []ast.Stmt, key string, held bool) bool {
	for _, st := range stmts {
		held = applyStmt(st, key, held)
	}
	return held
}

// lockEvent classifies a call expression against key: +1 for Lock/RLock,
// -1 for Unlock/RUnlock, 0 for anything else.
func lockEvent(e ast.Expr, key string) int {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return 0
	}
	if types.ExprString(sel.X) != key {
		return 0
	}
	return kind
}

// terminates reports whether a statement list always transfers control out
// (return, panic, or a branch statement), so its lock-state changes never
// reach the code after the enclosing conditional.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.IfStmt:
		if block, ok := last.Else.(*ast.BlockStmt); ok {
			return terminates(last.Body.List) && terminates(block.List)
		}
	}
	return false
}
