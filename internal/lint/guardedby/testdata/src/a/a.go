// Package a exercises the guardedby analyzer: annotated fields accessed
// with and without their mutex held, across the codebase's lock idioms.
package a

import "sync"

type store struct {
	mu sync.Mutex
	// gdr:guarded-by mu
	items map[string]int

	statMu sync.RWMutex
	seen   int // gdr:guarded-by statMu
}

// goodDefer holds the lock via the lock-then-defer-unlock idiom.
func (s *store) goodDefer(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// goodWindow brackets the access explicitly.
func (s *store) goodWindow(k string, v int) {
	s.mu.Lock()
	s.items[k] = v
	s.mu.Unlock()
}

// goodEarlyReturn unlocks on the early-out path; the main path stays held.
func (s *store) goodEarlyReturn(k string) int {
	s.mu.Lock()
	if len(s.items) == 0 {
		s.mu.Unlock()
		return 0
	}
	v := s.items[k]
	s.mu.Unlock()
	return v
}

// goodRead holds the read half of an RWMutex.
func (s *store) goodRead() int {
	s.statMu.RLock()
	defer s.statMu.RUnlock()
	return s.seen
}

// goodRange iterates under the lock.
func (s *store) goodRange() int {
	total := 0
	s.mu.Lock()
	for _, v := range s.items {
		total += v
	}
	s.mu.Unlock()
	return total
}

// sizeLocked asserts by name that its caller holds mu.
func (s *store) sizeLocked() int { return len(s.items) }

// goodOwnLockClosure locks for itself inside the closure.
func (s *store) goodOwnLockClosure() func() int {
	return func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.items)
	}
}

// bad reads without any lock.
func (s *store) bad(k string) int {
	return s.items[k] // want `guarded by mu|gdr:guarded-by mu`
}

// badAfterUnlock touches the field after releasing the lock.
func (s *store) badAfterUnlock(k string) int {
	s.mu.Lock()
	s.mu.Unlock()
	return s.items[k] // want `gdr:guarded-by mu`
}

// badWrongLock holds the other mutex.
func (s *store) badWrongLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen // want `gdr:guarded-by statMu`
}

// badClosure creates a closure while holding the lock; by the time the
// closure runs, the lock is long gone.
func (s *store) badClosure() func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int {
		return len(s.items) // want `gdr:guarded-by mu`
	}
}

type broken struct {
	// gdr:guarded-by nosuch
	x int // want `gdr:guarded-by names unknown sibling field "nosuch"`
}
