// Package pkgdoc implements the gdrlint analyzer that requires every
// non-main package to carry a godoc package comment of the canonical
// "Package <name> ..." form. ARCHITECTURE.md's package map leans on these
// comments; this analyzer replaces the shell grep that used to enforce them
// in CI only, so the check now also runs locally and covers any future
// package, not just internal/*.
package pkgdoc

import (
	"strings"

	"gdr/internal/lint/analysis"
)

// Analyzer is the pkgdoc check.
var Analyzer = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc: "require a godoc package comment (\"Package <name> ...\") on every " +
		"non-main package, so the package map in ARCHITECTURE.md and `go doc` " +
		"always have a summary to show",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	documented := false
	for _, f := range pass.Files {
		if f.Doc == nil {
			continue
		}
		if strings.HasPrefix(f.Doc.Text(), "Package "+pass.Pkg.Name()+" ") {
			documented = true
		} else {
			pass.Reportf(f.Doc.Pos(),
				"package comment should be of the form \"Package %s ...\"", pass.Pkg.Name())
			documented = true // malformed, but present: one finding is enough
		}
	}
	if !documented && len(pass.Files) > 0 {
		// Files are sorted by name, so the anchor is deterministic.
		pass.Reportf(pass.Files[0].Name.Pos(),
			"package %s has no godoc package comment", pass.Pkg.Name())
	}
	return nil, nil
}
