package pkgdoc_test

import (
	"testing"

	"gdr/internal/lint/analysistest"
	"gdr/internal/lint/pkgdoc"
)

func TestPkgdoc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), pkgdoc.Analyzer,
		"withdoc", "nodoc", "baddoc", "mainpkg")
}
