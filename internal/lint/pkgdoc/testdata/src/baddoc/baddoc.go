// This comment exists but skips the canonical form. // want `package comment should be of the form "Package baddoc \.\.\."`
package baddoc

// V keeps the package non-empty.
var V int
