package main

func main() {}
