package nodoc // want `package nodoc has no godoc package comment`

// V keeps the package non-empty.
var V int
