// Package withdoc documents itself the canonical way.
package withdoc

// V keeps the package non-empty.
var V int
