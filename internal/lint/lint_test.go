package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseDirectives(t *testing.T, src string) ([]*directive, []Finding, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dirs, bad := directives(fset, []*ast.File{f})
	return dirs, bad, fset
}

func TestDirectiveParsing(t *testing.T) {
	src := `package p

//lint:ignore detrand seeded upstream by the session constructor
var a int

//lint:ignore detrand,maprange both rules checked by hand here
var b int

//lint:ignore detrand
var c int

//lint:ignore
var d int
`
	dirs, bad, _ := parseDirectives(t, src)
	if len(dirs) != 2 {
		t.Fatalf("got %d well-formed directives, want 2", len(dirs))
	}
	if got := strings.Join(dirs[1].analyzers, "+"); got != "detrand+maprange" {
		t.Errorf("second directive analyzers = %q, want detrand+maprange", got)
	}
	if len(bad) != 2 {
		t.Fatalf("got %d malformed directives, want 2 (missing reason, missing everything)", len(bad))
	}
	for _, f := range bad {
		if f.Analyzer != "lintignore" || !strings.Contains(f.Message, "malformed") {
			t.Errorf("malformed finding = %v", f)
		}
	}
}

func TestSuppressionWindow(t *testing.T) {
	src := `package p

//lint:ignore detrand reason enough
var a int
`
	dirs, _, _ := parseDirectives(t, src)
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	d := dirs[0]
	at := func(line int) token.Position {
		return token.Position{Filename: "x.go", Line: line}
	}
	if !suppressed(dirs, "detrand", at(d.pos.Line)) {
		t.Error("finding on the directive's own line should be suppressed")
	}
	if !suppressed(dirs, "detrand", at(d.pos.Line+1)) {
		t.Error("finding on the next line should be suppressed")
	}
	if suppressed(dirs, "detrand", at(d.pos.Line+2)) {
		t.Error("finding two lines down should NOT be suppressed")
	}
	if suppressed(dirs, "maprange", at(d.pos.Line+1)) {
		t.Error("finding from an unnamed analyzer should NOT be suppressed")
	}
	if suppressed(dirs, "detrand", token.Position{Filename: "y.go", Line: d.pos.Line + 1}) {
		t.Error("finding in another file should NOT be suppressed")
	}
	if !d.used {
		t.Error("directive should be marked used after suppressing")
	}
}

func TestAnalyzersRegistry(t *testing.T) {
	want := []string{"actorconfine", "detrand", "guardedby", "maprange", "pkgdoc", "rawlog"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has empty Doc", a.Name)
		}
	}
}

// TestTreeIsClean runs the full suite over the real tree and requires zero
// findings: every invariant holds, or carries a justified suppression. This
// is the same property CI enforces via cmd/gdrlint; having it here means a
// plain `go test ./...` catches regressions too. Skipped under -short since
// it shells out to `go list -export` for the whole module.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped under -short")
	}
	findings, err := Run("../..", []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
