// Package lint ties the gdrlint analyzers together: it holds the registry
// consumed by cmd/gdrlint and CI, the loader-driven runner that applies every
// analyzer to a set of packages, and the //lint:ignore suppression machinery.
//
// Suppressions are deliberately strict. A directive has the form
//
//	//lint:ignore analyzer1,analyzer2 reason the rule does not apply here
//
// and silences the named analyzers on the directive's own line and on the
// line immediately following it. The reason is mandatory — a directive
// without one is itself reported — and a directive that suppresses nothing
// is reported as unused, so stale ignores cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"gdr/internal/lint/actorconfine"
	"gdr/internal/lint/analysis"
	"gdr/internal/lint/detrand"
	"gdr/internal/lint/guardedby"
	"gdr/internal/lint/load"
	"gdr/internal/lint/maprange"
	"gdr/internal/lint/pkgdoc"
	"gdr/internal/lint/rawlog"
)

// Analyzers returns the full gdrlint suite in display order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		actorconfine.Analyzer,
		detrand.Analyzer,
		guardedby.Analyzer,
		maprange.Analyzer,
		pkgdoc.Analyzer,
		rawlog.Analyzer,
	}
}

// Finding is one reported diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matched by patterns (relative to dir) and applies
// each analyzer to each package, returning the surviving findings sorted by
// position. Suppressed findings are dropped; malformed or unused
// //lint:ignore directives are reported as findings of the synthetic
// "lintignore" analyzer.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		dirs, bad := directives(pkg.Fset, pkg.Files)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(dirs, a.Name, pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pos,
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
		for _, d := range dirs {
			if !d.used {
				findings = append(findings, Finding{
					Analyzer: "lintignore",
					Pos:      d.pos,
					Message:  fmt.Sprintf("unused //lint:ignore directive for %s: nothing was suppressed", strings.Join(d.analyzers, ",")),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos       token.Position
	analyzers []string
	used      bool
}

const ignorePrefix = "//lint:ignore"

// directives scans the package's comments for //lint:ignore lines. It
// returns the well-formed directives and, separately, findings for malformed
// ones (missing analyzer list or missing reason).
func directives(fset *token.FileSet, files []*ast.File) ([]*directive, []Finding) {
	var dirs []*directive
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				rest = strings.TrimSpace(rest)
				names, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "lintignore",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore analyzer[,analyzer] reason`",
					})
					continue
				}
				dirs = append(dirs, &directive{
					pos:       pos,
					analyzers: strings.Split(names, ","),
				})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether a finding from analyzer at pos is covered by a
// directive, marking the directive used if so. A directive covers its own
// line and the next line of the same file.
func suppressed(dirs []*directive, analyzer string, pos token.Position) bool {
	for _, d := range dirs {
		if d.pos.Filename != pos.Filename {
			continue
		}
		if pos.Line != d.pos.Line && pos.Line != d.pos.Line+1 {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				d.used = true
				return true
			}
		}
	}
	return false
}
