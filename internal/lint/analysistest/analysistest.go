// Package analysistest runs one gdrlint analyzer over fixture packages
// under a testdata/src tree and compares its diagnostics against `// want`
// annotations in the fixtures, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract: a fixture line that
// should be flagged carries a trailing comment with one or more quoted
// regular expressions, each of which must match exactly one diagnostic
// message reported on that line, and every diagnostic must be claimed by an
// annotation. Fixture packages may import each other by their directory
// name ("server" importing "core"); standard-library imports are resolved
// from the toolchain's compiled export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gdr/internal/lint/analysis"
	"gdr/internal/lint/load"
)

// TestData returns the canonical fixture root: testdata under the calling
// test's working directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run applies the analyzer to each fixture package (a directory under
// testdata/src) and reports mismatches between diagnostics and `// want`
// annotations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgs {
		fp, err := ld.fixture(path)
		if err != nil {
			t.Errorf("%s: loading fixture %q: %v", a.Name, path, err)
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     fp.files,
			Pkg:       fp.pkg,
			TypesInfo: fp.info,
		}
		var diags []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: running on %q: %v", a.Name, path, err)
			continue
		}
		checkWants(t, a.Name, ld.fset, fp.files, diags)
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string // the regexp's source, for error messages
	met  bool
}

// checkWants matches diagnostics against annotations, erroring on both
// unexpected diagnostics and unmet expectations.
func checkWants(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWants(fset, c)
				if err != nil {
					t.Errorf("%s: %s: %v", name, fset.Position(c.Pos()), err)
					continue
				}
				wants = append(wants, ws...)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s: unexpected diagnostic: %s", name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: %s:%d: no diagnostic matched `%s`", name, w.file, w.line, w.text)
		}
	}
}

// wantMarker introduces expectations inside a fixture comment.
const wantMarker = "// want "

// parseWants extracts the expectations of one comment: everything after
// "// want" must be a sequence of quoted or backquoted regular expressions.
func parseWants(fset *token.FileSet, c *ast.Comment) ([]*want, error) {
	idx := strings.Index(c.Text, wantMarker)
	if idx < 0 {
		return nil, nil
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimSpace(c.Text[idx+len(wantMarker):])
	var out []*want
	for rest != "" {
		var src string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			src = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("malformed quoted want pattern: %v", err)
			}
			src, err = strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("malformed quoted want pattern: %v", err)
			}
			rest = strings.TrimSpace(rest[len(q):])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", rest)
		}
		re, err := regexp.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern `%s`: %v", src, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, text: src})
	}
	return out, nil
}

// loader resolves fixture packages from source and everything else from the
// toolchain's export data. It implements types.Importer so fixture imports
// recurse through it.
type loader struct {
	fset *token.FileSet
	src  string // the testdata/src root
	pkgs map[string]*fixturePkg
	std  map[string]string // import path → export data file
	gc   types.Importer
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(src string) *loader {
	ld := &loader{
		fset: token.NewFileSet(),
		src:  src,
		pkgs: make(map[string]*fixturePkg),
		std:  make(map[string]string),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ld.std[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return ld
}

// Import makes loader a types.Importer for fixture type-checking.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.src, path); isDir(dir) {
		fp, err := ld.fixture(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	if err := ld.ensureStd(path); err != nil {
		return nil, err
	}
	return ld.gc.Import(path)
}

// ensureStd records export-data locations for path and its transitive
// dependencies, compiling them on first use.
func (ld *loader) ensureStd(path string) error {
	if _, ok := ld.std[path]; ok {
		return nil
	}
	listed, err := load.ExportData(path)
	if err != nil {
		return err
	}
	for p, f := range listed {
		ld.std[p] = f
	}
	if _, ok := ld.std[path]; !ok && path != "unsafe" {
		return fmt.Errorf("no export data produced for %q", path)
	}
	return nil
}

// fixture parses and type-checks one testdata/src package (memoized).
func (ld *loader) fixture(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.src, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %v", path, err)
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = fp
	return fp, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
