// Package maprange implements the gdrlint analyzer that flags `range` over
// a map whose iteration can reach an ordered output — a slice accumulated
// across iterations, an io.Writer/encoder, or a string built up per key —
// without the enclosing function restoring a deterministic order
// afterwards. Go randomizes map iteration order on purpose, so this is
// exactly the bug class that silently breaks the library's byte-identical
// output guarantee (suggestion lists, CSV exports, snapshots).
//
// The check is a heuristic with deliberately scoped sinks:
//
//   - append whose target is declared outside the loop (the slice
//     accumulates keys/values in iteration order);
//   - `+=` onto a string declared outside the loop;
//   - calls to fmt.Print*/Fprint* or to Write/WriteString/WriteByte/
//     WriteRune/WriteRow/Encode methods on a value from outside the loop.
//
// Aggregations that are order-free — counting, summing, building another
// map, per-key work on values — are not sinks. A `sort` or `slices.Sort*`
// call after the loop in the same function counts as restoring order and
// silences the finding (the collect-then-sort idiom).
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gdr/internal/lint/analysis"
)

// Analyzer is the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag map iteration whose order can reach a returned slice, writer, " +
		"encoder or built-up string without an intervening sort — map order " +
		"is randomized and breaks the byte-identical-output invariant",
	Run: run,
}

// sinkMethods are method names that emit data in call order.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRow": true, "Encode": true,
}

func run(pass *analysis.Pass) (any, error) {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		sink := findSink(pass, rs)
		if sink == "" {
			return true
		}
		if enclosing := analysis.EnclosingFunc(stack); enclosing != nil && sortedAfter(pass, enclosing, rs) {
			return true
		}
		pass.Reportf(rs.For,
			"map iteration order reaches %s without a deterministic sort; collect and sort keys first, or sort the result before it escapes (byte-identical-output invariant)",
			sink)
		return true
	})
	return nil, nil
}

// findSink scans the loop body for an order-sensitive output and describes
// the first one found ("" means none).
func findSink(pass *analysis.Pass, rs *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 &&
				isStringType(pass, st.Lhs[0]) && declaredOutside(pass, st.Lhs[0], rs) {
				sink = "a string built across iterations"
				return false
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isAppend(pass, call) || i >= len(st.Lhs) {
					continue
				}
				if _, keyed := st.Lhs[i].(*ast.IndexExpr); keyed {
					continue // per-key slot: each key lands deterministically
				}
				if declaredOutside(pass, st.Lhs[i], rs) {
					sink = "a slice accumulated across iterations"
					return false
				}
			}
		case *ast.CallExpr:
			if desc := callSink(pass, st, rs); desc != "" {
				sink = desc
				return false
			}
		}
		return true
	})
	return sink
}

// callSink reports whether a call inside the loop emits to an ordered
// output living outside the loop.
func callSink(pass *analysis.Pass, call *ast.CallExpr, rs *ast.RangeStmt) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "an io.Writer via fmt." + fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !sinkMethods[fn.Name()] {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// A writer constructed inside the loop (fresh buffer per iteration) is
	// order-free; one from outside accumulates in iteration order. A
	// receiver with no root identifier (a call-chain like
	// json.NewEncoder(w).Encode) is treated as escaping — conservatively.
	if root := analysis.RootIdent(sel.X); root == nil || declaredOutside(pass, sel.X, rs) {
		return "a writer or encoder via " + fn.Name()
	}
	return ""
}

// isAppend reports whether call invokes the append builtin.
func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isStringType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// declaredOutside reports whether the root identifier of e names an object
// declared outside the range statement (so writes to it survive the loop).
func declaredOutside(pass *analysis.Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	root := analysis.RootIdent(e)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// sortedAfter reports whether the function enclosing rs re-establishes a
// deterministic order after the loop: any call into package sort, or a
// slices.Sort* call, or a .Sort() method call, positioned after the loop.
func sortedAfter(pass *analysis.Pass, enclosing ast.Node, rs *ast.RangeStmt) bool {
	body := analysis.FuncBody(enclosing)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Pkg() != nil && fn.Pkg().Path() == "sort":
			found = true
		case fn.Pkg() != nil && fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"):
			found = true
		case fn.Name() == "Sort":
			found = true
		}
		return !found
	})
	return found
}
