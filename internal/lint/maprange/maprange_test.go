package maprange_test

import (
	"testing"

	"gdr/internal/lint/analysistest"
	"gdr/internal/lint/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maprange.Analyzer, "a")
}
