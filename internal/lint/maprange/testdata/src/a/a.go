// Package a exercises the maprange analyzer: map iterations whose order
// escapes must flag; order-free aggregations and collect-then-sort must not.
package a

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
)

// BadAppend returns keys in map order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order reaches a slice`
		out = append(out, k)
	}
	return out
}

// GoodSorted collects then sorts: the canonical fix.
func GoodSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GoodSlicesSorted uses the slices package to restore order.
func GoodSlicesSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// BadWrite streams key/value pairs to a writer in map order.
func BadWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order reaches an io\.Writer`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadBuilder accumulates into an outer strings.Builder in map order.
func BadBuilder(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want `map iteration order reaches a writer or encoder`
		b.WriteString(k)
	}
	return b.String()
}

// BadConcat builds a string across iterations.
func BadConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `map iteration order reaches a string`
		s += k
	}
	return s
}

// GoodCount aggregates order-free.
func GoodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// GoodMapToMap lands every key in its own slot; order cannot show.
func GoodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// GoodPerIteration appends only to a slice scoped to one iteration.
func GoodPerIteration(m map[string][]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, v*2)
		}
		out[k] = len(doubled)
	}
	return out
}

// GoodFreshBuffer writes to a builder created inside the loop.
func GoodFreshBuffer(m map[string][]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, vs := range m {
		var b strings.Builder
		for _, v := range vs {
			b.WriteString(v)
		}
		out[k] = b.String()
	}
	return out
}
