// Package detrand implements the gdrlint analyzer that keeps wall-clock
// reads and ambient (globally seeded) randomness out of the deterministic
// packages. The library guarantees byte-identical output for a given
// session seed at any worker count, and the snapshot format (PR 4) freezes
// the entire randomness state as one counter — both collapse the moment a
// deterministic package consults time.Now or the process-global math/rand
// source. All randomness there must flow through a *rand.Rand constructed
// from seed state (rand.New(rand.NewSource(seed))).
package detrand

import (
	"go/ast"
	"go/types"

	"gdr/internal/lint/analysis"
)

// deterministicPkgs names the packages (by import-path base) covered by the
// byte-identical-output guarantee. internal/server and the binaries are
// deliberately absent: serving code may read clocks.
var deterministicPkgs = map[string]bool{
	"core": true, "cfd": true, "cind": true, "md": true, "repair": true,
	"voi": true, "group": true, "learn": true, "relation": true,
}

// wallClock is the set of time package functions that read the system
// clock. Constructors and conversions (time.Unix, time.Duration math) stay
// allowed: they are pure.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand is the set of math/rand{,/v2} package functions that do NOT
// consult the global source: constructors for explicitly seeded generators.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now/Since/Until and globally seeded math/rand calls in " +
		"the deterministic packages (core, cfd, cind, md, repair, voi, group, " +
		"learn, relation): all randomness there must derive from the session " +
		"seed so output stays byte-identical and snapshots can capture the " +
		"full randomness state",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !deterministicPkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. rand.Rand.Intn, time.Time.Sub) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClock[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to time.%s in deterministic package %s: wall-clock reads break the byte-identical-output guarantee; derive timing from session state or move it out of the deterministic core",
						fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(call.Pos(),
						"use of globally seeded %s.%s in deterministic package %s: draw from a rand.New(rand.NewSource(seed)) generator seeded from session state instead",
						analysis.PathBase(fn.Pkg().Path()), fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
