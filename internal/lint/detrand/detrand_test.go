package detrand_test

import (
	"testing"

	"gdr/internal/lint/analysistest"
	"gdr/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer, "core", "other")
}
