// Package other is a detrand fixture outside the deterministic set: the
// serving tier and binaries may read clocks and the global rand freely.
package other

import (
	"math/rand"
	"time"
)

// Clocky is fine here: "other" is not a deterministic package.
func Clocky() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}
