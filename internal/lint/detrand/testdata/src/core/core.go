// Package core is a detrand fixture: its path base matches the
// deterministic-package set, so ambient time and randomness must flag.
package core

import (
	"math/rand"
	"time"
)

// Bad pulls nondeterminism from ambient process state.
func Bad(start time.Time) (int, time.Duration) {
	stamp := time.Now() // want `call to time\.Now in deterministic package core`
	_ = stamp
	elapsed := time.Since(start)       // want `call to time\.Since in deterministic package core`
	time.Until(start)                  // want `call to time\.Until in deterministic package core`
	n := rand.Intn(10)                 // want `use of globally seeded rand\.Intn in deterministic package core`
	rand.Shuffle(n, func(i, j int) {}) // want `use of globally seeded rand\.Shuffle in deterministic package core`
	return n, elapsed
}

// Good derives every random draw from an explicit seed, and only does pure
// time arithmetic.
func Good(seed int64, t time.Time) (int, time.Time) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(4)
	return perm[0] + rng.Intn(10), t.Add(time.Second)
}
