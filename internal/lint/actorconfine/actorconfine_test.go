package actorconfine_test

import (
	"testing"

	"gdr/internal/lint/actorconfine"
	"gdr/internal/lint/analysistest"
)

func TestActorconfine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), actorconfine.Analyzer, "server", "client")
}
