// Package actorconfine implements the gdrlint analyzer that enforces the
// serving tier's actor confinement: a core.Session is single-writer by
// design, and internal/server wraps each one in an actor goroutine that
// executes queued closures — HTTP handlers must never touch a session
// directly. The analyzer flags, inside any package whose import-path base
// is "server", every core.Session method call whose receiver is not rooted
// in a function parameter.
//
// The parameter rule is how confinement propagates: the only sanctioned
// ways to hold a session are the `func(sess *core.Session)` closures handed
// to (*actor).do — where sess is the closure's parameter — and helpers that
// take the session as an argument, which are only callable from a context
// that already holds it legitimately. What the rule forbids is minting a
// session reference out of thin air: reading it off a struct field (the
// actor's own sess field included) or a constructor result and calling
// methods on it. The store's construction-time read of a freshly built
// session, before any actor exists, carries a justified //lint:ignore
// suppression.
package actorconfine

import (
	"go/ast"
	"go/types"

	"gdr/internal/lint/analysis"
)

// Analyzer is the actorconfine check.
var Analyzer = &analysis.Analyzer{
	Name: "actorconfine",
	Doc: "in server packages, core.Session methods may only be called on a " +
		"session received as a function parameter (the actor's do-closures " +
		"and helpers they call) — never on one pulled from a field or " +
		"constructed locally, which would bypass the actor goroutine",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.PathBase(pass.Pkg.Path()) != "server" {
		return nil, nil
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal || !isCoreSession(selection.Recv()) {
			return true
		}
		// The receiver must itself be a parameter identifier: `sess.Groups()`
		// where sess came in as an argument. Reaching the session through a
		// field (a.sess), a local copy, or a constructor call mints an
		// unconfined reference and is exactly what the invariant forbids.
		recv := ast.Unparen(sel.X)
		if star, ok := recv.(*ast.StarExpr); ok {
			recv = ast.Unparen(star.X)
		}
		if id, ok := recv.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && analysis.IsParamOf(pass.TypesInfo, stack, obj) {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"core.Session method called outside its actor: session state is actor-confined — enqueue the work through (*actor).do and use the closure's session parameter")
		return true
	})
	return nil, nil
}

// isCoreSession reports whether t is (a pointer to) the Session type of a
// package whose import-path base is "core".
func isCoreSession(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Session" &&
		obj.Pkg() != nil && analysis.PathBase(obj.Pkg().Path()) == "core"
}
