// Package core is an actorconfine fixture standing in for gdr/internal/core:
// the analyzer recognizes the Session type by name and package-path base.
package core

// Session is the stand-in for core.Session: single-writer session state.
type Session struct{ n int }

// NewSession builds a fixture session.
func NewSession() *Session { return &Session{} }

// Bump mutates session state.
func (s *Session) Bump() { s.n++ }

// N reads session state.
func (s *Session) N() int { return s.n }
