// Package client is an actorconfine fixture outside any "server" package:
// direct session use is the library's normal, single-goroutine mode and
// must not flag.
package client

import "core"

// Direct drives a session without an actor, which is fine outside server.
func Direct() int {
	s := core.NewSession()
	s.Bump()
	return s.N()
}
