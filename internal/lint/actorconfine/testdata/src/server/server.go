// Package server is the actorconfine fixture: inside a "server" package,
// Session methods may only be reached through a function parameter.
package server

import "core"

type actor struct{ sess *core.Session }

// do is the fixture's command loop: the only sanctioned route to a session.
func (a *actor) do(fn func(*core.Session)) { fn(a.sess) }

// goodClosure drives the session through a do-closure parameter.
func goodClosure(a *actor) {
	a.do(func(sess *core.Session) {
		sess.Bump()
	})
}

// goodHelper inherits confinement from its caller via the parameter.
func goodHelper(sess *core.Session) int {
	sess.Bump()
	return sess.N()
}

// goodNestedCapture captures an enclosing function's parameter.
func goodNestedCapture(sess *core.Session) func() {
	return func() { sess.Bump() }
}

// badField calls methods on a session pulled straight off the actor.
func badField(a *actor) int {
	a.sess.Bump()     // want `core\.Session method called outside its actor`
	return a.sess.N() // want `core\.Session method called outside its actor`
}

// badLocal launders the field through a local variable.
func badLocal(a *actor) int {
	s := a.sess
	return s.N() // want `core\.Session method called outside its actor`
}

// badFresh builds a session and uses it without an actor.
func badFresh() int {
	return core.NewSession().N() // want `core\.Session method called outside its actor`
}
