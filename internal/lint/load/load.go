// Package load lists, parses and type-checks the packages gdrlint
// analyzes. It shells out to `go list -deps -export` for build-system facts
// (pattern expansion, build-tag file selection, and compiled export data
// for every dependency) and then type-checks only the target packages from
// source: dependencies are imported from the compiler's export data instead
// of being re-checked, which keeps a whole-tree run cheap and avoids any
// dependency on golang.org/x/tools.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked target package.
type Package struct {
	// PkgPath is the package's import path ("gdr/internal/core").
	PkgPath string
	// Fset positions the package's syntax (shared across one Packages call).
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by filename, with
	// comments attached.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records the checker's expression facts for Files.
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// Packages loads every package matching patterns, resolved relative to dir
// (the module the patterns address must be rooted at or above dir). Test
// files are not loaded: gdrlint checks the invariants of shipped code, and
// tests get to break them (fixed clocks, unsorted fixtures) on purpose.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ExportData compiles the named packages (typically standard-library
// imports of test fixtures) and returns the export-data file of each
// package in their transitive dependency closure.
func ExportData(patterns ...string) (map[string]string, error) {
	listed, err := goList("", patterns)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// goList runs `go list -deps -export -json` over the patterns and decodes
// the package stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outData, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(outData))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// check parses and type-checks one target package from source.
func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	names := append([]string(nil), t.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		PkgPath:   t.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
	}, nil
}
