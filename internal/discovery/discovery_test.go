package discovery

import (
	"math/rand"
	"testing"

	"gdr/internal/relation"
)

// build creates an instance where B is functionally determined by A for two
// frequent A values, with a controlled error rate.
func build(t *testing.T, n int, errRate float64) *relation.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	s := relation.MustSchema("R", []string{"A", "B", "C", "ID"})
	db := relation.NewDB(s)
	for i := 0; i < n; i++ {
		a, b := "a1", "b1"
		if rng.Intn(2) == 0 {
			a, b = "a2", "b2"
		}
		if rng.Float64() < errRate {
			b = "junk"
		}
		c := []string{"c1", "c2", "c3"}[rng.Intn(3)]
		db.MustInsert(relation.Tuple{a, b, c, string(rune('A'+i%26)) + string(rune('0'+i/26))})
	}
	return db
}

func TestDiscoversCleanFunctionalPattern(t *testing.T) {
	db := build(t, 400, 0)
	rules := ConstantCFDs(db, Options{MinSupport: 0.05, MinConfidence: 0.95})
	var found int
	for _, r := range rules {
		if len(r.LHS) == 1 && r.LHS[0] == "A" && r.RHS == "B" {
			v := r.TP["A"]
			if (v == "a1" && r.TP["B"] == "b1") || (v == "a2" && r.TP["B"] == "b2") {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d of 2 expected A→B rules; rules: %v", found, rules)
	}
	// C is random: no A→C rule should reach 95% confidence.
	for _, r := range rules {
		if r.RHS == "C" {
			t.Fatalf("spurious rule discovered: %v", r)
		}
	}
}

func TestDiscoveryToleratesNoise(t *testing.T) {
	db := build(t, 600, 0.08)
	rules := ConstantCFDs(db, Options{MinSupport: 0.05, MinConfidence: 0.85})
	found := false
	for _, r := range rules {
		if len(r.LHS) == 1 && r.LHS[0] == "A" && r.RHS == "B" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pattern lost under 8%% noise; rules: %v", rules)
	}
}

func TestHighCardinalityAttrsExcluded(t *testing.T) {
	db := build(t, 300, 0)
	rules := ConstantCFDs(db, Options{MinSupport: 0.05, MaxDomain: 10})
	for _, r := range rules {
		for _, a := range r.Attrs() {
			if a == "ID" {
				t.Fatalf("identifier attribute leaked into rule %v", r)
			}
		}
	}
}

func TestMaxRulesCap(t *testing.T) {
	db := build(t, 300, 0)
	rules := ConstantCFDs(db, Options{MinSupport: 0.05, MaxRules: 1})
	if len(rules) != 1 {
		t.Fatalf("cap ignored: %d rules", len(rules))
	}
}

func TestPairLHSFreeSetPruning(t *testing.T) {
	// D is determined by the pair (A,B) jointly but not by either alone;
	// the pair must be mined. Conversely (A=a1, B=b1) pairs where A alone
	// has the same support must be pruned.
	rng := rand.New(rand.NewSource(2))
	s := relation.MustSchema("R", []string{"A", "B", "D"})
	db := relation.NewDB(s)
	for i := 0; i < 400; i++ {
		a := []string{"x", "y"}[rng.Intn(2)]
		b := []string{"u", "v"}[rng.Intn(2)]
		d := "d1"
		if a == "x" && b == "u" {
			d = "d2"
		}
		db.MustInsert(relation.Tuple{a, b, d})
	}
	rules := ConstantCFDs(db, Options{MinSupport: 0.05, MinConfidence: 0.99, MaxLHS: 2})
	found := false
	for _, r := range rules {
		if len(r.LHS) == 2 && r.RHS == "D" && r.TP["D"] == "d2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pair rule (A=x,B=u)→D=d2 not discovered; rules: %v", rules)
	}
}

func TestEmptyInstance(t *testing.T) {
	s := relation.MustSchema("R", []string{"A"})
	db := relation.NewDB(s)
	if rules := ConstantCFDs(db, Options{}); rules != nil {
		t.Fatalf("empty instance yielded rules: %v", rules)
	}
}

func TestDiscoveryDeterminism(t *testing.T) {
	db := build(t, 500, 0.05)
	r1 := ConstantCFDs(db, Options{MinSupport: 0.05, MaxLHS: 2})
	r2 := ConstantCFDs(db, Options{MinSupport: 0.05, MaxLHS: 2})
	if len(r1) != len(r2) {
		t.Fatalf("rule counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].String() != r2[i].String() {
			t.Fatalf("rule %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
}
