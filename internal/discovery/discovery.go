// Package discovery implements automatic constant-CFD discovery in the
// spirit of Fan et al.'s CFDMiner (reference [9] of the paper): it mines
// rules (X → A, (x ‖ a)) whose LHS pattern has support above a threshold and
// whose RHS value is (nearly) functionally determined within that context.
// The paper uses this technique with a 5% support threshold to obtain the
// quality rules for Dataset 2.
//
// Discovery runs on dirty data, so a confidence threshold below 1 tolerates
// the errors the rules are later used to find.
package discovery

import (
	"fmt"
	"sort"

	"gdr/internal/cfd"
	"gdr/internal/relation"
)

// Options controls mining.
type Options struct {
	// MinSupport is the minimum fraction of tuples an LHS pattern must
	// cover. Default 0.05 (the paper's Dataset 2 setting).
	MinSupport float64
	// MinConfidence is the minimum fraction of context tuples that must
	// agree on the majority RHS value. Default 0.9.
	MinConfidence float64
	// MaxLHS bounds the LHS size (1 or 2). Default 1.
	MaxLHS int
	// MaxDomain excludes attributes with more distinct values than this
	// from rule positions (identifiers, free text). Default 64.
	MaxDomain int
	// MaxRules caps the number of emitted rules, keeping the highest-support
	// ones. Default 100.
	MaxRules int
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.05
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.9
	}
	if o.MaxLHS <= 0 {
		o.MaxLHS = 1
	}
	if o.MaxLHS > 2 {
		o.MaxLHS = 2
	}
	if o.MaxDomain <= 0 {
		o.MaxDomain = 64
	}
	if o.MaxRules <= 0 {
		o.MaxRules = 100
	}
	return o
}

type mined struct {
	lhs     []string
	lhsVals []string
	rhs     string
	rhsVal  string
	support int
}

// ConstantCFDs mines constant CFDs from the instance.
func ConstantCFDs(db *relation.DB, opt Options) []*cfd.CFD {
	opt = opt.withDefaults()
	n := db.N()
	if n == 0 {
		return nil
	}
	minSup := int(opt.MinSupport * float64(n))
	if minSup < 1 {
		minSup = 1
	}

	// Attributes eligible as rule positions: bounded domains only. Values
	// seen once do not count toward the bound — dirty data is full of
	// singleton typo variants, and what disqualifies an attribute is a
	// large *genuine* domain (identifiers, free text).
	var attrs []int
	for ai, a := range db.Schema.Attrs {
		repeated := 0
		for _, v := range db.Domain(a) {
			if db.ValueCount(a, v) >= 2 {
				repeated++
			}
		}
		if repeated <= opt.MaxDomain {
			attrs = append(attrs, ai)
		}
	}

	var out []mined
	// Single-attribute LHS.
	singleSup := make([]map[string]int, db.Schema.Arity())
	for _, ai := range attrs {
		singleSup[ai] = make(map[string]int)
		for tid := 0; tid < n; tid++ {
			singleSup[ai][db.GetAt(tid, ai)]++
		}
	}
	for _, ai := range attrs {
		for v, sup := range singleSup[ai] {
			if sup < minSup {
				continue
			}
			out = append(out, mineRHS(db, attrs, []int{ai}, []string{v}, sup, opt)...)
		}
	}
	// Pair LHS, restricted to free sets (neither single side already has the
	// same support, which would make the pair redundant).
	if opt.MaxLHS >= 2 {
		for i := 0; i < len(attrs); i++ {
			for j := i + 1; j < len(attrs); j++ {
				ai, aj := attrs[i], attrs[j]
				pairSup := make(map[[2]string]int)
				for tid := 0; tid < n; tid++ {
					pairSup[[2]string{db.GetAt(tid, ai), db.GetAt(tid, aj)}]++
				}
				for pv, sup := range pairSup {
					if sup < minSup {
						continue
					}
					if singleSup[ai][pv[0]] == sup || singleSup[aj][pv[1]] == sup {
						continue // not a free set
					}
					out = append(out, mineRHS(db, attrs, []int{ai, aj}, []string{pv[0], pv[1]}, sup, opt)...)
				}
			}
		}
	}

	sort.Slice(out, func(a, b int) bool {
		if out[a].support != out[b].support {
			return out[a].support > out[b].support
		}
		if out[a].rhs != out[b].rhs {
			return out[a].rhs < out[b].rhs
		}
		if out[a].rhsVal != out[b].rhsVal {
			return out[a].rhsVal < out[b].rhsVal
		}
		return fmt.Sprint(out[a].lhsVals) < fmt.Sprint(out[b].lhsVals)
	})
	if len(out) > opt.MaxRules {
		out = out[:opt.MaxRules]
	}

	rules := make([]*cfd.CFD, 0, len(out))
	for i, m := range out {
		tp := make(map[string]string, len(m.lhs)+1)
		for k, a := range m.lhs {
			tp[a] = m.lhsVals[k]
		}
		tp[m.rhs] = m.rhsVal
		rules = append(rules, cfd.MustNew(fmt.Sprintf("d%d", i+1), m.lhs, m.rhs, tp))
	}
	return rules
}

// mineRHS finds, for a fixed LHS pattern, every RHS attribute whose majority
// value reaches the confidence threshold.
func mineRHS(db *relation.DB, attrs []int, lhsIdx []int, lhsVals []string, sup int, opt Options) []mined {
	n := db.N()
	counts := make(map[int]map[string]int)
	for _, ai := range attrs {
		if !contains(lhsIdx, ai) {
			counts[ai] = make(map[string]int)
		}
	}
	for tid := 0; tid < n; tid++ {
		match := true
		for k, li := range lhsIdx {
			if db.GetAt(tid, li) != lhsVals[k] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for ai, m := range counts {
			m[db.GetAt(tid, ai)]++
		}
	}
	var out []mined
	for ai, m := range counts {
		bestV, bestC := "", 0
		for v, c := range m {
			if c > bestC || (c == bestC && v < bestV) {
				bestV, bestC = v, c
			}
		}
		if bestC == 0 || float64(bestC)/float64(sup) < opt.MinConfidence {
			continue
		}
		lhsNames := make([]string, len(lhsIdx))
		for k, li := range lhsIdx {
			lhsNames[k] = db.Schema.Attrs[li]
		}
		out = append(out, mined{
			lhs: lhsNames, lhsVals: append([]string(nil), lhsVals...),
			rhs: db.Schema.Attrs[ai], rhsVal: bestV, support: sup,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].rhs < out[b].rhs })
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
