#!/usr/bin/env bash
# Server smoke: build gdrd, boot it on a random port with a data dir, drive
# one full feedback round with curl (create → groups → updates → feedback →
# status → export), check the observability surface (Server-Timing +
# traceparent on responses, the span tree at /debug/traces, JSON log lines
# carrying trace_ids), replay a small gdrload bench against the same daemon,
# then restart the daemon mid-run and verify the session survived with a
# byte-identical export, and finally check the SIGTERM drain exits cleanly.
# Needs curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building gdrd + gdrload"
go build -o "$workdir/gdrd" ./cmd/gdrd
go build -o "$workdir/gdrload" ./cmd/gdrload
go run ./cmd/gdrgen -dataset 1 -n 300 -seed 5 -dir "$workdir"

# boot_gdrd: start the daemon on a random port with the shared data dir and
# wait for it to report healthy (the boot/port-scrape mechanics live in
# scripts/lib.sh). Extra arguments pass through. Sets $pid and $base.
boot_gdrd() {
  boot_daemon gdrd "$workdir/gdrd.log" "$workdir/gdrd" \
    -addr 127.0.0.1:0 -quiet -data-dir "$workdir/data" "$@"
  pid=$daemon_pid
  base=$daemon_base
  curl -fsS "$base/healthz" | jq -e '.status == "ok"' >/dev/null
}

# stop_gdrd: SIGTERM the daemon and wait for a clean drain.
stop_gdrd() {
  stop_daemon "$pid"
  pid=""
}

echo "== boot gdrd with -data-dir"
boot_gdrd

echo "== create session (multipart upload)"
id=$(curl -fsS -F csv=@"$workdir/dirty.csv" -F rules=@"$workdir/rules.txt" -F seed=5 \
  "$base/v1/sessions" | jq -re '.session.id')
sess="$base/v1/sessions/$id"

echo "== top VOI group"
key=$(curl -fsS "$sess/groups?order=voi&limit=1" | jq -re '.groups[0].key')

echo "== group updates"
updates=$(curl -fsS "$sess/groups/$key/updates")
jq -e '.updates | length > 0' >/dev/null <<<"$updates"

echo "== feedback round (confirm the whole group)"
items=$(jq '[.updates[] | {tid, attr, value, feedback: "confirm"}]' <<<"$updates")
fb=$(curl -fsS -D "$workdir/fb-headers.txt" -X POST -H 'Content-Type: application/json' \
  -d "{\"items\": $items, \"sweep\": true}" "$sess/feedback")
jq -e '.applied_delta >= 1' >/dev/null <<<"$fb"
grep -qi '^server-timing:.*exec;dur=' "$workdir/fb-headers.txt"
grep -qi '^traceparent: 00-' "$workdir/fb-headers.txt"

echo "== status reflects the round"
curl -fsS "$sess/status" | jq -e '.stats.applied >= 1' >/dev/null

echo "== /debug/traces shows the feedback trace's span tree"
traces=$(curl -fsS "$base/debug/traces")
jq -e '.enabled and .finished_total >= 1' >/dev/null <<<"$traces"
fbtrace=$(jq '[.recent[] | select(.route == "feedback")][0]' <<<"$traces")
jq -e '.trace_id | length == 32' >/dev/null <<<"$fbtrace"
jq -e '[.spans[].stage] | (index("queue") != null) and (index("exec") != null) and (index("persist") != null)' \
  >/dev/null <<<"$fbtrace"
jq -e '[.spans[] | select(.stage == "persist") | .children[].stage] | index("fsync") != null' \
  >/dev/null <<<"$fbtrace"

echo "== export the repaired instance"
curl -fsS "$sess/export" -o "$workdir/repaired.csv"
head -1 "$workdir/repaired.csv" | grep -q ','

echo "== metrics expose the traffic"
curl -fsS "$base/metrics" -o "$workdir/metrics.txt"
grep -q '^gdrd_sessions_live 1' "$workdir/metrics.txt"

echo "== gdrload bench-smoke against the live daemon (incl. server-side stage breakdown)"
"$workdir/gdrload" -addr "$base" -sessions 4 -users 4 -rounds 4 -n 150 -seed 11 \
  >"$workdir/gdrload.json"
jq -e '.feedback_rounds > 0 and (.sessions | length) == 4' >/dev/null "$workdir/gdrload.json"
jq -e '.server_stage_seconds.exec.count > 0 and .server_stage_seconds.queue.count > 0' \
  >/dev/null "$workdir/gdrload.json"

echo "== restart the daemon mid-run; the session must survive"
stop_gdrd
boot_gdrd
sess="$base/v1/sessions/$id"
curl -fsS "$base/metrics" -o "$workdir/metrics.txt"
grep -q '^gdrd_sessions_restored_total 1' "$workdir/metrics.txt"
curl -fsS "$sess/status" | jq -e '.stats.applied >= 1' >/dev/null
curl -fsS "$sess/export" -o "$workdir/repaired-after-restart.csv"
cmp "$workdir/repaired.csv" "$workdir/repaired-after-restart.csv"

echo "== the restored session is live: snapshot export + re-import works"
curl -fsS -X POST "$sess/snapshot" -o "$workdir/session.snap"
[ -s "$workdir/session.snap" ]
imported=$(curl -fsS -F snapshot=@"$workdir/session.snap" -F name=imported \
  "$base/v1/sessions" | jq -re '.session.id')
curl -fsS "$base/v1/sessions/$imported/export" | cmp - "$workdir/repaired.csv"
curl -fsS -X DELETE "$base/v1/sessions/$imported" >/dev/null

echo "== delete session"
curl -fsS -X DELETE "$sess" | jq -e '.status == "deleted"' >/dev/null
if [ -e "$workdir/data/$id.snap" ]; then
  echo "deleted session left its snapshot behind" >&2
  exit 1
fi

echo "== JSON structured logs: request lines parse and carry a trace_id"
stop_gdrd
boot_gdrd -quiet=false -log-format=json
curl -fsS "$base/v1/sessions" >/dev/null
reqline=""
for _ in $(seq 1 50); do
  reqline=$(grep '"trace_id"' "$workdir/gdrd.log" | head -1 || true)
  [ -n "$reqline" ] && break
  sleep 0.1
done
if [ -z "$reqline" ]; then
  echo "no JSON request log line with a trace_id:" >&2
  cat "$workdir/gdrd.log" >&2
  exit 1
fi
jq -e '.msg == "request" and (.trace_id | length == 32) and .route == "list"' >/dev/null <<<"$reqline"

echo "== overload smoke: quota sheds carry Retry-After, healthy tenant unaffected"
stop_gdrd
cat >"$workdir/keys.txt" <<'KEYS'
# smoke tenants: one unlimited, one throttled to 1 req/s
goodkey12345 good
tightkey1234 tight rate=1 burst=1
KEYS
boot_gdrd -keyfile "$workdir/keys.txt"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/sessions")
if [ "$code" != 401 ]; then
  echo "unauthenticated request got $code, want 401" >&2
  exit 1
fi
saw429=0
for _ in $(seq 1 10); do
  curl -s -D "$workdir/shed-headers.txt" -o /dev/null \
    -H 'Authorization: Bearer tightkey1234' "$base/v1/sessions"
  code=$(awk 'NR==1{print $2}' "$workdir/shed-headers.txt")
  if [ "$code" = 429 ]; then
    saw429=1
    if ! grep -qi '^retry-after:' "$workdir/shed-headers.txt"; then
      echo "429 shed without a Retry-After header" >&2
      exit 1
    fi
  fi
done
if [ "$saw429" != 1 ]; then
  echo "burst past a 1/s quota was never shed" >&2
  exit 1
fi
id2=$(curl -fsS -H 'Authorization: Bearer goodkey12345' \
  -F csv=@"$workdir/dirty.csv" -F rules=@"$workdir/rules.txt" -F seed=5 \
  "$base/v1/sessions" | jq -re '.session.id')
curl -fsS -H 'Authorization: Bearer goodkey12345' \
  "$base/v1/sessions/$id2/groups?order=voi&limit=1" \
  | jq -e '.groups | length >= 1' >/dev/null
curl -fsS "$base/metrics" -o "$workdir/metrics.txt"
grep -q 'gdrd_shed_total{reason="rate",tenant="tight"}' "$workdir/metrics.txt"
grep -q '^gdrd_stage_seconds_count{' "$workdir/metrics.txt"
grep -q '^gdrd_build_info{' "$workdir/metrics.txt"
grep -q '^gdrd_goroutines ' "$workdir/metrics.txt"
curl -fsS -X DELETE -H 'Authorization: Bearer goodkey12345' \
  "$base/v1/sessions/$id2" >/dev/null

echo "== graceful drain on SIGTERM"
stop_gdrd
echo "== smoke OK"
