#!/usr/bin/env bash
# Cluster smoke: build gdrd + gdrproxy + gdrload, boot a 2-node cluster
# behind the routing gateway, create and drive a session through the proxy,
# then kill -9 whichever node owns it mid-run AND delete its data dir — the
# shared-nothing crash. The proxy must detect the death, promote the
# session from the replica it pushed to the survivor, and keep serving it
# with a byte-identical export — no client-visible data loss. Feedback is
# exactly-once throughout: a POST retried with its request id replays the
# original response bytes, even when the retry lands after the failover on
# a different node. Needs curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/lib.sh

workdir=$(mktemp -d)
pids=()
cleanup() {
  local p
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building gdrd + gdrproxy + gdrload"
go build -o "$workdir/gdrd" ./cmd/gdrd
go build -o "$workdir/gdrproxy" ./cmd/gdrproxy
go build -o "$workdir/gdrload" ./cmd/gdrload
go run ./cmd/gdrgen -dataset 1 -n 300 -seed 5 -dir "$workdir"

echo "== boot 2 cluster-mode gdrd nodes"
mkdir -p "$workdir/data1" "$workdir/data2"
boot_daemon gdrd "$workdir/node1.log" "$workdir/gdrd" \
  -addr 127.0.0.1:0 -quiet -cluster -data-dir "$workdir/data1"
node1_pid=$daemon_pid node1=$daemon_base
pids+=("$node1_pid")
boot_daemon gdrd "$workdir/node2.log" "$workdir/gdrd" \
  -addr 127.0.0.1:0 -quiet -cluster -data-dir "$workdir/data2"
node2_pid=$daemon_pid node2=$daemon_base
pids+=("$node2_pid")

echo "== boot gdrproxy over both nodes"
boot_daemon gdrproxy "$workdir/proxy.log" "$workdir/gdrproxy" \
  -addr 127.0.0.1:0 \
  -nodes "$node1,$node2" \
  -node-data "$node1=$workdir/data1,$node2=$workdir/data2" \
  -health-every 100ms -fail-after 2 -settle-grace 500ms
proxy_pid=$daemon_pid proxy=$daemon_base
pids+=("$proxy_pid")
curl -fsS "$proxy/healthz" | jq -e '.live_nodes == 2' >/dev/null
curl -fsS "$proxy/readyz" | jq -e '.status == "ready"' >/dev/null

echo "== create session through the gateway"
id=$(curl -fsS -F csv=@"$workdir/dirty.csv" -F rules=@"$workdir/rules.txt" -F seed=5 \
  "$proxy/v1/sessions" | jq -re '.session.id')
sess="$proxy/v1/sessions/$id"

echo "== drive one feedback round through the gateway (with a request id)"
req_id="smoke-exactly-once-1"
key=$(curl -fsS "$sess/groups?order=voi&limit=1" | jq -re '.groups[0].key')
updates=$(curl -fsS "$sess/groups/$key/updates")
items=$(jq '[.updates[] | {tid, attr, value, feedback: "confirm"}]' <<<"$updates")
printf '{"items": %s, "sweep": true}' "$items" >"$workdir/feedback.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
  -H "X-Gdr-Request-Id: $req_id" \
  --data-binary @"$workdir/feedback.json" "$sess/feedback" \
  -o "$workdir/feedback-first.json"
jq -e '.applied_delta >= 1' >/dev/null "$workdir/feedback-first.json"
curl -fsS "$sess/status" | jq -e '.stats.applied >= 1' >/dev/null
applied_before=$(curl -fsS "$sess/status" | jq -r '.stats.applied')
curl -fsS "$sess/export" -o "$workdir/before-kill.csv"

echo "== a duplicate of that round replays, it does not re-apply"
curl -fsS -X POST -H 'Content-Type: application/json' \
  -H "X-Gdr-Request-Id: $req_id" \
  --data-binary @"$workdir/feedback.json" "$sess/feedback" \
  -D "$workdir/dup-headers.txt" -o "$workdir/feedback-dup.json"
grep -qi '^x-gdr-duplicate:' "$workdir/dup-headers.txt"
cmp "$workdir/feedback-first.json" "$workdir/feedback-dup.json"
curl -fsS "$sess/status" | jq -e --argjson a "$applied_before" '.stats.applied == $a' >/dev/null

echo "== gdrload bench-smoke through the gateway, forcing duplicates"
"$workdir/gdrload" -addr "$proxy" -sessions 2 -users 2 -rounds 2 -n 120 -seed 7 -dup \
  >"$workdir/gdrload.json"
jq -e '.feedback_rounds > 0 and (.sessions | length) == 2 and .duplicate_replays > 0' \
  >/dev/null "$workdir/gdrload.json"

echo "== wait for the session's replica to land on the other node"
replicated=""
for _ in $(seq 1 100); do
  if curl -fsS "$node1/v1/replicas" "$node2/v1/replicas" | jq -se --arg id "$id" \
    '[.[].replicas[]? | select(.token == $id and .seq >= 1)] | length >= 1' >/dev/null; then
    replicated=yes
    break
  fi
  sleep 0.1
done
[ -n "$replicated" ]

echo "== find the node that owns the session; kill -9 it AND delete its disk"
owner="" owner_pid="" owner_dir="" survivor=""
if curl -fsS "$node1/v1/sessions" | jq -e --arg id "$id" \
  '.sessions[] | select(.id == $id)' >/dev/null; then
  owner=$node1 owner_pid=$node1_pid owner_dir="$workdir/data1" survivor=$node2
else
  curl -fsS "$node2/v1/sessions" | jq -e --arg id "$id" \
    '.sessions[] | select(.id == $id)' >/dev/null
  owner=$node2 owner_pid=$node2_pid owner_dir="$workdir/data2" survivor=$node1
fi
echo "   owner: $owner (survivor: $survivor)"
kill_daemon "$owner_pid"
rm -rf "$owner_dir" # shared-nothing: the dead node's snapshots are gone too

echo "== proxy notices the death and promotes the session from its replica"
for _ in $(seq 1 100); do
  live=$(curl -fsS "$proxy/healthz" | jq -r '.live_nodes')
  [ "$live" = 1 ] && break
  sleep 0.1
done
[ "$live" = 1 ]
retry_curl "$workdir/status-after-kill.json" "$sess/status"
jq -e '.stats.applied >= 1' >/dev/null "$workdir/status-after-kill.json"

echo "== the promoted session serves a byte-identical export"
retry_curl "$workdir/after-kill.csv" "$sess/export"
cmp "$workdir/before-kill.csv" "$workdir/after-kill.csv"
curl -fsS "$survivor/v1/sessions" | jq -e --arg id "$id" \
  '.sessions[] | select(.id == $id)' >/dev/null

echo "== the pre-kill request id still replays on the survivor"
# The dedup window rides the replica snapshot: a retry of the round posted
# before the crash must replay the same bytes from the promoted copy.
retry_curl "$workdir/feedback-postkill.json" "$sess/feedback" \
  -X POST -H 'Content-Type: application/json' \
  -H "X-Gdr-Request-Id: $req_id" --data-binary @"$workdir/feedback.json" \
  -D "$workdir/dup-postkill-headers.txt"
grep -qi '^x-gdr-duplicate:' "$workdir/dup-postkill-headers.txt"
cmp "$workdir/feedback-first.json" "$workdir/feedback-postkill.json"
curl -fsS "$sess/status" | jq -e --argjson a "$applied_before" '.stats.applied == $a' >/dev/null
curl -fsS "$survivor/metrics" -o "$workdir/survivor-metrics.txt"
grep -q '^gdrd_feedback_duplicates_total [1-9]' "$workdir/survivor-metrics.txt"

echo "== the promoted session is still repairable"
retry_curl "$workdir/groups-after-kill.json" "$sess/groups?order=voi&limit=1"
jq -e '.groups | length >= 1' >/dev/null "$workdir/groups-after-kill.json"

echo "== proxy metrics recorded the death, the pushes, and the promotion"
curl -fsS "$proxy/metrics" -o "$workdir/proxy-metrics.txt"
grep -q 'gdrproxy_node_deaths_total' "$workdir/proxy-metrics.txt"
grep -q '^gdrproxy_replica_pushes_total [1-9]' "$workdir/proxy-metrics.txt"
grep -q '^gdrproxy_replica_promotions_total [1-9]' "$workdir/proxy-metrics.txt"
grep -q '^gdrproxy_recovered_sessions_total [1-9]' "$workdir/proxy-metrics.txt"
grep -q 'gdrproxy_requests_total' "$workdir/proxy-metrics.txt"

echo "== delete the session through the gateway"
curl -fsS -X DELETE "$sess" | jq -e '.status == "deleted"' >/dev/null

echo "== graceful drain: proxy first, then the surviving node"
stop_daemon "$proxy_pid"
stop_daemon "$(if [ "$survivor" = "$node1" ]; then echo "$node1_pid"; else echo "$node2_pid"; fi)"
pids=()
echo "== cluster smoke OK"
