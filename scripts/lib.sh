# scripts/lib.sh — shared boot/wait/drive helpers for the smoke scripts.
# Source after `set -euo pipefail`; needs curl and jq on PATH.

# boot_daemon NAME LOG BIN [ARGS...]
# Starts BIN in the background redirecting stderr to LOG, scrapes the
# kernel-assigned listen address from its "NAME: serving on 127.0.0.1:PORT"
# startup line (every daemon binds :0 in the smokes to avoid port races),
# then waits for /healthz to answer. Sets $daemon_pid and $daemon_base.
boot_daemon() {
  local name="$1" log="$2" bin="$3"
  shift 3
  : >"$log"
  "$bin" "$@" 2>"$log" &
  daemon_pid=$!
  daemon_base=""
  local addr
  for _ in $(seq 1 100); do
    addr=$(sed -n "s/.*$name: serving on \(127\.0\.0\.1:[0-9]*\).*/\1/p" "$log" | head -1)
    if [ -n "$addr" ]; then
      daemon_base="http://$addr"
      break
    fi
    sleep 0.1
  done
  if [ -z "$daemon_base" ]; then
    echo "$name never reported its address:" >&2
    cat "$log" >&2
    exit 1
  fi
  wait_healthz "$daemon_base"
}

# wait_healthz BASE
# Polls BASE/healthz until it answers 200 (10s budget).
wait_healthz() {
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "no healthy /healthz at $1" >&2
  exit 1
}

# stop_daemon PID
# SIGTERMs a daemon and waits for a clean graceful drain.
stop_daemon() {
  local p="$1"
  kill -TERM "$p"
  for _ in $(seq 1 100); do
    kill -0 "$p" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$p" 2>/dev/null; then
    echo "daemon $p did not drain in time" >&2
    exit 1
  fi
  wait "$p"
}

# kill_daemon PID
# SIGKILLs a daemon — the crash path; nothing drains, nothing flushes.
kill_daemon() {
  kill -9 "$1" 2>/dev/null || true
  wait "$1" 2>/dev/null || true
}

# retry_curl OUT URL [CURL_ARGS...]
# Curls URL into OUT, retrying for up to ~10s — for windows where the
# cluster answers 503 + Retry-After (migration or failover in flight).
retry_curl() {
  local out="$1" url="$2"
  shift 2
  for _ in $(seq 1 100); do
    if curl -fsS "$@" "$url" -o "$out" 2>/dev/null; then
      return 0
    fi
    sleep 0.1
  done
  echo "request to $url never succeeded" >&2
  exit 1
}
