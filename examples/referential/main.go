// Referential: the future-work rule types of the paper's Section 7 —
// conditional inclusion dependencies (CINDs) across relations and matching
// dependencies (MDs) within one — used alongside a CFD repair session.
//
//	go run ./examples/referential
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gdr"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Two relations: visits reference hospitals by name.
	visits := gdr.NewDB(gdr.MustSchema("Visits", []string{"Patient", "HospitalName", "Street", "Zip"}))
	hospitals := gdr.NewDB(gdr.MustSchema("Hospitals", []string{"Name", "City"}))

	hospitals.MustInsert(gdr.Tuple{"St. Mary Medical Center", "Michigan City"})
	hospitals.MustInsert(gdr.Tuple{"Parkview Regional", "Fort Wayne"})

	rows := []gdr.Tuple{
		{"Alice", "St. Mary Medical Center", "100 Sherden Road", "46825"},
		{"Bob", "St Mary Medical Centre", "100 Sherden Raod", "46835"}, // typo'd reference + street
		{"Carol", "Parkview Regional", "100 Sherden Road", "46825"},
	}
	for _, r := range rows {
		visits.MustInsert(r)
	}

	// CIND: every visit must name an existing hospital.
	ref, err := gdr.NewCIND("ref", []string{"HospitalName"}, []string{"Name"}, nil, nil)
	if err != nil {
		return err
	}
	cch, err := gdr.NewCINDChecker(visits, hospitals, []*gdr.CIND{ref})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "CIND violations (dangling references):")
	for _, v := range cch.Violations() {
		fmt.Fprintf(w, "  t%d references %q — not in Hospitals\n", v.Tid, visits.Get(v.Tid, "HospitalName"))
		for _, s := range cch.Suggest(v, 1) {
			fmt.Fprintf(w, "    suggest %s := %q (score %.2f)\n", s.Attr, s.Value, s.Score)
			visits.Set(s.Tid, s.Attr, s.Value) // accept the fix
		}
	}

	// MD: visits with nearly identical streets must carry the same zip.
	mdRule, err := gdr.NewMD("street-zip", "Street", 0.85, "Zip")
	if err != nil {
		return err
	}
	mch, err := gdr.NewMDChecker(visits, []*gdr.MD{mdRule})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nMD violations (similar streets, diverging zips):")
	for _, v := range mch.AllViolations() {
		fmt.Fprintf(w, "  t%d %q / t%d %q (sim %.2f) but zips %s vs %s\n",
			v.T1, visits.Get(v.T1, "Street"), v.T2, visits.Get(v.T2, "Street"), v.Similarity,
			visits.Get(v.T1, "Zip"), visits.Get(v.T2, "Zip"))
		sugs := mch.Suggest(v)
		best := sugs[0]
		fmt.Fprintf(w, "    identify: t%d.%s := %q (support %d)\n", best.Tid, best.Attr, best.Value, best.Support)
		visits.Set(best.Tid, best.Attr, best.Value)
	}

	fmt.Fprintln(w, "\nrepaired visits:")
	for tid := 0; tid < visits.N(); tid++ {
		fmt.Fprintf(w, "  %v\n", visits.Tuple(tid))
	}
	return nil
}
