package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the CIND/MD example: the dangling reference and the
// diverging zip must both be detected and repaired.
func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "not in Hospitals") {
		t.Fatalf("dangling reference not detected:\n%s", out)
	}
	if !strings.Contains(out, "identify: ") {
		t.Fatalf("MD violation not repaired:\n%s", out)
	}
	if !strings.Contains(out, `"St. Mary Medical Center"`) {
		t.Fatalf("reference not fixed to the canonical name:\n%s", out)
	}
}
