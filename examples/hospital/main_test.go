package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the Dataset 1 comparison: all three strategy rows
// must be produced.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full strategy runs on n=4000")
	}
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Heuristic", "GDR-NoLearning", "initial dirty tuples E = "} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}
