// Hospital: the paper's Dataset 1 scenario — emergency-room visit records
// integrated from 74 hospitals, 30% of tuples perturbed with recurrent,
// source-correlated errors. The example compares the full GDR framework
// against the automatic heuristic and plain VOI ranking at the same
// feedback budget, demonstrating the paper's headline claim: a small amount
// of well-targeted user feedback beats fully automatic repair.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gdr"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "generating Dataset 1 (hospital visits, n=4000, 30% dirty)...")
	data := gdr.HospitalData(gdr.DataConfig{N: 4000, Seed: 11})

	probe, err := gdr.Run(gdr.StrategyHeuristic, data.Dirty, data.Truth, data.Rules, gdr.RunConfig{})
	if err != nil {
		return err
	}
	e := probe.InitialDirty
	budget := e / 5 // 20% of the initial dirty tuples, the paper's sweet spot
	fmt.Fprintf(w, "initial dirty tuples E = %d; feedback budget = %d (20%% of E)\n\n", e, budget)

	fmt.Fprintf(w, "%-18s %10s %10s %10s %12s %10s %8s\n",
		"strategy", "feedback", "learner", "applied", "improvement", "precision", "recall")
	for _, st := range []gdr.Strategy{gdr.StrategyHeuristic, gdr.StrategyGDRNoLearning, gdr.StrategyGDR} {
		rc := gdr.RunConfig{Budget: budget, Seed: 3, RecordEvery: 100}
		if st == gdr.StrategyHeuristic {
			rc.Budget = 0 // no user at all
		}
		res, err := gdr.Run(st, data.Dirty, data.Truth, data.Rules, rc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %10d %10d %10d %11.1f%% %10.3f %8.3f\n",
			st, res.Verified, res.LearnerDecisions, res.Applied,
			res.FinalImprovement, res.Precision, res.Recall)
	}

	fmt.Fprintln(w, "\nGDR leverages the correlated errors (e.g. source S2 corrupts City,")
	fmt.Fprintln(w, "S3 swaps boundary zips): after a few labels per group, the learned")
	fmt.Fprintln(w, "per-attribute forests decide the remaining updates automatically.")
	return nil
}
