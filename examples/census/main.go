// Census: the paper's Dataset 2 scenario — adult-census-style records with
// uncorrelated random errors, where the quality rules are NOT given but
// *discovered* from the dirty data itself (constant CFDs at 5% support,
// following the paper's use of reference [9]). The example prints the
// discovered rules and repairs the instance with them.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gdr"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "generating Dataset 2 (census records, n=4000, 30% dirty)...")
	data := gdr.CensusData(gdr.DataConfig{N: 4000, Seed: 21})

	fmt.Fprintf(w, "\ndiscovered %d constant CFDs from the dirty instance (5%% support); first 12:\n", len(data.Rules))
	for i, r := range data.Rules {
		if i >= 12 {
			break
		}
		fmt.Fprintf(w, "  %s\n", r)
	}

	res, err := gdr.Run(gdr.StrategyGDR, data.Dirty, data.Truth, data.Rules, gdr.RunConfig{
		Budget: 400, Seed: 5, RecordEvery: 50,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nGDR with %d feedbacks: %.1f%% quality improvement, precision %.3f, recall %.3f\n",
		res.Verified, res.FinalImprovement, res.Precision, res.Recall)
	fmt.Fprintf(w, "learner decided %d further updates without user involvement\n", res.LearnerDecisions)
	fmt.Fprintln(w, "\nbecause this dataset's errors are random (no learnable correlations),")
	fmt.Fprintln(w, "the learner helps less than on the hospital data — the paper's")
	fmt.Fprintln(w, "Dataset 2 observation.")
	return nil
}
